"""Parent-side driver of the parallel dedup/restore data plane.

:class:`DataPlane` runs the staged pipeline of a dedup or restore op on
behalf of a :class:`~repro.core.agent.DedupAgent`:

* **dedup** — the image is copied into the arena once; fingerprint
  tasks go out over contiguous page-range batches (up to ``depth`` in
  flight — software pipelining: workers scan batch *k+1* while the
  parent does the registry round-trip and base-page staging for batch
  *k*); each finished fingerprint batch gets one grouped
  ``choose_base_pages`` round-trip, its base pages staged into arena
  slots (deduplicated per distinct base page), and a patch task
  submitted.  Patch results assemble into the entries list by absolute
  page index, so completion order never matters.
* **restore** — unique/zero pages are materialized by the parent
  (their bytes are already local); base pages are staged once per
  distinct base; patched pages are reconstructed by apply tasks
  writing straight into the arena's output region.

The pipeline produces bit-identical page tables and images to the
serial :meth:`DedupAgent.dedup`/:meth:`DedupAgent.restore` paths for
any ``workers``/``batch_pages``/``depth`` (property-tested): batches
cut at page boundaries preserve per-page fingerprints exactly, registry
choices are stateless within an op, the patch codec is deterministic,
and all accounting (saved bytes, refcounts, read plans) sums order-
independently.

Two executors implement the same task protocol: :class:`PoolExecutor`
submits to a shared :class:`~repro.parallel.pool.WorkerPool` over a
:class:`~repro.parallel.arena.ShmArena`; :class:`InlineExecutor`
(``workers=1``) runs :func:`~repro.parallel.pool.run_task` in-process
over a :class:`~repro.parallel.arena.LocalArena` — same staged code,
no subprocesses, no shared memory.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import TYPE_CHECKING

import numpy as np

from repro._util import LruCache
from repro.memory.fingerprint import (
    PageFingerprint,
    fingerprints_from_arrays,
    nonzero_page_mask,
)
from repro.parallel.arena import LocalArena, ShmArena
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import WORKER_ANCHOR_CACHE_PAGES, WorkerPool, run_task

if TYPE_CHECKING:
    from repro.core.agent import DedupAgent, DedupOutcome, DedupPageTable


class InlineExecutor:
    """Run data-plane tasks in-process (the ``workers=1`` engine)."""

    def __init__(self) -> None:
        self._arena: LocalArena | None = None
        self._results: deque[tuple] = deque()
        self._anchor_cache: LruCache = LruCache(WORKER_ANCHOR_CACHE_PAGES)

    def ensure_arena(self, nbytes: int) -> tuple[str | None, np.ndarray]:
        if self._arena is None or self._arena.capacity < nbytes:
            if self._arena is not None:
                self._arena.close()
            self._arena = LocalArena(nbytes)
        return self._arena.token, self._arena.view

    def _resolve(self, token: str | None) -> np.ndarray:
        assert self._arena is not None
        return self._arena.view

    def submit(self, task: tuple) -> None:
        self._results.append(run_task(task, self._resolve, self._anchor_cache))

    def next_result(self) -> tuple:
        return self._results.popleft()

    def close(self) -> None:
        if self._arena is not None:
            self._arena.close()
            self._arena = None


class PoolExecutor:
    """Run data-plane tasks on a shared worker pool over a shm arena."""

    def __init__(self, workers: int):
        self._workers = workers
        self._arena: ShmArena | None = None

    def ensure_arena(self, nbytes: int) -> tuple[str | None, np.ndarray]:
        # Arenas are only ever replaced between ops (no tasks in
        # flight), so unlinking the old segment is safe: workers drop
        # their stale mappings lazily.
        if self._arena is None or self._arena.capacity < nbytes:
            if self._arena is not None:
                self._arena.close()
            self._arena = ShmArena(nbytes)
        return self._arena.token, self._arena.view

    def submit(self, task: tuple) -> None:
        WorkerPool.shared(self._workers).submit(task)

    def next_result(self) -> tuple:
        return WorkerPool.shared(self._workers).next_result()

    def close(self) -> None:
        # The pool is process-wide (shared across agents); only the
        # arena belongs to this executor.
        if self._arena is not None:
            self._arena.close()
            self._arena = None


class DataPlane:
    """Staged dedup/restore execution for one agent."""

    def __init__(self, agent: "DedupAgent", config: ParallelConfig):
        self.agent = agent
        self.config = config
        if config.workers > 1:
            self.executor: InlineExecutor | PoolExecutor = PoolExecutor(config.workers)
        else:
            self.executor = InlineExecutor()

    def close(self) -> None:
        self.executor.close()

    # ---------------------------------------------------------------- dedup

    def dedup(self, sandbox) -> "DedupOutcome":
        """The dedup op over the staged pipeline (see module docstring)."""
        from repro.core.agent import PageEntry, PageKind

        agent = self.agent
        image = sandbox.image
        assert image is not None
        page_size = image.page_size
        data = image.data
        num_pages = image.num_pages
        unique_cap = int(agent.unique_threshold * page_size)

        base_refs: Counter[int] = Counter()
        reads_by_peer: Counter[int] = Counter()
        unique_pages = patched_pages = 0
        same_fn = cross_fn = 0

        nonzero = nonzero_page_mask(data, page_size)
        zero_pages = num_pages - int(np.count_nonzero(nonzero))
        saved = zero_pages * page_size
        zero_entry = PageEntry(kind=PageKind.ZERO)
        entries: list[PageEntry | None] = [
            None if nz else zero_entry for nz in nonzero
        ]

        def keep_unique(index: int) -> None:
            nonlocal unique_pages
            start = index * page_size
            entries[index] = PageEntry(
                kind=PageKind.UNIQUE, raw=data[start : start + page_size].tobytes()
            )
            unique_pages += 1

        # Contiguous page-range batches; ranges with no nonzero page
        # produce no work.  Cutting at page boundaries keeps the marker
        # scan's per-page semantics, so batch fingerprints are identical
        # to the whole-image scan.
        batch_pages = self.config.batch_pages
        ranges: list[tuple[int, int, list[int]]] = []
        for lo in range(0, num_pages, batch_pages):
            hi = min(lo + batch_pages, num_pages)
            abs_pages = [lo + off for off, nz in enumerate(nonzero[lo:hi]) if nz]
            if abs_pages:
                ranges.append((lo, hi, abs_pages))

        # Arena layout: [image | base-page slots].  At most one slot per
        # chosen page (slots deduplicate per distinct base page).
        total_nonzero = sum(len(abs_pages) for _, _, abs_pages in ranges)
        data_off = 0
        bases_off = num_pages * page_size
        token, view = self.executor.ensure_arena(
            bases_off + total_nonzero * page_size
        )
        view[data_off : data_off + num_pages * page_size] = data

        slot_of: dict[tuple[int, int], int] = {}
        checkpoint_functions: dict[int, str] = {}
        chosen_of_batch: dict[int, list] = {}

        def submit_fp(batch: int) -> None:
            lo, hi, abs_pages = ranges[batch]
            rel_pages = [index - lo for index in abs_pages]
            self.executor.submit(
                ("fp", batch, token, data_off, lo, hi, rel_pages, page_size,
                 agent.fingerprint_config)
            )

        def on_fingerprints(batch: int, raw_fps) -> bool:
            """Registry round-trip + base staging; True if a patch task went out."""
            _lo, _hi, abs_pages = ranges[batch]
            if isinstance(raw_fps, tuple):  # flat-array form (digest_bits <= 64)
                fingerprints = fingerprints_from_arrays(*raw_fps)
            else:  # per-page tuples (wide-digest fallback)
                fingerprints = [
                    PageFingerprint(digests=digests, offsets=offsets)
                    for digests, offsets in raw_fps
                ]
            choices = agent.registry.choose_base_pages(
                fingerprints, agent.node_id, sandbox.domain
            )
            chosen: list = []
            for index, choice in zip(abs_pages, choices):
                if choice is None:
                    keep_unique(index)
                    continue
                ref, _overlap = choice
                if ref.node_id != agent.node_id and not agent.fabric.peer_available(
                    ref.node_id
                ):
                    keep_unique(index)
                    continue
                reads_by_peer[ref.node_id] += 1
                chosen.append((index, ref))
            if not chosen:
                return False
            jobs = []
            for index, ref in chosen:
                checkpoint_id = ref.checkpoint_id
                if checkpoint_id not in checkpoint_functions:
                    checkpoint_functions[checkpoint_id] = agent.store.get(
                        checkpoint_id
                    ).function
                key = (checkpoint_id, ref.page_index)
                slot = slot_of.get(key)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[key] = slot
                    page = agent._base_page_bytes(  # noqa: SLF001 — plane is the agent's data-plane half
                        agent.store.get(checkpoint_id), ref.page_index
                    )
                    start = bases_off + slot * page_size
                    view[start : start + page_size] = np.frombuffer(page, np.uint8)
                jobs.append((index, slot, key))
            chosen_of_batch[batch] = chosen
            self.executor.submit(
                ("patch", batch, token, data_off, bases_off, page_size,
                 agent.patch_level, unique_cap, jobs)
            )
            return True

        def on_patches(batch: int, patches: list) -> None:
            nonlocal patched_pages, saved, same_fn, cross_fn
            for (index, ref), patch in zip(chosen_of_batch.pop(batch), patches):
                if patch is None:  # hit the unique-page cutoff in the worker
                    keep_unique(index)
                    continue
                entries[index] = PageEntry(kind=PageKind.PATCHED, base=ref, patch=patch)
                patched_pages += 1
                saved += page_size - patch.size_bytes
                base_refs[ref.checkpoint_id] += 1
                if checkpoint_functions[ref.checkpoint_id] == sandbox.function:
                    same_fn += 1
                else:
                    cross_fn += 1

        next_fp = 0
        in_flight = 0
        while next_fp < len(ranges) and next_fp < self.config.depth:
            submit_fp(next_fp)
            next_fp += 1
            in_flight += 1
        while in_flight:
            result = self.executor.next_result()
            in_flight -= 1
            if result[0] == "fp":
                if next_fp < len(ranges):  # keep the fingerprint stage fed
                    submit_fp(next_fp)
                    next_fp += 1
                    in_flight += 1
                if on_fingerprints(result[1], result[2]):
                    in_flight += 1
            else:
                on_patches(result[1], result[2])

        assert all(entry is not None for entry in entries)
        return agent._finish_dedup(  # noqa: SLF001 — plane is the agent's data-plane half
            sandbox,
            image,
            entries,  # type: ignore[arg-type]
            base_refs=base_refs,
            reads_by_peer=reads_by_peer,
            zero_pages=zero_pages,
            unique_pages=unique_pages,
            patched_pages=patched_pages,
            same_fn=same_fn,
            cross_fn=cross_fn,
            saved=saved,
        )

    # -------------------------------------------------------------- restore

    def reconstruct(
        self, table: "DedupPageTable", by_checkpoint: dict[int, list[int]]
    ) -> np.ndarray:
        """Rebuild the image bytes of ``table`` (the restore content path).

        The caller (:meth:`DedupAgent.restore`) has already done the
        costing and failure checks; this only reconstructs bytes.
        Returns a fresh writable array of the full image.
        """
        from repro.core.agent import PageKind

        agent = self.agent
        page_size = table.page_size
        num_pages = len(table.entries)

        # Stage each distinct base page once.
        slot_of: dict[tuple[int, int], int] = {}
        for checkpoint_id, indices in by_checkpoint.items():
            for index in indices:
                entry = table.entries[index]
                assert entry.base is not None
                slot_of.setdefault((checkpoint_id, entry.base.page_index), None)
        # Arena layout: [base-page slots | output image].
        bases_off = 0
        out_off = len(slot_of) * page_size
        token, view = self.executor.ensure_arena(out_off + num_pages * page_size)
        out = view[out_off : out_off + num_pages * page_size]
        out[:] = 0

        for slot, key in enumerate(slot_of):
            slot_of[key] = slot
            checkpoint = agent.store.get(key[0])
            page = agent._base_page_bytes(checkpoint, key[1])  # noqa: SLF001
            start = bases_off + slot * page_size
            view[start : start + page_size] = np.frombuffer(page, np.uint8)

        # Unique pages are parent-local bytes; write them directly.
        for index, entry in enumerate(table.entries):
            if entry.kind is PageKind.UNIQUE:
                assert entry.raw is not None
                start = out_off + index * page_size
                view[start : start + len(entry.raw)] = np.frombuffer(
                    entry.raw, np.uint8
                )

        jobs: list = []
        for checkpoint_id, indices in by_checkpoint.items():
            for index in indices:
                entry = table.entries[index]
                assert entry.base is not None and entry.patch is not None
                slot = slot_of[(checkpoint_id, entry.base.page_index)]
                jobs.append((index, slot, entry.patch))

        in_flight = 0
        for batch_start in range(0, len(jobs), self.config.batch_pages):
            self.executor.submit(
                ("apply", batch_start, token, bases_off, out_off, page_size,
                 jobs[batch_start : batch_start + self.config.batch_pages])
            )
            in_flight += 1
        while in_flight:
            self.executor.next_result()
            in_flight -= 1

        return np.array(out, dtype=np.uint8, copy=True)
