"""Parallel dedup/restore data plane (DESIGN.md §10).

A process-pool execution layer for the data-plane kernels: pages move
through shared-memory arenas, workers run the vectorized fingerprint /
patch kernels over work-stealing batches, and the registry front end
overlaps lookup round-trips with the next batch's fingerprinting.
``ParallelConfig(workers=1)`` is the inline engine, bit-identical to
the serial agent paths.
"""

from repro.parallel.config import ParallelConfig

__all__ = ["ParallelConfig"]
