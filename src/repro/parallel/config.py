"""Configuration of the parallel dedup/restore data plane.

One :class:`ParallelConfig` describes both sides of the parallel data
plane (DESIGN.md §10):

* the **execution engine** — how many worker processes run the
  content kernels (fingerprint scan + chunk digests, patch compute,
  patch apply), how many pages each work item carries, and how many
  batches the parent keeps in flight (the software-pipelining depth);
* the **cost model** — the same three knobs drive the simulator's
  stage-overlap accounting (:class:`repro.core.costs.StageOverlap`)
  when ``ClusterConfig.parallel_data_plane`` is on, so Fig-7/8 style
  experiments charge the pipelined critical path instead of the serial
  stage sum.

``workers=1`` (the default) is the inline engine: the same staged
pipeline runs in-process with no shared memory and no pickling, and is
pinned bit-identical to :meth:`DedupAgent.dedup` by the equivalence
property test (``tests/parallel/test_parallel_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the parallel data plane."""

    workers: int = 1
    """Worker processes running the content kernels.  1 = inline (no
    subprocesses); >1 forks a shared-memory worker pool."""

    batch_pages: int = 512
    """Pages per work item.  Batches are the unit of work stealing (any
    idle worker takes the next batch off the shared queue) and of
    registry round-trips (one grouped lookup per batch)."""

    depth: int = 4
    """Pipeline depth: fingerprint batches the parent keeps in flight
    while it performs registry lookups and base-page fetches for
    already-scanned batches.  Depth 1 disables the overlap (each batch
    is fully processed before the next is scanned)."""

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.batch_pages <= 0:
            raise ValueError("batch_pages must be positive")
        if self.depth <= 0:
            raise ValueError("depth must be positive")
