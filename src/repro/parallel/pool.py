"""Worker pool of the parallel data plane.

The pool runs the *content kernels* of the dedup/restore hot path —
fingerprint scan + chunk digests, patch compute, patch apply — in
forked worker processes.  Page bytes never cross the process boundary:
every task names a shared-memory arena (:mod:`repro.parallel.arena`)
plus offsets, and workers map the same segment.  Only small results
travel back (digest tuples, accepted patches, acks).

Work distribution is a single shared task queue: any idle worker takes
the next batch, which is work stealing in its simplest form — a slow
batch (anchor-matching-heavy pages, say) occupies one worker while the
rest drain the remaining batches.

Tasks and results are plain tuples (cheap to pickle, no class identity
problems across fork/spawn):

==========  =====================================================
task        layout
==========  =====================================================
fingerprint ``("fp", batch, token, data_off, lo, hi, rel_pages,
            page_size, config)`` → ``("fp", batch, (digests,
            offsets, counts))`` — flat uint64/int64 arrays delimited
            per page by ``counts``, aligned with ``rel_pages`` (one
            pickled buffer each instead of per-page tuples); configs
            with ``digest_bits > 64`` fall back to ``("fp", batch,
            [(digests, offsets), ...])`` per-page tuples
patch       ``("patch", batch, token, data_off, bases_off,
            page_size, level, unique_cap, jobs)`` with ``jobs =
            [(page_index, slot, anchor_key), ...]`` →
            ``("patch", batch, [Patch | None, ...])`` — ``None``
            marks a patch that hit the unique-page cutoff (the
            parent re-slices the raw page locally; degenerate
            patches are never pickled)
apply       ``("apply", batch, token, bases_off, out_off,
            page_size, jobs)`` with ``jobs = [(page_index, slot,
            patch), ...]`` → ``("apply", batch)``; pages are
            written straight into the arena's output region
error       any failure → ``("err", batch, traceback_str)``,
            re-raised in the parent as :class:`WorkerError`
==========  =====================================================

:func:`run_task` is the single kernel dispatcher, shared by workers and
by the inline (``workers=1``) executor so both engines execute literally
the same code over the same layouts.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import queue
import time
import traceback
from typing import Callable, ClassVar

import numpy as np

from repro._util import LruCache
from repro.memory.fingerprint import (
    FingerprintConfig,
    batch_fingerprint_arrays,
    batch_page_fingerprints,
)
from repro.memory.patch import AnchorIndex, apply_patch_into, build_anchor_index, compute_patches

#: Per-worker anchor-index cache (pages).  Keyed by (checkpoint_id,
#: page_index, level); checkpoint ids are never reused in a parent
#: process, so entries can go cold but never stale.
WORKER_ANCHOR_CACHE_PAGES = 1024

#: Arena segments a worker keeps mapped.  Ops only reference the arena
#: that is current at submit time, so a small cache of recent segments
#: (several agents may interleave ops on distinct arenas) suffices.
_MAX_WORKER_SEGMENTS = 4

#: Liveness-check interval while waiting for results.
_POLL_S = 1.0


class WorkerError(RuntimeError):
    """A kernel failed in a worker (carries the worker traceback)."""


def run_task(
    task: tuple,
    resolve: Callable[[str | None], np.ndarray],
    anchor_cache: LruCache,
) -> tuple:
    """Execute one data-plane task against an arena view.

    ``resolve(token)`` maps an arena token to its flat uint8 view —
    a shared-memory attach in workers, the local buffer inline.
    """
    kind = task[0]
    if kind == "fp":
        _, batch, token, data_off, lo, hi, rel_pages, page_size, config = task
        view = resolve(token)
        window = view[data_off + lo * page_size : data_off + hi * page_size]
        cfg = config or FingerprintConfig()
        if cfg.digest_bits <= 64:
            arrays = batch_fingerprint_arrays(
                window, page_size, cfg, pages=np.asarray(rel_pages, dtype=np.int64)
            )
            return ("fp", batch, arrays)
        fps = batch_page_fingerprints(window, page_size, cfg, pages=rel_pages)
        return ("fp", batch, [(fp.digests, fp.offsets) for fp in fps])
    if kind == "patch":
        _, batch, token, data_off, bases_off, page_size, level, unique_cap, jobs = task
        view = resolve(token)
        targets = []
        bases = []
        for page_index, slot, _key in jobs:
            t0 = data_off + page_index * page_size
            b0 = bases_off + slot * page_size
            targets.append(view[t0 : t0 + page_size])
            bases.append(view[b0 : b0 + page_size])

        def index_for(j: int) -> AnchorIndex:
            key = (*jobs[j][2], level)
            cached = anchor_cache.get(key)
            if cached is None:
                cached = build_anchor_index(bases[j], level)
                anchor_cache.put(key, cached)
            return cached

        patches = compute_patches(targets, bases, level=level, index_provider=index_for)
        return (
            "patch",
            batch,
            [patch if patch.size_bytes < unique_cap else None for patch in patches],
        )
    if kind == "apply":
        _, batch, token, bases_off, out_off, page_size, jobs = task
        view = resolve(token)
        for page_index, slot, patch in jobs:
            b0 = bases_off + slot * page_size
            o0 = out_off + page_index * page_size
            apply_patch_into(
                patch, view[b0 : b0 + page_size], view[o0 : o0 + patch.target_len]
            )
        return ("apply", batch)
    raise ValueError(f"unknown task kind {kind!r}")


def _worker_main(tasks: mp.Queue, results: mp.Queue, forked: bool) -> None:
    """Worker loop: map arenas lazily, run kernels until the stop sentinel."""
    from repro.parallel.arena import attach_segment

    segments: dict[str, object] = {}
    anchor_cache: LruCache = LruCache(WORKER_ANCHOR_CACHE_PAGES)

    def resolve(token: str | None) -> np.ndarray:
        assert token is not None, "pool tasks must reference a shared arena"
        shm = segments.get(token)
        if shm is None:
            while len(segments) >= _MAX_WORKER_SEGMENTS:
                _, old = segments.popitem()
                old.close()
            shm = attach_segment(token, forked=forked)
            segments[token] = shm
        return np.frombuffer(shm.buf, dtype=np.uint8)

    while True:
        task = tasks.get()
        if task is None:
            break
        try:
            result = run_task(task, resolve, anchor_cache)
        except BaseException:
            results.put(("err", task[1], traceback.format_exc()))
            continue
        results.put(result)
    for shm in segments.values():
        shm.close()


class WorkerPool:
    """A pool of forked kernel workers around one shared task queue."""

    #: Process-wide pools by worker count, so property tests and
    #: benchmarks that build many agents reuse forked workers instead
    #: of paying a fork per agent.  Cleaned up atexit.
    _shared: ClassVar[dict[int, "WorkerPool"]] = {}
    _atexit_registered: ClassVar[bool] = False

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be positive")
        forked = "fork" in mp.get_all_start_methods()
        ctx = mp.get_context("fork" if forked else None)
        self.workers = workers
        self.tasks: mp.Queue = ctx.Queue()
        self.results: mp.Queue = ctx.Queue()
        self.procs = [
            ctx.Process(
                target=_worker_main,
                args=(self.tasks, self.results, forked),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for proc in self.procs:
            proc.start()
        self._closed = False

    @property
    def alive(self) -> bool:
        return not self._closed and all(proc.is_alive() for proc in self.procs)

    @classmethod
    def shared(cls, workers: int) -> "WorkerPool":
        """The process-wide pool for ``workers``, (re)forking if needed."""
        pool = cls._shared.get(workers)
        if pool is None or not pool.alive:
            pool = cls(workers)
            cls._shared[workers] = pool
            if not cls._atexit_registered:
                atexit.register(cls.shutdown_all)
                cls._atexit_registered = True
        return pool

    @classmethod
    def shutdown_all(cls) -> None:
        for pool in list(cls._shared.values()):
            pool.shutdown()
        cls._shared.clear()

    def submit(self, task: tuple) -> None:
        self.tasks.put(task)

    def next_result(self, timeout_s: float = 600.0) -> tuple:
        """Block for the next result; fail fast if a worker died.

        Results arrive in completion order, not submission order —
        callers match them up by the batch id in slot 1.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                result = self.results.get(timeout=_POLL_S)
            except queue.Empty:
                if not self.alive:
                    raise WorkerError("worker process died while tasks were in flight")
                if time.monotonic() > deadline:
                    raise WorkerError(f"no result within {timeout_s:.0f}s")
                continue
            if result[0] == "err":
                raise WorkerError(
                    f"worker task (batch {result[1]}) failed:\n{result[2]}"
                )
            return result

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self.procs:
            try:
                self.tasks.put(None)
            except (ValueError, OSError):  # queue already torn down
                break
        for proc in self.procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for q in (self.tasks, self.results):
            q.cancel_join_thread()
            q.close()
        if WorkerPool._shared.get(self.workers) is self:  # noqa: SLF001 — own class
            WorkerPool._shared.pop(self.workers)  # noqa: SLF001 — own class
