"""Page arenas for the parallel data plane.

An arena is a flat byte buffer that one dedup/restore op stages its
pages in: the checkpoint image, the base pages fetched from peers, and
(for restore) the reconstructed output region.  Workers never receive
page bytes through the task queue — a task carries only the arena's
*token* plus offsets, and the worker maps the same memory:

* :class:`ShmArena` backs the buffer with a POSIX shared-memory segment
  (``multiprocessing.shared_memory``).  Its token is the segment name;
  workers attach lazily and cache the mapping.  The parent owns the
  segment lifecycle: it is unlinked either when the arena is replaced
  by a larger one (only ever between ops, so no in-flight task can
  reference it) or at close.
* :class:`LocalArena` is the ``workers=1`` stand-in: a process-local
  numpy buffer with no token, used by the inline executor so the staged
  pipeline code is identical whether or not subprocesses exist.
"""

from __future__ import annotations

import numpy as np

from repro._util import PAGE_SIZE

#: Growth headroom so repeated ops with slightly different footprints
#: don't recreate the segment every time.
_GROWTH_FACTOR = 1.25


def _round_capacity(nbytes: int) -> int:
    """Round a requested size up to a page-aligned capacity with headroom."""
    nbytes = max(nbytes, PAGE_SIZE)
    padded = int(nbytes * _GROWTH_FACTOR)
    return ((padded + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE


class LocalArena:
    """A process-local arena (no shared memory, no token)."""

    def __init__(self, nbytes: int):
        self.capacity = _round_capacity(nbytes)
        self.token: str | None = None
        self.view = np.zeros(self.capacity, dtype=np.uint8)

    def close(self) -> None:
        self.view = np.zeros(0, dtype=np.uint8)


class ShmArena:
    """An arena backed by a named shared-memory segment."""

    def __init__(self, nbytes: int):
        from multiprocessing import shared_memory

        self.capacity = _round_capacity(nbytes)
        self._shm = shared_memory.SharedMemory(create=True, size=self.capacity)
        self.token: str | None = self._shm.name
        self.view = np.frombuffer(self._shm.buf, dtype=np.uint8)

    def close(self) -> None:
        if self._shm is None:
            return
        # Drop the numpy view before closing: SharedMemory.close() fails
        # while exported buffers are alive.
        self.view = np.zeros(0, dtype=np.uint8)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (e.g. atexit race)
            pass
        self._shm = None


def attach_segment(name: str, *, forked: bool):
    """Map an existing segment by name (worker side).

    Returns the ``SharedMemory`` handle; the caller keeps it alive for
    as long as views into its buffer are in use.  CPython's resource
    tracker registers *every* attach for cleanup (bpo-39959).  Forked
    workers share the parent's tracker process, whose registry is a
    set — the re-register is harmless and the parent's ``unlink``
    performs the one cleanup.  Spawned workers get their *own* tracker,
    which would unlink the parent's live segment when the worker exits,
    so there the worker-side registration must be withdrawn.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if not forked:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001 — stdlib workaround
        except Exception:
            pass
    return shm
