"""Fault schedules: the deterministic chaos plan of one run.

A :class:`FaultSchedule` is a static, validated description of every
injected fault — node crashes (optionally followed by a restart),
registry-shard outages (data loss, then rebuild from surviving agents),
and link faults (latency degradation or full partition).  Together with
the per-op transient-RPC failure probability and its
:class:`~repro.faults.retry.RetryPolicy` it forms :class:`FaultsConfig`,
the value of ``ClusterConfig.faults``.

Determinism contract: the schedule carries only absolute simulated
times; the only randomness anywhere in the fault layer flows through the
counter-keyed streams of :class:`~repro.faults.retry.TransientFaults`.
A run under a fixed config and trace therefore reproduces bit-for-bit —
including every crash, retry and jittered backoff — and
``ClusterConfig.faults=None`` is pinned bit-identical to a build without
the fault layer at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.retry import RetryPolicy


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of one worker node, with an optional restart.

    Everything resident on the node — sandboxes, base-checkpoint content
    not in far memory — is lost at ``at_ms``.  A restart brings back an
    *empty* node (capacity only); it does not resurrect state.
    """

    at_ms: float
    node_id: int
    restart_at_ms: float | None = None

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("crash time must be non-negative")
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.restart_at_ms is not None and self.restart_at_ms <= self.at_ms:
            raise ValueError("restart must come strictly after the crash")


@dataclass(frozen=True)
class ShardOutage:
    """Loss of one fingerprint-registry shard, healed at ``heal_at_ms``.

    The shard's table content is lost (modelling a controller-replica
    failure past its replication factor); on heal it is rebuilt from the
    surviving agents' base checkpoints, and only serves again once the
    charged rebuild completes.
    """

    at_ms: float
    shard: int
    heal_at_ms: float

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("outage time must be non-negative")
        if self.shard < 0:
            raise ValueError("shard index must be non-negative")
        if self.heal_at_ms <= self.at_ms:
            raise ValueError("heal must come strictly after the outage")


@dataclass(frozen=True)
class LinkDegradation:
    """Slow link to ``peer``: remote reads take ``latency_factor`` longer."""

    at_ms: float
    peer: int
    heal_at_ms: float
    latency_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("degradation time must be non-negative")
        if self.heal_at_ms <= self.at_ms:
            raise ValueError("heal must come strictly after the degradation")
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")


@dataclass(frozen=True)
class LinkPartition:
    """Full partition of ``peer`` from the fabric (node itself stays up)."""

    at_ms: float
    peer: int
    heal_at_ms: float

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("partition time must be non-negative")
        if self.heal_at_ms <= self.at_ms:
            raise ValueError("heal must come strictly after the partition")


def _check_disjoint(intervals: list[tuple[float, float]], what: str) -> None:
    intervals.sort()
    for (_, end), (start, _) in zip(intervals, intervals[1:]):
        if start < end:
            raise ValueError(f"overlapping {what} fault intervals")


@dataclass(frozen=True)
class FaultSchedule:
    """Every scheduled fault of a run, validated for sanity.

    Per-domain fault intervals must not overlap (a node cannot crash
    while already down); faults of *different* kinds on the same node
    may coexist — the injector resolves the interactions.
    """

    node_crashes: tuple[NodeCrash, ...] = ()
    shard_outages: tuple[ShardOutage, ...] = ()
    link_degradations: tuple[LinkDegradation, ...] = ()
    link_partitions: tuple[LinkPartition, ...] = ()

    def __post_init__(self) -> None:
        by_node: dict[int, list[tuple[float, float]]] = {}
        for crash in self.node_crashes:
            restart = crash.restart_at_ms
            end = float("inf") if restart is None else restart
            by_node.setdefault(crash.node_id, []).append((crash.at_ms, end))
        for node_id, intervals in by_node.items():
            _check_disjoint(intervals, f"node {node_id} crash")
        by_shard: dict[int, list[tuple[float, float]]] = {}
        for outage in self.shard_outages:
            by_shard.setdefault(outage.shard, []).append(
                (outage.at_ms, outage.heal_at_ms)
            )
        for shard, intervals in by_shard.items():
            _check_disjoint(intervals, f"shard {shard} outage")
        by_link: dict[int, list[tuple[float, float]]] = {}
        for link in self.link_degradations:
            by_link.setdefault(link.peer, []).append((link.at_ms, link.heal_at_ms))
        for part in self.link_partitions:
            by_link.setdefault(part.peer, []).append((part.at_ms, part.heal_at_ms))
        for peer, intervals in by_link.items():
            _check_disjoint(intervals, f"link {peer}")

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing."""
        return not (
            self.node_crashes
            or self.shard_outages
            or self.link_degradations
            or self.link_partitions
        )


@dataclass(frozen=True)
class FaultsConfig:
    """The ``ClusterConfig.faults`` knob.

    ``None`` (the field default on :class:`ClusterConfig`) disables the
    fault layer entirely; an empty ``FaultsConfig()`` enables the layer
    but injects nothing — the equivalence tests pin both to bit-identical
    ``RunMetrics``.
    """

    schedule: FaultSchedule = field(default_factory=FaultSchedule)
    rpc_failure_prob: float = 0.0
    """Per-attempt transient failure probability of remote RPCs."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0
    """Extra seed mixed into the transient-fault random streams."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.rpc_failure_prob < 1.0:
            raise ValueError("rpc_failure_prob must be in [0, 1)")
