"""The fault injector: drives a :class:`FaultSchedule` off the sim clock.

Every fault and heal is an ordinary simulator event, so injected chaos
interleaves deterministically with the platform's own timers.  The
injector owns the *mechanics* of each fault — flipping fabric and health
state, dropping shard tables, charging the shard rebuild — and delegates
the *policy* of recovery (refcount reconciliation, re-homing, queue
re-dispatch) to the controller's ``on_node_crash`` / ``on_fault_heal``
hooks.

Shard recovery models the paper's chain-replicated controller: a lost
shard's table is re-derivable state, rebuilt by re-registering every
surviving base checkpoint's fingerprints.  The rebuild is charged real
time (the shard's share of the cluster-wide re-registration cost) and
the shard only serves again once it completes — so MTTR for a shard
outage includes the rebuild, and the warm-only degradation window is
correspondingly longer than the raw outage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._util import hash_bytes
from repro.core.registry import PageRef
from repro.memory.fingerprint import batch_page_fingerprints

if TYPE_CHECKING:
    from repro.controller.controller import ClusterController
    from repro.faults.health import FaultRuntime
    from repro.faults.schedule import LinkDegradation, LinkPartition, NodeCrash, ShardOutage
    from repro.platform.config import ClusterConfig
    from repro.platform.metrics import RunMetrics
    from repro.sandbox.checkpoint import CheckpointStore
    from repro.sim.engine import Simulator
    from repro.sim.network import RdmaFabric


class FaultInjector:
    """Schedules and executes one run's fault plan."""

    def __init__(
        self,
        *,
        sim: Simulator,
        config: ClusterConfig,
        runtime: FaultRuntime,
        fabric: RdmaFabric,
        registry,
        controller: ClusterController,
        store: CheckpointStore,
        metrics: RunMetrics,
    ):
        self.sim = sim
        self.config = config
        self.runtime = runtime
        self.fabric = fabric
        self.registry = registry
        self.controller = controller
        self.store = store
        self.metrics = metrics
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault/heal of the configured plan (idempotent)."""
        if self._armed:
            return
        self._armed = True
        schedule = self.runtime.config.schedule
        for crash in schedule.node_crashes:
            self.sim.at(crash.at_ms, lambda c=crash: self._crash_node(c))
            if crash.restart_at_ms is not None:
                self.sim.at(crash.restart_at_ms, lambda c=crash: self._restart_node(c))
        for outage in schedule.shard_outages:
            self.sim.at(outage.at_ms, lambda o=outage: self._shard_down(o))
            self.sim.at(outage.heal_at_ms, lambda o=outage: self._shard_heal(o))
        for link in schedule.link_degradations:
            self.sim.at(link.at_ms, lambda f=link: self._degrade_link(f))
            self.sim.at(link.heal_at_ms, lambda f=link: self._heal_degraded(f))
        for link in schedule.link_partitions:
            self.sim.at(link.at_ms, lambda f=link: self._partition_link(f))
            self.sim.at(link.heal_at_ms, lambda f=link: self._heal_partition(f))

    # ----------------------------------------------------------- recording

    def _record(self, kind: str, domain: str) -> None:
        """Append the fault event and an availability sample at `now`."""
        # Imported here, not at module scope: the fault layer sits below
        # repro.platform in the import graph (agents import faults), and
        # repro.platform.metrics pulls the whole platform package in.
        from repro.platform.metrics import AvailabilitySample, FaultEventRecord

        health = self.runtime.health
        self.metrics.fault_events.append(
            FaultEventRecord(time_ms=self.sim.now, kind=kind, domain=domain)
        )
        self.metrics.availability_timeline.append(
            AvailabilitySample(
                time_ms=self.sim.now,
                nodes_up=health.nodes_up,
                shards_up=health.shards_up,
                degraded_links=health.impaired_links,
            )
        )

    # --------------------------------------------------------- node faults

    def _crash_node(self, crash: NodeCrash) -> None:
        health = self.runtime.health
        health.down_nodes.add(crash.node_id)
        self.fabric.fail_peer(crash.node_id)
        self._record("node-crash", f"node:{crash.node_id}")
        self.controller.on_node_crash(crash.node_id)

    def _restart_node(self, crash: NodeCrash) -> None:
        health = self.runtime.health
        health.down_nodes.discard(crash.node_id)
        # A concurrent link partition keeps the fabric path down even
        # though the node itself is back.
        if crash.node_id not in health.partitioned_links:
            self.fabric.restore_peer(crash.node_id)
        self._record("node-restored", f"node:{crash.node_id}")
        self.controller.on_fault_heal()

    # -------------------------------------------------------- shard faults

    def _shard_down(self, outage: ShardOutage) -> None:
        self.runtime.health.down_shards.add(outage.shard)
        self.registry.drop_shard(outage.shard)
        self._record("shard-down", f"shard:{outage.shard}")

    def _shard_heal(self, outage: ShardOutage) -> None:
        # The replacement shard comes up empty and must re-ingest its
        # slice of the digest space before serving; charge that rebuild
        # and only mark the shard healthy once it completes.
        rebuild_ms = self._rebuild_cost_ms()
        self.metrics.shard_rebuilds += 1
        self.metrics.shard_rebuild_ms += rebuild_ms
        self.sim.after(rebuild_ms, lambda: self._finish_shard_heal(outage.shard))

    def _rebuild_cost_ms(self) -> float:
        """One shard's share of re-registering every surviving base."""
        total = 0.0
        for checkpoint in self.store:
            if checkpoint.node_id in self.runtime.health.down_nodes:
                continue
            full_pages = max(
                1, round(checkpoint.image.num_pages / self.config.content_scale)
            )
            total += self.config.costs.register_ms(full_pages)
        return total / self.registry.n_shards

    def _finish_shard_heal(self, shard: int) -> None:
        # Re-register every surviving checkpoint's fingerprints and page
        # locations.  Registration is idempotent at the bucket level, so
        # shards that never went down absorb the replay as no-ops while
        # the rebuilt shard repopulates its slice of the digest space.
        for checkpoint in list(self.store):
            if checkpoint.node_id in self.runtime.health.down_nodes:
                continue
            if not checkpoint.registered:
                continue
            image = checkpoint.image
            fingerprints = batch_page_fingerprints(
                image.data, image.page_size, self.config.fingerprint
            )
            for index, fingerprint in enumerate(fingerprints):
                ref = PageRef(checkpoint.checkpoint_id, checkpoint.node_id, index)
                self.registry.register_page(ref, fingerprint, checkpoint.domain)
                self.registry.register_page_location(
                    ref, hash_bytes(image.page_bytes(index)), checkpoint.domain
                )
        self.runtime.health.down_shards.discard(shard)
        self._record("shard-restored", f"shard:{shard}")
        self.controller.on_fault_heal()

    # --------------------------------------------------------- link faults

    def _degrade_link(self, link: LinkDegradation) -> None:
        self.fabric.degrade_peer(link.peer, link.latency_factor)
        self.runtime.health.degraded_links.add(link.peer)
        self._record("link-degraded", f"link:{link.peer}")

    def _heal_degraded(self, link: LinkDegradation) -> None:
        self.fabric.heal_peer(link.peer)
        self.runtime.health.degraded_links.discard(link.peer)
        self._record("link-restored", f"link:{link.peer}")

    def _partition_link(self, link: LinkPartition) -> None:
        self.runtime.health.partitioned_links.add(link.peer)
        self.fabric.fail_peer(link.peer)
        self._record("link-partitioned", f"link:{link.peer}")

    def _heal_partition(self, link: LinkPartition) -> None:
        health = self.runtime.health
        health.partitioned_links.discard(link.peer)
        # Don't resurrect the fabric path of a peer that crashed while
        # partitioned — the crash owns that state until restart.
        if link.peer not in health.down_nodes:
            self.fabric.restore_peer(link.peer)
        self._record("link-restored", f"link:{link.peer}")
        self.controller.on_fault_heal()
