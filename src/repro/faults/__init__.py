"""Deterministic fault injection and recovery (DESIGN.md §11).

The package is the chaos layer of the reproduction: a seeded, clock-driven
:class:`~repro.faults.injector.FaultInjector` that crashes nodes, drops
registry shards and degrades links mid-run, plus the retry/backoff machinery
(:class:`~repro.faults.retry.TransientFaults`) that makes base-page fetches
and registry RPCs resilient to per-op transient failures.  Everything hangs
off ``ClusterConfig.faults``; the default (``None``) leaves every run
bit-identical to a build without this package.
"""

from repro.faults.health import FaultDomainHealth, FaultRuntime, RegistryUnavailable
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryExhausted, RetryOutcome, RetryPolicy, TransientFaults
from repro.faults.schedule import (
    FaultSchedule,
    FaultsConfig,
    LinkDegradation,
    LinkPartition,
    NodeCrash,
    ShardOutage,
)

__all__ = [
    "FaultDomainHealth",
    "FaultInjector",
    "FaultRuntime",
    "FaultSchedule",
    "FaultsConfig",
    "LinkDegradation",
    "LinkPartition",
    "NodeCrash",
    "RegistryUnavailable",
    "RetryExhausted",
    "RetryOutcome",
    "RetryPolicy",
    "ShardOutage",
    "TransientFaults",
]
