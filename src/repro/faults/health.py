"""Cluster health state shared by the injector, controller and agents.

:class:`FaultDomainHealth` is the single source of truth for which
failure domains are currently impaired: down nodes, down registry
shards, and degraded/partitioned links.  The injector mutates it; the
controller and policy engine consult it to place work, skip unreachable
replicas, and degrade the fleet to warm-only while the registry is
unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.faults.retry import TransientFaults
    from repro.faults.schedule import FaultsConfig


class RegistryUnavailable(RuntimeError):
    """A registry RPC could not be served (shard down or retries exhausted).

    The caller must abandon the dedup op and leave the sandbox warm —
    degradation, never corruption."""


class FaultDomainHealth:
    """Mutable health bitmap over the cluster's failure domains."""

    def __init__(self, *, nodes: int, shards: int):
        self.total_nodes = nodes
        self.total_shards = shards
        self.down_nodes: set[int] = set()
        self.down_shards: set[int] = set()
        self.degraded_links: set[int] = set()
        self.partitioned_links: set[int] = set()

    def node_up(self, node_id: int) -> bool:
        return node_id not in self.down_nodes

    def registry_available(self) -> bool:
        """Whether new dedup ops may be admitted (all shards serving)."""
        return not self.down_shards

    @property
    def nodes_up(self) -> int:
        return self.total_nodes - len(self.down_nodes)

    @property
    def shards_up(self) -> int:
        return self.total_shards - len(self.down_shards)

    @property
    def impaired_links(self) -> int:
        return len(self.degraded_links | self.partitioned_links)


@dataclass
class FaultRuntime:
    """The live fault layer of one platform instance.

    Bundles the static config with the mutable health state and the
    transient-RPC model, so the controller and agents take a single
    optional handle (``None`` = fault layer disabled)."""

    config: FaultsConfig
    health: FaultDomainHealth
    transients: TransientFaults
