"""Timeout + bounded exponential backoff with jitter for intra-op RPCs.

Medes' restore path depends on two kinds of remote calls — base-page
fetches over the fabric and fingerprint-registry RPCs — and both can fail
transiently (dropped completion, queue-pair reset, shard fail-over).  The
client-side discipline is classic: each attempt is bounded by a timeout,
failed attempts back off exponentially with jitter, and after
``max_attempts`` the op surfaces :class:`RetryExhausted` so the caller can
fall through its degradation ladder (replica → cold start).

Every millisecond spent retrying is *charged in the cost model as real
latency* — a run with transient faults is slower, not just noisier.

Determinism: :class:`TransientFaults` draws from a counter-keyed
``rng_for`` stream, so a given ``(seed, op kind, draw index)`` always
yields the same failure pattern and the same jittered backoff — runs are
reproducible bit-for-bit regardless of scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import rng_for


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry discipline for fabric and registry RPCs."""

    max_attempts: int = 4
    """Total tries per op (first attempt included)."""

    timeout_ms: float = 15.0
    """Per-attempt timeout charged when the attempt fails."""

    backoff_base_ms: float = 5.0
    """Backoff before the second attempt; doubles per further retry."""

    backoff_cap_ms: float = 200.0
    """Upper bound on any single backoff interval."""

    jitter: float = 0.2
    """Relative jitter applied to each backoff (+-``jitter`` fraction)."""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if min(self.timeout_ms, self.backoff_base_ms, self.backoff_cap_ms) <= 0:
            raise ValueError("retry timing parameters must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_ms(self, retry_index: int, unit: float) -> float:
        """Jittered backoff before retry ``retry_index`` (0-based).

        ``unit`` is a uniform draw in [0, 1) supplied by the caller so
        the jitter shares the op's deterministic random stream.
        """
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        base = min(self.backoff_cap_ms, self.backoff_base_ms * 2.0**retry_index)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


class RetryExhausted(RuntimeError):
    """Every attempt of a retried RPC timed out.

    ``charged_ms`` is the simulated time the caller already spent on the
    failed attempts — the controller charges it to the request before
    taking the next rung of the fallback ladder.
    """

    def __init__(self, op: str, attempts: int, charged_ms: float):
        super().__init__(f"{op}: all {attempts} attempts timed out")
        self.op = op
        self.attempts = attempts
        self.charged_ms = charged_ms


@dataclass(frozen=True)
class RetryOutcome:
    """Resolved retry plan for one op.

    ``attempts`` counts *failed* attempts (0 = first try succeeded);
    ``charged_ms`` is the timeout + backoff latency to add to the op;
    ``succeeded`` is False when the op must surface an error instead.
    """

    attempts: int
    charged_ms: float
    succeeded: bool


class TransientFaults:
    """Seeded per-op transient RPC failure model.

    Each :meth:`plan` call resolves one op's fate up front: how many
    attempts fail (an independent Bernoulli per attempt with the
    configured probability) and how much timeout/backoff latency the op
    accumulates.  Draws are keyed on a monotone counter, never on wall
    or simulated time, so the stream is identical across runs.
    """

    def __init__(self, probability: float, retry: RetryPolicy, *, seed: int):
        if not 0.0 <= probability < 1.0:
            raise ValueError("transient failure probability must be in [0, 1)")
        self.probability = probability
        self.retry = retry
        self.seed = seed
        self._draws = 0
        #: Cumulative counters surfaced into ``RunMetrics`` at run end.
        self.retried_attempts = 0
        self.charged_backoff_ms = 0.0
        self.exhausted_ops = 0

    def plan(self, op: str) -> RetryOutcome:
        """Resolve the retry plan for the next op of kind ``op``."""
        self._draws += 1
        if self.probability <= 0.0:
            return RetryOutcome(attempts=0, charged_ms=0.0, succeeded=True)
        rng = rng_for("transient-rpc", self.seed, op, self._draws)
        charged = 0.0
        for attempt in range(self.retry.max_attempts):
            if float(rng.random()) >= self.probability:
                if attempt:
                    self.retried_attempts += attempt
                    self.charged_backoff_ms += charged
                return RetryOutcome(attempts=attempt, charged_ms=charged, succeeded=True)
            charged += self.retry.timeout_ms
            if attempt + 1 < self.retry.max_attempts:
                charged += self.retry.backoff_ms(attempt, float(rng.random()))
        self.retried_attempts += self.retry.max_attempts
        self.charged_backoff_ms += charged
        self.exhausted_ops += 1
        return RetryOutcome(
            attempts=self.retry.max_attempts, charged_ms=charged, succeeded=False
        )
