"""Synthetic Azure-Functions-style arrival patterns.

The paper drives its evaluation with per-function arrival sequences from
the Azure Functions production traces (Shahrad et al., ATC '20), scaled
5x.  Those traces are not redistributable here, so this module generates
arrivals from the pattern classes that characterization reports:

* a heavy-tailed popularity distribution (a few hot functions, many
  cold ones);
* **steady** Poisson arrivals;
* **bursty** ON/OFF arrivals (long idle gaps punctuated by bursts — the
  regime where keep-alive policies waste memory or miss);
* **periodic** timer-triggered arrivals (cron-style, small jitter);
* **diurnal** rate modulation (a sinusoidal envelope over Poisson).

Each FunctionBench function is deterministically assigned a pattern and
a base rate from the generator seed, so a given (seed, duration,
functions) triple always yields the identical trace.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro._util import rng_for
from repro.workload.trace import Trace


class PatternKind(enum.Enum):
    """Arrival pattern classes from the Azure characterization."""

    STEADY = "steady"
    BURSTY = "bursty"
    PERIODIC = "periodic"
    DIURNAL = "diurnal"


@dataclass(frozen=True)
class PatternSpec:
    """A concrete per-function arrival process."""

    kind: PatternKind
    rate_per_min: float
    """Mean arrival rate (after scaling)."""
    period_min: float = 5.0
    """Period for PERIODIC/DIURNAL patterns."""
    burst_size_mean: float = 6.0
    """Mean invocations per burst for BURSTY."""

    def __post_init__(self) -> None:
        if self.rate_per_min <= 0:
            raise ValueError("rate_per_min must be positive")
        if self.period_min <= 0:
            raise ValueError("period_min must be positive")


def _poisson_arrivals(rate_per_ms: float, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    if rate_per_ms <= 0:
        return np.empty(0)
    expected = rate_per_ms * duration_ms
    count = rng.poisson(expected)
    return np.sort(rng.uniform(0, duration_ms, size=count))


def _steady(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    return _poisson_arrivals(spec.rate_per_min / 60_000.0, duration_ms, rng)


def _bursty(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """ON/OFF bursts: exponential gaps between bursts, tight in-burst spacing."""
    per_burst = max(1.0, spec.burst_size_mean)
    bursts_per_min = spec.rate_per_min / per_burst
    gap_mean_ms = 60_000.0 / bursts_per_min
    times: list[float] = []
    t = rng.exponential(gap_mean_ms)
    while t < duration_ms:
        size = 1 + rng.poisson(per_burst - 1)
        offsets = np.cumsum(rng.exponential(250.0, size=size))  # ~4/s inside a burst
        times.extend(t + off for off in offsets if t + off < duration_ms)
        t += rng.exponential(gap_mean_ms)
    return np.sort(np.asarray(times))


def _periodic(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """Timer-triggered arrivals with small jitter; rate sets extra invocations."""
    period_ms = spec.period_min * 60_000.0
    ticks = np.arange(period_ms, duration_ms, period_ms)
    jitter = rng.normal(0, period_ms * 0.02, size=len(ticks))
    times = np.clip(ticks + jitter, 0, duration_ms - 1e-6)
    # Keep the configured mean rate by adding Poisson arrivals around ticks.
    per_tick = spec.rate_per_min * spec.period_min
    extra: list[float] = []
    for tick in times:
        burst = rng.poisson(max(0.0, per_tick - 1))
        extra.extend(np.clip(tick + rng.exponential(500.0, size=burst), 0, duration_ms - 1e-6))
    return np.sort(np.concatenate([times, np.asarray(extra)]))


def _diurnal(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """Sinusoidally-modulated Poisson arrivals via thinning."""
    peak_rate = 2.0 * spec.rate_per_min / 60_000.0
    candidates = _poisson_arrivals(peak_rate, duration_ms, rng)
    if candidates.size == 0:
        return candidates
    period_ms = spec.period_min * 60_000.0
    phase = 2 * math.pi * candidates / period_ms
    accept_prob = 0.5 * (1 + np.sin(phase))
    keep = rng.random(candidates.size) < accept_prob
    return candidates[keep]


_SAMPLERS = {
    PatternKind.STEADY: _steady,
    PatternKind.BURSTY: _bursty,
    PatternKind.PERIODIC: _periodic,
    PatternKind.DIURNAL: _diurnal,
}


def sample_arrivals(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """Arrival times (ms, sorted) for one pattern over ``duration_ms``."""
    if duration_ms <= 0:
        return np.empty(0)
    return _SAMPLERS[spec.kind](spec, duration_ms, rng)


#: Pattern mix matching the characterization: mostly steady/bursty with a
#: periodic and diurnal tail.
_PATTERN_CYCLE = (
    PatternKind.STEADY,
    PatternKind.BURSTY,
    PatternKind.STEADY,
    PatternKind.PERIODIC,
    PatternKind.BURSTY,
    PatternKind.DIURNAL,
)


@dataclass(frozen=True)
class AzureTraceGenerator:
    """Deterministic generator of Azure-style multi-function traces.

    Args:
        seed: Master seed; every per-function stream derives from it.
        rate_scale: Multiplier applied to base rates — the paper scales
            the production traces 5x because per-function rates are low.
    """

    seed: int = 0
    rate_scale: float = 5.0

    def pattern_for(self, function: str, index: int) -> PatternSpec:
        """The pattern assigned to ``function`` (deterministic in seed)."""
        rng = rng_for("azure-pattern", self.seed, function)
        kind = _PATTERN_CYCLE[index % len(_PATTERN_CYCLE)]
        # Heavy-tailed base popularity: lognormal around ~1.2/min.
        base_rate = float(np.exp(rng.normal(0.2, 0.55)))
        return PatternSpec(
            kind=kind,
            rate_per_min=base_rate * self.rate_scale,
            period_min=float(rng.uniform(3.0, 8.0)),
            burst_size_mean=float(rng.uniform(3.0, 9.0)),
        )

    def generate(
        self,
        duration_min: float,
        functions: tuple[str, ...] | list[str],
        *,
        tenant_of: dict[str, str] | None = None,
    ) -> Trace:
        """Generate a merged multi-function trace of ``duration_min`` minutes.

        ``tenant_of`` optionally labels each function's requests with an
        owning tenant (tenancy is per function); arrival times are
        unaffected, so a labelled trace pairs request-for-request with
        the unlabelled one.
        """
        if duration_min <= 0:
            raise ValueError("duration_min must be positive")
        duration_ms = duration_min * 60_000.0
        arrivals: list[tuple[float, str, str]] = []
        for index, function in enumerate(functions):
            spec = self.pattern_for(function, index)
            rng = rng_for("azure-arrivals", self.seed, function)
            tenant = (tenant_of or {}).get(function, "")
            arrivals.extend(
                (float(t), function, tenant)
                for t in sample_arrivals(spec, duration_ms, rng)
            )
        return Trace.from_arrivals(arrivals)


#: Cluster-mix pattern cycle: the characterization's mass is on steady
#: HTTP-style and bursty event-style triggers, with a periodic (timer)
#: tail; the diurnal component is a *shared* envelope applied to the
#: merged trace rather than a per-function pattern.
_CLUSTER_PATTERN_CYCLE = (
    PatternKind.STEADY,
    PatternKind.BURSTY,
    PatternKind.STEADY,
    PatternKind.BURSTY,
    PatternKind.PERIODIC,
    PatternKind.STEADY,
)


@dataclass(frozen=True)
class ClusterTraceGenerator:
    """Cluster-scale Azure-style trace generator (millions of requests).

    Scales the per-function pattern classes above to hundreds of
    functions and a request *budget*, matching the shape of the Azure
    characterization's full fleet rather than a handful of functions:

    * **heavy-tailed popularity** — functions are ranked by a seeded
      shuffle and given Zipf(``zipf_exponent``) rate shares, so a few
      hot functions carry most of the traffic while a long tail stays
      nearly idle (exactly the regime keep-alive policies struggle in);
    * **steady/bursty/periodic mix** — each function draws its process
      from a steady- and bursty-dominated cycle, with seeded per-rank
      jitter in burst sizes and periods;
    * **shared diurnal envelope** — the merged trace is thinned by a
      sinusoid of ``diurnal_depth`` over ``diurnal_period_min``, so the
      whole cluster breathes together (peak load ≈ (1+depth)/(1-depth)
      times trough load).

    Everything is seeded: a given (seed, duration, functions,
    target_requests) quadruple always yields the identical trace.  The
    generation path is columnar end to end (numpy arrival arrays merged
    via :meth:`Trace.from_arrays`), so million-request traces build in
    seconds.
    """

    seed: int = 0
    zipf_exponent: float = 1.1
    """Popularity tail exponent; ~1.1 matches heavy-but-not-degenerate
    production skew (top 20% of functions ≈ 80% of invocations)."""
    diurnal_period_min: float = 120.0
    """Compressed "day" of the shared envelope — full 24 h days don't
    fit simulated traces; two sim-hours per cycle keeps several peaks
    and troughs inside a long replay."""
    diurnal_depth: float = 0.4
    """Amplitude of the shared envelope in [0, 1)."""

    def __post_init__(self) -> None:
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if not 0 <= self.diurnal_depth < 1:
            raise ValueError("diurnal_depth must be in [0, 1)")
        if self.diurnal_period_min <= 0:
            raise ValueError("diurnal_period_min must be positive")

    def rate_shares(self, count: int) -> np.ndarray:
        """Zipf popularity share per function index (seeded shuffle)."""
        ranks = rng_for("cluster-ranks", self.seed).permutation(count)
        weights = (ranks + 1.0) ** -self.zipf_exponent
        return weights / weights.sum()

    def spec_for(self, function: str, index: int, rate_per_min: float) -> PatternSpec:
        """The arrival process of one function at its popularity rate."""
        rng = rng_for("cluster-pattern", self.seed, function)
        return PatternSpec(
            kind=_CLUSTER_PATTERN_CYCLE[index % len(_CLUSTER_PATTERN_CYCLE)],
            rate_per_min=rate_per_min,
            period_min=float(rng.uniform(3.0, 12.0)),
            burst_size_mean=float(rng.uniform(4.0, 16.0)),
        )

    def generate(
        self,
        duration_min: float,
        functions: tuple[str, ...] | list[str],
        *,
        target_requests: int,
        tenant_of: dict[str, str] | None = None,
    ) -> Trace:
        """Generate a merged cluster trace of ~``target_requests`` requests.

        The budget is an expectation: per-function Poisson counts and the
        diurnal thinning each add sampling noise of a few tenths of a
        percent at millions of requests.
        """
        if duration_min <= 0:
            raise ValueError("duration_min must be positive")
        if target_requests <= 0:
            raise ValueError("target_requests must be positive")
        if not functions:
            raise ValueError("need at least one function")
        duration_ms = duration_min * 60_000.0
        # Thinning keeps (1 + depth*sin(2πt/P))/(1 + depth) of candidates;
        # oversample by the envelope's exact mean over [0, duration] (the
        # mean of sin over a partial cycle is (1-cos(2πD/P))·P/(2πD), not
        # zero) so the budget lands on target for any duration/period.
        cycles = 2.0 * math.pi * duration_min / self.diurnal_period_min
        mean_sin = (1.0 - math.cos(cycles)) / cycles
        mean_keep = (1.0 + self.diurnal_depth * mean_sin) / (1.0 + self.diurnal_depth)
        total_rate_per_min = target_requests / duration_min / mean_keep
        shares = self.rate_shares(len(functions))
        times_parts: list[np.ndarray] = []
        ids_parts: list[np.ndarray] = []
        for index, function in enumerate(functions):
            rate = float(shares[index] * total_rate_per_min)
            if rate <= 0:
                continue
            spec = self.spec_for(function, index, rate)
            rng = rng_for("cluster-arrivals", self.seed, function)
            times = np.asarray(
                sample_arrivals(spec, duration_ms, rng), dtype=np.float64
            )
            if times.size == 0:
                continue
            times_parts.append(times)
            ids_parts.append(np.full(times.size, index, dtype=np.int64))
        if not times_parts:
            return Trace(requests=())
        times = np.concatenate(times_parts)
        ids = np.concatenate(ids_parts)
        # Shared diurnal envelope over the merged cluster load.
        phase = 2.0 * math.pi * times / (self.diurnal_period_min * 60_000.0)
        keep_prob = (1.0 + self.diurnal_depth * np.sin(phase)) / (
            1.0 + self.diurnal_depth
        )
        keep = rng_for("cluster-diurnal", self.seed).random(times.size) < keep_prob
        tenants = (
            [(tenant_of or {}).get(fn, "") for fn in functions] if tenant_of else None
        )
        return Trace.from_arrays(times[keep], ids[keep], list(functions), tenants)
