"""Synthetic Azure-Functions-style arrival patterns.

The paper drives its evaluation with per-function arrival sequences from
the Azure Functions production traces (Shahrad et al., ATC '20), scaled
5x.  Those traces are not redistributable here, so this module generates
arrivals from the pattern classes that characterization reports:

* a heavy-tailed popularity distribution (a few hot functions, many
  cold ones);
* **steady** Poisson arrivals;
* **bursty** ON/OFF arrivals (long idle gaps punctuated by bursts — the
  regime where keep-alive policies waste memory or miss);
* **periodic** timer-triggered arrivals (cron-style, small jitter);
* **diurnal** rate modulation (a sinusoidal envelope over Poisson).

Each FunctionBench function is deterministically assigned a pattern and
a base rate from the generator seed, so a given (seed, duration,
functions) triple always yields the identical trace.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro._util import rng_for
from repro.workload.trace import Trace


class PatternKind(enum.Enum):
    """Arrival pattern classes from the Azure characterization."""

    STEADY = "steady"
    BURSTY = "bursty"
    PERIODIC = "periodic"
    DIURNAL = "diurnal"


@dataclass(frozen=True)
class PatternSpec:
    """A concrete per-function arrival process."""

    kind: PatternKind
    rate_per_min: float
    """Mean arrival rate (after scaling)."""
    period_min: float = 5.0
    """Period for PERIODIC/DIURNAL patterns."""
    burst_size_mean: float = 6.0
    """Mean invocations per burst for BURSTY."""

    def __post_init__(self) -> None:
        if self.rate_per_min <= 0:
            raise ValueError("rate_per_min must be positive")
        if self.period_min <= 0:
            raise ValueError("period_min must be positive")


def _poisson_arrivals(rate_per_ms: float, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    if rate_per_ms <= 0:
        return np.empty(0)
    expected = rate_per_ms * duration_ms
    count = rng.poisson(expected)
    return np.sort(rng.uniform(0, duration_ms, size=count))


def _steady(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    return _poisson_arrivals(spec.rate_per_min / 60_000.0, duration_ms, rng)


def _bursty(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """ON/OFF bursts: exponential gaps between bursts, tight in-burst spacing."""
    per_burst = max(1.0, spec.burst_size_mean)
    bursts_per_min = spec.rate_per_min / per_burst
    gap_mean_ms = 60_000.0 / bursts_per_min
    times: list[float] = []
    t = rng.exponential(gap_mean_ms)
    while t < duration_ms:
        size = 1 + rng.poisson(per_burst - 1)
        offsets = np.cumsum(rng.exponential(250.0, size=size))  # ~4/s inside a burst
        times.extend(t + off for off in offsets if t + off < duration_ms)
        t += rng.exponential(gap_mean_ms)
    return np.sort(np.asarray(times))


def _periodic(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """Timer-triggered arrivals with small jitter; rate sets extra invocations."""
    period_ms = spec.period_min * 60_000.0
    ticks = np.arange(period_ms, duration_ms, period_ms)
    jitter = rng.normal(0, period_ms * 0.02, size=len(ticks))
    times = np.clip(ticks + jitter, 0, duration_ms - 1e-6)
    # Keep the configured mean rate by adding Poisson arrivals around ticks.
    per_tick = spec.rate_per_min * spec.period_min
    extra: list[float] = []
    for tick in times:
        burst = rng.poisson(max(0.0, per_tick - 1))
        extra.extend(np.clip(tick + rng.exponential(500.0, size=burst), 0, duration_ms - 1e-6))
    return np.sort(np.concatenate([times, np.asarray(extra)]))


def _diurnal(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """Sinusoidally-modulated Poisson arrivals via thinning."""
    peak_rate = 2.0 * spec.rate_per_min / 60_000.0
    candidates = _poisson_arrivals(peak_rate, duration_ms, rng)
    if candidates.size == 0:
        return candidates
    period_ms = spec.period_min * 60_000.0
    phase = 2 * math.pi * candidates / period_ms
    accept_prob = 0.5 * (1 + np.sin(phase))
    keep = rng.random(candidates.size) < accept_prob
    return candidates[keep]


_SAMPLERS = {
    PatternKind.STEADY: _steady,
    PatternKind.BURSTY: _bursty,
    PatternKind.PERIODIC: _periodic,
    PatternKind.DIURNAL: _diurnal,
}


def sample_arrivals(spec: PatternSpec, duration_ms: float, rng: np.random.Generator) -> np.ndarray:
    """Arrival times (ms, sorted) for one pattern over ``duration_ms``."""
    if duration_ms <= 0:
        return np.empty(0)
    return _SAMPLERS[spec.kind](spec, duration_ms, rng)


#: Pattern mix matching the characterization: mostly steady/bursty with a
#: periodic and diurnal tail.
_PATTERN_CYCLE = (
    PatternKind.STEADY,
    PatternKind.BURSTY,
    PatternKind.STEADY,
    PatternKind.PERIODIC,
    PatternKind.BURSTY,
    PatternKind.DIURNAL,
)


@dataclass(frozen=True)
class AzureTraceGenerator:
    """Deterministic generator of Azure-style multi-function traces.

    Args:
        seed: Master seed; every per-function stream derives from it.
        rate_scale: Multiplier applied to base rates — the paper scales
            the production traces 5x because per-function rates are low.
    """

    seed: int = 0
    rate_scale: float = 5.0

    def pattern_for(self, function: str, index: int) -> PatternSpec:
        """The pattern assigned to ``function`` (deterministic in seed)."""
        rng = rng_for("azure-pattern", self.seed, function)
        kind = _PATTERN_CYCLE[index % len(_PATTERN_CYCLE)]
        # Heavy-tailed base popularity: lognormal around ~1.2/min.
        base_rate = float(np.exp(rng.normal(0.2, 0.55)))
        return PatternSpec(
            kind=kind,
            rate_per_min=base_rate * self.rate_scale,
            period_min=float(rng.uniform(3.0, 8.0)),
            burst_size_mean=float(rng.uniform(3.0, 9.0)),
        )

    def generate(self, duration_min: float, functions: tuple[str, ...] | list[str]) -> Trace:
        """Generate a merged multi-function trace of ``duration_min`` minutes."""
        if duration_min <= 0:
            raise ValueError("duration_min must be positive")
        duration_ms = duration_min * 60_000.0
        arrivals: list[tuple[float, str]] = []
        for index, function in enumerate(functions):
            spec = self.pattern_for(function, index)
            rng = rng_for("azure-arrivals", self.seed, function)
            arrivals.extend(
                (float(t), function) for t in sample_arrivals(spec, duration_ms, rng)
            )
        return Trace.from_arrivals(arrivals)
