"""Request traces: the workload container consumed by the platform.

A :class:`Trace` is an immutable, time-sorted sequence of
:class:`Request` records.  The same trace object is replayed against
Medes and every baseline so comparisons are paired per request — the
paper's Figure 7a improvement-factor CDF relies on this pairing.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Request:
    """One function invocation.

    Slotted: cluster-scale traces hold millions of these."""

    request_id: int
    function: str
    arrival_ms: float
    tenant: str = ""
    """Owning tenant of this invocation ("" = the anonymous tenant).
    Only read when ``ClusterConfig.dedup_domains`` partitions sharing
    by tenant domain; the default label keeps untagged traces on the
    pre-tenancy path bit-identically."""

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError("arrival_ms must be non-negative")


@dataclass(frozen=True)
class Trace:
    """A time-sorted immutable sequence of requests."""

    requests: tuple[Request, ...]

    def __post_init__(self) -> None:
        # Vectorized validation: million-request traces pass through here.
        count = len(self.requests)
        times = np.fromiter(
            (r.arrival_ms for r in self.requests), dtype=np.float64, count=count
        )
        if count > 1 and bool((np.diff(times) < 0).any()):
            raise ValueError("trace requests must be sorted by arrival time")
        ids = np.fromiter(
            (r.request_id for r in self.requests), dtype=np.int64, count=count
        )
        if np.unique(ids).size != count:
            raise ValueError("duplicate request ids in trace")

    @classmethod
    def from_arrivals(
        cls, arrivals: list[tuple[float, str]] | list[tuple[float, str, str]]
    ) -> "Trace":
        """Build a trace from (arrival_ms, function[, tenant]) tuples.

        Tuples may mix 2- and 3-element forms; the 2-element form keeps
        the default (anonymous) tenant label.
        """
        ordered = sorted(arrivals, key=lambda item: item[0])
        return cls(
            requests=tuple(
                Request(
                    request_id=i,
                    function=item[1],
                    arrival_ms=item[0],
                    tenant=item[2] if len(item) > 2 else "",
                )
                for i, item in enumerate(ordered)
            )
        )

    @classmethod
    def from_arrays(
        cls,
        arrival_ms: np.ndarray,
        function_ids: np.ndarray,
        names: Sequence[str],
        tenants: Sequence[str] | None = None,
    ) -> "Trace":
        """Build a trace from parallel columns (any order), stably sorted.

        ``arrival_ms[i]`` pairs with ``names[function_ids[i]]``; the
        stable time sort matches :meth:`from_arrivals` exactly.  This is
        the cluster-scale path: generators hand over two numpy columns
        instead of a Python list of a million tuples.  ``tenants``, when
        given, maps each function id to its owning tenant label (one
        entry per name — tenancy is per function, not per request).
        """
        if len(arrival_ms) != len(function_ids):
            raise ValueError("arrival_ms and function_ids must be the same length")
        if tenants is not None and len(tenants) != len(names):
            raise ValueError("tenants must have one entry per function name")
        order = np.argsort(arrival_ms, kind="stable")
        times = arrival_ms[order].tolist()
        indices = function_ids[order].tolist()
        if tenants is None:
            return cls(
                requests=tuple(
                    Request(request_id=i, function=names[j], arrival_ms=t)
                    for i, (t, j) in enumerate(zip(times, indices))
                )
            )
        return cls(
            requests=tuple(
                Request(
                    request_id=i,
                    function=names[j],
                    arrival_ms=t,
                    tenant=tenants[j],
                )
                for i, (t, j) in enumerate(zip(times, indices))
            )
        )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def duration_ms(self) -> float:
        """Arrival time of the last request (0 for an empty trace)."""
        return self.requests[-1].arrival_ms if self.requests else 0.0

    def functions(self) -> tuple[str, ...]:
        """Distinct function names, in first-arrival order."""
        seen: dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(request.function, None)
        return tuple(seen)

    def count_by_function(self) -> dict[str, int]:
        """Requests per function."""
        return dict(Counter(r.function for r in self.requests))

    def window(self, start_ms: float, end_ms: float) -> "Trace":
        """Requests with ``start_ms <= arrival < end_ms``, re-numbered."""
        times = [r.arrival_ms for r in self.requests]
        lo = bisect_left(times, start_ms)
        hi = bisect_right(times, end_ms - 1e-9)
        return Trace.from_arrivals(
            [
                (r.arrival_ms - start_ms, r.function, r.tenant)
                for r in self.requests[lo:hi]
            ]
        )

    def restrict(self, functions: set[str] | tuple[str, ...]) -> "Trace":
        """Only the requests of the given functions, re-numbered."""
        wanted = set(functions)
        return Trace.from_arrivals(
            [
                (r.arrival_ms, r.function, r.tenant)
                for r in self.requests
                if r.function in wanted
            ]
        )

    def merged_with(self, other: "Trace") -> "Trace":
        """Union of two traces on a shared timeline, re-numbered."""
        arrivals = [(r.arrival_ms, r.function, r.tenant) for r in self.requests]
        arrivals += [(r.arrival_ms, r.function, r.tenant) for r in other.requests]
        return Trace.from_arrivals(arrivals)

    def with_tenants(self, tenant_of: dict[str, str]) -> "Trace":
        """Relabel tenants by function (missing entries keep theirs)."""
        return Trace(
            requests=tuple(
                Request(
                    request_id=r.request_id,
                    function=r.function,
                    arrival_ms=r.arrival_ms,
                    tenant=tenant_of.get(r.function, r.tenant),
                )
                for r in self.requests
            )
        )

    def mean_rate_per_s(self, function: str | None = None) -> float:
        """Mean arrival rate (requests/second) over the trace span."""
        if not self.requests:
            return 0.0
        count = sum(1 for r in self.requests if function is None or r.function == function)
        span_s = max(self.duration_ms, 1.0) / 1000.0
        return count / span_s
