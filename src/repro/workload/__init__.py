"""Workloads: FunctionBench profiles and Azure-style arrival traces."""

from repro.workload.azure import AzureTraceGenerator, PatternKind, PatternSpec, sample_arrivals
from repro.workload.functionbench import (
    REPRESENTATIVE_SUBSET,
    FunctionBenchSuite,
    FunctionProfile,
)
from repro.workload.trace import Request, Trace
from repro.workload.trace_io import dump_trace, dumps_trace, load_trace, loads_trace

__all__ = [
    "AzureTraceGenerator",
    "FunctionBenchSuite",
    "FunctionProfile",
    "PatternKind",
    "PatternSpec",
    "REPRESENTATIVE_SUBSET",
    "Request",
    "Trace",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "sample_arrivals",
]
