"""FunctionBench profiles (paper Tables 1 and 2).

Each profile carries the function's library set (Table 1), mean execution
time and full-scale memory footprint (Table 2), a cold-start cost, and
the knobs that drive its synthetic memory image.  Names follow Table 2
(the evaluation's notation: ``HTMLServe``/``RNNModel`` rather than the
measurement study's ``HTTPServe``/``ModelServe``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro._util import MIB
from repro.memory.image import MemoryImage, synthesize_image
from repro.memory.layout import ImageLayout, standard_layout


@dataclass(frozen=True)
class FunctionProfile:
    """Static description of one serverless function.

    Attributes:
        name: Function name (Table 2 notation).
        description: Table 2's environment description.
        libraries: Imported third-party libraries (Table 1), driving the
            LIBRARY regions of the memory image.
        exec_time_ms: Mean request execution time (Table 2).
        memory_mb: Full-scale warm memory footprint in MB (Table 2).
        cold_start_ms: Cost of a cold start — sandbox spawn plus
            environment initialization (runtime + library imports).
        exec_cv: Coefficient of variation of execution times.
        unique_boost: Multiplier on the instance-unique image share (see
            :func:`repro.memory.layout.standard_layout`).
    """

    name: str
    description: str
    libraries: tuple[str, ...]
    exec_time_ms: float
    memory_mb: float
    cold_start_ms: float
    exec_cv: float = 0.08
    unique_boost: float = 1.0

    def __post_init__(self) -> None:
        if self.exec_time_ms <= 0 or self.memory_mb <= 0 or self.cold_start_ms <= 0:
            raise ValueError(f"profile {self.name}: times and memory must be positive")

    @property
    def memory_bytes(self) -> int:
        """Full-scale footprint in bytes."""
        return int(self.memory_mb * MIB)

    def layout(self) -> ImageLayout:
        """The function's memory-image layout (cached per profile)."""
        return _layout_for(self.name, self.libraries, self.memory_bytes, self.unique_boost)

    def synthesize(
        self,
        instance_seed: int,
        *,
        content_scale: float = 1.0,
        aslr: bool = False,
        executed: bool = False,
    ) -> MemoryImage:
        """Synthesize one sandbox instance's memory image.

        ``content_scale`` shrinks the materialized image while keeping
        region proportions (the platform measures savings as fractions
        and applies them to the full-scale footprint).  ``executed``
        selects the post-execution state (dirty pages present) — what
        the platform checkpoints and dedups; the default fresh state is
        what the Section-2 measurement study compares.
        """
        if not 0 < content_scale <= 1:
            raise ValueError("content_scale must be in (0, 1]")
        total = max(64 * 1024, int(self.memory_bytes * content_scale))
        return synthesize_image(
            self.layout(), total, instance_seed, aslr=aslr, executed=executed
        )


@lru_cache(maxsize=128)
def _layout_for(
    name: str, libraries: tuple[str, ...], memory_bytes: int, unique_boost: float
) -> ImageLayout:
    return standard_layout(name, libraries, memory_bytes, unique_boost=unique_boost)


#: The ten FunctionBench profiles of Tables 1-2.  Cold-start costs follow
#: the Fig 8 ordering: small stdlib-only functions start fastest; the
#: ML-framework functions (FeatureGen, RNNModel, ModelTrain) are the
#: slowest to initialize.
_PROFILES: tuple[FunctionProfile, ...] = (
    FunctionProfile(
        name="Vanilla",
        description="Empty environment / simple math",
        libraries=(),
        exec_time_ms=150,
        memory_mb=17,
        cold_start_ms=550,
    ),
    FunctionProfile(
        name="LinAlg",
        description="Linear algebra",
        libraries=("numpy",),
        exec_time_ms=250,
        memory_mb=32,
        cold_start_ms=800,
    ),
    FunctionProfile(
        name="ImagePro",
        description="Image processing",
        libraries=("numpy", "pillow"),
        exec_time_ms=1200,
        memory_mb=26.4,
        cold_start_ms=900,
    ),
    FunctionProfile(
        name="VideoPro",
        description="Video processing",
        libraries=("numpy", "opencv"),
        exec_time_ms=2000,
        memory_mb=48,
        cold_start_ms=1200,
    ),
    FunctionProfile(
        name="MapReduce",
        description="Multi-process mapreduce job",
        libraries=("multiprocessing",),
        exec_time_ms=500,
        memory_mb=32,
        cold_start_ms=700,
    ),
    FunctionProfile(
        name="HTMLServe",
        description="HTML serving application",
        libraries=("chameleon", "json"),
        exec_time_ms=400,
        memory_mb=22.3,
        cold_start_ms=650,
    ),
    FunctionProfile(
        name="AuthEnc",
        description="Authentication / encryption",
        libraries=("pyaes", "json"),
        exec_time_ms=400,
        memory_mb=22.3,
        cold_start_ms=650,
    ),
    FunctionProfile(
        name="FeatureGen",
        description="Feature generation / data preprocessing",
        libraries=("sklearn-tfidf", "pandas", "numpy"),
        exec_time_ms=1000,
        memory_mb=66,
        cold_start_ms=1600,
        unique_boost=2.5,
    ),
    FunctionProfile(
        name="RNNModel",
        description="RNN model serving",
        libraries=("torch",),
        exec_time_ms=1000,
        memory_mb=90,
        cold_start_ms=2200,
    ),
    FunctionProfile(
        name="ModelTrain",
        description="Regression model training",
        libraries=("sklearn-tfidf", "sklearn-logreg", "numpy"),
        exec_time_ms=3000,
        memory_mb=87.5,
        cold_start_ms=1900,
    ),
)


@dataclass(frozen=True)
class FunctionBenchSuite:
    """The benchmark suite: an ordered, name-addressable set of profiles."""

    profiles: tuple[FunctionProfile, ...] = field(default=_PROFILES)

    def __post_init__(self) -> None:
        names = [p.name for p in self.profiles]
        if len(set(names)) != len(names):
            raise ValueError("duplicate profile names in suite")

    @classmethod
    def default(cls) -> "FunctionBenchSuite":
        """All ten FunctionBench profiles."""
        return cls()

    @classmethod
    def subset(cls, names: tuple[str, ...] | list[str]) -> "FunctionBenchSuite":
        """A suite restricted to ``names`` (order preserved).

        The paper's microbenchmarks (Sections 7.5-7.8) use the
        representative subset {LinAlg, FeatureGen, ModelTrain}.
        """
        base = cls.default()
        return cls(profiles=tuple(base.get(name) for name in names))

    @classmethod
    def replicated(
        cls, names: tuple[str, ...] | list[str], copies: int
    ) -> "FunctionBenchSuite":
        """Many distinct functions per environment (the paper's workload).

        The evaluation assigns multiple Azure arrival patterns to each
        FunctionBench use case — i.e. many *different* functions share
        an environment.  ``LinAlg~2`` has LinAlg's libraries, timings
        and footprint but its own function-private memory (its heap and
        stack content keys derive from the replica name), so replicas
        dedup against each other only through shared runtime/library
        regions, like distinct customer functions would.
        """
        if copies <= 0:
            raise ValueError("copies must be positive")
        base = cls.default()
        replicas = []
        for name in names:
            profile = base.get(name)
            for copy in range(copies):
                replica_name = name if copy == 0 else f"{name}~{copy}"
                replicas.append(
                    FunctionProfile(
                        name=replica_name,
                        description=profile.description,
                        libraries=profile.libraries,
                        exec_time_ms=profile.exec_time_ms,
                        memory_mb=profile.memory_mb,
                        cold_start_ms=profile.cold_start_ms,
                        exec_cv=profile.exec_cv,
                        unique_boost=profile.unique_boost,
                    )
                )
        return cls(profiles=tuple(replicas))

    def get(self, name: str) -> FunctionProfile:
        """Look up a profile by name."""
        for profile in self.profiles:
            if profile.name == name:
                return profile
        raise KeyError(f"unknown function {name!r}")

    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    def __len__(self) -> int:
        return len(self.profiles)


#: The representative subset used by the paper's microbenchmarks (§7.5).
REPRESENTATIVE_SUBSET = ("LinAlg", "FeatureGen", "ModelTrain")
