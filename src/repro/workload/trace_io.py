"""Trace persistence: CSV import/export.

The evaluation uses synthetic traces, but the generator's output — and
any real trace a user brings (e.g. rows derived from the Azure Functions
dataset) — round-trips through a two-column CSV:

    arrival_ms,function
    125.0,LinAlg
    318.5,ModelTrain

Durations are milliseconds from the trace start.  Ordering in the file
is irrelevant; loading sorts and renumbers.
"""

from __future__ import annotations

import csv
import io
import pathlib

from repro.workload.trace import Trace

_HEADER = ("arrival_ms", "function")


def dump_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` as CSV."""
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for request in trace:
            writer.writerow([f"{request.arrival_ms:.3f}", request.function])


def dumps_trace(trace: Trace) -> str:
    """Render ``trace`` as a CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_HEADER)
    for request in trace:
        writer.writerow([f"{request.arrival_ms:.3f}", request.function])
    return buffer.getvalue()


def _parse_rows(reader: csv.reader) -> list[tuple[float, str]]:
    arrivals: list[tuple[float, str]] = []
    header = next(reader, None)
    if header is None:
        return arrivals
    if [column.strip().lower() for column in header] != list(_HEADER):
        raise ValueError(
            f"expected header {','.join(_HEADER)!r}, got {','.join(header)!r}"
        )
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 2:
            raise ValueError(f"line {line_number}: expected 2 columns, got {len(row)}")
        try:
            arrival = float(row[0])
        except ValueError as error:
            raise ValueError(f"line {line_number}: bad arrival {row[0]!r}") from error
        if arrival < 0:
            raise ValueError(f"line {line_number}: negative arrival {arrival}")
        function = row[1].strip()
        if not function:
            raise ValueError(f"line {line_number}: empty function name")
        arrivals.append((arrival, function))
    return arrivals


def load_trace(path: str | pathlib.Path) -> Trace:
    """Load a trace from a CSV file (see module docstring for format)."""
    with pathlib.Path(path).open(newline="") as handle:
        return Trace.from_arrivals(_parse_rows(csv.reader(handle)))


def loads_trace(text: str) -> Trace:
    """Load a trace from a CSV string."""
    return Trace.from_arrivals(_parse_rows(csv.reader(io.StringIO(text))))
