"""Medes core: dedup/restore ops, fingerprint registry, base management, policy."""

from repro.core.agent import (
    DedupAgent,
    DedupOutcome,
    DedupPageTable,
    DedupStats,
    DedupTimings,
    PageEntry,
    PageKind,
    RestoreOutcome,
    RestoreTimings,
)
from repro.core.basemgr import DEFAULT_BASE_THRESHOLD, BaseSandboxManager
from repro.core.costs import CostModel
from repro.core.optimizer import (
    FunctionModel,
    Objective,
    Solution,
    max_dedup_for_latency,
    max_dedup_for_rate,
    mean_startup_ms,
    memory_usage,
    min_dedup_for_memory,
    solve,
)
from repro.core.policy import (
    ClusterView,
    Decision,
    FunctionStats,
    LifecyclePolicy,
    MedesPolicy,
    MedesPolicyConfig,
)
from repro.core.registry import (
    FingerprintRegistry,
    PageRef,
    RegistryStats,
    ShardedFingerprintRegistry,
)

__all__ = [
    "BaseSandboxManager",
    "ClusterView",
    "CostModel",
    "DEFAULT_BASE_THRESHOLD",
    "Decision",
    "DedupAgent",
    "DedupOutcome",
    "DedupPageTable",
    "DedupStats",
    "DedupTimings",
    "FingerprintRegistry",
    "FunctionModel",
    "FunctionStats",
    "LifecyclePolicy",
    "MedesPolicy",
    "MedesPolicyConfig",
    "Objective",
    "PageEntry",
    "PageKind",
    "PageRef",
    "RegistryStats",
    "ShardedFingerprintRegistry",
    "RestoreOutcome",
    "RestoreTimings",
    "Solution",
    "max_dedup_for_latency",
    "max_dedup_for_rate",
    "mean_startup_ms",
    "memory_usage",
    "min_dedup_for_memory",
    "solve",
]
