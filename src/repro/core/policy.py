"""The Medes sandbox-management policy (paper Section 5).

When a warm sandbox has been idle for the *idle period*, the node daemon
asks the controller whether to keep it warm or deduplicate it.  The
policy answers by solving the Section-5.2 program for that function with
live measurements (arrival rate, measured dedup-start latency, measured
dedup footprint) and comparing the optimal dedup count ``D*`` with the
function's current dedup population.

The module also defines the generic :class:`LifecyclePolicy` interface
that the keep-alive baselines implement, and the per-function online
estimators both use.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Protocol

from repro.core.optimizer import FunctionModel, Objective, solve
from repro.workload.functionbench import FunctionProfile

#: Window over which arrival rates are estimated (ms).
RATE_WINDOW_MS = 120_000.0
#: Sub-window used for the peak-rate (lambda_max) estimate (ms).
RATE_SUBWINDOW_MS = 30_000.0
#: EWMA smoothing for measured dedup quantities.
EWMA_ALPHA = 0.3
#: Transient restore overhead m_R as a fraction of the warm footprint
#: (buffers for base pages and patch computation, Section 5.1).
RESTORE_OVERHEAD_FRACTION = 0.05
#: Dedup aggressively once cluster free memory falls below this fraction.
PRESSURE_FREE_FRACTION = 0.10


class Decision(enum.Enum):
    """Outcome of an idle-period consultation."""

    KEEP_WARM = "keep-warm"
    DEDUP = "dedup"
    TEMPLATE = "template"
    """Park as a per-function delta against shared template segments
    (DESIGN.md §14) — only issued when the cluster view advertises a
    template catalog; restores are template forks instead of base
    fetches."""


@dataclass
class FunctionStats:
    """Online per-function estimators feeding the optimizer."""

    profile: FunctionProfile
    prior_dedup_start_ms: float = 150.0
    prior_retained_fraction: float = 0.45
    arrivals: deque = field(default_factory=deque)
    dedup_start_ms: float = 0.0
    retained_fraction: float = 0.0
    observed_requests: int = 0

    def __post_init__(self) -> None:
        self.dedup_start_ms = self.prior_dedup_start_ms
        self.retained_fraction = self.prior_retained_fraction

    def record_arrival(self, now: float) -> None:
        self.arrivals.append(now)
        self.observed_requests += 1
        self._trim(now)

    def _trim(self, now: float) -> None:
        horizon = now - RATE_WINDOW_MS
        while self.arrivals and self.arrivals[0] < horizon:
            self.arrivals.popleft()

    def mean_rate(self, now: float) -> float:
        """Mean arrival rate over the window (req/ms)."""
        self._trim(now)
        return len(self.arrivals) / RATE_WINDOW_MS

    def peak_rate(self, now: float) -> float:
        """lambda_max: the busiest sub-window's rate (req/ms)."""
        self._trim(now)
        if not self.arrivals:
            return 0.0
        best = 0
        window: deque = deque()
        for t in self.arrivals:
            window.append(t)
            while window and window[0] < t - RATE_SUBWINDOW_MS:
                window.popleft()
            best = max(best, len(window))
        return best / RATE_SUBWINDOW_MS

    def record_dedup_start(self, duration_ms: float) -> None:
        self.dedup_start_ms += EWMA_ALPHA * (duration_ms - self.dedup_start_ms)

    def record_retained_fraction(self, fraction: float) -> None:
        self.retained_fraction += EWMA_ALPHA * (fraction - self.retained_fraction)

    def model(self, now: float, warm_start_ms: float) -> FunctionModel:
        """Assemble the optimizer's inputs from current estimates."""
        warm_bytes = self.profile.memory_bytes
        dedup_bytes = int(self.retained_fraction * warm_bytes)
        return FunctionModel(
            lambda_max=self.peak_rate(now),
            warm_start_ms=warm_start_ms,
            dedup_start_ms=self.dedup_start_ms,
            exec_ms=self.profile.exec_time_ms,
            warm_bytes=warm_bytes,
            dedup_bytes=dedup_bytes,
            restore_overhead_bytes=int(RESTORE_OVERHEAD_FRACTION * warm_bytes),
        )


@dataclass(frozen=True)
class ClusterView:
    """Cluster-wide facts the policy needs for one decision."""

    now: float
    live_counts: dict[str, int]
    """Per function: sandboxes in WARM/RUNNING/DEDUP(+transients)."""
    dedup_counts: dict[str, int]
    """Per function: sandboxes currently in (or entering) dedup state."""
    used_bytes: int
    capacity_bytes: int
    rate_shares: dict[str, float]
    """Per function share of total arrival rate (for budget splitting)."""
    registry_available: bool = True
    """False while a fingerprint-registry shard is down: the fleet
    degrades to warm/cold-only and no new dedup ops are admitted
    (DESIGN.md §11)."""
    templates_available: bool = False
    """True when template sharing is on and the catalog can serve this
    cluster: idle consultations that would dedup park as template deltas
    instead (restore = fork + delta apply, no registry or base fetch)."""

    @property
    def free_fraction(self) -> float:
        if self.capacity_bytes == 0:
            return 0.0
        return max(0.0, 1.0 - self.used_bytes / self.capacity_bytes)


class LifecyclePolicy(Protocol):
    """What the controller's lifecycle machinery asks of a policy."""

    name: str

    def keep_alive_ms(self, function: str, now: float) -> float:
        """How long an idle warm sandbox survives before purge."""
        ...

    def idle_period_ms(self, function: str) -> float | None:
        """Idle duration before a dedup consultation; None disables."""
        ...

    def keep_dedup_ms(self, function: str) -> float:
        """How long a dedup sandbox survives before purge."""
        ...

    def decide_idle(self, function: str, view: ClusterView) -> Decision:
        """Called at idle-period expiry for one sandbox."""
        ...

    def on_arrival(self, function: str, now: float) -> None:
        """Observe a request arrival (rate/histogram upkeep)."""
        ...

    def prewarm_delay_ms(self, function: str, now: float) -> float | None:
        """If set, spawn a prewarmed sandbox this long after a purge."""
        ...


@dataclass(frozen=True)
class MedesPolicyConfig:
    """Operator-facing knobs (the 'narrow, intuitive interface').

    The paper's Section 5.3 lets providers regulate functions
    *separately* — critical functions on a tight latency constraint,
    best-effort ones loose: ``per_function_alpha`` overrides the global
    ``alpha`` for named functions under the P1 objective.
    """

    objective: Objective = Objective.LATENCY
    alpha: float = 2.5
    """P1: mean-startup bound as a multiple of the warm start."""
    per_function_alpha: Mapping[str, float] = field(default_factory=dict)
    """P1: per-function overrides of ``alpha`` (Section 5.3)."""
    memory_budget_bytes: int | None = None
    """P2: cluster-wide dedup budget, split across functions by rate."""
    idle_period_ms: float = 30_000.0
    keep_alive_ms: float = 600_000.0
    keep_dedup_ms: float = 600_000.0

    def __post_init__(self) -> None:
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        for function, alpha in self.per_function_alpha.items():
            if alpha < 1.0:
                raise ValueError(f"alpha for {function} must be >= 1")
        if self.objective is Objective.MEMORY and self.memory_budget_bytes is None:
            raise ValueError("MEMORY objective requires memory_budget_bytes")
        if min(self.idle_period_ms, self.keep_alive_ms, self.keep_dedup_ms) <= 0:
            raise ValueError("periods must be positive")

    def alpha_for(self, function: str) -> float:
        """The latency bound applying to ``function``."""
        return self.per_function_alpha.get(function, self.alpha)


class MedesPolicy:
    """The paper's policy: optimizer-guided warm/dedup split per function."""

    def __init__(
        self,
        config: MedesPolicyConfig,
        *,
        warm_start_ms: float,
        stats: dict[str, FunctionStats],
    ):
        self.name = "medes"
        self.config = config
        self.warm_start_ms = warm_start_ms
        self.stats = stats
        self.decisions: list[tuple[float, str, Decision, bool]] = []

    def keep_alive_ms(self, function: str, now: float) -> float:
        return self.config.keep_alive_ms

    def idle_period_ms(self, function: str) -> float | None:
        return self.config.idle_period_ms

    def keep_dedup_ms(self, function: str) -> float:
        return self.config.keep_dedup_ms

    def on_arrival(self, function: str, now: float) -> None:
        self.stats[function].record_arrival(now)

    def prewarm_delay_ms(self, function: str, now: float) -> float | None:
        return None

    def _function_budget(self, function: str, view: ClusterView) -> float | None:
        total = self.config.memory_budget_bytes
        if total is None:
            return None
        share = view.rate_shares.get(function, 0.0)
        if share <= 0.0:
            # Inactive functions get a minimal slice: one warm sandbox.
            return float(self.stats[function].profile.memory_bytes)
        return total * share

    def decide_idle(self, function: str, view: ClusterView) -> Decision:
        """Compare the live dedup count with the optimizer's D*."""
        if not view.registry_available and not view.templates_available:
            # Registry outage: a dedup op could neither look up bases
            # nor register state — degrade to keep-warm until it heals.
            # (Template parking needs no registry, so a catalog keeps
            # the park path open through the outage.)
            return Decision.KEEP_WARM
        stats = self.stats[function]
        total = view.live_counts.get(function, 0)
        if total <= 0:
            return Decision.KEEP_WARM
        model = stats.model(view.now, self.warm_start_ms)
        solution = solve(
            model,
            total,
            self.config.objective,
            alpha=self.config.alpha_for(function),
            budget_bytes=self._function_budget(function, view),
        )
        current_dedup = view.dedup_counts.get(function, 0)
        pressured = view.free_fraction < PRESSURE_FREE_FRACTION
        if not solution.feasible or pressured:
            decision = Decision.DEDUP
        elif current_dedup < solution.dedup:
            decision = Decision.DEDUP
        else:
            decision = Decision.KEEP_WARM
        if decision is Decision.DEDUP and view.templates_available:
            # A resident template serves the same parked role at a far
            # cheaper restore (fork + delta, no base fetch) — prefer it.
            decision = Decision.TEMPLATE
        self.decisions.append((view.now, function, decision, solution.feasible))
        return decision
