"""The global fingerprint registry (controller-side, Section 3.1 / 4.1).

The registry is a hash table from chunk digests (RSC hashes) to the base
pages containing them.  Only *base sandboxes'* pages populate it
(Section 4.1.3), which keeps its footprint proportional to the number of
base checkpoints rather than the number of sandboxes.

Lookups serve the dedup op: given a page's value-sampled fingerprint,
the registry returns candidate base pages scored by how many of the
sampled chunks they share; the dedup agent picks the best candidate
(ties prefer pages local to the requesting node) as the page's *base
page* (Section 4.1.2).

Two API tiers exist:

* per-page (``register_page`` / ``lookup`` / ``choose_base_page``) — the
  reference path, one call per page;
* batch (``register_pages`` / ``lookup_batch`` / ``choose_base_pages``)
  — one call per *image*, modelling a single controller round-trip.
  The sharded registry additionally groups a batch's digests per shard
  before fanning out, so each shard is visited once per batch rather
  than once per digest.

Stats discipline: page-level counters (``pages_registered``,
``page_lookups``, ``hits``) count *pages*, digest-level counters count
digests — on both registry variants, so the sharding ablation compares
like with like.

Tenancy (DESIGN.md §15): every table is partitioned by *dedup domain* —
registrations and lookups carry the requester's domain string, and a
lookup can only ever see refs registered under the same domain.  The
partition is structural (separate nested tables per domain), so a
cross-domain :class:`PageRef` cannot leak out of a lookup by
construction; a checkpoint claiming two different domains raises.  The
default :data:`~repro.tenancy.domains.GLOBAL_DOMAIN` ("" everywhere)
collapses to a single partition and reproduces the pre-tenancy registry
bit-identically.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.memory.fingerprint import FingerprintConfig, PageFingerprint
from repro.tenancy.domains import GLOBAL_DOMAIN

#: Reference size used for the registry's own memory accounting: digest
#: (8 B) + per-ref (node, checkpoint, page ~ 12 B) in a compact table.
_DIGEST_BYTES = 8
_REF_BYTES = 12

#: Shared immutable empty partition, so lookups against a domain that
#: never registered anything allocate nothing.
_EMPTY_PARTITION: Mapping[int, list["PageRef"]] = {}


@dataclass(frozen=True)
class PageRef:
    """Cluster-wide address of one base page."""

    checkpoint_id: int
    node_id: int
    page_index: int

    def __post_init__(self) -> None:
        # Refs are hashed constantly (bucket membership, candidate
        # counting); precomputing beats re-tupling the fields each time.
        object.__setattr__(
            self, "_hash", hash((self.checkpoint_id, self.node_id, self.page_index))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]


@dataclass
class RegistryStats:
    """Counters for the Section-7.7 overhead analysis."""

    pages_registered: int = 0
    digests_registered: int = 0
    page_lookups: int = 0
    digest_lookups: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of page lookups that found at least one candidate."""
        if self.page_lookups == 0:
            return 0.0
        return self.hits / self.page_lookups


def _best_candidate(
    counts: Counter[PageRef], local_node_id: int
) -> tuple[PageRef, int] | None:
    """Selection rule shared by every registry variant.

    The candidate with the maximum sampled-chunk overlap wins; among
    equals, a page local to ``local_node_id`` is preferred (avoiding a
    remote read), then the lowest address for determinism.
    """
    if not counts:
        return None
    best = min(
        counts.items(),
        key=lambda item: (
            -item[1],
            item[0].node_id != local_node_id,
            item[0].checkpoint_id,
            item[0].page_index,
        ),
    )
    return best[0], best[1]


class FingerprintRegistry:
    """Chunk-digest -> base-page index with bounded, domain-partitioned
    buckets."""

    def __init__(
        self,
        config: FingerprintConfig | None = None,
        *,
        max_refs_per_digest: int = 8,
    ):
        if max_refs_per_digest <= 0:
            raise ValueError("max_refs_per_digest must be positive")
        self.config = config or FingerprintConfig()
        self.max_refs_per_digest = max_refs_per_digest
        #: domain -> digest -> refs.  The nested shape is the isolation
        #: mechanism: a lookup indexes its own domain's table and cannot
        #: observe another partition at all.
        self._partitions: dict[str, dict[int, list[PageRef]]] = {}
        self._by_checkpoint: dict[int, list[tuple[str, int, PageRef]]] = defaultdict(
            list
        )
        # Full-page content digests -> byte-identical base pages, also
        # per domain.  This replica index backs the fault-recovery
        # re-homing path: a patch computed against a dead base page
        # applies unchanged against any replica listed here — but only
        # replicas of the *same domain* are ever listed together, so
        # re-homing cannot cross a tenancy boundary either.
        self._page_locations: dict[str, dict[int, list[PageRef]]] = {}
        self._location_of: dict[PageRef, tuple[str, int]] = {}
        self._locations_by_checkpoint: dict[
            int, list[tuple[str, int, PageRef]]
        ] = defaultdict(list)
        #: checkpoint -> the single domain it registered under (the
        #: tenancy tripwire: claiming a second domain raises).
        self._checkpoint_domain: dict[int, str] = {}
        self.stats = RegistryStats()

    def _claim_domain(self, checkpoint_id: int, domain: str) -> None:
        existing = self._checkpoint_domain.setdefault(checkpoint_id, domain)
        if existing != domain:
            raise ValueError(
                f"checkpoint {checkpoint_id} is registered in domain "
                f"{existing!r}; refusing registration under {domain!r}"
            )

    # ------------------------------------------------------- digest level
    # These update only digest-level counters; page-level accounting is
    # the caller's job (this registry's page APIs, or a sharding front
    # end that must count each page exactly once across shards).

    def register_digest(
        self, ref: PageRef, digest: int, domain: str = GLOBAL_DOMAIN
    ) -> int:
        """Insert one digest of a base page; returns 1 if stored."""
        self._claim_domain(ref.checkpoint_id, domain)
        buckets = self._partitions.setdefault(domain, {})
        bucket = buckets.setdefault(digest, [])
        if ref in bucket or len(bucket) >= self.max_refs_per_digest:
            return 0
        bucket.append(ref)
        self._by_checkpoint[ref.checkpoint_id].append((domain, digest, ref))
        self.stats.digests_registered += 1
        return 1

    def resolve_digests(
        self, digests: Iterable[int], domain: str = GLOBAL_DOMAIN
    ) -> dict[int, tuple[PageRef, ...]]:
        """Bucket contents for each digest (digest-level lookup)."""
        buckets = self._partitions.get(domain, _EMPTY_PARTITION)
        result: dict[int, tuple[PageRef, ...]] = {}
        for digest in digests:
            self.stats.digest_lookups += 1
            result[digest] = tuple(buckets.get(digest, ()))
        return result

    # --------------------------------------------------------- page level

    def register_page(
        self, ref: PageRef, fingerprint: PageFingerprint, domain: str = GLOBAL_DOMAIN
    ) -> int:
        """Insert a base page's sampled digests; returns digests stored."""
        stored = 0
        for digest in fingerprint.digest_set:
            stored += self.register_digest(ref, digest, domain)
        self.stats.pages_registered += 1
        return stored

    def register_pages(
        self,
        refs: Sequence[PageRef],
        fingerprints: Sequence[PageFingerprint],
        domain: str = GLOBAL_DOMAIN,
    ) -> int:
        """Batch insert (one controller round-trip per image)."""
        if len(refs) != len(fingerprints):
            raise ValueError("refs/fingerprints length mismatch")
        return sum(
            self.register_page(ref, fingerprint, domain)
            for ref, fingerprint in zip(refs, fingerprints)
        )

    def deregister_checkpoint(self, checkpoint_id: int) -> int:
        """Remove every digest of a retired base checkpoint."""
        removed = 0
        for domain, digest, ref in self._by_checkpoint.pop(checkpoint_id, []):
            buckets = self._partitions.get(domain)
            if buckets is None:
                continue
            bucket = buckets.get(digest)
            if bucket is None:
                continue
            try:
                bucket.remove(ref)
                removed += 1
            except ValueError:
                pass
            if not bucket:
                del buckets[digest]
                if not buckets:
                    del self._partitions[domain]
        for domain, page_digest, ref in self._locations_by_checkpoint.pop(
            checkpoint_id, []
        ):
            self._location_of.pop(ref, None)
            buckets = self._page_locations.get(domain)
            if buckets is None:
                continue
            bucket = buckets.get(page_digest)
            if bucket is None:
                continue
            try:
                bucket.remove(ref)
            except ValueError:
                pass
            if not bucket:
                del buckets[page_digest]
                if not buckets:
                    del self._page_locations[domain]
        self._checkpoint_domain.pop(checkpoint_id, None)
        return removed

    # ----------------------------------------------------- page locations

    def register_page_location(
        self, ref: PageRef, page_digest: int, domain: str = GLOBAL_DOMAIN
    ) -> bool:
        """Index a base page's full-content digest for replica lookup.

        Idempotent; buckets are capped at ``max_refs_per_digest`` like
        fingerprint buckets.  Returns True when the ref was stored.
        """
        self._claim_domain(ref.checkpoint_id, domain)
        buckets = self._page_locations.setdefault(domain, {})
        bucket = buckets.setdefault(page_digest, [])
        if ref in bucket or len(bucket) >= self.max_refs_per_digest:
            if not bucket:
                del buckets[page_digest]
                if not buckets:
                    del self._page_locations[domain]
            return False
        bucket.append(ref)
        self._location_of[ref] = (domain, page_digest)
        self._locations_by_checkpoint[ref.checkpoint_id].append(
            (domain, page_digest, ref)
        )
        return True

    def page_replicas(
        self, page_digest: int, domain: str = GLOBAL_DOMAIN
    ) -> tuple[PageRef, ...]:
        """Registered base pages of ``domain`` whose content hashes to
        ``page_digest`` (never another domain's — re-homing must not
        leak a byte-identical page across a tenancy boundary)."""
        return tuple(
            self._page_locations.get(domain, _EMPTY_PARTITION).get(page_digest, ())
        )

    def replicas_for(self, ref: PageRef) -> tuple[PageRef, ...]:
        """Byte-identical same-domain alternatives to ``ref``."""
        entry = self._location_of.get(ref)
        if entry is None:
            return ()
        domain, page_digest = entry
        return tuple(r for r in self.page_replicas(page_digest, domain) if r != ref)

    # ------------------------------------------------------- fault domain

    @property
    def n_shards(self) -> int:
        """A plain registry is a single shard."""
        return 1

    def drop_state(self) -> None:
        """Forget every table entry, simulating shard data loss.

        Stats survive — they are observability counters, not shard
        state — and callers rebuild the tables by re-registering the
        surviving base checkpoints (idempotently, under their original
        domains)."""
        self._partitions.clear()
        self._by_checkpoint.clear()
        self._page_locations.clear()
        self._location_of.clear()
        self._locations_by_checkpoint.clear()
        self._checkpoint_domain.clear()

    def drop_shard(self, index: int) -> None:
        """Shard-indexed data loss; a plain registry has only shard 0."""
        if index != 0:
            raise ValueError("unsharded registry has only shard 0")
        self.drop_state()

    def lookup(
        self, fingerprint: PageFingerprint, domain: str = GLOBAL_DOMAIN
    ) -> Counter[PageRef]:
        """Candidate base pages of ``domain`` scored by chunk overlap."""
        stats = self.stats
        stats.page_lookups += 1
        digest_set = fingerprint.digest_set
        stats.digest_lookups += len(digest_set)
        counts: Counter[PageRef] = Counter()
        buckets_get = self._partitions.get(domain, _EMPTY_PARTITION).get
        for digest in digest_set:
            bucket = buckets_get(digest)
            if bucket:
                counts.update(bucket)
        if counts:
            stats.hits += 1
        return counts

    def lookup_batch(
        self, fingerprints: Sequence[PageFingerprint], domain: str = GLOBAL_DOMAIN
    ) -> list[Counter[PageRef]]:
        """Candidates for a whole image's pages in one round-trip.

        The batch front end resolves each distinct digest against the
        table once — pages of one image share digests heavily (that is
        what makes them dedupable), so the memo touches the bucket map
        far fewer times than page-at-a-time lookups would.  Results and
        page-/digest-level stats advance exactly as the equivalent
        sequence of per-page :meth:`lookup` calls.
        """
        stats = self.stats
        buckets_get = self._partitions.get(domain, _EMPTY_PARTITION).get
        resolved: dict[int, list[PageRef] | None] = {}
        results: list[Counter[PageRef]] = []
        for fingerprint in fingerprints:
            stats.page_lookups += 1
            digest_set = fingerprint.digest_set
            stats.digest_lookups += len(digest_set)
            counts: Counter[PageRef] = Counter()
            for digest in digest_set:
                try:
                    bucket = resolved[digest]
                except KeyError:
                    bucket = resolved[digest] = buckets_get(digest)
                if bucket:
                    counts.update(bucket)
            if counts:
                stats.hits += 1
            results.append(counts)
        return results

    def choose_base_page(
        self,
        fingerprint: PageFingerprint,
        local_node_id: int,
        domain: str = GLOBAL_DOMAIN,
    ) -> tuple[PageRef, int] | None:
        """Pick the best base page for a dedup candidate page.

        Returns ``(ref, overlap)`` or None when no candidate exists.
        """
        return _best_candidate(self.lookup(fingerprint, domain), local_node_id)

    def choose_base_pages(
        self,
        fingerprints: Sequence[PageFingerprint],
        local_node_id: int,
        domain: str = GLOBAL_DOMAIN,
    ) -> list[tuple[PageRef, int] | None]:
        """Batch :meth:`choose_base_page` — one result per fingerprint."""
        return [
            _best_candidate(counts, local_node_id)
            for counts in self.lookup_batch(fingerprints, domain)
        ]

    # --------------------------------------------------- domain inspection

    def domains(self) -> tuple[str, ...]:
        """Domains with any registered state (sorted; tests/recovery)."""
        return tuple(sorted(set(self._partitions) | set(self._page_locations)))

    def domain_digests(self, domain: str) -> dict[int, tuple[PageRef, ...]]:
        """One domain's digest partition as an immutable snapshot."""
        return {
            digest: tuple(refs)
            for digest, refs in self._partitions.get(
                domain, _EMPTY_PARTITION
            ).items()
        }

    def domain_locations(self, domain: str) -> dict[int, tuple[PageRef, ...]]:
        """One domain's replica-index partition as an immutable snapshot."""
        return {
            digest: tuple(refs)
            for digest, refs in self._page_locations.get(
                domain, _EMPTY_PARTITION
            ).items()
        }

    def checkpoint_domain(self, checkpoint_id: int) -> str | None:
        """The domain a checkpoint registered under (None if absent)."""
        return self._checkpoint_domain.get(checkpoint_id)

    @property
    def digest_count(self) -> int:
        return sum(len(buckets) for buckets in self._partitions.values())

    def memory_bytes(self) -> int:
        """Estimated registry footprint (for controller-overhead reporting)."""
        refs = sum(
            len(bucket)
            for buckets in self._partitions.values()
            for bucket in buckets.values()
        )
        location_digests = sum(
            len(buckets) for buckets in self._page_locations.values()
        )
        location_refs = sum(
            len(bucket)
            for buckets in self._page_locations.values()
            for bucket in buckets.values()
        )
        return (
            (self.digest_count + location_digests) * _DIGEST_BYTES
            + (refs + location_refs) * _REF_BYTES
        )

    def shard_for(self, digest: int, n_shards: int) -> int:
        """Key-partitioned shard placement (the Section 4.3 scaling path).

        Lookups are independent per digest, so the registry distributes
        by digest; the single-controller experiments use ``n_shards=1``.
        Sharding is orthogonal to tenancy: a digest routes to the same
        shard whatever its domain, and the domain partition lives inside
        each shard.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        return digest % n_shards


class ShardedFingerprintRegistry:
    """A key-partitioned fingerprint registry (paper Section 4.3).

    Accesses to the registry are independent per-digest lookups, so the
    controller can be distributed by sharding the digest space across
    controller nodes; chain replication provides fault tolerance.  This
    class is API-compatible with :class:`FingerprintRegistry`: each
    digest routes to ``shard_for(digest)``; page-level operations fan
    out and merge, and the batch APIs group a whole image's digests per
    shard so each shard is visited once per batch.  ``replication``
    models the chain length — inserts are charged to every replica (for
    overhead accounting) while reads are served by the tail.

    Page-level stats (pages registered / page lookups / hits) are kept
    by this front end — counting each page exactly once regardless of
    how many shards its digests span — while digest-level stats live in
    the shards; :attr:`stats` merges the two views.

    Tenancy: the domain partition lives *inside* each shard (sharding is
    by digest, orthogonal to domains), so a rebuilt shard reconstructs
    its per-domain tables exactly by re-registering surviving
    checkpoints under their recorded domains.
    """

    def __init__(
        self,
        n_shards: int,
        config: FingerprintConfig | None = None,
        *,
        max_refs_per_digest: int = 8,
        replication: int = 1,
    ):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.config = config or FingerprintConfig()
        self.n_shards = n_shards
        self.replication = replication
        self.shards = [
            FingerprintRegistry(self.config, max_refs_per_digest=max_refs_per_digest)
            for _ in range(n_shards)
        ]
        self._page_stats = RegistryStats()
        # Front-end routing metadata for the replica index: which
        # (domain, page digest) holds a ref's page-location entry.
        # Deliberately *not* shard state — it survives shard loss so
        # recovery can still route.
        self._location_route: dict[PageRef, tuple[str, int]] = {}
        self._route_by_checkpoint: dict[int, list[PageRef]] = defaultdict(list)

    def shard_for(self, digest: int) -> int:
        return digest % self.n_shards

    # --------------------------------------------------------- page level

    def register_page(
        self, ref: PageRef, fingerprint: PageFingerprint, domain: str = GLOBAL_DOMAIN
    ) -> int:
        stored = 0
        for digest in fingerprint.digest_set:
            stored += self.shards[self.shard_for(digest)].register_digest(
                ref, digest, domain
            )
        self._page_stats.pages_registered += 1
        return stored

    def register_pages(
        self,
        refs: Sequence[PageRef],
        fingerprints: Sequence[PageFingerprint],
        domain: str = GLOBAL_DOMAIN,
    ) -> int:
        if len(refs) != len(fingerprints):
            raise ValueError("refs/fingerprints length mismatch")
        return sum(
            self.register_page(ref, fingerprint, domain)
            for ref, fingerprint in zip(refs, fingerprints)
        )

    def deregister_checkpoint(self, checkpoint_id: int) -> int:
        for ref in self._route_by_checkpoint.pop(checkpoint_id, []):
            self._location_route.pop(ref, None)
        return sum(shard.deregister_checkpoint(checkpoint_id) for shard in self.shards)

    # ----------------------------------------------------- page locations

    def register_page_location(
        self, ref: PageRef, page_digest: int, domain: str = GLOBAL_DOMAIN
    ) -> bool:
        """Route the replica-index entry to its shard (idempotent)."""
        if ref not in self._location_route:
            self._location_route[ref] = (domain, page_digest)
            self._route_by_checkpoint[ref.checkpoint_id].append(ref)
        return self.shards[self.shard_for(page_digest)].register_page_location(
            ref, page_digest, domain
        )

    def page_replicas(
        self, page_digest: int, domain: str = GLOBAL_DOMAIN
    ) -> tuple[PageRef, ...]:
        return self.shards[self.shard_for(page_digest)].page_replicas(
            page_digest, domain
        )

    def replicas_for(self, ref: PageRef) -> tuple[PageRef, ...]:
        route = self._location_route.get(ref)
        if route is None:
            return ()
        domain, page_digest = route
        return tuple(r for r in self.page_replicas(page_digest, domain) if r != ref)

    # ------------------------------------------------------- fault domain

    def drop_shard(self, index: int) -> None:
        """Lose one shard's table content (front-end routing survives)."""
        self.shards[index].drop_state()

    def _merge(
        self,
        fingerprint: PageFingerprint,
        refs_by_digest: dict[int, tuple[PageRef, ...]],
    ) -> Counter[PageRef]:
        """Merge per-digest shard answers into one page's candidate set."""
        self._page_stats.page_lookups += 1
        counts: Counter[PageRef] = Counter()
        for digest in fingerprint.digest_set:
            for ref in refs_by_digest.get(digest, ()):
                counts[ref] += 1
        if counts:
            self._page_stats.hits += 1
        return counts

    def _resolve_grouped(
        self, fingerprints: Sequence[PageFingerprint], domain: str
    ) -> dict[int, tuple[PageRef, ...]]:
        """Resolve all digests of a batch, one fan-out visit per shard."""
        by_shard: dict[int, set[int]] = defaultdict(set)
        for fingerprint in fingerprints:
            for digest in fingerprint.digest_set:
                by_shard[self.shard_for(digest)].add(digest)
        refs_by_digest: dict[int, tuple[PageRef, ...]] = {}
        for shard_index, digests in by_shard.items():
            refs_by_digest.update(
                self.shards[shard_index].resolve_digests(digests, domain)
            )
        return refs_by_digest

    def lookup(
        self, fingerprint: PageFingerprint, domain: str = GLOBAL_DOMAIN
    ) -> Counter[PageRef]:
        return self._merge(fingerprint, self._resolve_grouped([fingerprint], domain))

    def lookup_batch(
        self, fingerprints: Sequence[PageFingerprint], domain: str = GLOBAL_DOMAIN
    ) -> list[Counter[PageRef]]:
        """Batch lookup: digests grouped per shard before fanning out.

        Note digest-level stats count each *unique* digest of the batch
        once per shard visit — the communication the sharded controller
        actually performs — while page-level stats count every page.
        """
        refs_by_digest = self._resolve_grouped(fingerprints, domain)
        return [self._merge(fingerprint, refs_by_digest) for fingerprint in fingerprints]

    def choose_base_page(
        self,
        fingerprint: PageFingerprint,
        local_node_id: int,
        domain: str = GLOBAL_DOMAIN,
    ) -> tuple[PageRef, int] | None:
        """Same selection rule as the single registry, over merged shards."""
        return _best_candidate(self.lookup(fingerprint, domain), local_node_id)

    def choose_base_pages(
        self,
        fingerprints: Sequence[PageFingerprint],
        local_node_id: int,
        domain: str = GLOBAL_DOMAIN,
    ) -> list[tuple[PageRef, int] | None]:
        return [
            _best_candidate(counts, local_node_id)
            for counts in self.lookup_batch(fingerprints, domain)
        ]

    # --------------------------------------------------- domain inspection

    def domains(self) -> tuple[str, ...]:
        """Domains with any registered state, merged across shards."""
        seen: set[str] = set()
        for shard in self.shards:
            seen.update(shard.domains())
        return tuple(sorted(seen))

    def domain_digests(self, domain: str) -> dict[int, tuple[PageRef, ...]]:
        """One domain's digest partition, merged across shards (digests
        are disjoint between shards, so the merge is a plain union)."""
        merged: dict[int, tuple[PageRef, ...]] = {}
        for shard in self.shards:
            merged.update(shard.domain_digests(domain))
        return merged

    def domain_locations(self, domain: str) -> dict[int, tuple[PageRef, ...]]:
        """One domain's replica-index partition, merged across shards."""
        merged: dict[int, tuple[PageRef, ...]] = {}
        for shard in self.shards:
            merged.update(shard.domain_locations(domain))
        return merged

    def checkpoint_domain(self, checkpoint_id: int) -> str | None:
        """The domain a checkpoint registered under (None if absent)."""
        for shard in self.shards:
            domain = shard.checkpoint_domain(checkpoint_id)
            if domain is not None:
                return domain
        return None

    @property
    def digest_count(self) -> int:
        return sum(shard.digest_count for shard in self.shards)

    def memory_bytes(self) -> int:
        """Total footprint across shards, times the replication factor."""
        return sum(shard.memory_bytes() for shard in self.shards) * self.replication

    def load_imbalance(self) -> float:
        """Max-shard / mean-shard digest load (1.0 = perfectly even)."""
        loads = [shard.digest_count for shard in self.shards]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    @property
    def stats(self) -> RegistryStats:
        """Page-level front-end counters merged with shard digest counters."""
        total = RegistryStats(
            pages_registered=self._page_stats.pages_registered,
            page_lookups=self._page_stats.page_lookups,
            hits=self._page_stats.hits,
        )
        for shard in self.shards:
            total.pages_registered += shard.stats.pages_registered
            total.digests_registered += shard.stats.digests_registered
            total.page_lookups += shard.stats.page_lookups
            total.digest_lookups += shard.stats.digest_lookups
            total.hits += shard.stats.hits
        return total
