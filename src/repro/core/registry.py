"""The global fingerprint registry (controller-side, Section 3.1 / 4.1).

The registry is a hash table from chunk digests (RSC hashes) to the base
pages containing them.  Only *base sandboxes'* pages populate it
(Section 4.1.3), which keeps its footprint proportional to the number of
base checkpoints rather than the number of sandboxes.

Lookups serve the dedup op: given a page's value-sampled fingerprint,
the registry returns candidate base pages scored by how many of the
sampled chunks they share; the dedup agent picks the best candidate
(ties prefer pages local to the requesting node) as the page's *base
page* (Section 4.1.2).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.memory.fingerprint import FingerprintConfig, PageFingerprint

#: Reference size used for the registry's own memory accounting: digest
#: (8 B) + per-ref (node, checkpoint, page ~ 12 B) in a compact table.
_DIGEST_BYTES = 8
_REF_BYTES = 12


@dataclass(frozen=True)
class PageRef:
    """Cluster-wide address of one base page."""

    checkpoint_id: int
    node_id: int
    page_index: int


@dataclass
class RegistryStats:
    """Counters for the Section-7.7 overhead analysis."""

    pages_registered: int = 0
    digests_registered: int = 0
    page_lookups: int = 0
    digest_lookups: int = 0
    hits: int = 0


class FingerprintRegistry:
    """Chunk-digest -> base-page index with bounded buckets."""

    def __init__(
        self,
        config: FingerprintConfig | None = None,
        *,
        max_refs_per_digest: int = 8,
    ):
        if max_refs_per_digest <= 0:
            raise ValueError("max_refs_per_digest must be positive")
        self.config = config or FingerprintConfig()
        self.max_refs_per_digest = max_refs_per_digest
        self._buckets: dict[int, list[PageRef]] = defaultdict(list)
        self._by_checkpoint: dict[int, list[tuple[int, PageRef]]] = defaultdict(list)
        self.stats = RegistryStats()

    def register_page(self, ref: PageRef, fingerprint: PageFingerprint) -> int:
        """Insert a base page's sampled digests; returns digests stored."""
        stored = 0
        for digest in fingerprint.digest_set:
            bucket = self._buckets[digest]
            if ref in bucket:
                continue
            if len(bucket) >= self.max_refs_per_digest:
                continue
            bucket.append(ref)
            self._by_checkpoint[ref.checkpoint_id].append((digest, ref))
            stored += 1
        self.stats.pages_registered += 1
        self.stats.digests_registered += stored
        return stored

    def deregister_checkpoint(self, checkpoint_id: int) -> int:
        """Remove every digest of a retired base checkpoint."""
        removed = 0
        for digest, ref in self._by_checkpoint.pop(checkpoint_id, []):
            bucket = self._buckets.get(digest)
            if bucket is None:
                continue
            try:
                bucket.remove(ref)
                removed += 1
            except ValueError:
                pass
            if not bucket:
                del self._buckets[digest]
        return removed

    def lookup(self, fingerprint: PageFingerprint) -> Counter[PageRef]:
        """Candidate base pages scored by sampled-chunk overlap."""
        self.stats.page_lookups += 1
        counts: Counter[PageRef] = Counter()
        for digest in fingerprint.digest_set:
            self.stats.digest_lookups += 1
            for ref in self._buckets.get(digest, ()):
                counts[ref] += 1
        if counts:
            self.stats.hits += 1
        return counts

    def choose_base_page(
        self,
        fingerprint: PageFingerprint,
        local_node_id: int,
    ) -> tuple[PageRef, int] | None:
        """Pick the best base page for a dedup candidate page.

        The candidate with the maximum sampled-chunk overlap wins; among
        equals, a page local to ``local_node_id`` is preferred (avoiding
        a remote read), then the lowest address for determinism.
        Returns ``(ref, overlap)`` or None when no candidate exists.
        """
        counts = self.lookup(fingerprint)
        if not counts:
            return None
        best = min(
            counts.items(),
            key=lambda item: (
                -item[1],
                item[0].node_id != local_node_id,
                item[0].checkpoint_id,
                item[0].page_index,
            ),
        )
        return best[0], best[1]

    @property
    def digest_count(self) -> int:
        return len(self._buckets)

    def memory_bytes(self) -> int:
        """Estimated registry footprint (for controller-overhead reporting)."""
        refs = sum(len(bucket) for bucket in self._buckets.values())
        return len(self._buckets) * _DIGEST_BYTES + refs * _REF_BYTES

    def shard_for(self, digest: int, n_shards: int) -> int:
        """Key-partitioned shard placement (the Section 4.3 scaling path).

        Lookups are independent per digest, so the registry distributes
        by digest; the single-controller experiments use ``n_shards=1``.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        return digest % n_shards


class ShardedFingerprintRegistry:
    """A key-partitioned fingerprint registry (paper Section 4.3).

    Accesses to the registry are independent per-digest lookups, so the
    controller can be distributed by sharding the digest space across
    controller nodes; chain replication provides fault tolerance.  This
    class is API-compatible with :class:`FingerprintRegistry`: each
    digest routes to ``shard_for(digest)``; page-level operations fan
    out and merge.  ``replication`` models the chain length — inserts
    are charged to every replica (for overhead accounting) while reads
    are served by the tail.
    """

    def __init__(
        self,
        n_shards: int,
        config: FingerprintConfig | None = None,
        *,
        max_refs_per_digest: int = 8,
        replication: int = 1,
    ):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.config = config or FingerprintConfig()
        self.n_shards = n_shards
        self.replication = replication
        self.shards = [
            FingerprintRegistry(self.config, max_refs_per_digest=max_refs_per_digest)
            for _ in range(n_shards)
        ]

    def shard_for(self, digest: int) -> int:
        return digest % self.n_shards

    def register_page(self, ref: PageRef, fingerprint: PageFingerprint) -> int:
        stored = 0
        for digest in fingerprint.digest_set:
            shard = self.shards[self.shard_for(digest)]
            partial = PageFingerprint(digests=(digest,), offsets=(0,))
            stored += shard.register_page(ref, partial)
        return stored

    def deregister_checkpoint(self, checkpoint_id: int) -> int:
        return sum(shard.deregister_checkpoint(checkpoint_id) for shard in self.shards)

    def lookup(self, fingerprint: PageFingerprint) -> Counter[PageRef]:
        counts: Counter[PageRef] = Counter()
        for digest in fingerprint.digest_set:
            shard = self.shards[self.shard_for(digest)]
            partial = PageFingerprint(digests=(digest,), offsets=(0,))
            counts.update(shard.lookup(partial))
        return counts

    def choose_base_page(
        self,
        fingerprint: PageFingerprint,
        local_node_id: int,
    ) -> tuple[PageRef, int] | None:
        """Same selection rule as the single registry, over merged shards."""
        counts = self.lookup(fingerprint)
        if not counts:
            return None
        best = min(
            counts.items(),
            key=lambda item: (
                -item[1],
                item[0].node_id != local_node_id,
                item[0].checkpoint_id,
                item[0].page_index,
            ),
        )
        return best[0], best[1]

    @property
    def digest_count(self) -> int:
        return sum(shard.digest_count for shard in self.shards)

    def memory_bytes(self) -> int:
        """Total footprint across shards, times the replication factor."""
        return sum(shard.memory_bytes() for shard in self.shards) * self.replication

    def load_imbalance(self) -> float:
        """Max-shard / mean-shard digest load (1.0 = perfectly even)."""
        loads = [shard.digest_count for shard in self.shards]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    @property
    def stats(self) -> RegistryStats:
        """Aggregated counters across shards."""
        total = RegistryStats()
        for shard in self.shards:
            total.pages_registered += shard.stats.pages_registered
            total.digests_registered += shard.stats.digests_registered
            total.page_lookups += shard.stats.page_lookups
            total.digest_lookups += shard.stats.digest_lookups
            total.hits += shard.stats.hits
        return total
