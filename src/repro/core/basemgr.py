"""Base-sandbox management (Section 4.1.3).

Only base sandboxes populate the fingerprint registry.  The manager
tracks, per function, the number of base checkpoints ``B`` and dedup
sandboxes ``D``; when ``D / B`` exceeds the threshold ``T`` (the paper
uses 40), the next sandbox headed for deduplication is demarcated as an
additional base instead.  Base checkpoints are pinned via refcounts held
by dedup page tables and are retired when unreferenced and superfluous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore

#: The paper's D/B threshold.
DEFAULT_BASE_THRESHOLD = 40


@dataclass
class _FunctionBases:
    checkpoints: list[BaseCheckpoint] = field(default_factory=list)
    dedup_count: int = 0


class BaseSandboxManager:
    """Decides when a function needs another base sandbox."""

    def __init__(self, store: CheckpointStore, *, threshold: int = DEFAULT_BASE_THRESHOLD):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.store = store
        self.threshold = threshold
        self._functions: dict[str, _FunctionBases] = {}

    def _entry(self, function: str) -> _FunctionBases:
        return self._functions.setdefault(function, _FunctionBases())

    def base_count(self, function: str) -> int:
        return len(self._entry(function).checkpoints)

    def dedup_count(self, function: str) -> int:
        return self._entry(function).dedup_count

    def needs_new_base(self, function: str) -> bool:
        """True when the next dedup of ``function`` should become a base.

        A function with no base yet always needs one (its sandboxes
        cannot be deduplicated against anything of their own function
        otherwise); beyond that, one more base is demarcated whenever
        ``D / B > T``.
        """
        entry = self._entry(function)
        bases = len(entry.checkpoints)
        if bases == 0:
            return True
        return entry.dedup_count / bases > self.threshold

    def add_base(self, checkpoint: BaseCheckpoint) -> None:
        """Record a newly-demarcated base checkpoint."""
        checkpoint.registered = True
        self._entry(checkpoint.function).checkpoints.append(checkpoint)
        self.store.add(checkpoint)

    def note_dedup(self, function: str, delta: int) -> None:
        """Track the population of dedup sandboxes for the D/B ratio."""
        entry = self._entry(function)
        entry.dedup_count += delta
        if entry.dedup_count < 0:
            raise RuntimeError(f"negative dedup count for {function}")

    def bases_for(self, function: str) -> list[BaseCheckpoint]:
        return list(self._entry(function).checkpoints)

    def all_bases(self) -> list[BaseCheckpoint]:
        return [c for entry in self._functions.values() for c in entry.checkpoints]

    def remove_base(self, checkpoint: BaseCheckpoint) -> None:
        """Forget a retired base checkpoint (idempotent).

        The caller is responsible for deregistering its registry entries
        and removing it from the checkpoint store / node.
        """
        entry = self._entry(checkpoint.function)
        if checkpoint in entry.checkpoints:
            entry.checkpoints.remove(checkpoint)

    def retire_unreferenced(self, function: str, *, keep: int = 1) -> list[BaseCheckpoint]:
        """Retire unpinned base checkpoints beyond ``keep`` for a function.

        Returns the retired checkpoints so the controller can deregister
        their registry entries and release node memory.
        """
        entry = self._entry(function)
        retired: list[BaseCheckpoint] = []
        # Newest-first retention: older bases go first.
        removable = [c for c in entry.checkpoints if not c.pinned]
        excess = len(entry.checkpoints) - keep
        for checkpoint in removable:
            if excess <= 0:
                break
            entry.checkpoints.remove(checkpoint)
            self.store.remove(checkpoint.checkpoint_id)
            retired.append(checkpoint)
            excess -= 1
        return retired
