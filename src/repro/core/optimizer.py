"""The sandbox-management optimization problem (paper Section 5.2).

Given ``C`` sandboxes of a function, split them into ``W`` warm and
``D = C - W`` dedup sandboxes subject to:

* the throughput constraint ``W/R_W + D/R_D >= lambda_max`` (eq. 2),
  where reuse periods ``R`` are startup + execution time; and
* either (P1) a mean-startup-latency bound ``S <= alpha * s_W`` while
  minimising memory ``M = W*m_W + D*(m_D + m_R)`` (eq. 3), or (P2) a
  memory budget ``M <= M0`` while minimising ``S`` (eq. 4).

Both programs are linear in the single free variable ``D`` (``W`` is
eliminated via ``W + D = C``), so they are solved in closed form:

* ``M(D)`` is decreasing in ``D`` whenever dedup actually saves memory
  (``m_D + m_R < m_W``), so P1 maximizes ``D`` under the latency and
  rate constraints;
* ``S(D)`` is increasing in ``D`` (dedup starts are slower), so P2
  minimizes ``D`` under the memory budget.

When the system is infeasible (even all-warm cannot meet the rate, or
the budget cannot be met at ``D = C``), the paper's policy falls back to
aggressive deduplication; the solver reports that via ``feasible``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class Objective(enum.Enum):
    """Which program the operator configured (the policy interface)."""

    LATENCY = "latency"
    """P1: meet ``S <= alpha * s_W`` in minimum memory."""

    MEMORY = "memory"
    """P2: meet ``M <= M0`` with minimum startup latency."""


@dataclass(frozen=True)
class FunctionModel:
    """Per-function parameters fed to the solver.

    Rates are in requests/ms and memory in bytes to match the simulator;
    any consistent unit system works.
    """

    lambda_max: float
    """Peak request arrival rate to satisfy (req/ms)."""
    warm_start_ms: float
    dedup_start_ms: float
    exec_ms: float
    warm_bytes: int
    """m_W: footprint of a warm sandbox."""
    dedup_bytes: int
    """m_D: footprint of a dedup sandbox (patches + metadata)."""
    restore_overhead_bytes: int
    """m_R: transient memory of a dedup start (Section 5.1)."""

    def __post_init__(self) -> None:
        if self.lambda_max < 0:
            raise ValueError("lambda_max must be non-negative")
        if min(self.warm_start_ms, self.dedup_start_ms, self.exec_ms) < 0:
            raise ValueError("times must be non-negative")
        if self.warm_bytes <= 0 or self.dedup_bytes < 0 or self.restore_overhead_bytes < 0:
            raise ValueError("memory parameters out of range")

    @property
    def reuse_warm_ms(self) -> float:
        """R_W: minimum interval between invocations on a warm sandbox."""
        return self.exec_ms + self.warm_start_ms

    @property
    def reuse_dedup_ms(self) -> float:
        """R_D: the same for a dedup sandbox (restore included)."""
        return self.exec_ms + self.dedup_start_ms


@dataclass(frozen=True)
class Solution:
    """Solver output: the target (W, D) split."""

    warm: int
    dedup: int
    feasible: bool
    memory_bytes: float
    mean_startup_ms: float

    @property
    def total(self) -> int:
        return self.warm + self.dedup


def memory_usage(model: FunctionModel, warm: int, dedup: int) -> float:
    """Equation 3: total memory of a (W, D) split."""
    return warm * model.warm_bytes + dedup * (model.dedup_bytes + model.restore_overhead_bytes)


def mean_startup_ms(model: FunctionModel, warm: int, dedup: int) -> float:
    """Equation 4: request-weighted mean startup latency of a split.

    Sandboxes serve requests at rate 1/R, so warm sandboxes absorb
    ``W/R_W`` of the load at latency ``s_W`` and dedup ones ``D/R_D`` at
    ``s_D``.
    """
    warm_rate = warm / model.reuse_warm_ms if model.reuse_warm_ms > 0 else 0.0
    dedup_rate = dedup / model.reuse_dedup_ms if model.reuse_dedup_ms > 0 else 0.0
    total = warm_rate + dedup_rate
    if total == 0:
        return 0.0
    return (warm_rate * model.warm_start_ms + dedup_rate * model.dedup_start_ms) / total


def max_dedup_for_rate(model: FunctionModel, total: int) -> float:
    """Largest D satisfying the throughput constraint (eq. 2), or -1.

    With ``a = 1/R_W >= b = 1/R_D``, the capacity ``(C-D)a + Db`` falls
    as D grows; the bound solves ``(C-D)a + Db = lambda``.  Returns C
    when even all-dedup meets the rate, and -1.0 when even all-warm
    cannot (the controller must spawn more sandboxes).
    """
    a = 1.0 / model.reuse_warm_ms
    b = 1.0 / model.reuse_dedup_ms
    if total * a < model.lambda_max:
        return -1.0
    if a == b or total * b >= model.lambda_max:
        return float(total)
    return (total * a - model.lambda_max) / (a - b)


def max_dedup_for_latency(model: FunctionModel, total: int, alpha: float) -> float:
    """Largest D with mean startup within ``alpha * s_W`` (P1 bound)."""
    if alpha < 1.0:
        raise ValueError("alpha must be >= 1 (a bound below s_W is unmeetable)")
    target = alpha * model.warm_start_ms
    if model.dedup_start_ms <= target:
        return float(total)
    a = 1.0 / model.reuse_warm_ms
    b = 1.0 / model.reuse_dedup_ms
    # D*b*(s_D - target) <= (C-D)*a*(target - s_W)
    slack = a * (target - model.warm_start_ms)
    cost = b * (model.dedup_start_ms - target)
    denominator = slack + cost
    if denominator <= 0:
        return 0.0
    return total * slack / denominator


def min_dedup_for_memory(model: FunctionModel, total: int, budget_bytes: float) -> float:
    """Smallest D with total memory within budget (P2 bound), or +inf.

    Returns ``inf`` when even all-dedup exceeds the budget (infeasible —
    the policy then deduplicates aggressively and relies on eviction).
    """
    per_dedup = model.dedup_bytes + model.restore_overhead_bytes
    saving = model.warm_bytes - per_dedup
    if saving <= 0:
        # Dedup does not save memory for this function; all-warm is the
        # cheapest split — either it fits or nothing does.
        return 0.0 if memory_usage(model, total, 0) <= budget_bytes else math.inf
    if memory_usage(model, 0, total) > budget_bytes:
        return math.inf
    overage = memory_usage(model, total, 0) - budget_bytes
    if overage <= 0:
        return 0.0
    return overage / saving


def solve(
    model: FunctionModel,
    total: int,
    objective: Objective,
    *,
    alpha: float = 2.5,
    budget_bytes: float | None = None,
) -> Solution:
    """Solve P1 or P2 for one function with ``total`` live sandboxes.

    Infeasible instances return the paper's aggressive-dedup fallback
    (``D = total`` capped by nothing) with ``feasible=False``.
    """
    if total < 0:
        raise ValueError("total sandbox count must be non-negative")
    if total == 0:
        # No sandboxes: vacuously optimal, but an open demand (positive
        # lambda) is unmeetable until the scheduler spawns more.
        return Solution(
            warm=0,
            dedup=0,
            feasible=model.lambda_max <= 1e-12,
            memory_bytes=0.0,
            mean_startup_ms=0.0,
        )

    d_rate = max_dedup_for_rate(model, total)
    if objective is Objective.LATENCY:
        d_lat = max_dedup_for_latency(model, total, alpha)
        if d_rate < 0:
            # Cannot meet the rate at all: dedup aggressively; the
            # scheduler will spawn additional sandboxes for the load.
            return _finalize(model, total, total, feasible=False)
        if model.dedup_bytes + model.restore_overhead_bytes >= model.warm_bytes:
            # Dedup does not save memory: warm dominates on both axes.
            return _finalize(model, total, 0, feasible=True)
        dedup = int(min(float(total), d_lat, d_rate))
        return _finalize(model, total, dedup, feasible=True)

    if objective is Objective.MEMORY:
        if budget_bytes is None:
            raise ValueError("MEMORY objective requires budget_bytes")
        d_mem = min_dedup_for_memory(model, total, budget_bytes)
        if math.isinf(d_mem) or d_rate < 0:
            return _finalize(model, total, total, feasible=False)
        # Integer feasibility: some D with ceil(d_mem) <= D <= floor(d_rate).
        dedup = max(0, math.ceil(d_mem - 1e-9))
        if dedup > math.floor(d_rate + 1e-9):
            return _finalize(model, total, total, feasible=False)
        return _finalize(model, total, min(total, dedup), feasible=True)

    raise AssertionError(f"unhandled objective {objective}")


def _finalize(model: FunctionModel, total: int, dedup: int, *, feasible: bool) -> Solution:
    dedup = max(0, min(total, dedup))
    warm = total - dedup
    return Solution(
        warm=warm,
        dedup=dedup,
        feasible=feasible,
        memory_bytes=memory_usage(model, warm, dedup),
        mean_startup_ms=mean_startup_ms(model, warm, dedup),
    )
