"""The per-node dedup agent: dedup op and restore op (Sections 4.1-4.2).

The **dedup op** converts a warm sandbox into the dedup state: it
checkpoints the memory image, computes a value-sampled fingerprint per
page, asks the controller's fingerprint registry for candidate base
pages, picks the best base per page, and computes an xdelta-style patch
against it.  Pages with no useful base stay resident as *unique* pages;
zero pages collapse to a marker.  The resulting
:class:`DedupPageTable` — patches, unique pages and base-page addresses —
is all that remains in memory, and it is stored *locally* on the
sandbox's node so restores never touch the controller (Section 4.2).

The **restore op** reverses it: base pages are fetched (one-sided RDMA
for remote ones, batched per peer), patches are applied to recompute the
original pages, and the checkpoint is resumed.  The returned image is
byte-identical to the pre-dedup image — tests assert this.

All durations are charged at full-sandbox scale even though the content
operations run on scaled images (see the cost model's docstring).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import FingerprintConfig, page_fingerprint
from repro.memory.image import MemoryImage
from repro.memory.patch import Patch, apply_patch, compute_patch
from repro.sandbox.checkpoint import CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric

#: Full-scale metadata bytes per page entry of a dedup table (base page
#: address + patch descriptor), part of the dedup footprint.
METADATA_BYTES_PER_PAGE = 40

#: A patch larger than this fraction of the page is not worth keeping;
#: the page is stored unique instead.
UNIQUE_THRESHOLD = 0.75


class PageKind(enum.Enum):
    """Disposition of one page after the dedup op."""

    ZERO = "zero"
    UNIQUE = "unique"
    PATCHED = "patched"


@dataclass(frozen=True)
class PageEntry:
    """One page's dedup record."""

    kind: PageKind
    base: PageRef | None = None
    patch: Patch | None = None
    raw: bytes | None = None

    def retained_bytes(self) -> int:
        """Scaled content bytes this entry keeps resident."""
        if self.kind is PageKind.ZERO:
            return 0
        if self.kind is PageKind.UNIQUE:
            assert self.raw is not None
            return len(self.raw)
        assert self.patch is not None
        return self.patch.size_bytes


@dataclass(frozen=True)
class DedupStats:
    """Per-dedup-op accounting (drives Table 3 and Section 7.3.1)."""

    total_pages: int
    zero_pages: int
    unique_pages: int
    patched_pages: int
    same_function_pages: int
    cross_function_pages: int
    saved_content_bytes: int
    image_content_bytes: int

    @property
    def savings_fraction(self) -> float:
        """Fraction of the image's bytes eliminated by deduplication."""
        if self.image_content_bytes == 0:
            return 0.0
        return self.saved_content_bytes / self.image_content_bytes


@dataclass
class DedupPageTable:
    """The resident representation of a deduplicated sandbox.

    Also records everything needed to rebuild the original
    :class:`MemoryImage` (its metadata fields), so restores reconstruct
    a byte-identical image.
    """

    function: str
    instance_seed: int
    page_size: int
    content_scale: float
    aslr: bool
    regions: tuple
    entries: tuple[PageEntry, ...]
    original_checksum: str
    full_size_bytes: int
    stats: DedupStats
    base_refs: Counter[int] = field(default_factory=Counter)
    """checkpoint_id -> number of page references (refcount holdings)."""
    _retained_content_bytes: int | None = field(default=None, repr=False)

    @property
    def retained_content_bytes(self) -> int:
        """Scaled bytes resident (patches + unique pages), cached —
        node accounting queries this on every placement decision."""
        if self._retained_content_bytes is None:
            self._retained_content_bytes = sum(
                entry.retained_bytes() for entry in self.entries
            )
        return self._retained_content_bytes

    @property
    def retained_full_bytes(self) -> int:
        """Full-scale memory charge of the dedup sandbox."""
        full_pages = max(1, round(len(self.entries) / self.content_scale))
        metadata = full_pages * METADATA_BYTES_PER_PAGE
        return int(self.retained_content_bytes / self.content_scale) + metadata


@dataclass(frozen=True)
class DedupTimings:
    """Phase durations of one dedup op (full-scale ms)."""

    checkpoint_ms: float
    fingerprint_ms: float
    lookup_ms: float
    base_read_ms: float
    patch_ms: float

    @property
    def total_ms(self) -> float:
        return (
            self.checkpoint_ms
            + self.fingerprint_ms
            + self.lookup_ms
            + self.base_read_ms
            + self.patch_ms
        )


@dataclass(frozen=True)
class DedupOutcome:
    table: DedupPageTable
    timings: DedupTimings


@dataclass(frozen=True)
class RestoreTimings:
    """Phase durations of one restore op — the Figure 8 breakdown."""

    base_read_ms: float
    """'Dedup: base page reading'."""
    compute_ms: float
    """'Dedup: original page computing' (patch application)."""
    restore_ms: float
    """'Dedup: sandbox restoration' (checkpoint resume)."""

    @property
    def total_ms(self) -> float:
        return self.base_read_ms + self.compute_ms + self.restore_ms


@dataclass(frozen=True)
class RestoreOutcome:
    image: MemoryImage
    timings: RestoreTimings


class DedupAgent:
    """The dedup/restore executor of one node."""

    def __init__(
        self,
        node_id: int,
        *,
        registry: FingerprintRegistry,
        store: CheckpointStore,
        fabric: RdmaFabric,
        costs: CostModel,
        content_scale: float,
        fingerprint_config: FingerprintConfig | None = None,
        patch_level: int = 1,
        unique_threshold: float = UNIQUE_THRESHOLD,
    ):
        if not 0 < content_scale <= 1:
            raise ValueError("content_scale must be in (0, 1]")
        self.node_id = node_id
        self.registry = registry
        self.store = store
        self.fabric = fabric
        self.costs = costs
        self.content_scale = content_scale
        self.fingerprint_config = fingerprint_config or FingerprintConfig()
        self.patch_level = patch_level
        self.unique_threshold = unique_threshold
        self.dedup_ops = 0
        self.restore_ops = 0

    # ---------------------------------------------------------------- dedup

    def _full_pages(self, pages: int) -> int:
        return max(1, round(pages / self.content_scale))

    def dedup(self, sandbox: Sandbox) -> DedupOutcome:
        """Run the dedup op on a warm sandbox's image.

        Side effects: acquires refcounts on every base checkpoint the new
        page table references.  The caller (controller) is responsible
        for swapping the sandbox's image for the returned table and for
        the corresponding lifecycle transitions.
        """
        image = sandbox.image
        if image is None:
            raise RuntimeError(f"sandbox {sandbox.sandbox_id} has no image to dedup")

        page_size = image.page_size
        unique_cap = int(self.unique_threshold * page_size)
        entries: list[PageEntry] = []
        base_refs: Counter[int] = Counter()
        reads_by_peer: Counter[int] = Counter()
        zero_pages = unique_pages = patched_pages = 0
        same_fn = cross_fn = 0
        saved = 0

        for index in range(image.num_pages):
            page = image.page(index)
            if not page.any():
                entries.append(PageEntry(kind=PageKind.ZERO))
                zero_pages += 1
                saved += page_size
                continue
            fingerprint = page_fingerprint(page, self.fingerprint_config)
            choice = self.registry.choose_base_page(fingerprint, self.node_id)
            if choice is None:
                entries.append(PageEntry(kind=PageKind.UNIQUE, raw=page.tobytes()))
                unique_pages += 1
                continue
            ref, _overlap = choice
            if ref.node_id != self.node_id and not self.fabric.peer_available(ref.node_id):
                # The base's node is unreachable: keep the page unique
                # rather than depend on state we cannot read back.
                entries.append(PageEntry(kind=PageKind.UNIQUE, raw=page.tobytes()))
                unique_pages += 1
                continue
            reads_by_peer[ref.node_id] += 1
            base_page = self.store.get(ref.checkpoint_id).page_bytes(ref.page_index)
            patch = compute_patch(page, base_page, level=self.patch_level)
            if patch.size_bytes >= unique_cap:
                entries.append(PageEntry(kind=PageKind.UNIQUE, raw=page.tobytes()))
                unique_pages += 1
                continue
            entries.append(PageEntry(kind=PageKind.PATCHED, base=ref, patch=patch))
            patched_pages += 1
            saved += page_size - patch.size_bytes
            base_refs[ref.checkpoint_id] += 1
            if self.store.get(ref.checkpoint_id).function == sandbox.function:
                same_fn += 1
            else:
                cross_fn += 1

        for checkpoint_id, count in base_refs.items():
            self.store.get(checkpoint_id).acquire(count)

        stats = DedupStats(
            total_pages=image.num_pages,
            zero_pages=zero_pages,
            unique_pages=unique_pages,
            patched_pages=patched_pages,
            same_function_pages=same_fn,
            cross_function_pages=cross_fn,
            saved_content_bytes=saved,
            image_content_bytes=image.nbytes,
        )
        table = DedupPageTable(
            function=sandbox.function,
            instance_seed=image.instance_seed,
            page_size=page_size,
            content_scale=self.content_scale,
            aslr=image.aslr,
            regions=image.regions,
            entries=tuple(entries),
            original_checksum=image.checksum(),
            full_size_bytes=sandbox.profile.memory_bytes,
            stats=stats,
            base_refs=base_refs,
        )

        full_pages = self._full_pages(image.num_pages)
        scale_up = full_pages / max(1, image.num_pages)
        read_plan = {
            peer: (int(count * scale_up), int(count * scale_up) * page_size)
            for peer, count in reads_by_peer.items()
        }
        timings = DedupTimings(
            checkpoint_ms=self.costs.checkpoint_ms(full_pages),
            fingerprint_ms=self.costs.fingerprint_ms(full_pages),
            lookup_ms=self.costs.lookup_ms(full_pages),
            base_read_ms=self.fabric.batch_read_ms(read_plan, local_peer=self.node_id),
            patch_ms=self.costs.patch_compute_ms(
                max(1, round(patched_pages * scale_up))
            ),
        )
        self.dedup_ops += 1
        return DedupOutcome(table=table, timings=timings)

    # -------------------------------------------------------------- restore

    def restore(self, table: DedupPageTable, *, verify: bool = False) -> RestoreOutcome:
        """Run the restore op: rebuild the original image from the table.

        Does *not* release base refcounts — the controller does that once
        the sandbox is warm again (the base pages must stay pinned until
        the restore completes).
        """
        page_size = table.page_size
        reads_by_peer: Counter[int] = Counter()
        patched = 0
        for entry in table.entries:
            if entry.kind is PageKind.PATCHED:
                assert entry.base is not None
                reads_by_peer[entry.base.node_id] += 1
                patched += 1

        # Fetch the base pages first: an unreachable peer raises
        # PeerUnavailable *before* any reconstruction work, and the
        # controller falls back to a cold start.
        full_pages = self._full_pages(len(table.entries))
        scale_up = full_pages / max(1, len(table.entries))
        read_plan = {
            peer: (int(count * scale_up), int(count * scale_up) * page_size)
            for peer, count in reads_by_peer.items()
        }
        base_read_ms = self.fabric.batch_read_ms(read_plan, local_peer=self.node_id)

        pages: list[np.ndarray] = []
        for entry in table.entries:
            if entry.kind is PageKind.ZERO:
                pages.append(np.zeros(page_size, dtype=np.uint8))
            elif entry.kind is PageKind.UNIQUE:
                assert entry.raw is not None
                pages.append(np.frombuffer(entry.raw, dtype=np.uint8))
            else:
                assert entry.base is not None and entry.patch is not None
                base_page = self.store.get(entry.base.checkpoint_id).page_bytes(
                    entry.base.page_index
                )
                original = apply_patch(entry.patch, base_page)
                pages.append(np.frombuffer(original, dtype=np.uint8))

        data = np.concatenate(pages) if pages else np.zeros(0, dtype=np.uint8)
        image = MemoryImage(
            function=table.function,
            instance_seed=table.instance_seed,
            data=data,
            page_size=page_size,
            regions=table.regions,
            aslr=table.aslr,
        )
        if verify and image.checksum() != table.original_checksum:
            raise RuntimeError(
                f"restore of {table.function} produced a corrupted image "
                f"({image.checksum()} != {table.original_checksum})"
            )

        timings = RestoreTimings(
            base_read_ms=base_read_ms,
            compute_ms=self.costs.patch_apply_ms(max(1, round(patched * scale_up))),
            restore_ms=self.costs.restore_fixed_ms,
        )
        self.restore_ops += 1
        return RestoreOutcome(image=image, timings=timings)
