"""The per-node dedup agent: dedup op and restore op (Sections 4.1-4.2).

The **dedup op** converts a warm sandbox into the dedup state: it
checkpoints the memory image, computes a value-sampled fingerprint per
page, asks the controller's fingerprint registry for candidate base
pages, picks the best base per page, and computes an xdelta-style patch
against it.  Pages with no useful base stay resident as *unique* pages;
zero pages collapse to a marker.  The resulting
:class:`DedupPageTable` — patches, unique pages and base-page addresses —
is all that remains in memory, and it is stored *locally* on the
sandbox's node so restores never touch the controller (Section 4.2).

Two implementations of the dedup op exist.  :meth:`DedupAgent.dedup` is
the **batched pipeline**: zero pages are classified with one vectorized
reduction, one marker scan fingerprints the whole image, one registry
round-trip (``choose_base_pages``) serves every page, and base-page
fetches are grouped by checkpoint through a per-agent LRU cache of
decoded base pages (the same base pages are re-read constantly across
ops on a node).  :meth:`DedupAgent.dedup_reference` is the page-at-a-time
reference implementation; property tests assert both produce identical
page tables, and ``benchmarks/bench_dedup_throughput.py`` tracks the
pages/sec gap.

The **restore op** reverses it: base pages are fetched (one-sided RDMA
for remote ones, batched per peer), patches are applied to recompute the
original pages, and the checkpoint is resumed.  The returned image is
byte-identical to the pre-dedup image — tests assert this.

All durations are charged at full-sandbox scale even though the content
operations run on scaled images (see the cost model's docstring).
"""

from __future__ import annotations

import enum
import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro._util import LruCache
from repro.core.costs import CostModel, StageOverlap, pipelined_ms
from repro.core.registry import FingerprintRegistry, PageRef
from repro.faults.health import RegistryUnavailable
from repro.faults.retry import RetryExhausted, TransientFaults
from repro.memory.fingerprint import (
    FingerprintConfig,
    batch_page_fingerprints,
    nonzero_page_mask,
    page_fingerprint,
)
from repro.memory.image import MemoryImage
from repro.memory.patch import (
    AnchorIndex,
    Patch,
    apply_patch,
    build_anchor_index,
    compute_patch_reference,
    compute_patches,
)
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.storage.prefetch import WorkingSetRecorder
from repro.storage.store import TieredCheckpointStore
from repro.storage.tiers import StorageTier
from repro.templates.catalog import TemplateCatalog
from repro.templates.delta import (
    TemplateDeltaTable,
    build_delta_table,
    reconstruct_image,
)

if TYPE_CHECKING:
    from repro.parallel.config import ParallelConfig
    from repro.parallel.plane import DataPlane

#: Full-scale metadata bytes per page entry of a dedup table (base page
#: address + patch descriptor), part of the dedup footprint.
METADATA_BYTES_PER_PAGE = 40

#: A patch larger than this fraction of the page is not worth keeping;
#: the page is stored unique instead.
UNIQUE_THRESHOLD = 0.75

#: Default capacity (in pages) of the per-agent LRU cache of decoded
#: base pages.  4096 entries of 4 KiB pages bound the cache at 16 MiB
#: full-scale — small next to one sandbox, decisive for dedup
#: throughput because base pages repeat across ops on a node.
BASE_PAGE_CACHE_PAGES = 4096

#: Default capacity of the per-agent LRU cache of prebuilt anchor
#: indexes.  Building the index is the expensive half of anchor-matching
#: a page against its base, and the same hot base pages are patched
#: against over and over across dedup ops on a node.
ANCHOR_INDEX_CACHE_PAGES = 1024


class PageKind(enum.Enum):
    """Disposition of one page after the dedup op."""

    ZERO = "zero"
    UNIQUE = "unique"
    PATCHED = "patched"


@dataclass(frozen=True)
class PageEntry:
    """One page's dedup record."""

    kind: PageKind
    base: PageRef | None = None
    patch: Patch | None = None
    raw: bytes | None = None

    def retained_bytes(self) -> int:
        """Scaled content bytes this entry keeps resident."""
        if self.kind is PageKind.ZERO:
            return 0
        if self.kind is PageKind.UNIQUE:
            assert self.raw is not None
            return len(self.raw)
        assert self.patch is not None
        return self.patch.size_bytes


@dataclass(frozen=True)
class DedupStats:
    """Per-dedup-op accounting (drives Table 3 and Section 7.3.1)."""

    total_pages: int
    zero_pages: int
    unique_pages: int
    patched_pages: int
    same_function_pages: int
    cross_function_pages: int
    saved_content_bytes: int
    image_content_bytes: int

    @property
    def savings_fraction(self) -> float:
        """Fraction of the image's bytes eliminated by deduplication."""
        if self.image_content_bytes == 0:
            return 0.0
        return self.saved_content_bytes / self.image_content_bytes


@dataclass
class DedupPageTable:
    """The resident representation of a deduplicated sandbox.

    Also records everything needed to rebuild the original
    :class:`MemoryImage` (its metadata fields), so restores reconstruct
    a byte-identical image.
    """

    function: str
    instance_seed: int
    page_size: int
    content_scale: float
    aslr: bool
    regions: tuple
    entries: tuple[PageEntry, ...]
    original_checksum: str
    full_size_bytes: int
    stats: DedupStats
    base_refs: Counter[int] = field(default_factory=Counter)
    """checkpoint_id -> number of page references (refcount holdings)."""
    _retained_content_bytes: int | None = field(default=None, repr=False)

    @property
    def retained_content_bytes(self) -> int:
        """Scaled bytes resident (patches + unique pages), cached —
        node accounting queries this on every placement decision."""
        if self._retained_content_bytes is None:
            self._retained_content_bytes = sum(
                entry.retained_bytes() for entry in self.entries
            )
        return self._retained_content_bytes

    @property
    def retained_full_bytes(self) -> int:
        """Full-scale memory charge of the dedup sandbox."""
        full_pages = max(1, round(len(self.entries) / self.content_scale))
        metadata = full_pages * METADATA_BYTES_PER_PAGE
        return int(self.retained_content_bytes / self.content_scale) + metadata


@dataclass(frozen=True)
class DedupTimings:
    """Phase durations of one dedup op (full-scale ms).

    With stage-overlap accounting (``overlap`` set — the parallel data
    plane's timing model, DESIGN.md §10), the post-checkpoint stages are
    software-pipelined over the op's batches: fingerprinting and patch
    compute divide across the workers, the registry round-trips and the
    fabric reads of base pages do not, and the total charges the
    pipeline's critical path instead of the stage sum.  The checkpoint
    (runtime freeze + dump) stays a serial prologue — it cannot overlap
    work on pages that do not exist yet.
    """

    checkpoint_ms: float
    fingerprint_ms: float
    lookup_ms: float
    base_read_ms: float
    patch_ms: float
    overlap: StageOverlap | None = None
    retry_ms: float = 0.0
    """Transient-RPC timeout/backoff latency (serial prologue; fault
    layer only — zero otherwise)."""
    retries: int = 0

    @property
    def total_ms(self) -> float:
        if self.overlap is None:
            return (
                self.checkpoint_ms
                + self.fingerprint_ms
                + self.lookup_ms
                + self.base_read_ms
                + self.patch_ms
                + self.retry_ms
            )
        stages = (
            self.fingerprint_ms / self.overlap.workers,
            self.lookup_ms,
            self.base_read_ms,
            self.patch_ms / self.overlap.workers,
        )
        return self.checkpoint_ms + self.retry_ms + pipelined_ms(
            stages, self.overlap.batches
        )


@dataclass(frozen=True)
class DedupOutcome:
    table: DedupPageTable
    timings: DedupTimings


@dataclass(frozen=True)
class RestoreTimings:
    """Phase durations of one restore op — the Figure 8 breakdown.

    With checkpoint tiering, a recorded-working-set restore issues its
    base reads as one prefetch that overlaps patch application, so the
    total charges ``max(base_read, compute)`` plus a serial demand-miss
    read; first-touch restores keep the serial sum.
    """

    base_read_ms: float
    """'Dedup: base page reading'."""
    compute_ms: float
    """'Dedup: original page computing' (patch application)."""
    restore_ms: float
    """'Dedup: sandbox restoration' (checkpoint resume)."""
    prefetched: bool = False
    """Base reads overlapped compute (recorded working set)."""
    miss_read_ms: float = 0.0
    """Serial read of pages the recorded working set lacked."""
    prefetch_hit_pages: int = 0
    prefetch_miss_pages: int = 0
    overlap: StageOverlap | None = None
    """Stage-overlap accounting (parallel data plane): patch apply
    divides across workers and pipelines against the base reads."""
    retry_ms: float = 0.0
    """Transient-RPC timeout/backoff latency (serial prologue; fault
    layer only — zero otherwise)."""
    retries: int = 0

    @property
    def total_ms(self) -> float:
        compute_ms = self.compute_ms
        if self.overlap is not None:
            compute_ms /= self.overlap.workers
        if self.prefetched:
            # Recorded-working-set restores already overlap the one
            # batched prefetch with compute; overlap only divides the
            # compute side further.
            fetch = max(self.base_read_ms, compute_ms) + self.miss_read_ms
        elif self.overlap is not None:
            fetch = (
                pipelined_ms((self.base_read_ms, compute_ms), self.overlap.batches)
                + self.miss_read_ms
            )
        else:
            fetch = self.base_read_ms + compute_ms
        return fetch + self.restore_ms + self.retry_ms


@dataclass(frozen=True)
class RestoreOutcome:
    image: MemoryImage
    timings: RestoreTimings


@dataclass(frozen=True)
class TemplatizeOutcome:
    """Result of parking a sandbox as a template delta (DESIGN.md §14)."""

    table: TemplateDeltaTable
    duration_ms: float
    publish_ms: float
    """Charged pool write for newly published segments (0.0 on hits)."""
    segments_created: int
    segments_shared: int
    """Shareable regions served by already-published segments."""
    published_bytes: int
    retry_ms: float = 0.0
    retries: int = 0


@dataclass(frozen=True)
class ForkTimings:
    """Phase durations of one template fork (full-scale ms)."""

    promote_ms: float
    """Pool read materializing missing node replicas (0.0 once warm)."""
    apply_ms: float
    """Delta application over the replicas (patches + literal pages)."""
    restore_ms: float
    """Checkpoint resume (same fixed cost as a dedup restore)."""
    retry_ms: float = 0.0
    """Transient-RPC timeout/backoff latency on the promote read."""
    retries: int = 0

    @property
    def total_ms(self) -> float:
        return self.promote_ms + self.apply_ms + self.restore_ms + self.retry_ms


@dataclass(frozen=True)
class ForkOutcome:
    image: MemoryImage
    timings: ForkTimings
    promoted: tuple
    """Segments whose replica this fork created on the node (the
    controller pins their DRAM charge)."""
    promoted_bytes: int


class DedupAgent:
    """The dedup/restore executor of one node."""

    def __init__(
        self,
        node_id: int,
        *,
        registry: FingerprintRegistry,
        store: CheckpointStore,
        fabric: RdmaFabric,
        costs: CostModel,
        content_scale: float,
        fingerprint_config: FingerprintConfig | None = None,
        patch_level: int = 1,
        unique_threshold: float = UNIQUE_THRESHOLD,
        base_page_cache_pages: int = BASE_PAGE_CACHE_PAGES,
        anchor_index_cache_pages: int = ANCHOR_INDEX_CACHE_PAGES,
        tiering: bool = False,
        recorder: WorkingSetRecorder | None = None,
        parallel: "ParallelConfig | None" = None,
        overlap_costs: "ParallelConfig | None" = None,
        transients: TransientFaults | None = None,
        templates: TemplateCatalog | None = None,
    ):
        if not 0 < content_scale <= 1:
            raise ValueError("content_scale must be in (0, 1]")
        if tiering and not isinstance(store, TieredCheckpointStore):
            raise ValueError("tiering requires a TieredCheckpointStore")
        self.node_id = node_id
        self.registry = registry
        self.store = store
        self.fabric = fabric
        self.costs = costs
        self.content_scale = content_scale
        self.tiering = tiering
        self.recorder = recorder
        """Restore working-set recorder, shared cluster-wide (tiering
        with prefetch only; None disables recording)."""
        self.fingerprint_config = fingerprint_config or FingerprintConfig()
        self.patch_level = patch_level
        self.unique_threshold = unique_threshold
        self.parallel = parallel
        """Run the data plane on the parallel engine (None = serial)."""
        self.overlap_costs = overlap_costs
        """Charge dedup/restore timings with stage-overlap accounting
        for this parallel shape (None = serial stage sums).  Independent
        of ``parallel``: the simulator models the overlap without
        needing real worker processes."""
        self.transients = transients
        """Seeded transient-RPC failure model (fault layer; None = RPCs
        never fail transiently).  Registry lookups and remote base-page
        fetches draw a retry plan from it, charge the timeout/backoff
        latency into the op's timings, and surface
        :class:`RegistryUnavailable` / :class:`RetryExhausted` when
        every attempt fails."""
        self.templates = templates
        """Cluster-wide template catalog (DESIGN.md §14; None unless
        ``template_sharing`` is on)."""
        self._plane: "DataPlane | None" = None
        self.dedup_ops = 0
        self.restore_ops = 0
        self.templatize_ops = 0
        self.fork_ops = 0
        # Decoded base pages keyed by (checkpoint_id, page_index).
        # Checkpoint ids are never reused, so a retired checkpoint's
        # entries can only waste capacity until LRU evicts them — they
        # can never serve stale content.
        self.base_page_cache: LruCache[tuple[int, int], bytes] = LruCache(
            base_page_cache_pages
        )
        # Prebuilt anchor indexes keyed by (checkpoint_id, page_index);
        # same staleness argument as the page cache above.
        self.anchor_index_cache: LruCache[tuple[int, int], AnchorIndex] = LruCache(
            anchor_index_cache_pages
        )

    def _data_plane(self) -> "DataPlane":
        if self._plane is None:
            from repro.parallel.plane import DataPlane

            assert self.parallel is not None
            self._plane = DataPlane(self, self.parallel)
        return self._plane

    def close(self) -> None:
        """Release the parallel data plane's arena (idempotent)."""
        if self._plane is not None:
            self._plane.close()
            self._plane = None

    # ---------------------------------------------------------------- dedup

    def _full_pages(self, pages: int) -> int:
        return max(1, round(pages / self.content_scale))

    def _base_page_bytes(self, checkpoint: BaseCheckpoint, page_index: int) -> bytes:
        """A base page's content through the per-agent LRU cache."""
        key = (checkpoint.checkpoint_id, page_index)
        cached = self.base_page_cache.get(key)
        if cached is None:
            cached = checkpoint.page_bytes(page_index)
            self.base_page_cache.put(key, cached)
        return cached

    def dedup(self, sandbox: Sandbox) -> DedupOutcome:
        """Run the dedup op on a warm sandbox's image (batched pipeline).

        One vectorized pass classifies zero pages, one marker scan
        fingerprints every nonzero page, one registry round-trip picks
        every base page, and base-page fetches are grouped by checkpoint
        through the agent's LRU cache.  Produces a page table identical
        to :meth:`dedup_reference` (property-tested).

        Side effects: acquires refcounts on every base checkpoint the new
        page table references.  The caller (controller) is responsible
        for swapping the sandbox's image for the returned table and for
        the corresponding lifecycle transitions.
        """
        image = sandbox.image
        if image is None:
            raise RuntimeError(f"sandbox {sandbox.sandbox_id} has no image to dedup")
        if self.parallel is not None:
            return self._data_plane().dedup(sandbox)

        page_size = image.page_size
        data = image.data
        unique_cap = int(self.unique_threshold * page_size)
        base_refs: Counter[int] = Counter()
        reads_by_peer: Counter[int] = Counter()
        unique_pages = patched_pages = 0
        same_fn = cross_fn = 0

        nonzero = nonzero_page_mask(data, page_size)
        nonzero_indices = np.flatnonzero(nonzero)
        zero_pages = image.num_pages - int(nonzero_indices.size)
        saved = zero_pages * page_size
        zero_entry = PageEntry(kind=PageKind.ZERO)
        entries: list[PageEntry | None] = [
            None if nz else zero_entry for nz in nonzero
        ]

        def keep_unique(index: int) -> None:
            nonlocal unique_pages
            start = index * page_size
            entries[index] = PageEntry(
                kind=PageKind.UNIQUE, raw=data[start : start + page_size].tobytes()
            )
            unique_pages += 1

        fingerprints = batch_page_fingerprints(
            data, page_size, self.fingerprint_config, pages=nonzero_indices
        )
        choices = self.registry.choose_base_pages(
            fingerprints, self.node_id, sandbox.domain
        )

        # Classify pages, deferring base-page content to a grouped fetch.
        chosen: list[tuple[int, PageRef]] = []
        for index, choice in zip(nonzero_indices.tolist(), choices):
            if choice is None:
                keep_unique(index)
                continue
            ref, _overlap = choice
            if ref.node_id != self.node_id and not self.fabric.peer_available(ref.node_id):
                # The base's node is unreachable: keep the page unique
                # rather than depend on state we cannot read back.
                keep_unique(index)
                continue
            reads_by_peer[ref.node_id] += 1
            chosen.append((index, ref))

        # One checkpoint resolution per distinct base checkpoint; page
        # content flows through the LRU cache.
        by_checkpoint: dict[int, list[tuple[int, PageRef]]] = defaultdict(list)
        for index, ref in chosen:
            by_checkpoint[ref.checkpoint_id].append((index, ref))
        base_pages: dict[int, bytes] = {}
        checkpoint_functions: dict[int, str] = {}
        for checkpoint_id, group in by_checkpoint.items():
            checkpoint = self.store.get(checkpoint_id)
            checkpoint_functions[checkpoint_id] = checkpoint.function
            base_pages.update(
                (index, self._base_page_bytes(checkpoint, ref.page_index))
                for index, ref in group
            )

        # Patch every chosen page in one batched pass: the aligned diff
        # runs as a single 2-D numpy operation over the whole batch, and
        # pages falling back to anchor matching reuse cached base-page
        # anchor indexes (built lazily, only when a fallback needs one).
        targets = [
            data[index * page_size : (index + 1) * page_size] for index, _ in chosen
        ]
        bases = [base_pages[index] for index, _ in chosen]

        def anchor_index_for(j: int) -> AnchorIndex:
            ref = chosen[j][1]
            key = (ref.checkpoint_id, ref.page_index)
            cached = self.anchor_index_cache.get(key)
            if cached is None:
                cached = build_anchor_index(bases[j], self.patch_level)
                self.anchor_index_cache.put(key, cached)
            return cached

        patches = compute_patches(
            targets, bases, level=self.patch_level, index_provider=anchor_index_for
        )
        for (index, ref), patch in zip(chosen, patches):
            if patch.size_bytes >= unique_cap:
                keep_unique(index)
                continue
            entries[index] = PageEntry(kind=PageKind.PATCHED, base=ref, patch=patch)
            patched_pages += 1
            saved += page_size - patch.size_bytes
            base_refs[ref.checkpoint_id] += 1
            if checkpoint_functions[ref.checkpoint_id] == sandbox.function:
                same_fn += 1
            else:
                cross_fn += 1

        assert all(entry is not None for entry in entries)
        return self._finish_dedup(
            sandbox,
            image,
            entries,  # type: ignore[arg-type]
            base_refs=base_refs,
            reads_by_peer=reads_by_peer,
            zero_pages=zero_pages,
            unique_pages=unique_pages,
            patched_pages=patched_pages,
            same_fn=same_fn,
            cross_fn=cross_fn,
            saved=saved,
        )

    def dedup_reference(self, sandbox: Sandbox) -> DedupOutcome:
        """The page-at-a-time dedup op (reference implementation).

        Semantically identical to :meth:`dedup` — per-page fingerprints,
        per-page registry calls, per-page base fetches straight from the
        store — kept as the ground truth the batched pipeline is
        property-tested against, and as the benchmark baseline.
        """
        image = sandbox.image
        if image is None:
            raise RuntimeError(f"sandbox {sandbox.sandbox_id} has no image to dedup")

        page_size = image.page_size
        unique_cap = int(self.unique_threshold * page_size)
        entries: list[PageEntry] = []
        base_refs: Counter[int] = Counter()
        reads_by_peer: Counter[int] = Counter()
        zero_pages = unique_pages = patched_pages = 0
        same_fn = cross_fn = 0
        saved = 0

        for index in range(image.num_pages):
            page = image.page(index)
            if not page.any():
                entries.append(PageEntry(kind=PageKind.ZERO))
                zero_pages += 1
                saved += page_size
                continue
            fingerprint = page_fingerprint(page, self.fingerprint_config)
            choice = self.registry.choose_base_page(
                fingerprint, self.node_id, sandbox.domain
            )
            if choice is None:
                entries.append(PageEntry(kind=PageKind.UNIQUE, raw=page.tobytes()))
                unique_pages += 1
                continue
            ref, _overlap = choice
            if ref.node_id != self.node_id and not self.fabric.peer_available(ref.node_id):
                # The base's node is unreachable: keep the page unique
                # rather than depend on state we cannot read back.
                entries.append(PageEntry(kind=PageKind.UNIQUE, raw=page.tobytes()))
                unique_pages += 1
                continue
            reads_by_peer[ref.node_id] += 1
            base_page = self.store.get(ref.checkpoint_id).page_bytes(ref.page_index)
            patch = compute_patch_reference(page, base_page, level=self.patch_level)
            if patch.size_bytes >= unique_cap:
                entries.append(PageEntry(kind=PageKind.UNIQUE, raw=page.tobytes()))
                unique_pages += 1
                continue
            entries.append(PageEntry(kind=PageKind.PATCHED, base=ref, patch=patch))
            patched_pages += 1
            saved += page_size - patch.size_bytes
            base_refs[ref.checkpoint_id] += 1
            if self.store.get(ref.checkpoint_id).function == sandbox.function:
                same_fn += 1
            else:
                cross_fn += 1

        return self._finish_dedup(
            sandbox,
            image,
            entries,
            base_refs=base_refs,
            reads_by_peer=reads_by_peer,
            zero_pages=zero_pages,
            unique_pages=unique_pages,
            patched_pages=patched_pages,
            same_fn=same_fn,
            cross_fn=cross_fn,
            saved=saved,
        )

    def _finish_dedup(
        self,
        sandbox: Sandbox,
        image: MemoryImage,
        entries: list[PageEntry],
        *,
        base_refs: Counter[int],
        reads_by_peer: Counter[int],
        zero_pages: int,
        unique_pages: int,
        patched_pages: int,
        same_fn: int,
        cross_fn: int,
        saved: int,
    ) -> DedupOutcome:
        """Shared tail of both dedup paths: refcounts, table, timings."""
        # Resolve the registry RPC's transient-fault plan BEFORE touching
        # refcounts: an exhausted op must leave no state behind.
        retry_ms = 0.0
        retries = 0
        if self.transients is not None:
            plan = self.transients.plan("registry-lookup")
            if not plan.succeeded:
                raise RegistryUnavailable(
                    f"registry lookup for sandbox {sandbox.sandbox_id}: "
                    f"all {plan.attempts} attempts timed out"
                )
            retry_ms = plan.charged_ms
            retries = plan.attempts
        for checkpoint_id, count in base_refs.items():
            self.store.get(checkpoint_id).acquire(count)

        stats = DedupStats(
            total_pages=image.num_pages,
            zero_pages=zero_pages,
            unique_pages=unique_pages,
            patched_pages=patched_pages,
            same_function_pages=same_fn,
            cross_function_pages=cross_fn,
            saved_content_bytes=saved,
            image_content_bytes=image.nbytes,
        )
        table = DedupPageTable(
            function=sandbox.function,
            instance_seed=image.instance_seed,
            page_size=image.page_size,
            content_scale=self.content_scale,
            aslr=image.aslr,
            regions=image.regions,
            entries=tuple(entries),
            original_checksum=image.checksum(),
            full_size_bytes=sandbox.profile.memory_bytes,
            stats=stats,
            base_refs=base_refs,
        )

        full_pages = self._full_pages(image.num_pages)
        scale_up = full_pages / max(1, image.num_pages)
        read_plan = {
            peer: (int(count * scale_up), int(count * scale_up) * image.page_size)
            for peer, count in reads_by_peer.items()
        }
        overlap = self._stage_overlap(full_pages)
        if overlap is None:
            lookup_ms = self.costs.lookup_ms(full_pages)
        else:
            # Batched registry front end: one RPC per batch, table work
            # per page (Section 4.3's batched registry traffic).
            lookup_ms = self.costs.lookup_batched_ms(full_pages, overlap.batches)
        timings = DedupTimings(
            checkpoint_ms=self.costs.checkpoint_ms(full_pages),
            fingerprint_ms=self.costs.fingerprint_ms(full_pages),
            lookup_ms=lookup_ms,
            base_read_ms=self.fabric.batch_read_ms(read_plan, local_peer=self.node_id),
            patch_ms=self.costs.patch_compute_ms(
                max(1, round(patched_pages * scale_up))
            ),
            overlap=overlap,
            retry_ms=retry_ms,
            retries=retries,
        )
        self.dedup_ops += 1
        return DedupOutcome(table=table, timings=timings)

    def _stage_overlap(self, full_pages: int) -> StageOverlap | None:
        """The op's stage-overlap shape under ``overlap_costs`` (or None)."""
        if self.overlap_costs is None:
            return None
        batches = max(1, math.ceil(full_pages / self.overlap_costs.batch_pages))
        return StageOverlap(workers=self.overlap_costs.workers, batches=batches)

    # -------------------------------------------------------------- restore

    def restore(self, table: DedupPageTable, *, verify: bool = False) -> RestoreOutcome:
        """Run the restore op: rebuild the original image from the table.

        Base-page fetches are grouped by checkpoint and served through
        the agent's LRU cache; the output buffer starts zeroed so zero
        pages cost nothing to materialize.

        Does *not* release base refcounts — the controller does that once
        the sandbox is warm again (the base pages must stay pinned until
        the restore completes).
        """
        page_size = table.page_size
        reads_by_peer: Counter[int] = Counter()
        by_checkpoint: dict[int, list[int]] = defaultdict(list)
        patched = 0
        for index, entry in enumerate(table.entries):
            if entry.kind is PageKind.PATCHED:
                assert entry.base is not None
                reads_by_peer[entry.base.node_id] += 1
                by_checkpoint[entry.base.checkpoint_id].append(index)
                patched += 1

        # Resolve the base-fetch RPC's transient-fault plan before any
        # cost is charged: exhausted retries surface RetryExhausted and
        # the controller takes the next rung of the fallback ladder.
        # Entirely-local fetches involve no RPC and never fail this way.
        retry_ms = 0.0
        retries = 0
        if self.transients is not None and any(
            peer != self.node_id for peer in reads_by_peer
        ):
            plan = self.transients.plan("restore-fetch")
            if not plan.succeeded:
                raise RetryExhausted("restore-fetch", plan.attempts, plan.charged_ms)
            retry_ms = plan.charged_ms
            retries = plan.attempts

        # Fetch the base pages first: an unreachable peer raises
        # PeerUnavailable *before* any reconstruction work, and the
        # controller falls back to a cold start.
        full_pages = self._full_pages(len(table.entries))
        scale_up = full_pages / max(1, len(table.entries))
        if self.tiering:
            (
                base_read_ms,
                prefetched,
                miss_read_ms,
                hit_pages,
                miss_pages,
            ) = self._tiered_base_read(table, page_size, scale_up)
        else:
            read_plan = {
                peer: (int(count * scale_up), int(count * scale_up) * page_size)
                for peer, count in reads_by_peer.items()
            }
            base_read_ms = self.fabric.batch_read_ms(read_plan, local_peer=self.node_id)
            prefetched = False
            miss_read_ms = 0.0
            hit_pages = miss_pages = 0

        if self.parallel is not None:
            data = self._data_plane().reconstruct(table, by_checkpoint)
        else:
            data = self._reconstruct(table, by_checkpoint)

        image = MemoryImage(
            function=table.function,
            instance_seed=table.instance_seed,
            data=data,
            page_size=page_size,
            regions=table.regions,
            aslr=table.aslr,
        )
        if verify and image.checksum() != table.original_checksum:
            raise RuntimeError(
                f"restore of {table.function} produced a corrupted image "
                f"({image.checksum()} != {table.original_checksum})"
            )

        timings = RestoreTimings(
            base_read_ms=base_read_ms,
            compute_ms=self.costs.patch_apply_ms(max(1, round(patched * scale_up))),
            restore_ms=self.costs.restore_fixed_ms,
            prefetched=prefetched,
            miss_read_ms=miss_read_ms,
            prefetch_hit_pages=hit_pages,
            prefetch_miss_pages=miss_pages,
            overlap=self._stage_overlap(max(1, round(patched * scale_up))),
            retry_ms=retry_ms,
            retries=retries,
        )
        self.restore_ops += 1
        return RestoreOutcome(image=image, timings=timings)

    def _reconstruct(
        self, table: DedupPageTable, by_checkpoint: dict[int, list[int]]
    ) -> np.ndarray:
        """Serial content reconstruction of ``table`` (restore op body)."""
        page_size = table.page_size
        # Zero-initialized buffer: zero pages are already materialized.
        data = np.zeros(len(table.entries) * page_size, dtype=np.uint8)
        for index, entry in enumerate(table.entries):
            if entry.kind is PageKind.UNIQUE:
                assert entry.raw is not None
                start = index * page_size
                data[start : start + len(entry.raw)] = np.frombuffer(
                    entry.raw, dtype=np.uint8
                )
        for checkpoint_id, indices in by_checkpoint.items():
            checkpoint = self.store.get(checkpoint_id)
            for index in indices:
                entry = table.entries[index]
                assert entry.base is not None and entry.patch is not None
                base_page = self._base_page_bytes(checkpoint, entry.base.page_index)
                original = apply_patch(entry.patch, base_page)
                start = index * page_size
                data[start : start + len(original)] = np.frombuffer(
                    original, dtype=np.uint8
                )
        return data

    # ---------------------------------------------------- template forks

    def templatize(self, sandbox: Sandbox) -> TemplatizeOutcome:
        """Park a warm sandbox as a delta against shared template segments.

        Ensures the catalog holds a segment per shareable RUNTIME/LIBRARY
        region (publishing missing ones to the remote-DRAM pool — one
        charged write, all-or-nothing), factors the image into segment
        patches plus private pages, and acquires a catalog reference per
        segment.  No registry traffic, no fingerprinting, no base-page
        fetches: the segments *are* the bases.

        Raises :class:`repro.templates.catalog.TemplatePoolFull` (pool
        cannot fit the new segments) or :class:`RetryExhausted` (pool
        write's transient-RPC plan failed) *before* any state is created;
        the controller then falls back to the dedup path.
        """
        catalog = self.templates
        if catalog is None:
            raise RuntimeError("agent has no template catalog")
        image = sandbox.image
        if image is None:
            raise RuntimeError(
                f"sandbox {sandbox.sandbox_id} has no image to templatize"
            )
        # Resolve the pool write's transient-fault plan BEFORE publishing
        # anything: an exhausted op must leave no state behind.
        retry_ms = 0.0
        retries = 0
        if self.transients is not None:
            plan = self.transients.plan("template-publish")
            if not plan.succeeded:
                raise RetryExhausted("template-publish", plan.attempts, plan.charged_ms)
            retry_ms = plan.charged_ms
            retries = plan.attempts

        segments, created, publish_ms = catalog.ensure_segments(
            image.regions, sandbox.domain
        )
        table = build_delta_table(
            image,
            {segment.key: segment.content for segment in segments},
            content_scale=self.content_scale,
            full_size_bytes=sandbox.profile.memory_bytes,
            level=catalog.config.patch_level,
            domain=sandbox.domain,
        )
        catalog.acquire(table.segment_keys)

        full_pages = self._full_pages(image.num_pages)
        scale_up = full_pages / max(1, image.num_pages)
        duration_ms = (
            self.costs.checkpoint_ms(full_pages)
            + self.costs.patch_compute_ms(
                max(1, round(table.patched_pages * scale_up))
            )
            + publish_ms
            + retry_ms
        )
        self.templatize_ops += 1
        return TemplatizeOutcome(
            table=table,
            duration_ms=duration_ms,
            publish_ms=publish_ms,
            segments_created=len(created),
            segments_shared=len(segments) - len(created),
            published_bytes=sum(segment.full_bytes for segment in created),
            retry_ms=retry_ms,
            retries=retries,
        )

    def fork_restore(
        self, table: TemplateDeltaTable, *, now: float, verify: bool = False
    ) -> ForkOutcome:
        """Fork a parked template sandbox back to a byte-exact image.

        Promotes any segment the node lacks a replica of (one batched
        pool read — the charged promote of a template's first local
        fork; later forks on the node move no bytes), applies the delta
        over the replicas, and resumes the checkpoint.  Does *not*
        release the table's catalog references — the controller does
        that once the sandbox is warm again.
        """
        catalog = self.templates
        if catalog is None:
            raise RuntimeError("agent has no template catalog")
        keys = table.segment_keys
        # Forks served entirely from local replicas involve no RPC and
        # never fail transiently; a promote is a remote-pool read and
        # resolves its retry plan before any side effects.
        retry_ms = 0.0
        retries = 0
        if self.transients is not None and catalog.missing_on(self.node_id, keys):
            plan = self.transients.plan("template-fork")
            if not plan.succeeded:
                raise RetryExhausted("template-fork", plan.attempts, plan.charged_ms)
            retry_ms = plan.charged_ms
            retries = plan.attempts

        promoted, promoted_bytes, promote_ms = catalog.promote(
            self.node_id, keys, now
        )
        image = reconstruct_image(
            table,
            {segment.key: segment.content for segment in catalog.segments_for(keys)},
            verify=verify,
        )

        full_pages = self._full_pages(table.num_pages)
        scale_up = full_pages / max(1, table.num_pages)
        timings = ForkTimings(
            promote_ms=promote_ms,
            apply_ms=self.costs.patch_apply_ms(
                max(1, round(table.patched_pages * scale_up))
            ),
            restore_ms=self.costs.restore_fixed_ms,
            retry_ms=retry_ms,
            retries=retries,
        )
        self.fork_ops += 1
        return ForkOutcome(
            image=image,
            timings=timings,
            promoted=tuple(promoted),
            promoted_bytes=promoted_bytes,
        )

    # ------------------------------------------------------ tiered reads

    def _tiered_base_read(
        self, table: DedupPageTable, page_size: int, scale_up: float
    ) -> tuple[float, bool, float, int, int]:
        """Base-read costing under checkpoint tiering (DESIGN.md §9).

        Returns ``(base_read_ms, prefetched, miss_read_ms, hit_pages,
        miss_pages)``.  On the first restore of a (function, base set)
        key, every base page is demand-read serially and the exact set
        of fetched pages is recorded; later restores issue the recorded
        set as one batched prefetch (``base_read_ms`` overlaps patch
        compute) and only demand-read the recording's misses.
        """
        assert isinstance(self.store, TieredCheckpointStore)
        needed_cids = sorted(table.base_refs.keys())
        # Validate every involved node's reachability up front: a restore
        # either proceeds in full or fails fast to the cold fallback,
        # with no cost charged — SSD-resident state shares its owning
        # node's failure domain, the far-memory pool has none.
        for checkpoint_id in needed_cids:
            checkpoint = self.store.get(checkpoint_id)
            if (
                checkpoint.tier is not StorageTier.REMOTE_DRAM
                and checkpoint.node_id != self.node_id
            ):
                self.fabric.require_peer(checkpoint.node_id)

        recorded = None
        key = None
        if self.recorder is not None:
            key = WorkingSetRecorder.key_for(table.function, needed_cids)
            recorded = self.recorder.lookup(key)

        hit_by_checkpoint: Counter[int] = Counter()
        miss_by_checkpoint: Counter[int] = Counter()
        for entry in table.entries:
            if entry.kind is not PageKind.PATCHED:
                continue
            assert entry.base is not None
            address = (entry.base.checkpoint_id, entry.base.page_index)
            if recorded is not None and address in recorded:
                hit_by_checkpoint[entry.base.checkpoint_id] += 1
            else:
                miss_by_checkpoint[entry.base.checkpoint_id] += 1

        if recorded is None:
            # First touch: one serial demand read, then record the set.
            base_read_ms = self._channel_read_ms(
                miss_by_checkpoint, page_size, scale_up
            )
            if self.recorder is not None and key is not None:
                self.recorder.record(
                    key,
                    frozenset(
                        (entry.base.checkpoint_id, entry.base.page_index)
                        for entry in table.entries
                        if entry.kind is PageKind.PATCHED and entry.base is not None
                    ),
                )
            return base_read_ms, False, 0.0, 0, 0

        base_read_ms = self._channel_read_ms(hit_by_checkpoint, page_size, scale_up)
        miss_read_ms = self._channel_read_ms(miss_by_checkpoint, page_size, scale_up)
        hit_pages = int(sum(hit_by_checkpoint.values()) * scale_up)
        miss_pages = int(sum(miss_by_checkpoint.values()) * scale_up)
        assert self.recorder is not None
        self.recorder.note_prefetch(hit_pages, miss_pages)
        return base_read_ms, True, miss_read_ms, hit_pages, miss_pages

    def _channel_read_ms(
        self, counts_by_checkpoint: Counter[int], page_size: int, scale_up: float
    ) -> float:
        """One batched multi-channel fetch of base pages by residency.

        Node-DRAM pages go over the RDMA fabric (pipelined per peer),
        far-memory pages over the pool link, SSD pages through each
        owning node's drive; the channels proceed in parallel, so the
        cost is the slowest channel — the same shape as
        :meth:`RdmaFabric.batch_read_ms`.
        """
        assert isinstance(self.store, TieredCheckpointStore)
        config = self.store.config
        fabric_plan: dict[int, tuple[int, int]] = {}
        remote_dram_bytes = 0
        ssd_bytes: Counter[int] = Counter()
        for checkpoint_id in sorted(counts_by_checkpoint):
            checkpoint = self.store.get(checkpoint_id)
            ops = int(counts_by_checkpoint[checkpoint_id] * scale_up)
            nbytes = ops * page_size
            if checkpoint.tier is StorageTier.NODE_DRAM:
                prev_ops, prev_bytes = fabric_plan.get(checkpoint.node_id, (0, 0))
                fabric_plan[checkpoint.node_id] = (prev_ops + ops, prev_bytes + nbytes)
            elif checkpoint.tier is StorageTier.REMOTE_DRAM:
                remote_dram_bytes += nbytes
            else:
                ssd_bytes[checkpoint.node_id] += nbytes
        cost = self.fabric.batch_read_ms(fabric_plan, local_peer=self.node_id)
        if remote_dram_bytes:
            cost = max(cost, config.remote_dram_read_ms(remote_dram_bytes))
        for node_id in sorted(ssd_bytes):
            cost = max(cost, config.ssd_read_ms(ssd_bytes[node_id]))
        return cost
