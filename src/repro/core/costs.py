"""Timing cost model for sandbox operations.

Content operations (fingerprinting, patching) run on scaled-down images,
but all *reported* durations correspond to full-size sandboxes: per-page
costs are charged for ``num_pages / content_scale`` pages.  Constants
are calibrated against the paper's measured anchors:

* warm start ~10 ms (Section 1: 1-20 ms depending on runtime);
* registry lookup ~80 us/page — the paper's single-threaded controller
  measurement (Section 7.7: 130 ms for Vanilla's 4 K pages to 1850 ms
  for ModelTrain's 22 K pages);
* dedup op total 2-3.3 s (Section 7.7), dominated by lookups + patches;
* dedup-start memory restoration ~140 ms typical (Section 4.2), growing
  with pages fetched and with fingerprint cardinality (378 -> 554 ms in
  the Section 7.8 sweep).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Durations (ms / us) of the platform's mechanical steps."""

    warm_start_ms: float = 10.0
    """Unpausing a warm sandbox."""

    checkpoint_fixed_ms: float = 900.0
    """Fixed cost of a memory checkpoint (runtime freeze, dump setup,
    namespace/process-tree pre-restore done eagerly at dedup time so
    restores stay fast, Section 4.2)."""

    checkpoint_us_per_page: float = 3.0
    """Per-page cost of capturing the memory dump."""

    fingerprint_us_per_page: float = 8.0
    """Value-sampling scan + 5 chunk hashes per page."""

    lookup_us_per_page: float = 70.0
    """Controller fingerprint-registry lookup, per page (Section 7.7)."""

    patch_compute_us_per_page: float = 40.0
    """Xdelta-style patch computation per deduplicated page."""

    patch_apply_us_per_page: float = 8.0
    """Patch application (original page computing) during restore."""

    restore_fixed_ms: float = 40.0
    """Final checkpoint-resume cost (memory-state load + unfreeze); the
    expensive namespace/fork work was done at dedup time."""

    base_register_us_per_page: float = 50.0
    """Inserting one base page's sampled chunks into the registry."""

    spawn_placement_ms: float = 2.0
    """Controller/daemon overhead of placing any start."""

    def checkpoint_ms(self, full_pages: int) -> float:
        """Duration of a full memory checkpoint of ``full_pages`` pages."""
        return self.checkpoint_fixed_ms + full_pages * self.checkpoint_us_per_page / 1e3

    def fingerprint_ms(self, full_pages: int) -> float:
        return full_pages * self.fingerprint_us_per_page / 1e3

    def lookup_ms(self, full_pages: int) -> float:
        return full_pages * self.lookup_us_per_page / 1e3

    def patch_compute_ms(self, full_pages: int) -> float:
        return full_pages * self.patch_compute_us_per_page / 1e3

    def patch_apply_ms(self, full_pages: int) -> float:
        return full_pages * self.patch_apply_us_per_page / 1e3

    def register_ms(self, full_pages: int) -> float:
        return full_pages * self.base_register_us_per_page / 1e3
