"""Timing cost model for sandbox operations.

Content operations (fingerprinting, patching) run on scaled-down images,
but all *reported* durations correspond to full-size sandboxes: per-page
costs are charged for ``num_pages / content_scale`` pages.  Constants
are calibrated against the paper's measured anchors:

* warm start ~10 ms (Section 1: 1-20 ms depending on runtime);
* registry lookup ~80 us/page — the paper's single-threaded controller
  measurement (Section 7.7: 130 ms for Vanilla's 4 K pages to 1850 ms
  for ModelTrain's 22 K pages);
* dedup op total 2-3.3 s (Section 7.7), dominated by lookups + patches;
* dedup-start memory restoration ~140 ms typical (Section 4.2), growing
  with pages fetched and with fingerprint cardinality (378 -> 554 ms in
  the Section 7.8 sweep).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Sequence


def pipelined_ms(stages: Sequence[float], batches: int) -> float:
    """Critical path of ``stages`` software-pipelined over ``batches``.

    With the op's pages split into ``batches`` equal batches and every
    stage free to work on a different batch concurrently (the parallel
    data plane's structure), the makespan is one batch through every
    stage (the ramp, ``sum/batches``) plus the bottleneck stage's
    remaining batches (``max * (batches-1)/batches``).  ``batches=1``
    degenerates to the serial sum.
    """
    if batches < 1:
        raise ValueError("batches must be positive")
    total = sum(stages)
    if batches == 1 or not stages:
        return total
    return total / batches + max(stages) * (batches - 1) / batches


@dataclass(frozen=True)
class StageOverlap:
    """How a dedup/restore op's stages overlap (parallel data plane).

    ``workers`` divides the compute-bound stages (fingerprint, patch
    compute/apply); the registry round-trip and the base-page fabric
    reads are I/O against shared services and do not scale with local
    workers.  ``batches`` is how many page batches the op was split
    into — the software-pipelining depth of the timing model.
    """

    workers: int
    batches: int

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.batches < 1:
            raise ValueError("batches must be positive")


@dataclass(frozen=True)
class CostModel:
    """Durations (ms / us) of the platform's mechanical steps."""

    warm_start_ms: float = 10.0
    """Unpausing a warm sandbox."""

    checkpoint_fixed_ms: float = 900.0
    """Fixed cost of a memory checkpoint (runtime freeze, dump setup,
    namespace/process-tree pre-restore done eagerly at dedup time so
    restores stay fast, Section 4.2)."""

    checkpoint_us_per_page: float = 3.0
    """Per-page cost of capturing the memory dump."""

    fingerprint_us_per_page: float = 8.0
    """Value-sampling scan + 5 chunk hashes per page."""

    lookup_us_per_page: float = 70.0
    """Controller fingerprint-registry lookup, per page (Section 7.7)."""

    lookup_rpc_us: float = 50.0
    """Round-trip/marshalling share of ``lookup_us_per_page``: the part
    a batched registry front end pays once per *batch* instead of once
    per page (Section 4.3 batches registry traffic for exactly this
    reason).  The remainder (``lookup_us_per_page - lookup_rpc_us``) is
    per-page table work, paid either way."""

    patch_compute_us_per_page: float = 40.0
    """Xdelta-style patch computation per deduplicated page."""

    patch_apply_us_per_page: float = 8.0
    """Patch application (original page computing) during restore."""

    restore_fixed_ms: float = 40.0
    """Final checkpoint-resume cost (memory-state load + unfreeze); the
    expensive namespace/fork work was done at dedup time."""

    base_register_us_per_page: float = 50.0
    """Inserting one base page's sampled chunks into the registry."""

    spawn_placement_ms: float = 2.0
    """Controller/daemon overhead of placing any start."""

    def checkpoint_ms(self, full_pages: int) -> float:
        """Duration of a full memory checkpoint of ``full_pages`` pages."""
        return self.checkpoint_fixed_ms + full_pages * self.checkpoint_us_per_page / 1e3

    def fingerprint_ms(self, full_pages: int) -> float:
        return full_pages * self.fingerprint_us_per_page / 1e3

    def lookup_ms(self, full_pages: int) -> float:
        return full_pages * self.lookup_us_per_page / 1e3

    def lookup_batched_ms(self, full_pages: int, batches: int) -> float:
        """Registry lookup with per-batch (not per-page) round-trips.

        Charges the RPC/marshalling share once per batch and the table
        work per page.  ``batches >= full_pages`` degenerates to
        :meth:`lookup_ms` (one round-trip per page); ``batches`` is
        clamped so a sparse op is never charged more than the serial
        model.
        """
        if batches < 1:
            raise ValueError("batches must be positive")
        batches = min(batches, full_pages) or 1
        table_us = self.lookup_us_per_page - self.lookup_rpc_us
        return (batches * self.lookup_rpc_us + full_pages * table_us) / 1e3

    def patch_compute_ms(self, full_pages: int) -> float:
        return full_pages * self.patch_compute_us_per_page / 1e3

    def patch_apply_ms(self, full_pages: int) -> float:
        return full_pages * self.patch_apply_us_per_page / 1e3

    def register_ms(self, full_pages: int) -> float:
        return full_pages * self.base_register_us_per_page / 1e3

    def with_measured_fingerprint(self, **kwargs) -> "CostModel":
        """This model with ``fingerprint_us_per_page`` measured, not assumed.

        Runs :func:`measure_fingerprint_us_per_page` on this machine and
        returns a copy carrying the result, so simulated dedup-op timings
        track the actual batch kernel rather than the paper-era default.
        Opt-in: the default constants stay fixed for reproducibility.
        """
        return replace(
            self, fingerprint_us_per_page=measure_fingerprint_us_per_page(**kwargs)
        )


def measure_fingerprint_us_per_page(
    page_size: int = 4096,
    pages: int = 2048,
    config=None,
    repeats: int = 3,
) -> float:
    """Measured per-page cost (us) of the batch fingerprint kernel.

    Times :func:`~repro.memory.fingerprint.batch_page_fingerprints` over
    a deterministic pseudo-random buffer (min over ``repeats``) — the
    calibration source for :attr:`CostModel.fingerprint_us_per_page`.
    Imports lazily so the cost model stays importable without numpy
    workloads in play.
    """
    import numpy as np

    from repro._util import rng_for
    from repro.memory.fingerprint import batch_page_fingerprints

    if pages <= 0:
        raise ValueError("pages must be positive")
    rng = rng_for("fingerprint-calibration", page_size, pages)
    data = rng.integers(0, 256, size=page_size * pages, dtype=np.uint8)
    batch_page_fingerprints(data, page_size, config)  # warm up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch_page_fingerprints(data, page_size, config)
        best = min(best, time.perf_counter() - t0)
    return best / pages * 1e6
