"""Discrete-event simulation substrate: the event engine and the RDMA fabric."""

from repro.sim.engine import SimulationError, Simulator, Timer
from repro.sim.network import PeerUnavailable, RdmaConfig, RdmaFabric, TransferStats

__all__ = [
    "PeerUnavailable",
    "RdmaConfig",
    "RdmaFabric",
    "SimulationError",
    "Simulator",
    "Timer",
    "TransferStats",
]
