"""RDMA fabric cost model.

Medes restores fetch base pages from remote machines with one-sided RDMA
reads (Section 4.2), which cost no remote CPU and land in the tens of
microseconds.  The simulator needs only the *latency* of such transfers,
which this model derives from per-operation latency plus line-rate
serialisation, with batching/pipelining across many page reads from the
same peer (QP pipelining keeps only the first read paying full RTT).

Local reads (base page on the same node) bypass the fabric entirely and
pay a small memory-copy cost.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RdmaConfig:
    """Fabric parameters (defaults model the paper's 10 Gbps testbed)."""

    read_latency_us: float = 5.0
    """One-sided READ latency for the first operation to a peer."""

    pipelined_op_us: float = 0.6
    """Incremental cost of each further pipelined READ to the same peer."""

    bandwidth_gbps: float = 10.0
    """Line rate used for payload serialisation."""

    local_copy_us_per_kb: float = 0.05
    """Cost of a local memory copy, per KiB."""

    def __post_init__(self) -> None:
        if (
            min(
                self.read_latency_us,
                self.pipelined_op_us,
                self.bandwidth_gbps,
                self.local_copy_us_per_kb,
            )
            <= 0
        ):
            raise ValueError("RDMA parameters must be positive")


@dataclass
class TransferStats:
    """Aggregate counters kept by the fabric (for overhead reporting)."""

    remote_reads: int = 0
    remote_bytes: int = 0
    local_reads: int = 0
    local_bytes: int = 0
    failed_reads: int = 0
    degraded_reads: int = 0


class PeerUnavailable(RuntimeError):
    """A one-sided read targeted a peer that is currently unreachable.

    Raised before any cost is charged; callers (the dedup agent and, one
    level up, the controller) decide the fallback — for restores this
    means falling back to a cold start (paper Section 4.1.3 discusses
    reducing the impact of base-sandbox unavailability).
    """

    def __init__(self, peer: object):
        super().__init__(f"peer {peer} unreachable")
        self.peer = peer


class RdmaFabric:
    """Cost model for base-page reads during dedup and restore ops."""

    def __init__(self, config: RdmaConfig | None = None):
        self.config = config or RdmaConfig()
        self.stats = TransferStats()
        self._failed_peers: set = set()
        self._degraded: dict = {}

    # ------------------------------------------------------------ failures

    def fail_peer(self, peer: object) -> None:
        """Mark a node unreachable over the fabric (failure injection)."""
        self._failed_peers.add(peer)

    def restore_peer(self, peer: object) -> None:
        """Bring a failed node back."""
        self._failed_peers.discard(peer)

    def peer_available(self, peer: object) -> bool:
        return peer not in self._failed_peers

    def degrade_peer(self, peer: object, factor: float) -> None:
        """Slow the link to ``peer``: remote reads cost ``factor`` times more."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self._degraded[peer] = factor

    def heal_peer(self, peer: object) -> None:
        """Restore the link to ``peer`` to full speed."""
        self._degraded.pop(peer, None)

    def link_factor(self, peer: object) -> float:
        """Current latency multiplier of the link to ``peer``."""
        return self._degraded.get(peer, 1.0)

    def require_peer(self, peer: object) -> None:
        """Raise :class:`PeerUnavailable` if ``peer`` is unreachable.

        For callers that charge non-fabric costs against a peer's local
        storage (e.g. its SSD) and must share the fabric's failure
        domain and ``failed_reads`` accounting.  Counts one failed read
        per call, matching the once-per-batch rule of
        :meth:`batch_read_ms`."""
        self._check_peer(peer)

    def _check_peer(self, peer: object) -> None:
        if peer in self._failed_peers:
            self.stats.failed_reads += 1
            raise PeerUnavailable(peer)

    def _serialize_ms(self, nbytes: int) -> float:
        bits = nbytes * 8
        return bits / (self.config.bandwidth_gbps * 1e9) * 1e3

    def read_ms(self, nbytes: int, *, local: bool) -> float:
        """Latency of a single read of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative read size")
        if local:
            self.stats.local_reads += 1
            self.stats.local_bytes += nbytes
            return (nbytes / 1024) * self.config.local_copy_us_per_kb / 1e3
        self.stats.remote_reads += 1
        self.stats.remote_bytes += nbytes
        return self.config.read_latency_us / 1e3 + self._serialize_ms(nbytes)

    def batch_read_ms(self, reads_by_peer: dict[object, tuple[int, int]], *, local_peer: object) -> float:
        """Latency of a batched multi-peer page fetch.

        Args:
            reads_by_peer: peer -> (op_count, total_bytes).
            local_peer: the peer identity considered local (no fabric).

        Reads to distinct peers proceed in parallel; within a peer, the
        first op pays full latency and the rest pipeline.  The result is
        the slowest peer's completion time.
        """
        # Validate reachability before charging any cost: a restore either
        # proceeds in full or fails fast to its fallback.  Failed-read
        # accounting is ONCE PER BATCH — an aborted batch increments
        # ``failed_reads`` exactly once, no matter how many of its peers
        # are down nor how many ops targeted them, and the check-and-count
        # is atomic within this call, so a ``restore_peer`` between two
        # batches can never produce a half-counted batch.
        unreachable = [
            peer
            for peer, (ops, _nbytes) in reads_by_peer.items()
            if ops > 0 and peer != local_peer and peer in self._failed_peers
        ]
        if unreachable:
            self.stats.failed_reads += 1
            raise PeerUnavailable(unreachable[0])
        worst = 0.0
        for peer, (ops, nbytes) in reads_by_peer.items():
            if ops < 0 or nbytes < 0:
                raise ValueError("negative op count or byte count")
            if ops == 0:
                continue
            if peer == local_peer:
                self.stats.local_reads += ops
                self.stats.local_bytes += nbytes
                cost = (nbytes / 1024) * self.config.local_copy_us_per_kb / 1e3
            else:
                self.stats.remote_reads += ops
                self.stats.remote_bytes += nbytes
                cost = (
                    self.config.read_latency_us / 1e3
                    + (ops - 1) * self.config.pipelined_op_us / 1e3
                    + self._serialize_ms(nbytes)
                )
                factor = self._degraded.get(peer)
                if factor is not None:
                    cost *= factor
                    self.stats.degraded_reads += ops
            worst = max(worst, cost)
        return worst
