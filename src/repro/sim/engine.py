"""Discrete-event simulation engine.

A small, deterministic event loop: events are (time, sequence) ordered on
a binary heap, callbacks run strictly in that order, and timers can be
cancelled (lazily — cancelled entries are skipped on pop).  All of the
cluster — request arrivals, sandbox lifecycles, keep-alive expiries,
dedup/restore completions — runs on one :class:`Simulator`.

Times are floating-point **milliseconds** throughout the reproduction.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


class SimulationError(RuntimeError):
    """Raised for inconsistent use of the simulator (e.g. past scheduling)."""


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Timer:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry):
        self._entry = entry

    @property
    def time(self) -> float:
        """Absolute fire time in ms."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def pending(self) -> bool:
        """True if the event has not fired and not been cancelled."""
        return not self._entry.cancelled and self._entry.callback is not _fired

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        self._entry.cancelled = True


def _fired() -> None:  # sentinel marking consumed entries
    raise AssertionError("fired sentinel must never be called")


class Simulator:
    """Deterministic discrete-event loop with millisecond timestamps."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in ms."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still queued (including lazily-cancelled ones)."""
        return len(self._heap)

    def at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now - 1e-9:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        entry = _Entry(time=max(time, self._now), seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, entry)
        return Timer(entry)

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay`` ms."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback)

    def every(self, interval: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` every ``interval`` ms until cancelled.

        Returns the timer for the *next* occurrence; cancelling it stops
        the whole series.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        holder: dict[str, Timer] = {}

        def tick() -> None:
            callback()
            if holder["timer"]._entry.cancelled:
                # The callback cancelled its own series; the fired entry
                # carries the flag, so honour it instead of re-arming.
                return
            holder["timer"]._entry = self.after(interval, tick)._entry

        holder["timer"] = self.after(interval, tick)
        return holder["timer"]

    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            callback = entry.callback
            entry.callback = _fired
            self._events_processed += 1
            callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time`` and advance the clock."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` callbacks ran)."""
        remaining = max_events if max_events is not None else float("inf")
        while remaining > 0 and self.step():
            remaining -= 1
        if remaining <= 0 and self._heap:
            raise SimulationError(f"event budget exhausted with {len(self._heap)} pending")
