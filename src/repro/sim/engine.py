"""Discrete-event simulation engine.

A small, deterministic event loop: events are (time, sequence) ordered on
a binary heap, callbacks run strictly in that order, and timers can be
cancelled (lazily — cancelled entries are skipped on pop).  All of the
cluster — request arrivals, sandbox lifecycles, keep-alive expiries,
dedup/restore completions — runs on one :class:`Simulator`.

The loop is built to survive cluster-scale replays (millions of events):

* **Batched dispatch** — :meth:`Simulator.run` and
  :meth:`Simulator.run_until` pop and dispatch events in one tight loop
  with locally-bound heap operations, touching ``now`` only when the
  timestamp actually advances and flushing the processed-event counter
  once per drain instead of once per event.
* **Heap compaction** — cancelled entries are dropped lazily on pop, but
  when they come to dominate a large heap the whole heap is compacted in
  place, so long runs with heavy timer churn (idle/keep-alive timers
  cancelled by dispatch) don't accumulate garbage.
* **Streamed scheduling** — :meth:`Simulator.schedule_stream` schedules a
  large time-sorted sequence of callbacks while keeping only a small
  window of entries resident, *bit-identical* to scheduling them all up
  front: the sequence numbers for the whole stream are reserved at call
  time, so every entry gets exactly the (time, seq) pair eager
  scheduling would have given it, and same-time ties against unrelated
  events resolve identically.

Times are floating-point **milliseconds** throughout the reproduction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence


class SimulationError(RuntimeError):
    """Raised for inconsistent use of the simulator (e.g. past scheduling)."""


@dataclass(slots=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None]
    cancelled: bool = False

    def __lt__(self, other: "_Entry") -> bool:
        # Hand-rolled (time, seq) ordering: the dataclass-generated
        # comparison builds two tuples per heap sift step, which is
        # measurable across millions of heap operations.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Timer:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator"):
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute fire time in ms."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def pending(self) -> bool:
        """True if the event has not fired and not been cancelled."""
        return not self._entry.cancelled and self._entry.callback is not _fired

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired.

        The flag is still set on a fired entry — :meth:`Simulator.every`
        reads it to stop a series cancelled from its own callback — but
        only entries actually occupying a heap slot count toward the
        simulator's cancelled-entry bookkeeping.
        """
        entry = self._entry
        if entry.cancelled:
            return
        still_queued = entry.callback is not _fired
        entry.cancelled = True
        if still_queued:
            self._sim._note_cancelled()


def _fired() -> None:  # sentinel marking consumed entries
    raise AssertionError("fired sentinel must never be called")


#: Compact the heap only once this many cancelled entries accumulated
#: (small heaps aren't worth rebuilding) ...
_COMPACT_MIN_CANCELLED = 512
#: ... and only when cancelled entries are at least this fraction of it.
_COMPACT_FRACTION = 0.5

#: Default window of a :meth:`Simulator.schedule_stream` call: how many
#: entries of the stream are resident on the heap at once.
STREAM_CHUNK = 4096


class Simulator:
    """Deterministic discrete-event loop with millisecond timestamps."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[_Entry] = []
        self._next_seq = 0
        self._events_processed = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time in ms."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live events still queued (lazily-cancelled entries excluded)."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_events(self) -> int:
        """Cancelled entries still occupying heap slots (awaiting lazy
        drop on pop, or the next compaction)."""
        return self._cancelled

    # --------------------------------------------------------- bookkeeping

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled >= _COMPACT_FRACTION * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place (slice assignment) so the locally-bound heap lists in
        the dispatch loops stay valid even when a callback's cancels
        trigger compaction mid-drain.
        """
        self._heap[:] = [entry for entry in self._heap if not entry.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    # ---------------------------------------------------------- scheduling

    def at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now - 1e-9:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = _Entry(time=max(time, self._now), seq=seq, callback=callback)
        heapq.heappush(self._heap, entry)
        return Timer(entry, self)

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay`` ms."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback)

    def every(self, interval: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` every ``interval`` ms until cancelled.

        Returns the timer for the *next* occurrence; cancelling it stops
        the whole series.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        holder: dict[str, Timer] = {}

        def tick() -> None:
            callback()
            timer = holder["timer"]
            if timer._entry.cancelled:  # noqa: SLF001 — Timer's own module
                # The callback cancelled its own series; the fired entry
                # carries the flag, so honour it instead of re-arming.
                return
            timer._entry = self.after(interval, tick)._entry  # noqa: SLF001

        holder["timer"] = self.after(interval, tick)
        return holder["timer"]

    def schedule_stream(
        self,
        times: Sequence[float],
        make_callback: Callable[[int], Callable[[], None]],
        *,
        chunk_size: int = STREAM_CHUNK,
    ) -> int:
        """Schedule ``make_callback(i)`` at ``times[i]`` for every ``i``,
        keeping only ~``chunk_size`` entries of the stream resident.

        ``times`` must be sorted non-decreasing with ``times[0] >= now``.
        The whole stream's sequence numbers are reserved immediately:
        entry ``i`` is created with the exact (time, seq) pair that
        ``self.at(times[i], make_callback(i))`` called up front — before
        any later scheduling — would have produced, so the replay is
        bit-identical to eager scheduling while resident heap state stays
        O(chunk) instead of O(len(times)).  Entries materialize chunk by
        chunk: the last entry of each chunk pushes the next one after its
        own callback runs.  Stream entries expose no :class:`Timer` and
        cannot be cancelled.  Returns the number of scheduled callbacks.
        """
        count = len(times)
        if chunk_size <= 0:
            raise SimulationError(f"non-positive chunk_size {chunk_size}")
        if count == 0:
            return 0
        base = self._next_seq
        self._next_seq = base + count
        heap = self._heap
        heappush = heapq.heappush

        def push_chunk(start: int) -> None:
            stop = min(start + chunk_size, count)
            floor = self._now
            for i in range(start, stop):
                time = times[i]
                if time < floor - 1e-9:
                    raise SimulationError(
                        f"stream time {time} at index {i} below {floor} (unsorted?)"
                    )
                floor = time = max(time, floor)
                callback = make_callback(i)
                if i == stop - 1 and stop < count:
                    callback = _chained(callback, push_chunk, stop)
                heappush(heap, _Entry(time=time, seq=base + i, callback=callback))

        def _chained(callback, refill, next_start):
            def run_and_refill() -> None:
                callback()
                refill(next_start)

            return run_and_refill

        push_chunk(0)
        return count

    # ----------------------------------------------------------- dispatch

    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry.cancelled:
                self._cancelled -= 1
                continue
            self._now = entry.time
            callback = entry.callback
            entry.callback = _fired
            self._events_processed += 1
            callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time`` and advance the clock."""
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while heap:
                entry = heap[0]
                if entry.time > end_time:
                    break
                heappop(heap)
                if entry.cancelled:
                    self._cancelled -= 1
                    continue
                if entry.time != self._now:
                    self._now = entry.time
                callback = entry.callback
                entry.callback = _fired
                processed += 1
                callback()
        finally:
            self._events_processed += processed
        self._now = max(self._now, end_time)

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` callbacks ran).

        Lazily-cancelled entries never count against the budget; if the
        budget runs out with only cancelled entries left, they are
        discarded and the run completes instead of raising.
        """
        remaining = max_events if max_events is not None else float("inf")
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while heap and remaining > 0:
                entry = heappop(heap)
                if entry.cancelled:
                    self._cancelled -= 1
                    continue
                if entry.time != self._now:
                    self._now = entry.time
                callback = entry.callback
                entry.callback = _fired
                processed += 1
                remaining -= 1
                callback()
        finally:
            self._events_processed += processed
        if heap and remaining <= 0:
            while heap and heap[0].cancelled:
                heappop(heap)
                self._cancelled -= 1
            live = len(heap) - self._cancelled
            if live > 0:
                raise SimulationError(
                    f"event budget exhausted with {live} live events pending"
                    f" ({self._cancelled} cancelled)"
                )
            heap.clear()
            self._cancelled = 0
