"""Tiered checkpoint storage (DESIGN.md §9).

The package splits into three modules:

* :mod:`repro.storage.tiers` — the tier model (``StorageTier``), the
  calibrated cost/capacity configuration (``StorageConfig``) and the
  per-tier capacity accounts (``TierAccount``);
* :mod:`repro.storage.store` — ``TieredCheckpointStore``, the
  residency-aware checkpoint directory that subsumes
  :class:`repro.sandbox.checkpoint.CheckpointStore`;
* :mod:`repro.storage.prefetch` — the REAP-style recorded-working-set
  restore prefetcher (``WorkingSetRecorder``).

``repro.sandbox.checkpoint`` imports the tier enum from
:mod:`repro.storage.tiers`, so this ``__init__`` must not import
``store`` (which imports ``checkpoint`` back) eagerly; the heavier
classes are re-exported lazily instead.
"""

from __future__ import annotations

from repro.storage.tiers import StorageConfig, StorageTier, TierAccount

__all__ = [
    "StorageConfig",
    "StorageTier",
    "TierAccount",
    "TieredCheckpointStore",
    "WorkingSetRecorder",
]


def __getattr__(name: str):
    if name == "TieredCheckpointStore":
        from repro.storage.store import TieredCheckpointStore

        return TieredCheckpointStore
    if name == "WorkingSetRecorder":
        from repro.storage.prefetch import WorkingSetRecorder

        return WorkingSetRecorder
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
