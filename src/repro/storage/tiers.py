"""The storage-tier model: tiers, capacities, and a calibrated cost model.

Medes pins every base checkpoint in node DRAM for as long as any dedup
page table references it, so under memory pressure the controller's only
relief valve is purging sandboxes — and eating the cold starts that
Figures 10-11 measure.  This module models the slower-but-cheaper places
that frozen state can *demote* to instead of dying:

* ``NODE_DRAM`` — where checkpoints are born: RDMA-registered memory on
  the owning worker, read at fabric (or local-copy) cost.
* ``REMOTE_DRAM`` — a disaggregated fabric-attached memory pool (the
  TrEnv/CXL-style far-memory tier): DRAM latency plus a fabric hop, a
  single cluster-wide capacity.
* ``LOCAL_SSD`` — the worker's NVMe drive: per-node capacity, read cost
  dominated by device latency + sequential bandwidth.  Patch tables of
  expired dedup sandboxes also land here (the "dedup-cold" residency).

Costs are charged per *batched* operation: a restore issues one
sequential read per tier channel, so a transfer of ``n`` bytes pays one
device latency plus ``n / bandwidth`` — mirroring how
:meth:`repro.sim.network.RdmaFabric.batch_read_ms` charges pipelined
fabric reads.  Defaults are calibrated to commodity parts (~100 us NVMe
read latency, sequential bandwidth below the 10 Gbps fabric line rate,
writes slower than reads), keeping the tier ordering
``NODE_DRAM < REMOTE_DRAM < LOCAL_SSD`` in fetch cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import MIB


class StorageTier(enum.Enum):
    """Where a piece of frozen state (checkpoint / patch table) resides."""

    NODE_DRAM = "node-dram"
    """RDMA-registered memory of the owning worker node."""

    REMOTE_DRAM = "remote-dram"
    """Disaggregated fabric-attached memory pool (cluster-wide)."""

    LOCAL_SSD = "local-ssd"
    """The owning worker's NVMe drive (per-node capacity)."""


@dataclass(frozen=True)
class StorageConfig:
    """Capacities and device timings of the non-DRAM tiers."""

    remote_dram_mb: float = 2048.0
    """Cluster-wide capacity of the fabric-attached memory pool."""

    remote_dram_latency_us: float = 10.0
    """Per-batched-read latency of the far-memory pool (fabric hop)."""

    remote_dram_gbps: float = 10.0
    """Line rate of the far-memory fabric (payload serialisation)."""

    ssd_capacity_mb: float = 8192.0
    """Per-node NVMe capacity available for demoted state."""

    ssd_read_latency_us: float = 100.0
    """Device latency of one batched NVMe read."""

    ssd_read_mb_per_s: float = 800.0
    """Sequential NVMe read bandwidth."""

    ssd_write_mb_per_s: float = 400.0
    """Sequential NVMe write bandwidth (demotion cost)."""

    prefetch: bool = True
    """Record restore working sets and prefetch them on later restores."""

    def __post_init__(self) -> None:
        positive = (
            self.remote_dram_latency_us,
            self.remote_dram_gbps,
            self.ssd_read_latency_us,
            self.ssd_read_mb_per_s,
            self.ssd_write_mb_per_s,
        )
        if min(positive) <= 0:
            raise ValueError("storage tier timings must be positive")
        if self.remote_dram_mb < 0 or self.ssd_capacity_mb < 0:
            raise ValueError("tier capacities must be non-negative")

    # ------------------------------------------------------------- costs

    @property
    def remote_dram_capacity_bytes(self) -> int:
        return int(self.remote_dram_mb * MIB)

    @property
    def ssd_capacity_bytes(self) -> int:
        return int(self.ssd_capacity_mb * MIB)

    def remote_dram_read_ms(self, nbytes: int) -> float:
        """One batched read of ``nbytes`` from the far-memory pool."""
        if nbytes < 0:
            raise ValueError("negative read size")
        if nbytes == 0:
            return 0.0
        serialize = nbytes * 8 / (self.remote_dram_gbps * 1e9) * 1e3
        return self.remote_dram_latency_us / 1e3 + serialize

    def remote_dram_write_ms(self, nbytes: int) -> float:
        """Demoting ``nbytes`` into the far-memory pool (symmetric link)."""
        return self.remote_dram_read_ms(nbytes)

    def ssd_read_ms(self, nbytes: int) -> float:
        """One batched sequential read of ``nbytes`` from NVMe."""
        if nbytes < 0:
            raise ValueError("negative read size")
        if nbytes == 0:
            return 0.0
        return self.ssd_read_latency_us / 1e3 + nbytes / (self.ssd_read_mb_per_s * MIB) * 1e3

    def ssd_write_ms(self, nbytes: int) -> float:
        """One batched sequential write of ``nbytes`` to NVMe."""
        if nbytes < 0:
            raise ValueError("negative write size")
        if nbytes == 0:
            return 0.0
        return self.ssd_read_latency_us / 1e3 + nbytes / (self.ssd_write_mb_per_s * MIB) * 1e3


class TierCapacityError(RuntimeError):
    """A charge would exceed a tier's capacity (callers check ``fits``)."""


@dataclass
class TierAccount:
    """Capacity accounting for one tier (or one node's slice of it)."""

    capacity_bytes: int
    used_bytes: int = 0
    charges: int = field(default=0, repr=False)
    """Lifetime number of charge operations (observability)."""

    def fits(self, nbytes: int) -> bool:
        return self.used_bytes + nbytes <= self.capacity_bytes

    def charge(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative tier charge")
        if not self.fits(nbytes):
            raise TierCapacityError(
                f"tier charge of {nbytes} exceeds capacity "
                f"({self.used_bytes}/{self.capacity_bytes})"
            )
        self.used_bytes += nbytes
        self.charges += 1

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative tier release")
        if self.used_bytes - nbytes < 0:
            raise RuntimeError(
                f"tier accounting underflow ({self.used_bytes} - {nbytes})"
            )
        self.used_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes
