"""The residency-aware checkpoint directory (``TieredCheckpointStore``).

Subsumes :class:`repro.sandbox.checkpoint.CheckpointStore` — the same
cluster-wide directory of base checkpoints, with two additions:

* every base checkpoint has a residency **tier**, and the store owns the
  capacity accounting and charged demote/promote operations that move it
  between ``NODE_DRAM``, the cluster-wide ``REMOTE_DRAM`` pool and the
  owning node's ``LOCAL_SSD``; and
* **dedup patch tables** of expired sandboxes can be parked on the
  owning node's SSD (the "dedup-cold" residency) instead of being
  purged, through the ``*_table`` methods.

The store only moves bytes between *accounts* and returns the charged
cost in milliseconds; the controller decides *when* to demote (eviction
pressure, keep-dedup expiry) and the node's DRAM accounting reacts to
the tier flip through ``recharge_checkpoint`` / ``recharge_sandbox``.

Content is never dropped on demotion — the simulation's images stay
addressable at any tier, which is what the demote→promote round-trip
property test pins down.  Only the *cost* of reaching them changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.storage.tiers import StorageConfig, StorageTier, TierAccount


@dataclass(frozen=True)
class TierMove:
    """Outcome of one charged demote/promote operation."""

    tier: StorageTier
    """Where the state resides after the move."""
    cost_ms: float
    """Charged device/fabric time of the move."""
    nbytes: int
    """Full-scale bytes moved."""


class TemplatePool:
    """The remote-DRAM slice backing template segments (DESIGN.md §14).

    A dedicated :class:`TierAccount` over the far-memory pool, separate
    from the checkpoint store's so template capacity is planned
    independently of demoted checkpoints.  Like everything REMOTE_DRAM it
    has no single node's failure domain: pool copies survive node
    crashes, and node-DRAM replicas are pure caches re-promotable from
    here at the charged read cost.
    """

    def __init__(self, config: StorageConfig, *, capacity_bytes: int) -> None:
        self.config = config
        self.account = TierAccount(capacity_bytes)

    def fits(self, nbytes: int) -> bool:
        return self.account.fits(nbytes)

    def publish_ms(self, nbytes: int) -> float:
        """Charge ``nbytes`` into the pool; returns the fabric write cost."""
        self.account.charge(nbytes)
        return self.config.remote_dram_write_ms(nbytes)

    def withdraw(self, nbytes: int) -> None:
        """Release ``nbytes`` (a segment retired by the catalog)."""
        self.account.release(nbytes)

    def read_ms(self, nbytes: int) -> float:
        """One batched promote-read of ``nbytes`` out of the pool."""
        return self.config.remote_dram_read_ms(nbytes)

    @property
    def used_bytes(self) -> int:
        return self.account.used_bytes


class TieredCheckpointStore(CheckpointStore):
    """A :class:`CheckpointStore` whose checkpoints (and parked dedup
    patch tables) have residency tiers with bounded capacities."""

    def __init__(self, config: StorageConfig, *, nodes: int) -> None:
        super().__init__()
        self.config = config
        self.remote_dram = TierAccount(config.remote_dram_capacity_bytes)
        self.ssd: dict[int, TierAccount] = {
            node_id: TierAccount(config.ssd_capacity_bytes) for node_id in range(nodes)
        }
        # sandbox_id -> (node_id, nbytes) of SSD-parked dedup tables.
        self._tables: dict[int, tuple[int, int]] = {}
        self.demotions = 0
        self.promotions = 0

    # ---------------------------------------------------- checkpoint tiers

    def tier_of(self, checkpoint_id: int) -> StorageTier:
        return self.get(checkpoint_id).tier

    def _account_for(self, checkpoint: BaseCheckpoint) -> TierAccount | None:
        if checkpoint.tier is StorageTier.REMOTE_DRAM:
            return self.remote_dram
        if checkpoint.tier is StorageTier.LOCAL_SSD:
            return self.ssd[checkpoint.node_id]
        return None

    def demote_checkpoint(self, checkpoint: BaseCheckpoint) -> TierMove | None:
        """Move a checkpoint out of node DRAM, if a lower tier has room.

        Tries the far-memory pool first (cheaper reads), overflowing to
        the owning node's SSD.  Returns ``None`` — and leaves the
        checkpoint in DRAM — when neither tier fits.  The caller must
        re-account the owning node (the DRAM charge drops to zero).

        Only unshared-with-owner checkpoints demote: while the owner
        sandbox is resident the pages are copy-on-write with it and
        there is nothing separate to move.
        """
        if checkpoint.tier is not StorageTier.NODE_DRAM:
            raise RuntimeError(
                f"checkpoint {checkpoint.checkpoint_id} already demoted "
                f"({checkpoint.tier.value})"
            )
        if checkpoint.owner_resident:
            raise RuntimeError(
                f"checkpoint {checkpoint.checkpoint_id} is CoW-shared with its "
                "resident owner; nothing to demote"
            )
        nbytes = checkpoint.full_size_bytes
        if self.remote_dram.fits(nbytes):
            self.remote_dram.charge(nbytes)
            checkpoint.tier = StorageTier.REMOTE_DRAM
            cost_ms = self.config.remote_dram_write_ms(nbytes)
        elif self.ssd[checkpoint.node_id].fits(nbytes):
            self.ssd[checkpoint.node_id].charge(nbytes)
            checkpoint.tier = StorageTier.LOCAL_SSD
            cost_ms = self.config.ssd_write_ms(nbytes)
        else:
            return None
        self.demotions += 1
        return TierMove(tier=checkpoint.tier, cost_ms=cost_ms, nbytes=nbytes)

    def promote_checkpoint(self, checkpoint: BaseCheckpoint) -> TierMove:
        """Bring a demoted checkpoint back into node DRAM.

        Charged at the *read* cost of its current tier (the write into
        DRAM is the memcpy the fabric model already folds into local
        copies).  The caller must have checked DRAM room and must
        re-account the owning node afterwards.
        """
        account = self._account_for(checkpoint)
        if account is None:
            raise RuntimeError(
                f"checkpoint {checkpoint.checkpoint_id} already in node DRAM"
            )
        nbytes = checkpoint.full_size_bytes
        if checkpoint.tier is StorageTier.REMOTE_DRAM:
            cost_ms = self.config.remote_dram_read_ms(nbytes)
        else:
            cost_ms = self.config.ssd_read_ms(nbytes)
        account.release(nbytes)
        checkpoint.tier = StorageTier.NODE_DRAM
        self.promotions += 1
        return TierMove(tier=StorageTier.NODE_DRAM, cost_ms=cost_ms, nbytes=nbytes)

    def fetch_cost_ms(self, checkpoint: BaseCheckpoint, nbytes: int) -> float:
        """One batched read of ``nbytes`` from wherever the checkpoint
        lives, for restores that read through without promoting."""
        if checkpoint.tier is StorageTier.REMOTE_DRAM:
            return self.config.remote_dram_read_ms(nbytes)
        if checkpoint.tier is StorageTier.LOCAL_SSD:
            return self.config.ssd_read_ms(nbytes)
        raise RuntimeError(
            f"checkpoint {checkpoint.checkpoint_id} is in node DRAM; "
            "reads go through the RDMA fabric"
        )

    def remove(self, checkpoint_id: int) -> BaseCheckpoint:
        """Drop a checkpoint, releasing whatever tier account holds it."""
        checkpoint = super().remove(checkpoint_id)
        account = self._account_for(checkpoint)
        if account is not None:
            account.release(checkpoint.full_size_bytes)
            checkpoint.tier = StorageTier.NODE_DRAM
        return checkpoint

    # ------------------------------------------------------ fault domain

    def survives_node_failure(self, checkpoint: BaseCheckpoint) -> bool:
        """Whether ``checkpoint``'s content outlives its home node's crash.

        Only far-memory residency does: the cluster-wide REMOTE_DRAM
        pool has no single node's failure domain, while NODE_DRAM and
        LOCAL_SSD state dies with the owning node (the SSD model shares
        the node's fate — DESIGN.md §9)."""
        return checkpoint.tier is StorageTier.REMOTE_DRAM

    # ------------------------------------------------- dedup-cold tables

    def ssd_fits(self, node_id: int, nbytes: int) -> bool:
        return self.ssd[node_id].fits(nbytes)

    def demote_table(self, sandbox_id: int, node_id: int, nbytes: int) -> float:
        """Park a dedup patch table on ``node_id``'s SSD ("dedup-cold").

        Returns the charged SSD write cost.  The caller keeps the table
        object itself (it is the sandbox's ``dedup_table``); the store
        only accounts for the bytes and remembers where they are.
        """
        if sandbox_id in self._tables:
            raise RuntimeError(f"sandbox {sandbox_id} table already demoted")
        self.ssd[node_id].charge(nbytes)
        self._tables[sandbox_id] = (node_id, nbytes)
        self.demotions += 1
        return self.config.ssd_write_ms(nbytes)

    def table_location(self, sandbox_id: int) -> tuple[int, int] | None:
        """(node_id, nbytes) of a parked table, or None if not parked."""
        return self._tables.get(sandbox_id)

    def promote_table(self, sandbox_id: int) -> float:
        """Read a parked table back for a restore; returns the SSD read
        cost and releases the SSD account."""
        try:
            node_id, nbytes = self._tables.pop(sandbox_id)
        except KeyError:
            raise RuntimeError(f"sandbox {sandbox_id} table not demoted") from None
        self.ssd[node_id].release(nbytes)
        self.promotions += 1
        return self.config.ssd_read_ms(nbytes)

    def release_table(self, sandbox_id: int) -> None:
        """Drop a parked table without reading it (purge of a cold sandbox)."""
        location = self._tables.pop(sandbox_id, None)
        if location is not None:
            node_id, nbytes = location
            self.ssd[node_id].release(nbytes)

    # ----------------------------------------------------- observability

    def tier_used_bytes(self) -> dict[StorageTier, int]:
        """Current occupancy of the non-DRAM tiers (full-scale bytes)."""
        return {
            StorageTier.REMOTE_DRAM: self.remote_dram.used_bytes,
            StorageTier.LOCAL_SSD: sum(a.used_bytes for a in self.ssd.values()),
        }
