"""REAP-style recorded-working-set restore prefetch.

Ustiugov et al. observe that a snapshot restore touches a small, stable
set of guest pages, so the set can be *recorded* on the first restore
and *prefetched* — one batched read issued up front — on every later
restore of the same snapshot.  Here the unit of recording is the pair
(function, set of base checkpoints the dedup table patches against):
two restores with the same key fetch the same base pages, because the
page table maps each patched page to a fixed (checkpoint, page) address.

On a recorded restore the agent issues the prefetch *before* patch
application starts, so its cost overlaps the patch compute — the restore
breakdown charges ``max(prefetch, compute)`` instead of their sum — and
only the pages the recording missed (base pages the table references
that the recorded set lacks, e.g. after a partial first restore) are
charged as a serial demand-miss read afterwards.

The recorder is deliberately first-wins: the first complete restore
defines the working set, matching REAP's record-once semantics, and
keeps replayed simulations deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A recorded working set: the exact base pages a restore fetched,
#: as (checkpoint_id, page_index) addresses.
WorkingSet = frozenset[tuple[int, int]]

#: Recorder key: (function, sorted tuple of base checkpoint ids).
WorkingSetKey = tuple[str, tuple[int, ...]]


@dataclass
class WorkingSetRecorder:
    """Record-once directory of restore working sets."""

    _sets: dict[WorkingSetKey, WorkingSet] = field(default_factory=dict)
    recordings: int = 0
    """Working sets recorded (first restores)."""
    prefetched_restores: int = 0
    """Restores served from a recorded working set."""
    hit_pages: int = 0
    """Base pages covered by the recorded set across prefetched restores."""
    miss_pages: int = 0
    """Base pages demand-fetched despite a recorded set."""

    @staticmethod
    def key_for(function: str, checkpoint_ids: set[int] | list[int]) -> WorkingSetKey:
        return (function, tuple(sorted(checkpoint_ids)))

    def lookup(self, key: WorkingSetKey) -> WorkingSet | None:
        return self._sets.get(key)

    def record(self, key: WorkingSetKey, pages: WorkingSet) -> None:
        """First-wins: a later recording never replaces an earlier one."""
        if key not in self._sets:
            self._sets[key] = pages
            self.recordings += 1

    def note_prefetch(self, hits: int, misses: int) -> None:
        self.prefetched_restores += 1
        self.hit_pages += hits
        self.miss_pages += misses

    def __len__(self) -> int:
        return len(self._sets)
