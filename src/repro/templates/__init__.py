"""Forkable template checkpoints (DESIGN.md §14).

Factors the region model's shared RUNTIME/LIBRARY segments into
per-runtime template checkpoints that many functions fork from: a
restore becomes *template fork + per-function delta* instead of full
base fetch + patch — the TEMPLATE start type between WARM and DEDUP.
"""

from repro.templates.catalog import (
    TemplateCatalog,
    TemplateConfig,
    TemplatePoolFull,
    TemplateSegment,
)
from repro.templates.delta import (
    SharedSpan,
    TemplateDeltaTable,
    build_delta_table,
    reconstruct_image,
)

__all__ = [
    "SharedSpan",
    "TemplateCatalog",
    "TemplateConfig",
    "TemplateDeltaTable",
    "TemplatePoolFull",
    "TemplateSegment",
    "build_delta_table",
    "reconstruct_image",
]
