"""Cluster-wide catalog of shared runtime/library template segments.

The region model says the dominant redundancy across *different*
functions is the RUNTIME/LIBRARY regions that are byte-identical in
every sandbox importing them (Fig 1c).  The catalog factors those
regions out once per ``(content_key, size)`` — the *template segment* —
and deduplicates them cluster-wide with refcounts, the TrEnv-X move of
sharing forkable execution environments across functions and nodes.

Residency model:

* The **pool copy** lives in the REMOTE_DRAM template pool
  (:class:`repro.storage.store.TemplatePool`).  It is authoritative: no
  single node's failure domain, so templates survive node crashes.
* **Node replicas** are DRAM caches created by the first fork on a node
  (a charged promote-read from the pool).  Later forks on that node are
  copy-on-write against the replica and move no bytes.  Replicas are
  droppable under placement pressure — the pool copy re-promotes — with
  one guard: the last node-DRAM replica of a *hot* template (forked
  within ``TemplateConfig.hot_window_ms``) is never evicted, so a busy
  template's next fork is not forced back through the fabric.
* A segment referenced by any live delta table cannot be retired from
  the pool at all (:meth:`TemplateCatalog.retire` refuses) — forks must
  always find their base bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro._util import MIB
from repro.memory.layout import PlacedRegion, SharingScope
from repro.memory.synth import template_region_content
from repro.storage.store import TemplatePool
from repro.storage.tiers import StorageConfig

#: Catalog key of one template segment: the requester's dedup domain,
#: the region's content identity and its placed (scaled) size.  Two
#: functions whose layouts place the same library at the same size share
#: one segment *within a domain*; a squeezed library (different resident
#: subset) keys a separate segment, and so does another dedup domain —
#: templates fork only within a domain (DESIGN.md §15), even when the
#: bytes are identical.  The global domain "" keys every segment while
#: ``dedup_domains`` is off.
SegmentKey = tuple[str, str, int]


@dataclass(frozen=True)
class TemplateConfig:
    """Knobs of the template-sharing subsystem (inert while
    ``ClusterConfig.template_sharing`` is off)."""

    pool_mb: float = 1024.0
    """Remote-DRAM capacity reserved for template pool copies."""

    hot_window_ms: float = 120_000.0
    """A template forked within this window is *hot*: its last node-DRAM
    replica is exempt from placement eviction."""

    patch_level: int = 1
    """Patch codec effort level for delta construction (as in dedup)."""

    def __post_init__(self) -> None:
        if self.pool_mb < 0:
            raise ValueError("template pool_mb must be non-negative")
        if self.hot_window_ms < 0:
            raise ValueError("template hot_window_ms must be non-negative")
        if self.patch_level < 0:
            raise ValueError("template patch_level must be non-negative")


class TemplatePoolFull(RuntimeError):
    """The remote-DRAM template pool cannot fit a new segment set (the
    caller falls back to the dedup path)."""


class TemplateInUse(RuntimeError):
    """Refused retirement of a segment still referenced by live deltas."""


@dataclass(eq=False)
class TemplateSegment:
    """One shared region's template: pool-resident content + residency."""

    segment_id: int
    key: SegmentKey
    content: np.ndarray
    """Scaled instance-independent bytes (read-only)."""
    full_bytes: int
    """Full-scale footprint charged to the pool and to node replicas."""
    refcount: int = 0
    """Live delta tables referencing this segment."""
    replicas: set[int] = field(default_factory=set)
    """Node ids holding a DRAM replica (fork caches)."""
    sharers: dict[int, int] = field(default_factory=dict)
    """Per-node count of live forked sandboxes mapping this segment's
    replica copy-on-write.  A shared replica is not droppable: its pages
    are mapped into running sandboxes."""
    last_fork_ms: float = float("-inf")

    @property
    def domain(self) -> str:
        return self.key[0]

    @property
    def content_key(self) -> str:
        return self.key[1]

    @property
    def size(self) -> int:
        return self.key[2]

    def acquire(self) -> None:
        self.refcount += 1

    def release(self) -> None:
        if self.refcount <= 0:
            raise RuntimeError(f"template segment {self.segment_id} refcount underflow")
        self.refcount -= 1


class TemplateCatalog:
    """The cluster's template directory: segment dedup, refcounts,
    pool/replica residency, and the hot-window eviction guard."""

    def __init__(
        self,
        config: TemplateConfig,
        storage: StorageConfig,
        *,
        content_scale: float,
    ) -> None:
        self.config = config
        self.content_scale = content_scale
        self.pool = TemplatePool(storage, capacity_bytes=int(config.pool_mb * MIB))
        self._segments: dict[SegmentKey, TemplateSegment] = {}
        self._ids = itertools.count(1)
        self.live_deltas = 0
        """Parked sandboxes currently holding segment references."""
        self.segments_created = 0
        self.segment_hits = 0
        """Shareable regions served by an already-published segment."""
        self.promotions = 0
        self.promoted_bytes = 0
        self.replica_evictions = 0

    # ---------------------------------------------------------- identity

    @staticmethod
    def eligible(region: PlacedRegion) -> bool:
        """Template-shareable regions: cross-function RUNTIME/LIBRARY
        content.  Zero-fill regions need no template (the delta's zero
        markers reproduce them for free); FUNCTION/INSTANCE regions are
        the per-function delta's job."""
        return (
            region.spec.scope in (SharingScope.RUNTIME, SharingScope.LIBRARY)
            and not region.spec.zero_fill
        )

    def shareable_regions(self, regions: tuple[PlacedRegion, ...]) -> list[PlacedRegion]:
        return [region for region in regions if self.eligible(region)]

    def get(self, key: SegmentKey) -> TemplateSegment:
        return self._segments[key]

    def segments_for(self, keys: tuple[SegmentKey, ...]) -> list[TemplateSegment]:
        return [self._segments[key] for key in keys]

    def __len__(self) -> int:
        return len(self._segments)

    # ----------------------------------------------------------- publish

    def ensure_segments(
        self, regions: tuple[PlacedRegion, ...], domain: str = ""
    ) -> tuple[list[TemplateSegment], list[TemplateSegment], float]:
        """Get-or-create the segments covering ``regions``' shareable part.

        Segments are scoped to the requester's ``domain``: a published
        segment is only ever hit by forks of the same dedup domain, so
        template state cannot cross a tenancy boundary (two domains
        publishing the same library hold two segments with identical
        bytes).  Returns ``(segments, created, publish_ms)`` where
        ``publish_ms`` is the charged pool write for newly created
        segments (0.0 when everything was already published).
        All-or-nothing: when the pool cannot fit the missing segments —
        even after retiring idle, unreferenced ones — nothing is
        published and :class:`TemplatePoolFull` is raised.
        """
        shareable = self.shareable_regions(regions)
        segments: list[TemplateSegment] = []
        missing: list[PlacedRegion] = []
        seen: set[SegmentKey] = set()
        for region in shareable:
            key = (domain, region.spec.content_key, region.size)
            existing = self._segments.get(key)
            if existing is not None:
                segments.append(existing)
                self.segment_hits += 1
            elif key not in seen:
                seen.add(key)
                missing.append(region)
        if not missing:
            return segments, [], 0.0
        needed = sum(self._full_bytes(region.size) for region in missing)
        if not self.pool.fits(needed):
            self._reclaim_pool(needed, keep={segment.key for segment in segments})
        if not self.pool.fits(needed):
            raise TemplatePoolFull(
                f"template pool cannot fit {needed} new segment bytes "
                f"({self.pool.used_bytes}/{self.pool.account.capacity_bytes})"
            )
        publish_ms = self.pool.publish_ms(needed)
        created: list[TemplateSegment] = []
        for region in missing:
            key = (domain, region.spec.content_key, region.size)
            segment = TemplateSegment(
                segment_id=next(self._ids),
                key=key,
                content=template_region_content(region.spec, region.size),
                full_bytes=self._full_bytes(region.size),
            )
            self._segments[key] = segment
            segments.append(segment)
            created.append(segment)
            self.segments_created += 1
        return segments, created, publish_ms

    def _full_bytes(self, scaled_size: int) -> int:
        return int(scaled_size / self.content_scale)

    def _reclaim_pool(self, needed: int, *, keep: set[SegmentKey] = frozenset()) -> None:
        """Retire idle (unreferenced, replica-free) segments, oldest fork
        first, until ``needed`` bytes fit or no candidates remain.

        ``keep`` excludes segments the in-flight publish itself hit:
        they carry no refcount yet, but the caller is about to acquire
        them, so retiring them would strand the new delta."""
        idle = sorted(
            (
                segment
                for segment in self._segments.values()
                if segment.refcount == 0
                and not segment.replicas
                and segment.key not in keep
            ),
            key=lambda segment: (segment.last_fork_ms, segment.segment_id),
        )
        for segment in idle:
            if self.pool.fits(needed):
                return
            self.retire(segment)

    def retire(self, segment: TemplateSegment) -> None:
        """Drop a segment's pool copy.  Refused while any live delta
        references it — a fork must always find its base bytes."""
        if segment.refcount > 0:
            raise TemplateInUse(
                f"template segment {segment.segment_id} has {segment.refcount} live deltas"
            )
        if segment.replicas:
            raise TemplateInUse(
                f"template segment {segment.segment_id} still has node replicas"
            )
        del self._segments[segment.key]
        self.pool.withdraw(segment.full_bytes)

    # ---------------------------------------------------------- refcounts

    def acquire(self, keys: tuple[SegmentKey, ...]) -> None:
        """One delta table takes a reference on each of its segments."""
        for segment in self.segments_for(keys):
            segment.acquire()
        self.live_deltas += 1

    def release(self, keys: tuple[SegmentKey, ...]) -> None:
        for segment in self.segments_for(keys):
            segment.release()
        self.live_deltas -= 1

    # --------------------------------------------------- copy-on-write forks

    def add_sharers(self, keys: tuple[SegmentKey, ...], node_id: int) -> None:
        """A forked sandbox on ``node_id`` maps these segments' replicas
        copy-on-write; the replicas must stay pinned while it lives."""
        for segment in self.segments_for(keys):
            segment.sharers[node_id] = segment.sharers.get(node_id, 0) + 1

    def drop_sharers(self, keys: tuple[SegmentKey, ...], node_id: int) -> None:
        for segment in self.segments_for(keys):
            count = segment.sharers.get(node_id, 0)
            if count <= 0:
                raise RuntimeError(
                    f"template segment {segment.segment_id} sharer underflow on node {node_id}"
                )
            if count == 1:
                del segment.sharers[node_id]
            else:
                segment.sharers[node_id] = count - 1

    # ---------------------------------------------------------- residency

    def missing_on(self, node_id: int, keys: tuple[SegmentKey, ...]) -> list[TemplateSegment]:
        """Segments a fork on ``node_id`` must first promote from the pool."""
        return [
            segment
            for segment in self.segments_for(keys)
            if node_id not in segment.replicas
        ]

    def promote(
        self, node_id: int, keys: tuple[SegmentKey, ...], now: float
    ) -> tuple[list[TemplateSegment], int, float]:
        """Materialize node-DRAM replicas for a fork on ``node_id``.

        Returns ``(promoted, promoted_bytes, promote_ms)`` — one batched
        pool read covering every segment the node lacked (0 bytes once
        replicas are warm).  Also stamps the fork time on *all* of the
        fork's segments for the hot-window eviction guard.
        """
        promoted = self.missing_on(node_id, keys)
        nbytes = sum(segment.full_bytes for segment in promoted)
        cost_ms = self.pool.read_ms(nbytes)
        for segment in promoted:
            segment.replicas.add(node_id)
        for segment in self.segments_for(keys):
            segment.last_fork_ms = max(segment.last_fork_ms, now)
        if promoted:
            self.promotions += len(promoted)
            self.promoted_bytes += nbytes
        return promoted, nbytes, cost_ms

    def is_hot(self, segment: TemplateSegment, now: float) -> bool:
        return now - segment.last_fork_ms <= self.config.hot_window_ms

    def evictable_replicas(self, node_id: int, now: float) -> list[TemplateSegment]:
        """Replicas on ``node_id`` that placement pressure may drop.

        The pool copy survives any replica eviction, so this never loses
        content; the only guard is the hot-template rule — a segment
        forked within the hot window keeps its last node-DRAM replica.
        Coldest-first (oldest fork) so the busy templates stay put.
        """
        victims = [
            segment
            for segment in self._segments.values()
            if node_id in segment.replicas
            and not segment.sharers.get(node_id)
            and not (len(segment.replicas) == 1 and self.is_hot(segment, now))
        ]
        victims.sort(key=lambda segment: (segment.last_fork_ms, segment.segment_id))
        return victims

    def drop_replica(self, node_id: int, segment: TemplateSegment) -> None:
        segment.replicas.discard(node_id)

    def drop_replicas(self, node_id: int) -> list[TemplateSegment]:
        """Forget every replica on a crashed (or drained) node.  Pool
        copies are untouched — the crash-survival property of REMOTE_DRAM."""
        dropped = [
            segment
            for segment in self._segments.values()
            if node_id in segment.replicas
        ]
        for segment in dropped:
            segment.replicas.discard(node_id)
        return dropped

    # ------------------------------------------------------ observability

    def replica_bytes(self, node_id: int | None = None) -> int:
        """Node-DRAM replica bytes on one node (or cluster-wide)."""
        return sum(
            segment.full_bytes * (1 if node_id is not None else len(segment.replicas))
            for segment in self._segments.values()
            if node_id is None or node_id in segment.replicas
        )
