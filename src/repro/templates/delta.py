"""Per-function delta tables against shared template segments.

A parked template sandbox keeps a :class:`TemplateDeltaTable` instead of
a dedup patch table: for each shareable RUNTIME/LIBRARY region, a patch
of the instance's bytes against the catalog's template segment (the
existing patch codec, region-granular because regions are page-aligned);
for everything else — guard pages, zeroed memory, stack/heap/unique —
zero markers and literal pages.  A fork re-runs the patches over the
node's template replicas and writes the literals back, reconstructing
the image byte-exactly (the round-trip the hypothesis suite pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.memory.image import MemoryImage
from repro.memory.layout import PlacedRegion
from repro.memory.patch import Patch, apply_patch, compute_patches

#: Per-page bookkeeping overhead, mirroring the dedup page table's
#: ``repro.core.agent.METADATA_BYTES_PER_PAGE`` (kept local: the agent
#: imports this module, so importing it back would cycle).
METADATA_BYTES_PER_PAGE = 40


@dataclass(frozen=True)
class SharedSpan:
    """One shareable region expressed as a patch against its segment."""

    offset: int
    size: int
    segment_key: tuple[str, str, int]
    """Catalog :data:`~repro.templates.catalog.SegmentKey` — (dedup
    domain, content key, size)."""
    patch: Patch


@dataclass(eq=False)
class TemplateDeltaTable:
    """Retained state of a template-parked sandbox.

    Satisfies the :class:`repro.sandbox.sandbox.RetainedState` protocol
    (``retained_full_bytes``), so template sandboxes reuse the DEDUP
    lifecycle states, node accounting and eviction machinery unchanged —
    the controller tells the two park flavours apart by table type.
    """

    function: str
    instance_seed: int
    page_size: int
    content_scale: float
    aslr: bool
    executed: bool
    num_pages: int
    full_size_bytes: int
    original_checksum: str
    regions: tuple[PlacedRegion, ...]
    shared: tuple[SharedSpan, ...]
    unique_pages: dict[int, bytes]
    """Literal content of private non-zero pages, by page index."""
    zero_pages: tuple[int, ...]
    """Indices of all-zero pages outside the shared spans (implicit)."""

    @cached_property
    def retained_content_bytes(self) -> int:
        """Scaled bytes this table keeps resident while parked."""
        return sum(span.patch.size_bytes for span in self.shared) + sum(
            len(data) for data in self.unique_pages.values()
        )

    @property
    def retained_full_bytes(self) -> int:
        """Full-scale retained footprint (RetainedState protocol)."""
        scaled = self.retained_content_bytes
        return int(scaled / self.content_scale) + self.num_pages * METADATA_BYTES_PER_PAGE

    @cached_property
    def cow_shareable_content_bytes(self) -> int:
        """Scaled template bytes the instance left untouched — the COPY
        coverage of the span patches.  A fork maps these pages
        copy-on-write from the node's template replicas (the TrEnv fork
        model), so a forked sandbox's DRAM charge is its full footprint
        minus this share for as long as the replicas stay pinned."""
        return sum(span.patch.copied_bytes for span in self.shared)

    @property
    def cow_shareable_full_bytes(self) -> int:
        return int(self.cow_shareable_content_bytes / self.content_scale)

    @property
    def segment_keys(self) -> tuple[tuple[str, str, int], ...]:
        seen: dict[tuple[str, str, int], None] = {}
        for span in self.shared:
            seen.setdefault(span.segment_key, None)
        return tuple(seen)

    @property
    def patched_pages(self) -> int:
        return sum(span.size // self.page_size for span in self.shared)

    @property
    def savings_fraction(self) -> float:
        """Fraction of the image *not* retained — the template analogue
        of ``DedupStats.savings_fraction``."""
        total = self.num_pages * self.page_size
        if total == 0:
            return 0.0
        return 1.0 - min(1.0, self.retained_content_bytes / total)


def build_delta_table(
    image: MemoryImage,
    segment_content: dict[tuple[str, str, int], np.ndarray],
    *,
    content_scale: float,
    full_size_bytes: int,
    level: int = 1,
    domain: str = "",
) -> TemplateDeltaTable:
    """Factor ``image`` into segment patches + private pages.

    ``segment_content`` maps each shareable region's ``(domain,
    content_key, size)`` catalog key to the template bytes; regions
    without an entry (including a match published under a *different*
    dedup domain) are treated as private.  Regions are page-aligned by
    construction, so shared spans and private pages partition the image
    exactly.
    """
    shared_regions = [
        region
        for region in image.regions
        if (domain, region.spec.content_key, region.size) in segment_content
    ]
    for region in shared_regions:
        if region.offset % image.page_size or region.size % image.page_size:
            raise ValueError(
                f"shareable region {region.spec.name} is not page-aligned"
            )
    patches = compute_patches(
        [image.data[region.offset : region.end] for region in shared_regions],
        [
            segment_content[(domain, region.spec.content_key, region.size)]
            for region in shared_regions
        ],
        level=level,
    )
    shared = tuple(
        SharedSpan(
            offset=region.offset,
            size=region.size,
            segment_key=(domain, region.spec.content_key, region.size),
            patch=patch,
        )
        for region, patch in zip(shared_regions, patches)
    )

    covered = np.zeros(image.num_pages, dtype=bool)
    for span in shared:
        start = span.offset // image.page_size
        covered[start : start + span.size // image.page_size] = True
    pages = image.data.reshape(image.num_pages, image.page_size)
    nonzero = pages.any(axis=1)
    unique_pages = {
        int(index): pages[index].tobytes()
        for index in np.flatnonzero(~covered & nonzero)
    }
    zero_pages = tuple(int(index) for index in np.flatnonzero(~covered & ~nonzero))

    return TemplateDeltaTable(
        function=image.function,
        instance_seed=image.instance_seed,
        page_size=image.page_size,
        content_scale=content_scale,
        aslr=image.aslr,
        executed=image.executed,
        num_pages=image.num_pages,
        full_size_bytes=full_size_bytes,
        original_checksum=image.checksum(),
        regions=image.regions,
        shared=shared,
        unique_pages=unique_pages,
        zero_pages=zero_pages,
    )


def reconstruct_image(
    table: TemplateDeltaTable,
    segment_content: dict[tuple[str, str, int], np.ndarray],
    *,
    verify: bool = False,
) -> MemoryImage:
    """Fork: re-apply the delta over template content, byte-exactly."""
    buffer = np.zeros(table.num_pages * table.page_size, dtype=np.uint8)
    for span in table.shared:
        base = segment_content[span.segment_key]
        restored = apply_patch(span.patch, base)
        buffer[span.offset : span.offset + span.size] = np.frombuffer(
            restored, dtype=np.uint8
        )
    for index, data in table.unique_pages.items():
        start = index * table.page_size
        buffer[start : start + table.page_size] = np.frombuffer(data, dtype=np.uint8)
    image = MemoryImage(
        function=table.function,
        instance_seed=table.instance_seed,
        data=buffer,
        page_size=table.page_size,
        regions=table.regions,
        aslr=table.aslr,
        executed=table.executed,
    )
    if verify and image.checksum() != table.original_checksum:
        raise RuntimeError(
            f"template fork of sandbox image {table.function}/{table.instance_seed} "
            "failed checksum verification"
        )
    return image
