"""Value-sampled page fingerprints (paper Section 4.1.2).

A page fingerprint is a small unordered set of chunk digests chosen by
*value sampling*: the page is scanned with a rolling 64-byte window and a
chunk is selected whenever the last two bytes of the window match a fixed
marker pattern.  Five such chunks (the *fingerprint set cardinality*)
represent the page; the number of digests two pages share estimates
their similarity.  This keeps both the computational cost (one linear
scan + a 2-byte comparison) and the controller communication per page
tiny, which is the crux of Medes' scalability argument.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro._util import (
    gather_chunks,
    hash_bytes,
    hash_rows_sha1,
    poly_hash_bytes,
    poly_hash_rows,
    rng_for,
)
from repro.memory.chunks import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_DIGEST_BITS,
    batch_enforce_spacing,
    batch_marker_ends,
    enforce_spacing,
    marker_positions,
)


class SamplingStrategy(enum.Enum):
    """How the fingerprint's chunks are chosen within a page.

    ``VALUE_SAMPLED`` is Medes' scheme (EndRE-style content markers):
    sampled positions travel with the content, so two pages holding the
    same bytes at different intra-page offsets still share digests.
    ``FIXED_OFFSETS`` models Difference Engine's approach (Section 8):
    chunks at fixed, randomly-drawn page offsets — cheap, but any
    sub-page shift of the content (ASLR'd stacks, relocated objects)
    desynchronizes the sample.  The ablation benchmark contrasts them.
    """

    VALUE_SAMPLED = "value-sampled"
    FIXED_OFFSETS = "fixed-offsets"


class HashKind(enum.Enum):
    """Which digest function hashes the sampled chunks.

    ``SHA1`` is the paper's choice and the default: cryptographic, so an
    adversarial tenant cannot engineer chunk collisions.  ``POLY64`` is
    a fully vectorised polynomial digest (one integer matmul over the
    gathered chunk matrix, no per-chunk Python or C-hashlib calls) — an
    opt-in throughput/collision trade-off for trusted single-tenant
    deployments, ablated by ``benchmarks/bench_fingerprint_kernel.py``.
    The two kinds produce disjoint digest spaces in practice, so a
    registry must be populated and queried with one consistent config.
    """

    SHA1 = "sha1"
    POLY64 = "poly64"

#: Marker: sample when the low byte of the 2-byte window tail equals 0x77.
#: With uniform content this samples ~1/256 positions, i.e. ~16 candidate
#: chunks per 4 KiB page — comfortably above the default cardinality of 5.
MARKER_MASK = 0x00FF
MARKER_VALUE = 0x0077

#: Default fingerprint set cardinality (number of chunk digests per page).
DEFAULT_CARDINALITY = 5


@dataclass(frozen=True)
class FingerprintConfig:
    """Tunables of the fingerprinting scheme (Section 7.8 sensitivity)."""

    chunk_size: int = DEFAULT_CHUNK_SIZE
    cardinality: int = DEFAULT_CARDINALITY
    digest_bits: int = DEFAULT_DIGEST_BITS
    marker_mask: int = MARKER_MASK
    marker_value: int = MARKER_VALUE
    strategy: SamplingStrategy = SamplingStrategy.VALUE_SAMPLED
    hash_kind: HashKind = HashKind.SHA1

    def __post_init__(self) -> None:
        if self.chunk_size <= 2:
            raise ValueError("chunk_size must exceed the 2-byte marker")
        if self.cardinality <= 0:
            raise ValueError("cardinality must be positive")
        if not 1 <= self.digest_bits <= 160:
            raise ValueError("digest_bits must be in [1, 160]")
        if self.hash_kind is HashKind.POLY64 and self.digest_bits > 64:
            raise ValueError("POLY64 digests are at most 64 bits wide")


@dataclass(frozen=True)
class PageFingerprint:
    """Fingerprint of one page: sampled chunk digests and their offsets."""

    digests: tuple[int, ...]
    offsets: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.digests) != len(self.offsets):
            raise ValueError("digests/offsets length mismatch")

    @cached_property
    def digest_set(self) -> frozenset[int]:
        """The unordered digest set used for similarity estimation."""
        return frozenset(self.digests)

    def overlap(self, other: "PageFingerprint") -> int:
        """Number of shared digests with ``other`` (similarity estimate)."""
        return len(self.digest_set & other.digest_set)


def _fixed_offsets(page_len: int, config: FingerprintConfig) -> np.ndarray:
    """Difference-Engine-style sampling: chunks at fixed page offsets.

    The offsets are drawn once per (page length, cardinality) from a
    global seed — the same positions on every page, like DE's
    boot-time-randomized offsets — so identical pages still match but
    shifted content does not.
    """
    max_start = page_len - config.chunk_size
    if max_start < 0:
        return np.empty(0, dtype=np.int64)
    rng = rng_for("de-fixed-offsets", page_len, config.chunk_size, config.cardinality)
    count = min(config.cardinality, max_start + 1)
    starts = rng.choice(max_start + 1, size=count, replace=False)
    return np.sort(starts).astype(np.int64)


def sample_chunk_offsets(page: np.ndarray, config: FingerprintConfig) -> np.ndarray:
    """Start offsets of the sampled chunks of ``page``.

    Value sampling: window-end positions matching the marker are thinned
    to non-overlapping chunks and capped at the configured cardinality.
    A page with fewer marker hits than the cardinality (e.g. a zero
    page, whose windows never match) simply yields fewer chunks.
    """
    if config.strategy is SamplingStrategy.FIXED_OFFSETS:
        return _fixed_offsets(len(page), config)
    ends = marker_positions(
        page,
        mask=config.marker_mask,
        value=config.marker_value,
        min_position=config.chunk_size - 1,
    )
    ends = enforce_spacing(ends, config.chunk_size)
    starts = ends[: config.cardinality] - (config.chunk_size - 1)
    return starts.astype(np.int64)


def _hash_chunk_scalar(chunk: bytes, cfg: FingerprintConfig) -> int:
    """One chunk's digest on the scalar (per-page oracle) path."""
    if cfg.hash_kind is HashKind.POLY64:
        return poly_hash_bytes(chunk, cfg.digest_bits)
    return hash_bytes(chunk, cfg.digest_bits)


def page_fingerprint(page: np.ndarray, config: FingerprintConfig | None = None) -> PageFingerprint:
    """Compute the value-sampled fingerprint of one page.

    The page-at-a-time reference implementation: chunk selection and
    hashing run scalar (big-int SHA-1 / pure-Python polynomial), kept
    deliberately independent of the batch kernel it serves as the
    bit-identical oracle for.
    """
    cfg = config or FingerprintConfig()
    raw = page.tobytes()
    starts = sample_chunk_offsets(page, cfg)
    digests = tuple(
        _hash_chunk_scalar(raw[int(s) : int(s) + cfg.chunk_size], cfg) for s in starts
    )
    return PageFingerprint(digests=digests, offsets=tuple(int(s) for s in starts))


def image_fingerprints(
    image_pages: "list[np.ndarray] | object",
    config: FingerprintConfig | None = None,
) -> list[PageFingerprint]:
    """Fingerprints for every page of an image (or list of page arrays)."""
    cfg = config or FingerprintConfig()
    if hasattr(image_pages, "iter_pages"):
        pages = (page for _, page in image_pages.iter_pages())
    else:
        pages = iter(image_pages)
    return [page_fingerprint(page, cfg) for page in pages]


# ------------------------------------------------------------------ batch path


def nonzero_page_mask(data: np.ndarray, page_size: int) -> np.ndarray:
    """Boolean mask of pages containing any nonzero byte, vectorized."""
    if len(data) % page_size != 0:
        raise ValueError("buffer length must be a multiple of page_size")
    if len(data) == 0:
        return np.zeros(0, dtype=bool)
    return data.reshape(-1, page_size).any(axis=1)


def batch_sample_chunk_starts(
    data: np.ndarray,
    page_size: int,
    config: FingerprintConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Every page's sampled chunk starts as flat arrays, no Python loops.

    Returns ``(starts, counts)``: ``starts`` are *absolute* buffer
    offsets sorted page-major (exactly the concatenation of each page's
    :func:`sample_chunk_offsets`, shifted by the page base), ``counts``
    is the per-page chunk count (length ``num_pages``).  The marker scan
    runs once over the whole buffer and the greedy spacing/cardinality
    thinning resolves in ``cardinality`` vectorised rounds
    (:func:`~repro.memory.chunks.batch_enforce_spacing`) — no per-hit
    Python loop remains.
    """
    cfg = config or FingerprintConfig()
    num_pages = len(data) // page_size
    if cfg.strategy is SamplingStrategy.FIXED_OFFSETS:
        # Fixed offsets depend only on the page length: one draw serves
        # every page of the image.
        offsets = _fixed_offsets(page_size, cfg)
        starts = (
            np.arange(num_pages, dtype=np.int64)[:, None] * page_size + offsets[None, :]
        ).reshape(-1)
        counts = np.full(num_pages, len(offsets), dtype=np.int64)
        return starts, counts
    ends = batch_marker_ends(
        data,
        page_size,
        mask=cfg.marker_mask,
        value=cfg.marker_value,
        min_position=cfg.chunk_size - 1,
    )
    kept = batch_enforce_spacing(
        ends, page_size, cfg.chunk_size, cap=cfg.cardinality
    )
    counts = np.bincount(kept // page_size, minlength=num_pages).astype(np.int64)
    return kept - (cfg.chunk_size - 1), counts


def batch_sample_chunk_offsets(
    data: np.ndarray,
    page_size: int,
    config: FingerprintConfig | None = None,
) -> list[list[int]]:
    """Per-page chunk start offsets (page-relative) from one buffer scan.

    List-of-lists view over :func:`batch_sample_chunk_starts`, matching
    :func:`sample_chunk_offsets` page by page.  Every returned list is
    an independent object, including on the ``FIXED_OFFSETS`` path where
    each page samples the same offsets — callers may mutate one page's
    list without aliasing the rest.
    """
    num_pages = len(data) // page_size
    starts, counts = batch_sample_chunk_starts(data, page_size, config)
    rel = starts - np.repeat(np.arange(num_pages, dtype=np.int64) * page_size, counts)
    rel_list = rel.tolist()
    out: list[list[int]] = []
    cursor = 0
    for count in counts.tolist():
        out.append(rel_list[cursor : cursor + count])
        cursor += count
    return out


def _concat_ranges(range_starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices ``[s0, s0+1, ..), (s1, ..), ...`` concatenated, vectorised."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(range_starts - (np.cumsum(lengths) - lengths), lengths)
    return np.arange(total, dtype=np.int64) + offsets


def batch_fingerprint_arrays(
    data: np.ndarray,
    page_size: int,
    config: FingerprintConfig | None = None,
    *,
    pages: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The fingerprint kernel's flat-array form (``digest_bits <= 64``).

    Returns ``(digests, offsets, counts)``: uint64 chunk digests and
    page-relative int64 chunk offsets, concatenated page-major over the
    requested ``pages`` (default: all), plus the per-page counts that
    delimit them.  This is the whole dedup-op fingerprint stage as four
    array passes — marker scan, segmented thinning, one fancy-indexed
    gather into a ``(n_chunks, chunk_size)`` matrix, one batched digest
    — and the form the parallel data plane ships across the worker
    boundary (arrays pickle flat, no per-page tuple traffic).
    """
    cfg = config or FingerprintConfig()
    if cfg.digest_bits > 64:
        raise ValueError("flat fingerprint arrays require digest_bits <= 64")
    all_starts, all_counts = batch_sample_chunk_starts(data, page_size, cfg)
    if pages is None:
        starts = all_starts
        counts = all_counts
        page_bases = np.repeat(
            np.arange(len(all_counts), dtype=np.int64) * page_size, counts
        )
    else:
        indices = np.asarray(pages, dtype=np.int64)
        bounds = np.concatenate(([0], np.cumsum(all_counts)))
        counts = all_counts[indices]
        starts = all_starts[_concat_ranges(bounds[indices], counts)]
        page_bases = np.repeat(indices * page_size, counts)
    matrix = gather_chunks(data, starts, cfg.chunk_size)
    if cfg.hash_kind is HashKind.POLY64:
        digests = poly_hash_rows(matrix, cfg.digest_bits)
    else:
        digests = hash_rows_sha1(matrix, cfg.digest_bits)
    return digests, starts - page_bases, counts


def batch_page_fingerprints(
    data: np.ndarray,
    page_size: int,
    config: FingerprintConfig | None = None,
    *,
    pages: np.ndarray | None = None,
) -> list[PageFingerprint]:
    """Fingerprints of ``pages`` (default: all) of a flat image buffer.

    Identical digests/offsets to the per-page :func:`page_fingerprint`
    reference (property-tested); the marker scan, thinning, chunk gather
    and digest batch each happen once for the whole buffer.  ``pages``
    restricts hashing to the given page indices (the dedup op skips zero
    pages, for instance) — the returned list is aligned with it.
    """
    cfg = config or FingerprintConfig()
    if cfg.digest_bits > 64:
        return _wide_digest_fingerprints(data, page_size, cfg, pages)
    digests, offsets, counts = batch_fingerprint_arrays(
        data, page_size, cfg, pages=pages
    )
    return fingerprints_from_arrays(digests, offsets, counts)


def fingerprints_from_arrays(
    digests: np.ndarray, offsets: np.ndarray, counts: np.ndarray
) -> list[PageFingerprint]:
    """Materialize :class:`PageFingerprint` objects from the flat form."""
    digest_list = digests.tolist()
    offset_list = offsets.tolist()
    result: list[PageFingerprint] = []
    cursor = 0
    for count in counts.tolist():
        result.append(
            PageFingerprint(
                digests=tuple(digest_list[cursor : cursor + count]),
                offsets=tuple(offset_list[cursor : cursor + count]),
            )
        )
        cursor += count
    return result


def _wide_digest_fingerprints(
    data: np.ndarray,
    page_size: int,
    cfg: FingerprintConfig,
    pages: np.ndarray | None,
) -> list[PageFingerprint]:
    """Batch fingerprints for ``digest_bits > 64`` (experiment-only).

    Wide digests exceed the uint64 array dtype, so each gathered chunk
    is digested through the scalar big-int :func:`hash_bytes`; chunk
    selection and the gather still run vectorised.
    """
    num_pages = len(data) // page_size
    all_starts, all_counts = batch_sample_chunk_starts(data, page_size, cfg)
    if pages is None:
        indices = np.arange(num_pages, dtype=np.int64)
        counts = all_counts
        starts = all_starts
    else:
        indices = np.asarray(pages, dtype=np.int64)
        bounds = np.concatenate(([0], np.cumsum(all_counts)))
        counts = all_counts[indices]
        starts = all_starts[_concat_ranges(bounds[indices], counts)]
    matrix = gather_chunks(data, starts, cfg.chunk_size)
    flat = [hash_bytes(row.tobytes(), cfg.digest_bits) for row in matrix]
    rel = (starts - np.repeat(indices * page_size, counts)).tolist()
    result: list[PageFingerprint] = []
    cursor = 0
    for count in counts.tolist():
        result.append(
            PageFingerprint(
                digests=tuple(flat[cursor : cursor + count]),
                offsets=tuple(rel[cursor : cursor + count]),
            )
        )
        cursor += count
    return result
