"""Value-sampled page fingerprints (paper Section 4.1.2).

A page fingerprint is a small unordered set of chunk digests chosen by
*value sampling*: the page is scanned with a rolling 64-byte window and a
chunk is selected whenever the last two bytes of the window match a fixed
marker pattern.  Five such chunks (the *fingerprint set cardinality*)
represent the page; the number of digests two pages share estimates
their similarity.  This keeps both the computational cost (one linear
scan + a 2-byte comparison) and the controller communication per page
tiny, which is the crux of Medes' scalability argument.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro._util import hash_bytes, hash_bytes_many, rng_for
from repro.memory.chunks import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_DIGEST_BITS,
    batch_marker_ends,
    enforce_spacing,
    marker_positions,
)


class SamplingStrategy(enum.Enum):
    """How the fingerprint's chunks are chosen within a page.

    ``VALUE_SAMPLED`` is Medes' scheme (EndRE-style content markers):
    sampled positions travel with the content, so two pages holding the
    same bytes at different intra-page offsets still share digests.
    ``FIXED_OFFSETS`` models Difference Engine's approach (Section 8):
    chunks at fixed, randomly-drawn page offsets — cheap, but any
    sub-page shift of the content (ASLR'd stacks, relocated objects)
    desynchronizes the sample.  The ablation benchmark contrasts them.
    """

    VALUE_SAMPLED = "value-sampled"
    FIXED_OFFSETS = "fixed-offsets"

#: Marker: sample when the low byte of the 2-byte window tail equals 0x77.
#: With uniform content this samples ~1/256 positions, i.e. ~16 candidate
#: chunks per 4 KiB page — comfortably above the default cardinality of 5.
MARKER_MASK = 0x00FF
MARKER_VALUE = 0x0077

#: Default fingerprint set cardinality (number of chunk digests per page).
DEFAULT_CARDINALITY = 5


@dataclass(frozen=True)
class FingerprintConfig:
    """Tunables of the fingerprinting scheme (Section 7.8 sensitivity)."""

    chunk_size: int = DEFAULT_CHUNK_SIZE
    cardinality: int = DEFAULT_CARDINALITY
    digest_bits: int = DEFAULT_DIGEST_BITS
    marker_mask: int = MARKER_MASK
    marker_value: int = MARKER_VALUE
    strategy: SamplingStrategy = SamplingStrategy.VALUE_SAMPLED

    def __post_init__(self) -> None:
        if self.chunk_size <= 2:
            raise ValueError("chunk_size must exceed the 2-byte marker")
        if self.cardinality <= 0:
            raise ValueError("cardinality must be positive")
        if not 1 <= self.digest_bits <= 160:
            raise ValueError("digest_bits must be in [1, 160]")


@dataclass(frozen=True)
class PageFingerprint:
    """Fingerprint of one page: sampled chunk digests and their offsets."""

    digests: tuple[int, ...]
    offsets: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.digests) != len(self.offsets):
            raise ValueError("digests/offsets length mismatch")

    @cached_property
    def digest_set(self) -> frozenset[int]:
        """The unordered digest set used for similarity estimation."""
        return frozenset(self.digests)

    def overlap(self, other: "PageFingerprint") -> int:
        """Number of shared digests with ``other`` (similarity estimate)."""
        return len(self.digest_set & other.digest_set)


def _fixed_offsets(page_len: int, config: FingerprintConfig) -> np.ndarray:
    """Difference-Engine-style sampling: chunks at fixed page offsets.

    The offsets are drawn once per (page length, cardinality) from a
    global seed — the same positions on every page, like DE's
    boot-time-randomized offsets — so identical pages still match but
    shifted content does not.
    """
    max_start = page_len - config.chunk_size
    if max_start < 0:
        return np.empty(0, dtype=np.int64)
    rng = rng_for("de-fixed-offsets", page_len, config.chunk_size, config.cardinality)
    count = min(config.cardinality, max_start + 1)
    starts = rng.choice(max_start + 1, size=count, replace=False)
    return np.sort(starts).astype(np.int64)


def sample_chunk_offsets(page: np.ndarray, config: FingerprintConfig) -> np.ndarray:
    """Start offsets of the sampled chunks of ``page``.

    Value sampling: window-end positions matching the marker are thinned
    to non-overlapping chunks and capped at the configured cardinality.
    A page with fewer marker hits than the cardinality (e.g. a zero
    page, whose windows never match) simply yields fewer chunks.
    """
    if config.strategy is SamplingStrategy.FIXED_OFFSETS:
        return _fixed_offsets(len(page), config)
    ends = marker_positions(
        page,
        mask=config.marker_mask,
        value=config.marker_value,
        min_position=config.chunk_size - 1,
    )
    ends = enforce_spacing(ends, config.chunk_size)
    starts = ends[: config.cardinality] - (config.chunk_size - 1)
    return starts.astype(np.int64)


def page_fingerprint(page: np.ndarray, config: FingerprintConfig | None = None) -> PageFingerprint:
    """Compute the value-sampled fingerprint of one page."""
    cfg = config or FingerprintConfig()
    raw = page.tobytes()
    starts = sample_chunk_offsets(page, cfg)
    digests = tuple(
        hash_bytes(raw[int(s) : int(s) + cfg.chunk_size], cfg.digest_bits) for s in starts
    )
    return PageFingerprint(digests=digests, offsets=tuple(int(s) for s in starts))


def image_fingerprints(
    image_pages: "list[np.ndarray] | object",
    config: FingerprintConfig | None = None,
) -> list[PageFingerprint]:
    """Fingerprints for every page of an image (or list of page arrays)."""
    cfg = config or FingerprintConfig()
    if hasattr(image_pages, "iter_pages"):
        pages = (page for _, page in image_pages.iter_pages())
    else:
        pages = iter(image_pages)
    return [page_fingerprint(page, cfg) for page in pages]


# ------------------------------------------------------------------ batch path


def nonzero_page_mask(data: np.ndarray, page_size: int) -> np.ndarray:
    """Boolean mask of pages containing any nonzero byte, vectorized."""
    if len(data) % page_size != 0:
        raise ValueError("buffer length must be a multiple of page_size")
    if len(data) == 0:
        return np.zeros(0, dtype=bool)
    return data.reshape(-1, page_size).any(axis=1)


def batch_sample_chunk_offsets(
    data: np.ndarray,
    page_size: int,
    config: FingerprintConfig | None = None,
) -> list[list[int]]:
    """Per-page chunk start offsets (page-relative) from one buffer scan.

    Produces exactly what :func:`sample_chunk_offsets` yields per page,
    but the marker scan runs once over the whole buffer instead of page
    by page — the vectorization the dedup op's throughput lives on.  The
    greedy spacing/cardinality thinning runs as one pass over plain ints
    (marker hits are sparse, so per-page numpy dispatch would dominate).
    """
    cfg = config or FingerprintConfig()
    num_pages = len(data) // page_size
    if cfg.strategy is SamplingStrategy.FIXED_OFFSETS:
        # Fixed offsets depend only on the page length: one draw serves
        # every page of the image.
        offsets = _fixed_offsets(page_size, cfg).tolist()
        return [offsets] * num_pages
    ends = batch_marker_ends(
        data,
        page_size,
        mask=cfg.marker_mask,
        value=cfg.marker_value,
        min_position=cfg.chunk_size - 1,
    )
    out: list[list[int]] = [[] for _ in range(num_pages)]
    spacing = cfg.chunk_size
    cardinality = cfg.cardinality
    delta = cfg.chunk_size - 1
    page = -1
    last = -1
    kept = 0
    for pos in ends.tolist():
        p = pos // page_size
        if p != page:
            page, last, kept = p, -1, 0
        if kept >= cardinality:
            continue
        if last < 0 or pos - last >= spacing:
            out[p].append(pos - p * page_size - delta)
            last = pos
            kept += 1
    return out


def batch_page_fingerprints(
    data: np.ndarray,
    page_size: int,
    config: FingerprintConfig | None = None,
    *,
    pages: np.ndarray | None = None,
) -> list[PageFingerprint]:
    """Fingerprints of ``pages`` (default: all) of a flat image buffer.

    Identical digests/offsets to the per-page :func:`page_fingerprint`
    reference; the marker scan and the raw-bytes materialization happen
    once for the whole buffer.  ``pages`` restricts hashing to the given
    page indices (the dedup op skips zero pages, for instance) — the
    returned list is aligned with it.
    """
    cfg = config or FingerprintConfig()
    offsets_per_page = batch_sample_chunk_offsets(data, page_size, cfg)
    raw = data.tobytes()
    if pages is None:
        indices = range(len(offsets_per_page))
    else:
        indices = [int(i) for i in pages]
    chunk_size = cfg.chunk_size
    digest_bits = cfg.digest_bits
    if digest_bits > 64:
        # Wide digests exceed hash_bytes_many's uint64 output; keep the
        # scalar big-int path for this (experiment-only) configuration.
        result: list[PageFingerprint] = []
        for index in indices:
            base = index * page_size
            starts = offsets_per_page[index]
            digests = tuple(
                hash_bytes(raw[base + s : base + s + chunk_size], digest_bits)
                for s in starts
            )
            result.append(PageFingerprint(digests=digests, offsets=tuple(starts)))
        return result
    chunks = [
        raw[index * page_size + s : index * page_size + s + chunk_size]
        for index in indices
        for s in offsets_per_page[index]
    ]
    flat = hash_bytes_many(chunks, digest_bits).tolist()
    result = []
    cursor = 0
    for index in indices:
        starts = offsets_per_page[index]
        count = len(starts)
        result.append(
            PageFingerprint(
                digests=tuple(flat[cursor : cursor + count]), offsets=tuple(starts)
            )
        )
        cursor += count
    return result
