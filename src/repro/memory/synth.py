"""Deterministic synthesis of region contents.

Content is assembled from 128-byte blocks.  Each block is either drawn
from a *common pool* of recurring blocks (modelling allocator patterns,
interned objects and other bytes that recur across unrelated memory) or
is private to the region's content key.  All draws are prefix-stable:
requesting a longer slice of a region's content never changes the bytes
already produced for a shorter slice, so differently-sized sandboxes of
different functions still share their common prefixes (as real
interpreter images do).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._util import rng_for
from repro.memory.layout import AslrBehavior, RegionSpec

#: Size of the content assembly block in bytes.
POOL_BLOCK = 128
#: Number of distinct blocks in the global common pool.  Small enough
#: that even the smallest (scaled) sandbox image contains most of the
#: pool, so recurring-content matches between unrelated functions behave
#: the same at every content scale.
POOL_BLOCKS = 96
#: Bytes per pointer site.
POINTER_SIZE = 8
#: How many of a pointer's bytes ASLR randomizes (the segment base).
POINTER_ASLR_BYTES = 4
#: Share of a dirty (instance-rewritten) page still drawn from the common
#: pool — allocator output is structured, not random, so dirty pages keep
#: partial chunk-level redundancy while defeating whole-page dedup.
DIRTY_POOL_SHARE = 0.35
#: Page size used to partition regions into dirty/clean pages.  Matches
#: the image page size (regions are always page-aligned).
DIRTY_PAGE_BYTES = 4096


@lru_cache(maxsize=1)
def common_pool() -> np.ndarray:
    """The global pool of recurring content blocks, shape (POOL_BLOCKS, POOL_BLOCK)."""
    rng = rng_for("medes-common-pool")
    return rng.integers(0, 256, size=(POOL_BLOCKS, POOL_BLOCK), dtype=np.uint8)


@lru_cache(maxsize=256)
def _base_content(content_key: str, common_fill: float, nblocks: int) -> np.ndarray:
    """Base (pre-instance) content for a content key, ``nblocks`` blocks long.

    Separate sub-streams are used for the pool/private decision, the pool
    indices, and the private bytes so that each is independently
    prefix-stable in ``nblocks``.
    """
    draws = rng_for("region-draw", content_key).random(nblocks)
    pool_idx = rng_for("region-poolidx", content_key).integers(0, POOL_BLOCKS, size=nblocks)
    blocks = np.empty((nblocks, POOL_BLOCK), dtype=np.uint8)
    common_mask = draws < common_fill
    blocks[common_mask] = common_pool()[pool_idx[common_mask]]
    n_private = int((~common_mask).sum())
    if n_private:
        private = rng_for("region-private", content_key).integers(
            0, 256, size=(nblocks, POOL_BLOCK), dtype=np.uint8
        )
        blocks[~common_mask] = private[~common_mask]
    result = blocks.reshape(-1)
    result.setflags(write=False)
    return result


def base_region_content(spec: RegionSpec, size: int) -> np.ndarray:
    """Return the shared base content of ``spec`` truncated to ``size`` bytes."""
    if spec.zero_fill:
        return np.zeros(size, dtype=np.uint8)
    nblocks = (size + POOL_BLOCK - 1) // POOL_BLOCK
    return _base_content(spec.content_key, spec.common_fill, nblocks)[:size]


@lru_cache(maxsize=256)
def _pointer_positions(content_key: str, interval: int, size: int) -> np.ndarray:
    """Deterministic pointer-site offsets for a region (prefix-stable)."""
    if interval <= 0 or size < POINTER_SIZE:
        return np.empty(0, dtype=np.int64)
    max_count = size // max(interval // 2, POINTER_SIZE) + 1
    spacings = rng_for("ptr-pos", content_key).uniform(0.5, 1.5, size=max_count) * interval
    positions = np.cumsum(spacings).astype(np.int64)
    positions = positions[positions <= size - POINTER_SIZE]
    positions.setflags(write=False)
    return positions


def _pointer_values(content_key: str, count: int, *, aslr: bool, instance_seed: int) -> np.ndarray:
    """Pointer bytes, shape (count, POINTER_SIZE).

    Without ASLR all instances embed identical pointer values.  With ASLR
    the high ``POINTER_ASLR_BYTES`` bytes (the randomized segment base)
    become instance-specific, scattering small diffs through the region —
    this is what degrades page fingerprints under ASLR (paper Section 7.2.1)
    while leaving byte-level redundancy nearly intact (Fig 1b).
    """
    shared = rng_for("ptr-val", content_key).integers(
        0, 256, size=(count, POINTER_SIZE), dtype=np.uint8
    )
    if not aslr or count == 0:
        return shared
    randomized = shared.copy()
    high = rng_for("ptr-aslr", instance_seed, content_key).integers(
        0, 256, size=(count, POINTER_ASLR_BYTES), dtype=np.uint8
    )
    randomized[:, -POINTER_ASLR_BYTES:] = high
    return randomized


def template_region_content(spec: RegionSpec, size: int) -> np.ndarray:
    """Instance-independent template bytes for a shared region.

    Base content plus the *shared* (non-ASLR) pointer values — the state
    every instance starts from before dirty pages, mutations or ASLR
    individualize it.  This is what the template catalog publishes for
    RUNTIME/LIBRARY regions: identical for every function that places the
    same ``(content_key, size)`` region, so one pool copy serves forks of
    all of them; per-instance divergence is carried by each sandbox's
    delta patch against these bytes.
    """
    data = np.array(base_region_content(spec, size), dtype=np.uint8, copy=True)
    positions = _pointer_positions(spec.content_key, spec.pointer_interval, size)
    if positions.size:
        values = _pointer_values(
            spec.content_key, len(positions), aslr=False, instance_seed=0
        )
        idx = positions[:, None] + np.arange(POINTER_SIZE)[None, :]
        data[idx.reshape(-1)] = values.reshape(-1)
    data.setflags(write=False)
    return data


def _dirty_page_content(nbytes: int, rng: np.random.Generator) -> np.ndarray:
    """Instance-private content of a rewritten page.

    A DIRTY_POOL_SHARE mix of common-pool blocks and private bytes: the
    page keeps some chunk-level redundancy (visible to the Section-2
    study and exploitable by sub-page patching) but no longer matches any
    base page wholesale.
    """
    nblocks = (nbytes + POOL_BLOCK - 1) // POOL_BLOCK
    blocks = rng.integers(0, 256, size=(nblocks, POOL_BLOCK), dtype=np.uint8)
    common_mask = rng.random(nblocks) < DIRTY_POOL_SHARE
    if common_mask.any():
        idx = rng.integers(0, POOL_BLOCKS, size=int(common_mask.sum()))
        blocks[common_mask] = common_pool()[idx]
    return blocks.reshape(-1)[:nbytes]


def _apply_dirty_pages(
    data: np.ndarray,
    spec: RegionSpec,
    instance_seed: int,
) -> None:
    """Rewrite a per-instance selection of whole pages in-place."""
    if spec.dirty_page_rate <= 0.0:
        return
    npages = len(data) // DIRTY_PAGE_BYTES
    if npages == 0:
        return
    rng = rng_for("dirty-pages", instance_seed, spec.content_key)
    dirty = np.flatnonzero(rng.random(npages) < spec.dirty_page_rate)
    for page in dirty:
        start = int(page) * DIRTY_PAGE_BYTES
        data[start : start + DIRTY_PAGE_BYTES] = _dirty_page_content(DIRTY_PAGE_BYTES, rng)


def build_region(
    spec: RegionSpec,
    size: int,
    instance_seed: int,
    *,
    aslr: bool = False,
    executed: bool = False,
) -> np.ndarray:
    """Materialize one instance's bytes for a region.

    Applies, in order: shared base content, pointer-site values, dirty
    (rewritten) pages, per-instance copy-on-write mutations, and (under
    ASLR) the 16-byte fine-grained shift for stack-like regions.

    ``executed`` selects the post-execution memory state: only sandboxes
    that have served requests carry dirty pages.  Freshly-initialized
    checkpoints (the Section-2 measurement study) are nearly identical
    across instances, which is exactly why the paper's Figure-1
    redundancy exceeds its Table-3 dedup savings.
    """
    data = np.array(base_region_content(spec, size), dtype=np.uint8, copy=True)

    positions = _pointer_positions(spec.content_key, spec.pointer_interval, size)
    if positions.size:
        values = _pointer_values(
            spec.content_key, len(positions), aslr=aslr, instance_seed=instance_seed
        )
        # Scatter each 8-byte pointer into place.
        idx = positions[:, None] + np.arange(POINTER_SIZE)[None, :]
        data[idx.reshape(-1)] = values.reshape(-1)

    if executed:
        _apply_dirty_pages(data, spec, instance_seed)

    if spec.mutation_rate > 0.0:
        rng = rng_for("mutations", instance_seed, spec.content_key)
        count = int(rng.poisson(size * spec.mutation_rate))
        if count:
            pos = rng.integers(0, size, size=count)
            data[pos] = rng.integers(0, 256, size=count, dtype=np.uint8)

    if aslr and spec.aslr is AslrBehavior.FINE:
        shift_units = int(rng_for("aslr-fine", instance_seed, spec.content_key).integers(0, 128))
        data = np.roll(data, shift_units * 16)

    return data
