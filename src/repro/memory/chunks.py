"""Chunk-level hashing primitives.

Medes identifies redundancy at a 64-byte chunk granularity (Section
4.1.1).  This module provides the hashing and scanning primitives shared
by the page fingerprints (dedup path) and the Section-2 measurement
study: SHA-1 chunk digests (truncatable, to model smaller fingerprint
tables and their collisions) and the vectorised rolling 2-byte values
used for value sampling.
"""

from __future__ import annotations

import numpy as np

from repro._util import gather_chunks, hash_bytes, hash_rows_sha1

#: Default chunk size in bytes (the paper's RSC size).
DEFAULT_CHUNK_SIZE = 64
#: Default digest width for chunk hashes.
DEFAULT_DIGEST_BITS = 64


def hash_chunk(chunk: bytes, bits: int = DEFAULT_DIGEST_BITS) -> int:
    """Digest of one chunk, truncated to ``bits`` bits."""
    return hash_bytes(chunk, bits)


def fixed_offset_digests(
    data: np.ndarray,
    chunk_size: int,
    stride: int,
    bits: int = DEFAULT_DIGEST_BITS,
) -> list[tuple[int, int]]:
    """Digest chunks sampled at fixed offsets.

    Returns ``(offset, digest)`` for chunks of ``chunk_size`` bytes taken
    every ``stride`` bytes — the sampling scheme of the Section-2
    redundancy study (``stride = 2 * chunk_size`` there).
    """
    if chunk_size <= 0 or stride <= 0:
        raise ValueError("chunk_size and stride must be positive")
    raw = data.tobytes()
    offsets = np.arange(0, len(raw) - chunk_size + 1, stride, dtype=np.int64)
    if bits > 64:
        # Wide digests exceed the vectorised kernels' uint64 output;
        # keep the scalar big-int path for this experiment-only width.
        return [
            (int(offset), hash_bytes(raw[offset : offset + chunk_size], bits))
            for offset in offsets
        ]
    matrix = gather_chunks(np.frombuffer(raw, dtype=np.uint8), offsets, chunk_size)
    digests = hash_rows_sha1(matrix, bits)
    return list(zip(offsets.tolist(), digests.tolist()))


def rolling_last2(data: np.ndarray) -> np.ndarray:
    """Value of the last two bytes of every rolling window ending at i.

    ``result[i] = data[i-1] << 8 | data[i]`` for ``i >= 1``; position 0 is
    0.  Used for EndRE-style value sampling: a window is sampled when this
    value matches a marker pattern.
    """
    if data.dtype != np.uint8:
        raise ValueError("expected uint8 data")
    result = np.zeros(len(data), dtype=np.uint16)
    if len(data) >= 2:
        result[1:] = (data[:-1].astype(np.uint16) << 8) | data[1:].astype(np.uint16)
    return result


def _single_byte_marker(mask: int, value: int) -> tuple[int, int] | None:
    """Reduce a marker to a one-byte test when its mask allows it.

    With a mask confined to the low byte, ``(last2 & mask) == value``
    only ever inspects ``data[i]`` — the rolling high byte is masked off
    — so the scan can be a single byte compare instead of materializing
    rolling 16-bit values (5 full-buffer passes).  Only valid for
    positions >= 1 (position 0's rolling value is defined as 0); callers
    guard with their ``min_position``.  Returns ``(mask, value)`` as byte
    operands, or None when the marker genuinely needs the high byte.
    """
    if mask & ~0xFF:
        return None
    if value & ~0xFF:
        # The required value has high bits the mask can never produce.
        return (0, 1)  # matches nothing: (byte & 0) == 1 is always false
    return (mask, value)


def marker_positions(
    data: np.ndarray,
    *,
    mask: int,
    value: int,
    min_position: int,
) -> np.ndarray:
    """Window-end positions whose last-two-byte value matches the marker.

    Only positions ``>= min_position`` qualify (so a full chunk fits
    before the window end).  This is the per-page reference scan; the
    batch path's :func:`batch_marker_ends` additionally short-circuits
    single-byte markers.
    """
    last2 = rolling_last2(data)
    hits = np.flatnonzero((last2 & mask) == value)
    return hits[hits >= min_position]


def _byte_marker_matches(data: np.ndarray, byte_marker: tuple[int, int]) -> np.ndarray:
    bmask, bvalue = byte_marker
    if bmask == 0xFF:
        return data == np.uint8(bvalue)
    return (data & np.uint8(bmask)) == np.uint8(bvalue)


def enforce_spacing(
    positions: np.ndarray, spacing: int, *, cap: int | None = None
) -> np.ndarray:
    """Greedily thin ``positions`` so consecutive picks are >= spacing apart.

    Keeps sampled chunks non-overlapping, mirroring EndRE's skip-ahead
    after each sampled chunk.  ``cap`` stops after that many picks — the
    greedy prefix is identical to thinning everything and slicing, so
    capped and uncapped calls agree on the kept prefix.
    """
    if positions.size == 0:
        return positions
    kept = [int(positions[0])]
    if cap is not None and len(kept) >= cap:
        return np.asarray(kept, dtype=np.int64)
    for pos in positions[1:]:
        if pos - kept[-1] >= spacing:
            kept.append(int(pos))
            if cap is not None and len(kept) >= cap:
                break
    return np.asarray(kept, dtype=np.int64)


def batch_enforce_spacing(
    positions: np.ndarray,
    page_size: int,
    spacing: int,
    *,
    cap: int,
) -> np.ndarray:
    """Per-page greedy thinning of a whole buffer's marker hits, vectorised.

    ``positions`` are sorted absolute buffer offsets (the output of
    :func:`batch_marker_ends`); the result equals running
    :func:`enforce_spacing` with ``cap`` on each page's positions
    independently and re-concatenating — pinned by a hypothesis property
    (``tests/memory/test_vector_kernel.py``).

    The greedy recurrence ("keep a hit iff it is >= ``spacing`` past the
    last kept hit of its page") looks inherently serial, but at most
    ``cap`` hits survive per page, so it resolves in at most ``cap``
    *rounds* over the whole buffer: each round picks the first surviving
    hit of every page simultaneously (a segmented ``minimum.reduceat``),
    then kills every hit within ``spacing`` of its page's pick.  ``cap``
    is ~5 (the fingerprint cardinality), so the per-hit Python loop this
    replaces becomes ~5 full-array passes.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if cap <= 0:
        raise ValueError("cap must be positive")
    n = len(positions)
    if n == 0:
        return positions.astype(np.int64, copy=False)
    positions = positions.astype(np.int64, copy=False)
    pages = positions // page_size
    # Hits are sorted, so each page's hits are one contiguous segment.
    seg_starts = np.flatnonzero(np.concatenate(([True], pages[1:] != pages[:-1])))
    seg_of = np.repeat(
        np.arange(len(seg_starts), dtype=np.int64),
        np.diff(np.concatenate((seg_starts, [n]))),
    )
    index = np.arange(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    kept_rounds: list[np.ndarray] = []
    for _ in range(cap):
        masked = np.where(alive, index, n)
        first = np.minimum.reduceat(masked, seg_starts)
        have = first < n
        if not have.any():
            break
        picks = positions[first[have]]
        kept_rounds.append(picks)
        # Everything on a picked page below pick+spacing dies (the pick
        # itself included — it has been consumed); pages with no pick
        # left have no alive hits anyway.
        threshold = np.full(len(seg_starts), np.iinfo(np.int64).min, dtype=np.int64)
        threshold[have] = picks + spacing
        alive &= positions >= threshold[seg_of]
    if not kept_rounds:
        return np.empty(0, dtype=np.int64)
    kept = np.concatenate(kept_rounds)
    # Absolute positions encode (page, offset) order directly.
    kept.sort()
    return kept


def batch_marker_ends(
    data: np.ndarray,
    page_size: int,
    *,
    mask: int,
    value: int,
    min_position: int,
) -> np.ndarray:
    """Marker positions of *every page* of a flat buffer, in one scan.

    Equivalent to calling :func:`marker_positions` page by page, but the
    rolling-value computation runs once over the whole buffer.  Returned
    positions are absolute buffer offsets; callers split them per page
    (``positions // page_size``).  Two per-page semantics are preserved:

    * the rolling value of each page's position 0 is defined as 0 (the
      window never spans a page boundary), and
    * ``min_position`` applies to the *page-relative* offset.
    """
    if len(data) % page_size != 0:
        raise ValueError("buffer length must be a multiple of page_size")
    byte_marker = _single_byte_marker(mask, value) if min_position >= 1 else None
    if byte_marker is not None:
        # Page starts (whose per-page rolling value is defined as 0) are
        # position 0 of their page, always below min_position >= 1.
        hits = np.flatnonzero(_byte_marker_matches(data, byte_marker))
        return hits[(hits % page_size) >= min_position]
    last2 = rolling_last2(data)
    # Reset at page starts: the per-page scan defines position 0 as 0.
    last2[::page_size] = 0
    hits = np.flatnonzero((last2 & mask) == value)
    if min_position > 0:
        hits = hits[(hits % page_size) >= min_position]
    return hits


def split_positions_by_page(
    positions: np.ndarray, page_size: int, num_pages: int
) -> list[np.ndarray]:
    """Split sorted absolute ``positions`` into one array per page."""
    if num_pages == 0:
        return []
    boundaries = np.arange(1, num_pages, dtype=np.int64) * page_size
    return np.split(positions, np.searchsorted(positions, boundaries))
