"""Chunk-level hashing primitives.

Medes identifies redundancy at a 64-byte chunk granularity (Section
4.1.1).  This module provides the hashing and scanning primitives shared
by the page fingerprints (dedup path) and the Section-2 measurement
study: SHA-1 chunk digests (truncatable, to model smaller fingerprint
tables and their collisions) and the vectorised rolling 2-byte values
used for value sampling.
"""

from __future__ import annotations

import numpy as np

from repro._util import hash_bytes

#: Default chunk size in bytes (the paper's RSC size).
DEFAULT_CHUNK_SIZE = 64
#: Default digest width for chunk hashes.
DEFAULT_DIGEST_BITS = 64


def hash_chunk(chunk: bytes, bits: int = DEFAULT_DIGEST_BITS) -> int:
    """Digest of one chunk, truncated to ``bits`` bits."""
    return hash_bytes(chunk, bits)


def fixed_offset_digests(
    data: np.ndarray,
    chunk_size: int,
    stride: int,
    bits: int = DEFAULT_DIGEST_BITS,
) -> list[tuple[int, int]]:
    """Digest chunks sampled at fixed offsets.

    Returns ``(offset, digest)`` for chunks of ``chunk_size`` bytes taken
    every ``stride`` bytes — the sampling scheme of the Section-2
    redundancy study (``stride = 2 * chunk_size`` there).
    """
    if chunk_size <= 0 or stride <= 0:
        raise ValueError("chunk_size and stride must be positive")
    raw = data.tobytes()
    out: list[tuple[int, int]] = []
    for offset in range(0, len(raw) - chunk_size + 1, stride):
        out.append((offset, hash_bytes(raw[offset : offset + chunk_size], bits)))
    return out


def rolling_last2(data: np.ndarray) -> np.ndarray:
    """Value of the last two bytes of every rolling window ending at i.

    ``result[i] = data[i-1] << 8 | data[i]`` for ``i >= 1``; position 0 is
    0.  Used for EndRE-style value sampling: a window is sampled when this
    value matches a marker pattern.
    """
    if data.dtype != np.uint8:
        raise ValueError("expected uint8 data")
    result = np.zeros(len(data), dtype=np.uint16)
    if len(data) >= 2:
        result[1:] = (data[:-1].astype(np.uint16) << 8) | data[1:].astype(np.uint16)
    return result


def marker_positions(
    data: np.ndarray,
    *,
    mask: int,
    value: int,
    min_position: int,
) -> np.ndarray:
    """Window-end positions whose last-two-byte value matches the marker.

    Only positions ``>= min_position`` qualify (so a full chunk fits
    before the window end).
    """
    last2 = rolling_last2(data)
    hits = np.flatnonzero((last2 & mask) == value)
    return hits[hits >= min_position]


def enforce_spacing(positions: np.ndarray, spacing: int) -> np.ndarray:
    """Greedily thin ``positions`` so consecutive picks are >= spacing apart.

    Keeps sampled chunks non-overlapping, mirroring EndRE's skip-ahead
    after each sampled chunk.
    """
    if positions.size == 0:
        return positions
    kept = [int(positions[0])]
    for pos in positions[1:]:
        if pos - kept[-1] >= spacing:
            kept.append(int(pos))
    return np.asarray(kept, dtype=np.int64)
