"""Memory substrate: synthetic sandbox images, chunking, fingerprints, patches.

This package is the reproduction's stand-in for the real-world memory
surface Medes operates on (CRIU dumps of Docker sandboxes).  Content is
synthetic but the algorithms that run over it -- value-sampled
fingerprints, chunk hashing, binary patching, and the Section-2
redundancy measurement -- are the paper's, implemented on real bytes.
"""

from repro.memory.chunks import DEFAULT_CHUNK_SIZE, DEFAULT_DIGEST_BITS, hash_chunk
from repro.memory.fingerprint import (
    DEFAULT_CARDINALITY,
    FingerprintConfig,
    PageFingerprint,
    SamplingStrategy,
    image_fingerprints,
    page_fingerprint,
)
from repro.memory.image import MemoryImage, shared_fraction_upper_bound, synthesize_image
from repro.memory.layout import (
    AslrBehavior,
    ImageLayout,
    PlacedRegion,
    RegionSpec,
    SharingScope,
    standard_layout,
)
from repro.memory.patch import CopyOp, InsertOp, Patch, apply_patch, compute_patch
from repro.memory.redundancy import RedundancyResult, measure_redundancy, redundancy_matrix

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_DIGEST_BITS",
    "DEFAULT_CARDINALITY",
    "AslrBehavior",
    "CopyOp",
    "FingerprintConfig",
    "ImageLayout",
    "InsertOp",
    "MemoryImage",
    "PageFingerprint",
    "Patch",
    "PlacedRegion",
    "RedundancyResult",
    "RegionSpec",
    "SamplingStrategy",
    "SharingScope",
    "apply_patch",
    "compute_patch",
    "hash_chunk",
    "image_fingerprints",
    "measure_redundancy",
    "page_fingerprint",
    "redundancy_matrix",
    "shared_fraction_upper_bound",
    "standard_layout",
    "synthesize_image",
]
