"""Binary delta codec (the reproduction's stand-in for xdelta3).

A patch expresses a *target* buffer as a sequence of COPY ops (byte
ranges of a *base* buffer) and INSERT ops (literal bytes).  For similar
pages the patch is far smaller than the page; for unrelated pages it
degenerates to one big INSERT, which the dedup agent detects and stores
as a unique page instead.

Two matching strategies are combined:

* an *aligned* fast path for equal-sized buffers (the overwhelmingly
  common page-vs-base-page case), fully vectorised with numpy; and
* an *anchor-hash* path (greedy, xdelta-style) that finds shifted
  matches, used when the aligned diff is poor — e.g. stack pages whose
  content ASLR shifted by a non-page amount.

``level`` mirrors xdelta3's compression levels loosely: the paper runs
level 1 to keep restores fast, which here maps to a sparser anchor index
and a larger minimum match.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

_MAGIC = b"MP"
_VERSION = 1
_HEADER = struct.Struct("<2sBBIII")  # magic, version, flags, target_len, base_len, op_count
_COPY = struct.Struct("<BII")  # tag, src_off, length
_INSERT_HDR = struct.Struct("<BI")  # tag, length
_TAG_COPY = 0x01
_TAG_INSERT = 0x02

#: Minimum run of equal bytes worth a COPY op on the aligned path.  A COPY
#: costs 9 bytes of op encoding, so shorter runs are cheaper as literals.
MIN_COPY_RUN = 12
#: Anchor width for the shifted-match index.
ANCHOR_SIZE = 16
#: Minimum shifted match worth emitting.
MIN_ANCHOR_MATCH = 24
#: If the aligned patch exceeds this fraction of the target, try anchors.
ALIGNED_FALLBACK_RATIO = 0.25


@dataclass(frozen=True)
class CopyOp:
    """Copy ``length`` bytes from ``src_off`` in the base buffer."""

    src_off: int
    length: int


@dataclass(frozen=True)
class InsertOp:
    """Insert literal bytes."""

    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class Patch:
    """A delta from a base buffer to a target buffer."""

    ops: tuple[CopyOp | InsertOp, ...]
    target_len: int
    base_len: int

    def __post_init__(self) -> None:
        produced = sum(op.length for op in self.ops)
        if produced != self.target_len:
            raise ValueError(f"ops produce {produced} bytes, target is {self.target_len}")

    @property
    def size_bytes(self) -> int:
        """Encoded patch size — the memory cost of keeping this page deduped."""
        size = _HEADER.size
        for op in self.ops:
            if isinstance(op, CopyOp):
                size += _COPY.size
            else:
                size += _INSERT_HDR.size + op.length
        return size

    @property
    def copied_bytes(self) -> int:
        """Bytes sourced from the base buffer (the deduplicated volume)."""
        return sum(op.length for op in self.ops if isinstance(op, CopyOp))

    @property
    def literal_bytes(self) -> int:
        """Bytes carried literally inside the patch."""
        return sum(op.length for op in self.ops if isinstance(op, InsertOp))

    def serialize(self) -> bytes:
        """Encode to the on-wire/in-memory byte format."""
        parts = [_HEADER.pack(_MAGIC, _VERSION, 0, self.target_len, self.base_len, len(self.ops))]
        for op in self.ops:
            if isinstance(op, CopyOp):
                parts.append(_COPY.pack(_TAG_COPY, op.src_off, op.length))
            else:
                parts.append(_INSERT_HDR.pack(_TAG_INSERT, op.length))
                parts.append(op.data)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "Patch":
        """Decode a patch previously produced by :meth:`serialize`."""
        magic, version, _flags, target_len, base_len, op_count = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC or version != _VERSION:
            raise ValueError("not a valid patch blob")
        pos = _HEADER.size
        ops: list[CopyOp | InsertOp] = []
        for _ in range(op_count):
            tag = blob[pos]
            if tag == _TAG_COPY:
                _, src_off, length = _COPY.unpack_from(blob, pos)
                ops.append(CopyOp(src_off=src_off, length=length))
                pos += _COPY.size
            elif tag == _TAG_INSERT:
                _, length = _INSERT_HDR.unpack_from(blob, pos)
                pos += _INSERT_HDR.size
                ops.append(InsertOp(data=bytes(blob[pos : pos + length])))
                pos += length
            else:
                raise ValueError(f"unknown op tag {tag:#x}")
        return cls(ops=tuple(ops), target_len=target_len, base_len=base_len)


def _as_array(buf: bytes | np.ndarray) -> np.ndarray:
    if isinstance(buf, np.ndarray):
        if buf.dtype != np.uint8:
            raise ValueError("expected uint8 array")
        return buf
    return np.frombuffer(buf, dtype=np.uint8)


def _aligned_ops(target: np.ndarray, base: np.ndarray) -> list[CopyOp | InsertOp]:
    """Ops for equal-length buffers using a vectorised same-offset diff."""
    n = len(target)
    if n == 0:
        return []
    neq = target != base
    # Boundaries of equal/unequal runs.
    change = np.flatnonzero(np.diff(neq.astype(np.int8)))
    bounds = np.concatenate(([0], change + 1, [n]))
    ops: list[CopyOp | InsertOp] = []
    pending: list[np.ndarray] = []

    def flush_pending() -> None:
        if pending:
            ops.append(InsertOp(data=np.concatenate(pending).tobytes()))
            pending.clear()

    for start, end in zip(bounds[:-1], bounds[1:]):
        start, end = int(start), int(end)
        run_equal = not bool(neq[start])
        if run_equal and end - start >= MIN_COPY_RUN:
            flush_pending()
            ops.append(CopyOp(src_off=start, length=end - start))
        else:
            pending.append(target[start:end])
    flush_pending()
    return ops


def _match_len(a: np.ndarray, b: np.ndarray) -> int:
    """Length of the common prefix of ``a`` and ``b``."""
    n = min(len(a), len(b))
    if n == 0:
        return 0
    neq = np.flatnonzero(a[:n] != b[:n])
    return int(neq[0]) if neq.size else n


def _anchor_ops(target: np.ndarray, base: np.ndarray, level: int) -> list[CopyOp | InsertOp]:
    """Greedy xdelta-style ops using an anchor-hash index over the base.

    ``level`` trades patch size for speed, like xdelta3's compression
    levels: level 1 (the paper's choice, for fast restores) probes the
    target sparsely (every ``probe_step`` bytes) against a half-anchor-
    spaced base index; level >= 2 probes every byte.  Backward extension
    of each hit recovers bytes a sparse probe skipped over.
    """
    step = max(1, ANCHOR_SIZE // 2) if level <= 1 else max(1, ANCHOR_SIZE // 4)
    probe_step = 8 if level <= 1 else 1
    base_bytes = base.tobytes()
    index: dict[bytes, int] = {}
    for off in range(0, len(base_bytes) - ANCHOR_SIZE + 1, step):
        index.setdefault(base_bytes[off : off + ANCHOR_SIZE], off)

    target_bytes = target.tobytes()
    ops: list[CopyOp | InsertOp] = []
    pending_start = 0
    i = 0
    n = len(target_bytes)
    while i <= n - ANCHOR_SIZE:
        src = index.get(target_bytes[i : i + ANCHOR_SIZE])
        if src is None:
            i += probe_step
            continue
        # Extend forward from the anchor.
        fwd = ANCHOR_SIZE + _match_len(target[i + ANCHOR_SIZE :], base[src + ANCHOR_SIZE :])
        # Extend backward into the pending literal run.
        back = 0
        while (
            i - back > pending_start
            and src - back > 0
            and target_bytes[i - back - 1] == base_bytes[src - back - 1]
        ):
            back += 1
        length = fwd + back
        if length < MIN_ANCHOR_MATCH:
            i += probe_step
            continue
        lit_end = i - back
        if lit_end > pending_start:
            ops.append(InsertOp(data=target_bytes[pending_start:lit_end]))
        ops.append(CopyOp(src_off=src - back, length=length))
        i = i - back + length
        pending_start = i
    if pending_start < n:
        ops.append(InsertOp(data=target_bytes[pending_start:]))
    return ops


def compute_patch(
    target: bytes | np.ndarray,
    base: bytes | np.ndarray,
    *,
    level: int = 1,
) -> Patch:
    """Compute a delta expressing ``target`` in terms of ``base``.

    Always correct (round-trips byte-exactly); strives for small patches
    on similar inputs.  Equal-length inputs take the vectorised aligned
    path and fall back to anchor matching only when the aligned patch is
    poor; unequal lengths always use anchor matching.
    """
    t = _as_array(target)
    b = _as_array(base)
    if len(t) == len(b):
        ops = _aligned_ops(t, b)
        patch = Patch(ops=tuple(ops), target_len=len(t), base_len=len(b))
        if patch.size_bytes <= max(64, int(len(t) * ALIGNED_FALLBACK_RATIO)):
            return patch
        alt = Patch(ops=tuple(_anchor_ops(t, b, level)), target_len=len(t), base_len=len(b))
        return alt if alt.size_bytes < patch.size_bytes else patch
    ops = _anchor_ops(t, b, level)
    return Patch(ops=tuple(ops), target_len=len(t), base_len=len(b))


def apply_patch(patch: Patch, base: bytes | np.ndarray) -> bytes:
    """Reconstruct the target buffer from ``patch`` and ``base``."""
    b = _as_array(base)
    if len(b) != patch.base_len:
        raise ValueError(f"base length {len(b)} != patch base_len {patch.base_len}")
    out = bytearray()
    for op in patch.ops:
        if isinstance(op, CopyOp):
            if op.src_off + op.length > len(b):
                raise ValueError("COPY op out of base bounds")
            out += b[op.src_off : op.src_off + op.length].tobytes()
        else:
            out += op.data
    if len(out) != patch.target_len:
        raise AssertionError("patch application produced wrong length")
    return bytes(out)
