"""Binary delta codec (the reproduction's stand-in for xdelta3).

A patch expresses a *target* buffer as a sequence of COPY ops (byte
ranges of a *base* buffer) and INSERT ops (literal bytes).  For similar
pages the patch is far smaller than the page; for unrelated pages it
degenerates to one big INSERT, which the dedup agent detects and stores
as a unique page instead.

Two matching strategies are combined:

* an *aligned* fast path for equal-sized buffers (the overwhelmingly
  common page-vs-base-page case), fully vectorised with numpy; and
* an *anchor-hash* path (greedy, xdelta-style) that finds shifted
  matches, used when the aligned diff is poor — e.g. stack pages whose
  content ASLR shifted by a non-page amount.

``level`` mirrors xdelta3's compression levels loosely: the paper runs
level 1 to keep restores fast, which here maps to a sparser anchor index
and a larger minimum match.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property

import numpy as np

_MAGIC = b"MP"
_VERSION = 1
_HEADER = struct.Struct("<2sBBIII")  # magic, version, flags, target_len, base_len, op_count
_COPY = struct.Struct("<BII")  # tag, src_off, length
_INSERT_HDR = struct.Struct("<BI")  # tag, length
_TAG_COPY = 0x01
_TAG_INSERT = 0x02

#: Minimum run of equal bytes worth a COPY op on the aligned path.  A COPY
#: costs 9 bytes of op encoding, so shorter runs are cheaper as literals.
MIN_COPY_RUN = 12
#: Anchor width for the shifted-match index.
ANCHOR_SIZE = 16
#: Minimum shifted match worth emitting.
MIN_ANCHOR_MATCH = 24
#: If the aligned patch exceeds this fraction of the target, try anchors.
ALIGNED_FALLBACK_RATIO = 0.25


@dataclass(frozen=True)
class CopyOp:
    """Copy ``length`` bytes from ``src_off`` in the base buffer."""

    src_off: int
    length: int


@dataclass(frozen=True)
class InsertOp:
    """Insert literal bytes."""

    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class Patch:
    """A delta from a base buffer to a target buffer."""

    ops: tuple[CopyOp | InsertOp, ...]
    target_len: int
    base_len: int

    def __post_init__(self) -> None:
        produced = sum(op.length for op in self.ops)
        if produced != self.target_len:
            raise ValueError(f"ops produce {produced} bytes, target is {self.target_len}")

    @cached_property
    def size_bytes(self) -> int:
        """Encoded patch size — the memory cost of keeping this page deduped.

        Cached: the dedup agent consults it repeatedly (fallback checks,
        unique-page cutoffs, retained-bytes accounting) and the ops are
        immutable.  The cache lands in the instance ``__dict__`` directly,
        which a frozen dataclass permits and ``__eq__`` ignores.
        """
        size = _HEADER.size
        for op in self.ops:
            if isinstance(op, CopyOp):
                size += _COPY.size
            else:
                size += _INSERT_HDR.size + op.length
        return size

    @property
    def copied_bytes(self) -> int:
        """Bytes sourced from the base buffer (the deduplicated volume)."""
        return sum(op.length for op in self.ops if isinstance(op, CopyOp))

    @property
    def literal_bytes(self) -> int:
        """Bytes carried literally inside the patch."""
        return sum(op.length for op in self.ops if isinstance(op, InsertOp))

    def serialize(self) -> bytes:
        """Encode to the on-wire/in-memory byte format."""
        parts = [_HEADER.pack(_MAGIC, _VERSION, 0, self.target_len, self.base_len, len(self.ops))]
        for op in self.ops:
            if isinstance(op, CopyOp):
                parts.append(_COPY.pack(_TAG_COPY, op.src_off, op.length))
            else:
                parts.append(_INSERT_HDR.pack(_TAG_INSERT, op.length))
                parts.append(op.data)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "Patch":
        """Decode a patch previously produced by :meth:`serialize`.

        Raises :class:`ValueError` for any malformed input — truncation at
        any boundary, a bad magic/version, an unknown op tag, or ops that
        do not reconstruct ``target_len`` bytes — never ``IndexError`` or
        ``struct.error``.
        """
        if len(blob) < _HEADER.size:
            raise ValueError("patch blob truncated: missing header")
        magic, version, _flags, target_len, base_len, op_count = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC or version != _VERSION:
            raise ValueError("not a valid patch blob")
        pos = _HEADER.size
        ops: list[CopyOp | InsertOp] = []
        for _ in range(op_count):
            if pos >= len(blob):
                raise ValueError("patch blob truncated: missing op tag")
            tag = blob[pos]
            if tag == _TAG_COPY:
                if pos + _COPY.size > len(blob):
                    raise ValueError("patch blob truncated: partial COPY op")
                _, src_off, length = _COPY.unpack_from(blob, pos)
                ops.append(CopyOp(src_off=src_off, length=length))
                pos += _COPY.size
            elif tag == _TAG_INSERT:
                if pos + _INSERT_HDR.size > len(blob):
                    raise ValueError("patch blob truncated: partial INSERT header")
                _, length = _INSERT_HDR.unpack_from(blob, pos)
                pos += _INSERT_HDR.size
                if pos + length > len(blob):
                    raise ValueError("patch blob truncated: partial INSERT data")
                ops.append(InsertOp(data=bytes(blob[pos : pos + length])))
                pos += length
            else:
                raise ValueError(f"unknown op tag {tag:#x}")
        try:
            patch = cls(ops=tuple(ops), target_len=target_len, base_len=base_len)
        except ValueError as exc:
            raise ValueError(f"inconsistent patch blob: {exc}") from exc
        return patch


def _as_array(buf: bytes | np.ndarray) -> np.ndarray:
    if isinstance(buf, np.ndarray):
        if buf.dtype != np.uint8:
            raise ValueError("expected uint8 array")
        return buf
    return np.frombuffer(buf, dtype=np.uint8)


def _ops_from_aligned_runs(
    target_bytes: bytes, first_unequal: bool, bounds: list[int]
) -> list[CopyOp | InsertOp]:
    """Build aligned ops from precomputed equal/unequal run boundaries.

    Runs strictly alternate equal/unequal, so only the first run's kind
    is needed.  Pending literal runs are contiguous between COPY
    emissions, so they flush as one slice of the target bytes.
    """
    ops: list[CopyOp | InsertOp] = []
    pend_start = -1
    pend_end = 0
    run_equal = not first_unequal
    for start, end in zip(bounds[:-1], bounds[1:]):
        if run_equal and end - start >= MIN_COPY_RUN:
            if pend_start >= 0:
                ops.append(InsertOp(data=target_bytes[pend_start:pend_end]))
                pend_start = -1
            ops.append(CopyOp(src_off=start, length=end - start))
        else:
            if pend_start < 0:
                pend_start = start
            pend_end = end
        run_equal = not run_equal
    if pend_start >= 0:
        ops.append(InsertOp(data=target_bytes[pend_start:pend_end]))
    return ops


def _aligned_ops(target: np.ndarray, base: np.ndarray) -> list[CopyOp | InsertOp]:
    """Ops for equal-length buffers using a vectorised same-offset diff."""
    n = len(target)
    if n == 0:
        return []
    neq = target != base
    # Boundaries of equal/unequal runs.
    change = np.flatnonzero(np.diff(neq.astype(np.int8)))
    bounds = [0, *(change + 1).tolist(), n]
    return _ops_from_aligned_runs(target.tobytes(), bool(neq[0]), bounds)


def _batch_aligned_runs(
    targets: np.ndarray, bases: np.ndarray
) -> list[tuple[bool, list[int]]]:
    """Equal/unequal run boundaries for many equal-length pairs at once.

    ``targets`` and ``bases`` are ``(k, n)`` uint8 arrays; row ``j``'s
    ``(first_unequal, bounds)`` describes the same alternating runs that
    :func:`_aligned_ops` derives, but the byte compare and run-boundary
    extraction happen once over the whole stack (the boolean XOR of
    adjacent columns skips the int8 widening an ``np.diff`` would need).
    """
    k, n = targets.shape
    neq = targets != bases
    rows, cols = np.nonzero(neq[:, 1:] != neq[:, :-1])
    splits = np.searchsorted(rows, np.arange(1, k))
    first_unequal = neq[:, 0].tolist()
    return [
        (first_unequal[j], [0, *(change + 1).tolist(), n])
        for j, change in enumerate(np.split(cols, splits))
    ]


def _aligned_size_from_runs(first_unequal: bool, bounds: list[int]) -> int:
    """Encoded size of the aligned patch, without materializing its ops.

    Mirrors :func:`_ops_from_aligned_runs` exactly: short equal runs fold
    into the pending literal, contiguous literals flush as one INSERT.
    Lets the batch path defer op construction until a pair's winner is
    known (most pairs that reach the anchor fallback never need the
    aligned ops themselves, just this size for the comparison).
    """
    size = _HEADER.size
    pend = 0
    run_equal = not first_unequal
    for start, end in zip(bounds[:-1], bounds[1:]):
        if run_equal and end - start >= MIN_COPY_RUN:
            if pend:
                size += _INSERT_HDR.size + pend
                pend = 0
            size += _COPY.size
        else:
            pend += end - start
        run_equal = not run_equal
    if pend:
        size += _INSERT_HDR.size + pend
    return size


def _match_len(a: np.ndarray, b: np.ndarray) -> int:
    """Length of the common prefix of ``a`` and ``b``."""
    n = min(len(a), len(b))
    if n == 0:
        return 0
    neq = np.flatnonzero(a[:n] != b[:n])
    return int(neq[0]) if neq.size else n


def _back_match_len(target: np.ndarray, base: np.ndarray, i: int, src: int, limit: int) -> int:
    """Length of the common suffix of ``target[:i]`` and ``base[:src]``, capped.

    ``limit`` additionally bounds the extension (the greedy scan must not
    back up into bytes already consumed by earlier ops).
    """
    m = min(limit, src)
    if m <= 0:
        return 0
    neq = np.flatnonzero(target[i - m : i] != base[src - m : src])
    return m - (int(neq[-1]) + 1) if neq.size else m


def _window_values(target_bytes: bytes) -> np.ndarray:
    """Little-endian u64 window value at every byte offset (length n-7).

    Eight strided writes from the eight aligned ``frombuffer`` views —
    one pass over the buffer instead of one view per probe residue.
    """
    n = len(target_bytes)
    vals = np.empty(n - 7, dtype="<u8")
    for r in range(8):
        part = np.frombuffer(target_bytes, dtype="<u8", offset=r, count=(n - r) // 8)
        vals[r::8] = part[: len(range(r, n - 7, 8))]
    return vals


def batch_window_values(matrix: np.ndarray) -> np.ndarray:
    """:func:`_window_values` of every row of a ``(k, n)`` uint8 matrix.

    Row ``j`` equals ``_window_values(matrix[j].tobytes())``; the values
    build up as eight shifted-column accumulations over the whole stack,
    so probing ``k`` fallback targets costs ``k`` times fewer numpy
    dispatches than per-target calls.  Requires ``n >= 8``.
    """
    if matrix.ndim != 2 or matrix.dtype != np.uint8:
        raise ValueError("expected a (k, n) uint8 matrix")
    k, n = matrix.shape
    if n < 8:
        raise ValueError("rows must hold at least one 8-byte window")
    vals = np.zeros((k, n - 7), dtype=np.uint64)
    for b in range(8):
        vals |= matrix[:, b : n - 7 + b].astype(np.uint64) << np.uint64(8 * b)
    return vals


@dataclass(frozen=True)
class AnchorIndex:
    """Prebuilt anchor index over a base buffer.

    Each indexed window is keyed by its exact 16 bytes, packed as two
    little-endian uint64 halves (``a``, ``b``) so lookups are native
    integer searchsorted instead of byte-string hashing.  Entries are
    sorted by ``(a, b)`` with duplicate windows collapsed to their
    smallest base offset — a leftmost binary search therefore reproduces
    the first-offset-wins semantics of a dict built with ``setdefault``.

    Building the index is the expensive half of anchor matching and
    depends only on the base bytes and the level, so callers patching
    many targets against the same base — the dedup agent's batch path,
    where hot base pages recur across ops — build it once and reuse it.
    """

    base_len: int
    level: int
    a: np.ndarray
    b: np.ndarray
    srcs: np.ndarray
    has_dup_a: bool
    #: Right boundary of the run of equal ``a`` values starting at each
    #: position (a leftmost search always lands on a run start, so this
    #: replaces the ``side="right"`` search at query time).
    aend: np.ndarray
    #: 4096-entry membership table over mixed bits of ``a`` — a probe
    #: whose slot is unset cannot match, which filters the ~99% of probe
    #: positions that miss before any binary search runs.
    seen: np.ndarray


_SEEN_SLOTS = 4096


def _seen_slots(a: np.ndarray) -> np.ndarray:
    """Table slots for key halves ``a``: xor-folded low bits."""
    folded = a ^ (a >> np.uint64(17)) ^ (a >> np.uint64(41))
    return folded & np.uint64(_SEEN_SLOTS - 1)


def build_anchor_index(base: bytes | np.ndarray, level: int = 1) -> AnchorIndex:
    """Index the anchor windows of ``base`` for :func:`compute_patch`."""
    b_arr = _as_array(base)
    step = max(1, ANCHOR_SIZE // 2) if level <= 1 else max(1, ANCHOR_SIZE // 4)
    m = len(b_arr) - ANCHOR_SIZE + 1
    if m <= 0:
        empty = np.empty(0, dtype=np.uint64)
        return AnchorIndex(
            base_len=len(b_arr),
            level=level,
            a=empty,
            b=empty,
            srcs=np.empty(0, dtype=np.int64),
            has_dup_a=False,
            aend=np.empty(0, dtype=np.int64),
            seen=np.zeros(_SEEN_SLOTS, dtype=bool),
        )
    base_bytes = b_arr.tobytes()
    offs = np.arange(0, m, step, dtype=np.int64)
    # One window-value pass serves both key halves (offs + 8 is at most
    # the last window start, m - 1 + 8 <= len - 8).
    vals = _window_values(base_bytes)
    a = vals[offs]
    b = vals[offs + 8]
    order = np.lexsort((offs, b, a))
    a, b, offs = a[order], b[order], offs[order]
    if len(a) > 1:
        keep = np.concatenate(([True], (a[1:] != a[:-1]) | (b[1:] != b[:-1])))
        a, b, offs = a[keep], b[keep], offs[keep]
    has_dup_a = bool((a[1:] == a[:-1]).any()) if len(a) > 1 else False
    aend = np.searchsorted(a, a, side="right")
    seen = np.zeros(_SEEN_SLOTS, dtype=bool)
    seen[_seen_slots(a)] = True
    return AnchorIndex(
        base_len=len(b_arr),
        level=level,
        a=a,
        b=b,
        srcs=offs,
        has_dup_a=has_dup_a,
        aend=aend,
        seen=seen,
    )


_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _candidates_at(
    index: AnchorIndex,
    target_bytes: bytes,
    r: int,
    vals: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Matching (position, base offset) pairs at positions ``r`` mod 8.

    One strided u64 view yields both key halves of every window starting
    at ``r + 8k`` (the halves of position ``p`` are the view's elements
    ``k`` and ``k + 1``), and one searchsorted pass matches them all
    against the index.  Precomputed ``vals`` (window values, see
    :func:`batch_window_values`) replace the view with a stride-8 slice
    — ``vals[r::8]`` holds exactly the view's elements.
    """
    n = len(target_bytes)
    count = (n - r) // 8
    kmax = min(count - 1, (n - ANCHOR_SIZE - r) // 8 + 1)
    if kmax <= 0 or not len(index.a):
        return _EMPTY_I64, _EMPTY_I64
    if vals is None:
        u = np.frombuffer(target_bytes, dtype="<u8", offset=r, count=count)
    else:
        u = vals[r::8]
    all_a = u[:kmax]
    sel = index.seen[_seen_slots(all_a)].nonzero()[0]
    if not sel.size:
        return _EMPTY_I64, _EMPTY_I64
    ta = all_a[sel]
    tb = u[sel + 1]
    ks, srcs = _match_candidates(index, ta, tb, sel)
    return r + 8 * ks, srcs


def _candidates_all(
    index: AnchorIndex,
    target_bytes: bytes,
    vals: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Matching (position, base offset) pairs at *every* byte position.

    The dense-probe (``probe_step == 1``) counterpart of
    :func:`_candidates_at`: instead of eight residue sweeps concatenated
    and re-sorted, one window-value pass covers all positions, and the
    ``seen`` prefilter output is already in position order.  A batch
    caller passes precomputed ``vals`` to skip even that pass.
    """
    n = len(target_bytes)
    kmax = n - ANCHOR_SIZE + 1
    if kmax <= 0 or not len(index.a):
        return _EMPTY_I64, _EMPTY_I64
    if vals is None:
        vals = _window_values(target_bytes)
    all_a = vals[:kmax]
    sel = index.seen[_seen_slots(all_a)].nonzero()[0]
    if not sel.size:
        return _EMPTY_I64, _EMPTY_I64
    ta = all_a[sel]
    tb = vals[sel + 8]
    return _match_candidates(index, ta, tb, sel)


def _match_candidates(
    index: AnchorIndex, ta: np.ndarray, tb: np.ndarray, sel: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of ``sel`` whose (ta, tb) key exists in ``index``.

    Returns ``(ks, srcs)`` sorted by position, where ``ks`` is drawn from
    ``sel`` and ``srcs`` is the matched base offset of each.
    """
    lo = np.searchsorted(index.a, ta)
    loc = np.minimum(lo, len(index.a) - 1)
    amatch = index.a[loc] == ta
    if not index.has_dup_a:
        hit = (amatch & (index.b[loc] == tb)).nonzero()[0]
        ks = sel[hit]
        srcs = index.srcs[loc[hit]]
    else:
        # A leftmost search lands on the start of the run of equal ``a``
        # values, so the run's end is just a table lookup.
        hi = index.aend[loc]
        run = hi - lo
        single = (amatch & (run == 1) & (index.b[loc] == tb)).nonzero()[0]
        ks_list = sel[single].tolist()
        srcs_list = index.srcs[loc[single]].tolist()
        for k in (amatch & (run > 1)).nonzero()[0].tolist():
            l, h = int(lo[k]), int(hi[k])
            j = l + int(np.searchsorted(index.b[l:h], tb[k]))
            if j < h and index.b[j] == tb[k]:
                ks_list.append(int(sel[k]))
                srcs_list.append(int(index.srcs[j]))
        if not ks_list:
            return _EMPTY_I64, _EMPTY_I64
        ks = np.asarray(ks_list, dtype=np.int64)
        srcs = np.asarray(srcs_list, dtype=np.int64)
        order = np.argsort(ks, kind="stable")
        ks, srcs = ks[order], srcs[order]
    return ks, srcs


def _anchor_ops(
    target: np.ndarray,
    base: np.ndarray,
    level: int,
    index: AnchorIndex | None = None,
    window_values: np.ndarray | None = None,
) -> list[CopyOp | InsertOp]:
    """Greedy xdelta-style ops using an anchor-hash index over the base.

    ``level`` trades patch size for speed, like xdelta3's compression
    levels: level 1 (the paper's choice, for fast restores) probes the
    target sparsely (every ``probe_step`` bytes) against a half-anchor-
    spaced base index; level >= 2 probes every byte.  Backward extension
    of each hit recovers bytes a sparse probe skipped over.

    The probe is vectorised: a probe from position ``p`` only ever lands
    on positions ``p + k * probe_step``, so candidate matches are
    computed per position-residue class (lazily, one searchsorted sweep
    each) and the greedy scan jumps straight to the next hit with a
    binary search instead of hashing window by window.  The resulting
    ops are byte-identical to the scalar scan's.  A prebuilt ``index``
    (see :class:`AnchorIndex`) skips re-hashing the base; a stale one
    (wrong level or base length) is ignored and rebuilt.  Precomputed
    ``window_values`` of the target (one row of
    :func:`batch_window_values` — the batch path hashes the probe
    positions of *all* its fallback targets in one call) feed the
    candidate sweeps directly.
    """
    if index is None or index.level != level or index.base_len != len(base):
        index = build_anchor_index(base, level)
    probe_step = 8 if level <= 1 else 1
    n = len(target)
    target_bytes = target.tobytes()
    ops: list[CopyOp | InsertOp] = []
    pending_start = 0

    chains: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def chain(residue: int) -> tuple[np.ndarray, np.ndarray]:
        cached = chains.get(residue)
        if cached is None:
            if probe_step == 1:
                cached = _candidates_all(index, target_bytes, window_values)
            else:
                cached = _candidates_at(index, target_bytes, residue, window_values)
            chains[residue] = cached
        return cached

    i = 0
    while True:
        # Probe forward from i for the next match >= MIN_ANCHOR_MATCH.
        accepted = None
        while True:
            cpos, csrcs = chain(i % probe_step)
            j = np.searchsorted(cpos, i)
            if j >= len(cpos):
                break
            c, src = int(cpos[j]), int(csrcs[j])
            fwd = ANCHOR_SIZE + _match_len(target[c + ANCHOR_SIZE :], base[src + ANCHOR_SIZE :])
            back = _back_match_len(target, base, c, src, c - pending_start)
            if fwd + back >= MIN_ANCHOR_MATCH:
                accepted = (c, src, fwd + back, back)
                break
            i = c + probe_step
        if accepted is None:
            break
        c, src, length, back = accepted
        lit_end = c - back
        if lit_end > pending_start:
            ops.append(InsertOp(data=target_bytes[pending_start:lit_end]))
        ops.append(CopyOp(src_off=src - back, length=length))
        i = lit_end + length
        pending_start = i
    if pending_start < n:
        ops.append(InsertOp(data=target_bytes[pending_start:]))
    return ops


def _anchor_ops_scalar(
    target: np.ndarray, base: np.ndarray, level: int
) -> list[CopyOp | InsertOp]:
    """Reference anchor matcher: the straightforward window-by-window scan.

    This is the original page-at-a-time implementation — a dict of base
    windows probed one target window at a time — kept verbatim as the
    behavioural oracle for :func:`_anchor_ops` (the vectorised scan must
    produce byte-identical ops) and as the honest baseline the batch
    pipeline's throughput is measured against.
    """
    step = max(1, ANCHOR_SIZE // 2) if level <= 1 else max(1, ANCHOR_SIZE // 4)
    probe_step = 8 if level <= 1 else 1
    base_bytes = base.tobytes()
    index: dict[bytes, int] = {}
    for off in range(0, len(base_bytes) - ANCHOR_SIZE + 1, step):
        index.setdefault(base_bytes[off : off + ANCHOR_SIZE], off)

    target_bytes = target.tobytes()
    ops: list[CopyOp | InsertOp] = []
    pending_start = 0
    i = 0
    n = len(target_bytes)
    while i <= n - ANCHOR_SIZE:
        src = index.get(target_bytes[i : i + ANCHOR_SIZE])
        if src is None:
            i += probe_step
            continue
        # Extend forward from the anchor.
        fwd = ANCHOR_SIZE + _match_len(target[i + ANCHOR_SIZE :], base[src + ANCHOR_SIZE :])
        # Extend backward into the pending literal run.
        back = 0
        while (
            i - back > pending_start
            and src - back > 0
            and target_bytes[i - back - 1] == base_bytes[src - back - 1]
        ):
            back += 1
        length = fwd + back
        if length < MIN_ANCHOR_MATCH:
            i += probe_step
            continue
        lit_end = i - back
        if lit_end > pending_start:
            ops.append(InsertOp(data=target_bytes[pending_start:lit_end]))
        ops.append(CopyOp(src_off=src - back, length=length))
        i = i - back + length
        pending_start = i
    if pending_start < n:
        ops.append(InsertOp(data=target_bytes[pending_start:]))
    return ops


def compute_patch_reference(
    target: bytes | np.ndarray,
    base: bytes | np.ndarray,
    *,
    level: int = 1,
) -> Patch:
    """Reference :func:`compute_patch`: one page at a time, no indexes.

    Same fallback policy and byte-identical output, but anchor matching
    uses the scalar window-by-window scan.  The per-page dedup path uses
    this so batch-vs-reference comparisons measure the vectorised
    pipeline against the unoptimised original, not against itself.
    """
    t = _as_array(target)
    b = _as_array(base)
    if len(t) == len(b):
        ops = _aligned_ops(t, b)
        patch = Patch(ops=tuple(ops), target_len=len(t), base_len=len(b))
        if patch.size_bytes <= max(64, int(len(t) * ALIGNED_FALLBACK_RATIO)):
            return patch
        alt = Patch(
            ops=tuple(_anchor_ops_scalar(t, b, level)),
            target_len=len(t),
            base_len=len(b),
        )
        return alt if alt.size_bytes < patch.size_bytes else patch
    ops = _anchor_ops_scalar(t, b, level)
    return Patch(ops=tuple(ops), target_len=len(t), base_len=len(b))


def compute_patch(
    target: bytes | np.ndarray,
    base: bytes | np.ndarray,
    *,
    level: int = 1,
    anchor_index: AnchorIndex | None = None,
) -> Patch:
    """Compute a delta expressing ``target`` in terms of ``base``.

    Always correct (round-trips byte-exactly); strives for small patches
    on similar inputs.  Equal-length inputs take the vectorised aligned
    path and fall back to anchor matching only when the aligned patch is
    poor; unequal lengths always use anchor matching.  ``anchor_index``
    supplies a prebuilt index of ``base`` (see :func:`build_anchor_index`)
    so repeat patches against one base skip re-indexing; a stale index
    (wrong level or base length) is ignored and rebuilt.
    """
    t = _as_array(target)
    b = _as_array(base)
    if len(t) == len(b):
        ops = _aligned_ops(t, b)
        patch = Patch(ops=tuple(ops), target_len=len(t), base_len=len(b))
        if patch.size_bytes <= max(64, int(len(t) * ALIGNED_FALLBACK_RATIO)):
            return patch
        alt = Patch(
            ops=tuple(_anchor_ops(t, b, level, index=anchor_index)),
            target_len=len(t),
            base_len=len(b),
        )
        return alt if alt.size_bytes < patch.size_bytes else patch
    ops = _anchor_ops(t, b, level, index=anchor_index)
    return Patch(ops=tuple(ops), target_len=len(t), base_len=len(b))


def compute_patches(
    targets: "list[bytes | np.ndarray]",
    bases: "list[bytes | np.ndarray]",
    *,
    level: int = 1,
    index_provider=None,
) -> list[Patch]:
    """Batched :func:`compute_patch` over pairwise ``targets``/``bases``.

    Produces exactly ``[compute_patch(t, b) for t, b in zip(...)]``, but
    equal-length pairs (the page-vs-base-page common case) are grouped by
    length and diffed in one 2-D numpy pass, so the per-pair dispatch
    overhead of the aligned path is paid once per batch.  Only pairs
    whose aligned patch is poor proceed to anchor matching.

    ``index_provider(j)`` may return a prebuilt :class:`AnchorIndex` for
    pair ``j`` (or ``None``); it is only consulted for pairs that reach
    the anchor fallback, so callers can build/cache indexes lazily.
    """
    if len(targets) != len(bases):
        raise ValueError("targets/bases length mismatch")
    t_arrs = [_as_array(t) for t in targets]
    b_arrs = [_as_array(b) for b in bases]
    patches: list[Patch | None] = [None] * len(t_arrs)

    def _index_for(j: int) -> AnchorIndex | None:
        return index_provider(j) if index_provider is not None else None

    by_len: dict[int, list[int]] = {}
    for j, (t, b) in enumerate(zip(t_arrs, b_arrs)):
        if len(t) == len(b):
            by_len.setdefault(len(t), []).append(j)
    for n, idxs in by_len.items():
        if n == 0:
            for j in idxs:
                patches[j] = Patch(ops=(), target_len=0, base_len=0)
            continue
        stack_t = np.stack([t_arrs[j] for j in idxs])
        stack_b = np.stack([b_arrs[j] for j in idxs])
        threshold = max(64, int(n * ALIGNED_FALLBACK_RATIO))
        runs = _batch_aligned_runs(stack_t, stack_b)
        # Size every aligned patch analytically first; only the winning
        # candidate's ops are ever materialized.  Pairs whose aligned
        # diff is poor fall back to anchor matching — their probe
        # positions are hashed in one batched pass over the stack rather
        # than per target.
        sizes = [_aligned_size_from_runs(fu, bounds) for fu, bounds in runs]
        fallback = [pos for pos, size in enumerate(sizes) if size > threshold]
        window_vals: dict[int, np.ndarray] = {}
        if fallback and n >= ANCHOR_SIZE:
            stacked = batch_window_values(stack_t[fallback])
            window_vals = {pos: stacked[q] for q, pos in enumerate(fallback)}
        for pos, (j, (first_unequal, bounds)) in enumerate(zip(idxs, runs)):
            aligned_size = sizes[pos]
            if aligned_size > threshold:
                alt = Patch(
                    ops=tuple(
                        _anchor_ops(
                            t_arrs[j],
                            b_arrs[j],
                            level,
                            index=_index_for(j),
                            window_values=window_vals.get(pos),
                        )
                    ),
                    target_len=n,
                    base_len=n,
                )
                if alt.size_bytes < aligned_size:
                    patches[j] = alt
                    continue
            ops = _ops_from_aligned_runs(t_arrs[j].tobytes(), first_unequal, bounds)
            patch = Patch(ops=tuple(ops), target_len=n, base_len=n)
            patch.__dict__["size_bytes"] = aligned_size  # pre-seed the cache
            patches[j] = patch
    for j, patch in enumerate(patches):
        if patch is None:  # unequal lengths: anchor matching only
            patches[j] = compute_patch(
                t_arrs[j], b_arrs[j], level=level, anchor_index=_index_for(j)
            )
    return patches  # type: ignore[return-value]


def apply_patch(patch: Patch, base: bytes | np.ndarray) -> bytes:
    """Reconstruct the target buffer from ``patch`` and ``base``."""
    b = _as_array(base)
    if len(b) != patch.base_len:
        raise ValueError(f"base length {len(b)} != patch base_len {patch.base_len}")
    out = bytearray()
    for op in patch.ops:
        if isinstance(op, CopyOp):
            if op.src_off + op.length > len(b):
                raise ValueError("COPY op out of base bounds")
            out += b[op.src_off : op.src_off + op.length].tobytes()
        else:
            out += op.data
    if len(out) != patch.target_len:
        raise AssertionError("patch application produced wrong length")
    return bytes(out)


def apply_patch_into(patch: Patch, base: bytes | np.ndarray, out: np.ndarray) -> None:
    """:func:`apply_patch`, writing the target into a caller-owned buffer.

    ``out`` must be a uint8 array of exactly ``patch.target_len`` bytes —
    typically a view into a restore op's shared-memory output region, so
    worker processes reconstruct pages in place with no intermediate
    ``bytes`` object crossing the process boundary.
    """
    b = _as_array(base)
    if len(b) != patch.base_len:
        raise ValueError(f"base length {len(b)} != patch base_len {patch.base_len}")
    if len(out) != patch.target_len:
        raise ValueError(f"out length {len(out)} != patch target_len {patch.target_len}")
    cursor = 0
    for op in patch.ops:
        if isinstance(op, CopyOp):
            if op.src_off + op.length > len(b):
                raise ValueError("COPY op out of base bounds")
            out[cursor : cursor + op.length] = b[op.src_off : op.src_off + op.length]
        else:
            out[cursor : cursor + op.length] = np.frombuffer(op.data, dtype=np.uint8)
        cursor += op.length
