"""Region model for synthetic sandbox memory images.

A sandbox's memory state is modelled as an ordered sequence of *regions*,
each with a sharing scope that determines which other sandboxes carry the
same bytes:

* ``RUNTIME``  — identical across every sandbox in the cluster (the
  CPython interpreter, libc, and untouched/zeroed heap).  This is the
  dominant source of the cross-function redundancy the paper measures in
  Figure 1c.
* ``LIBRARY``  — identical across sandboxes whose function imports the
  same library (numpy shared by LinAlg/ImagePro/VideoPro, the
  TfIdfVectorizer module shared by FeatureGen/ModelTrain, ...).
* ``FUNCTION`` — identical across sandboxes of the same function
  (module-level state, warmed caches).
* ``INSTANCE`` — unique to one sandbox (request-specific allocations).

Shared regions have *absolute* sizes (the interpreter image is ~8 MB in
every sandbox no matter how big the function is), while the function
heap and instance-unique data absorb the rest of the profiled footprint.
On top of the shared base content, each *instance* receives a sprinkling
of single-byte mutations (copy-on-write divergence) and, under ASLR,
per-instance *pointer site* values.  The mutation rate controls how
redundancy decays with chunk size (Fig 1a); pointer sites control how
much page-level dedup degrades under ASLR (Section 7.2.1) while barely
moving the byte-level redundancy number (Fig 1b) — both effects the
paper reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._util import KIB, MIB, PAGE_SIZE, round_up


class SharingScope(enum.Enum):
    """Which sandboxes share a region's base content."""

    RUNTIME = "runtime"
    LIBRARY = "library"
    FUNCTION = "function"
    INSTANCE = "instance"


class AslrBehavior(enum.Enum):
    """How a region moves when address-space layout randomization is on.

    ``PAGE`` models mmap-base randomization: the region lands at a
    different page-aligned address, so its content keeps its page
    alignment and intra-page offsets (dedup and the Section-2 study are
    unaffected by the move itself).  ``FINE`` models the 16-byte stack
    randomization the paper calls out: content shifts by a non-page
    amount, destroying alignment with other instances.
    """

    PAGE = "page"
    FINE = "fine"


@dataclass(frozen=True)
class RegionSpec:
    """Specification of one memory region of a sandbox image.

    Attributes:
        name: Human-readable region name (unique within a layout).
        scope: Sharing scope (see :class:`SharingScope`).
        content_key: Identity of the base content stream.  Two regions
            with the same key hold the same bytes at the same region
            offsets (up to per-instance mutations/pointers).
        fraction: Fraction of the image footprint this region occupies.
        mutation_rate: Expected per-byte probability that an instance
            flips this byte relative to the base content.
        pointer_interval: Mean spacing in bytes between 8-byte pointer
            sites (0 disables pointers).  Pointer values are shared when
            ASLR is off and per-instance when ASLR is on.
        common_fill: Fraction of the base content drawn from a global
            pool of recurring blocks (allocator patterns, zero runs,
            interned objects) shared across *different* content keys.
            This produces the cross-function redundancy between regions
            that have no library in common.
        dirty_page_rate: Fraction of the region's pages rewritten by this
            instance after start (copy-on-write'd pages: heap churn,
            relocated objects).  Dirty pages defeat page-aligned
            deduplication — they are what caps Medes' per-sandbox savings
            (Table 3) well below the byte-level redundancy of Figure 1.
            A rate of 1.0 makes the whole region instance-private.
        zero_fill: If true the base content is all zero bytes.
        aslr: Placement behaviour under ASLR.
    """

    name: str
    scope: SharingScope
    content_key: str
    fraction: float
    mutation_rate: float = 0.0
    pointer_interval: int = 0
    common_fill: float = 0.0
    dirty_page_rate: float = 0.0
    zero_fill: bool = False
    aslr: AslrBehavior = AslrBehavior.PAGE

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"region {self.name}: fraction must be in (0, 1]")
        if self.mutation_rate < 0.0 or self.mutation_rate >= 1.0:
            raise ValueError(f"region {self.name}: bad mutation_rate")
        if not 0.0 <= self.common_fill <= 1.0:
            raise ValueError(f"region {self.name}: bad common_fill")
        if not 0.0 <= self.dirty_page_rate <= 1.0:
            raise ValueError(f"region {self.name}: bad dirty_page_rate")
        if self.pointer_interval < 0:
            raise ValueError(f"region {self.name}: bad pointer_interval")


@dataclass(frozen=True)
class PlacedRegion:
    """A region concretized to byte offsets within an image."""

    spec: RegionSpec
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class ImageLayout:
    """An ordered set of regions describing one function's memory image.

    Fractions are relative to the function's *full-size* footprint; the
    same layout places proportionally onto scaled-down images, so two
    functions' shared regions stay equally sized at any common scale.
    """

    function: str
    regions: tuple[RegionSpec, ...]

    def __post_init__(self) -> None:
        total = sum(r.fraction for r in self.regions)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"layout for {self.function}: region fractions sum to {total}, expected 1.0"
            )
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"layout for {self.function}: duplicate region names")

    def place(self, total_bytes: int, page_size: int = PAGE_SIZE) -> tuple[PlacedRegion, ...]:
        """Concretize regions to page-aligned extents covering ~total_bytes.

        Every region gets at least one page; rounding keeps the realized
        size within one page per region of the requested footprint.
        """
        if total_bytes < page_size * len(self.regions):
            raise ValueError(
                f"total_bytes={total_bytes} too small for {len(self.regions)} regions"
            )
        placed: list[PlacedRegion] = []
        offset = 0
        for spec in self.regions:
            size = max(page_size, round_up(int(spec.fraction * total_bytes), page_size))
            placed.append(PlacedRegion(spec=spec, offset=offset, size=size))
            offset += size
        return tuple(placed)


# --- Standard layout used for the FunctionBench profiles -------------------

#: Full-scale size of the shared CPython/libc runtime image.
RUNTIME_BYTES = 8 * MIB
#: Full-scale size of the thread stack region.
STACK_BYTES = 256 * KIB
#: Fraction of every image that is untouched/zeroed memory.
ZERO_FRACTION = 0.18
#: Share of the post-libraries remainder that is function heap (the rest
#: is instance-unique).
HEAP_SHARE_OF_REMAINDER = 0.72
#: Never let fixed/shared regions claim more than this share of an image.
MAX_SHARED_SHARE = 0.90

#: Full-scale resident sizes of the FunctionBench libraries (Table 1).
LIBRARY_BYTES: dict[str, int] = {
    "numpy": 6 * MIB,
    "pillow": 4 * MIB,
    "opencv": 14 * MIB,
    "multiprocessing": int(1.5 * MIB),
    "chameleon": 2 * MIB,
    "json": 512 * KIB,
    "pyaes": 1 * MIB,
    "sklearn-tfidf": 5 * MIB,
    "pandas": 9 * MIB,
    "torch": 42 * MIB,
    "sklearn-logreg": 3 * MIB,
}
DEFAULT_LIBRARY_BYTES = 2 * MIB

# Per-region model parameters.  Mutation rates are calibrated so the
# Section-2 study reproduces the Fig 1a redundancy-vs-chunk-size decay;
# pointer intervals against the paper's ASLR effects (small Fig 1b drop,
# larger dedup-savings drop).
RUNTIME_MUTATION = 1.6e-4
LIBRARY_MUTATION = 2.0e-4
HEAP_MUTATION = 3.5e-4
RUNTIME_POINTER_INTERVAL = 2048
LIBRARY_POINTER_INTERVAL = 1024
HEAP_POINTER_INTERVAL = 128
STACK_POINTER_INTERVAL = 96

RUNTIME_COMMON_FILL = 0.10
LIBRARY_COMMON_FILL = 0.85
HEAP_COMMON_FILL = 0.80
UNIQUE_COMMON_FILL = 0.40

# Dirty-page rates: the instance-private page fraction per region kind.
# Calibrated so per-sandbox dedup savings land in the Table-3 band with
# the paper's ordering (read-mostly ML libraries like torch dedup best;
# heap-churning functions like MapReduce dedup worst).
RUNTIME_DIRTY_RATE = 0.22
ZERO_DIRTY_RATE = 0.08
STACK_DIRTY_RATE = 1.0
HEAP_DIRTY_RATE = 0.55
DEFAULT_LIBRARY_DIRTY_RATE = 0.35
LIBRARY_DIRTY_RATE: dict[str, float] = {
    "torch": 0.12,
    "opencv": 0.25,
    "sklearn-tfidf": 0.25,
    "pillow": 0.30,
    "numpy": 0.35,
    "pandas": 0.45,
    "multiprocessing": 0.60,
}


def standard_layout(
    function: str,
    libraries: tuple[str, ...],
    total_bytes: int,
    *,
    unique_boost: float = 1.0,
) -> ImageLayout:
    """Build the standard FunctionBench-style layout for ``function``.

    Args:
        function: Function name (content identity of its private regions).
        libraries: Imported libraries; each contributes a LIBRARY region
            of its tabulated absolute size, shared with every other
            function importing it.
        total_bytes: The function's full-scale memory footprint (Table 2).
        unique_boost: Multiplier on the instance-unique share.  Functions
            with unusually large request-private state (e.g. FeatureGen)
            use >1, which lowers their cross-function redundancy exactly
            as Fig 1c shows.
    """
    if total_bytes <= RUNTIME_BYTES:
        raise ValueError(
            f"{function}: footprint {total_bytes} must exceed the runtime size {RUNTIME_BYTES}"
        )
    zero_bytes = int(ZERO_FRACTION * total_bytes)
    lib_sizes = {lib: LIBRARY_BYTES.get(lib, DEFAULT_LIBRARY_BYTES) for lib in libraries}
    fixed = RUNTIME_BYTES + STACK_BYTES + zero_bytes + sum(lib_sizes.values())
    budget = int(MAX_SHARED_SHARE * total_bytes)
    if fixed > budget:
        # Oversized library sets (relative to the profiled footprint) are
        # squeezed proportionally — the resident subset of the libraries.
        squeeze = (budget - RUNTIME_BYTES - STACK_BYTES - zero_bytes) / max(
            1, sum(lib_sizes.values())
        )
        if squeeze <= 0:
            raise ValueError(f"{function}: footprint too small for runtime+stack+zero regions")
        lib_sizes = {lib: max(PAGE_SIZE, int(size * squeeze)) for lib, size in lib_sizes.items()}
        fixed = RUNTIME_BYTES + STACK_BYTES + zero_bytes + sum(lib_sizes.values())

    remainder = total_bytes - fixed
    unique_bytes = min(remainder - PAGE_SIZE, int(remainder * (1.0 - HEAP_SHARE_OF_REMAINDER) * unique_boost))
    unique_bytes = max(PAGE_SIZE, unique_bytes)
    heap_bytes = remainder - unique_bytes

    def frac(size: int) -> float:
        return size / total_bytes

    regions: list[RegionSpec] = [
        RegionSpec(
            name="runtime",
            scope=SharingScope.RUNTIME,
            content_key="runtime:cpython",
            fraction=frac(RUNTIME_BYTES),
            mutation_rate=RUNTIME_MUTATION,
            pointer_interval=RUNTIME_POINTER_INTERVAL,
            common_fill=RUNTIME_COMMON_FILL,
            dirty_page_rate=RUNTIME_DIRTY_RATE,
        ),
        RegionSpec(
            name="zero",
            scope=SharingScope.RUNTIME,
            content_key="runtime:zero",
            fraction=frac(zero_bytes),
            zero_fill=True,
            dirty_page_rate=ZERO_DIRTY_RATE,
        ),
        RegionSpec(
            name="stack",
            scope=SharingScope.FUNCTION,
            content_key=f"stack:{function}",
            fraction=frac(STACK_BYTES),
            mutation_rate=HEAP_MUTATION,
            pointer_interval=STACK_POINTER_INTERVAL,
            common_fill=0.30,
            dirty_page_rate=STACK_DIRTY_RATE,
            aslr=AslrBehavior.FINE,
        ),
    ]
    regions.extend(
        RegionSpec(
            name=f"lib-{lib}",
            scope=SharingScope.LIBRARY,
            content_key=f"lib:{lib}",
            fraction=frac(size),
            mutation_rate=LIBRARY_MUTATION,
            pointer_interval=LIBRARY_POINTER_INTERVAL,
            common_fill=LIBRARY_COMMON_FILL,
            dirty_page_rate=LIBRARY_DIRTY_RATE.get(lib, DEFAULT_LIBRARY_DIRTY_RATE),
        )
        for lib, size in lib_sizes.items()
    )
    regions.append(
        RegionSpec(
            name="heap",
            scope=SharingScope.FUNCTION,
            content_key=f"heap:{function}",
            fraction=frac(heap_bytes),
            mutation_rate=HEAP_MUTATION,
            pointer_interval=HEAP_POINTER_INTERVAL,
            common_fill=HEAP_COMMON_FILL,
            dirty_page_rate=HEAP_DIRTY_RATE,
        )
    )
    regions.append(
        RegionSpec(
            name="unique",
            scope=SharingScope.INSTANCE,
            content_key=f"unique:{function}",
            fraction=frac(unique_bytes),
            common_fill=UNIQUE_COMMON_FILL,
            dirty_page_rate=1.0,
        )
    )
    # Absorb the rounding slack into the heap fraction so fractions sum to 1.
    slack = 1.0 - sum(r.fraction for r in regions)
    heap_idx = next(i for i, r in enumerate(regions) if r.name == "heap")
    heap = regions[heap_idx]
    regions[heap_idx] = RegionSpec(
        name=heap.name,
        scope=heap.scope,
        content_key=heap.content_key,
        fraction=heap.fraction + slack,
        mutation_rate=heap.mutation_rate,
        pointer_interval=heap.pointer_interval,
        common_fill=heap.common_fill,
        dirty_page_rate=heap.dirty_page_rate,
    )
    return ImageLayout(function=function, regions=tuple(regions))
