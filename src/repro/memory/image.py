"""Sandbox memory images: pages over a flat byte buffer.

A :class:`MemoryImage` is what CRIU's memory dump is to the real Medes:
the checkpointed memory state of one sandbox, addressable by page.  The
dedup agent fingerprints, patches and reconstructs these images; tests
assert byte-exact round trips.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro._util import PAGE_SIZE, rng_for
from repro.memory.layout import ImageLayout, PlacedRegion, RegionSpec, SharingScope
from repro.memory.synth import build_region

#: Maximum number of zero guard pages inserted between regions under ASLR
#: (models page-granular mmap-base randomization).
MAX_GUARD_PAGES = 2


@dataclass(frozen=True)
class MemoryImage:
    """An immutable sandbox memory state.

    Attributes:
        function: Name of the serverless function this image belongs to.
        instance_seed: Seed identifying the sandbox instance.
        data: Flat uint8 buffer; its length is a multiple of ``page_size``.
        page_size: Bytes per page.
        regions: Concrete region placements within ``data``.
        aslr: Whether the image was synthesized with ASLR enabled.
    """

    function: str
    instance_seed: int
    data: np.ndarray
    page_size: int
    regions: tuple[PlacedRegion, ...]
    aslr: bool = False
    executed: bool = False
    """Whether this is a post-execution state (carries dirty pages)."""

    def __post_init__(self) -> None:
        if self.data.dtype != np.uint8:
            raise ValueError("image data must be uint8")
        if len(self.data) % self.page_size != 0:
            raise ValueError("image length must be a multiple of page_size")
        self.data.setflags(write=False)

    @property
    def nbytes(self) -> int:
        """Total image size in bytes."""
        return int(len(self.data))

    @property
    def num_pages(self) -> int:
        """Number of pages in the image."""
        return len(self.data) // self.page_size

    def page(self, index: int) -> np.ndarray:
        """Read-only view of page ``index``."""
        if not 0 <= index < self.num_pages:
            raise IndexError(f"page {index} out of range [0, {self.num_pages})")
        start = index * self.page_size
        return self.data[start : start + self.page_size]

    def page_bytes(self, index: int) -> bytes:
        """Page ``index`` as a bytes object."""
        return self.page(index).tobytes()

    def iter_pages(self):
        """Yield (index, page view) pairs."""
        for i in range(self.num_pages):
            yield i, self.page(i)

    @cached_property
    def _checksum(self) -> str:
        return hashlib.sha1(self.data).hexdigest()

    def checksum(self) -> str:
        """SHA-1 hex digest of the full image (for round-trip assertions).

        Computed once per image: the buffer is frozen in
        ``__post_init__``, so the digest can never go stale, and hashing
        the array directly avoids materializing a full copy.
        """
        return self._checksum

    def region_of(self, offset: int) -> RegionSpec | None:
        """The region covering byte ``offset``, or None for guard pages."""
        for placed in self.regions:
            if placed.offset <= offset < placed.end:
                return placed.spec
        return None


def synthesize_image(
    layout: ImageLayout,
    total_bytes: int,
    instance_seed: int,
    *,
    aslr: bool = False,
    executed: bool = False,
    page_size: int = PAGE_SIZE,
) -> MemoryImage:
    """Synthesize one sandbox instance's memory image.

    Args:
        layout: The function's region layout.
        total_bytes: Target footprint (realized size is page-rounded per
            region and may include ASLR guard pages).
        instance_seed: Per-sandbox seed; two images with the same seed are
            identical, different seeds diverge exactly as the region model
            dictates.
        aslr: Enable address-space layout randomization effects.
        page_size: Bytes per page.
    """
    planned = layout.place(total_bytes, page_size)
    guard_rng = rng_for("aslr-guards", instance_seed, layout.function) if aslr else None

    parts: list[np.ndarray] = []
    placed: list[PlacedRegion] = []
    offset = 0
    for region in planned:
        if guard_rng is not None:
            guards = int(guard_rng.integers(0, MAX_GUARD_PAGES + 1))
            if guards:
                parts.append(np.zeros(guards * page_size, dtype=np.uint8))
                offset += guards * page_size
        content = build_region(
            region.spec, region.size, instance_seed, aslr=aslr, executed=executed
        )
        parts.append(content)
        placed.append(PlacedRegion(spec=region.spec, offset=offset, size=region.size))
        offset += region.size

    data = np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint8)
    return MemoryImage(
        function=layout.function,
        instance_seed=instance_seed,
        data=data,
        page_size=page_size,
        regions=tuple(placed),
        aslr=aslr,
        executed=executed,
    )


def shared_fraction_upper_bound(layout: ImageLayout) -> float:
    """Fraction of the image whose base content is shared beyond the instance.

    An analytic upper bound on dedup savings for one sandbox, used by
    tests as an invariant (measured savings never exceed it) and by the
    policy's first-dedup estimate before any measurement exists.
    """
    return sum(r.fraction for r in layout.regions if r.scope is not SharingScope.INSTANCE)
