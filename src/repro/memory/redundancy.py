"""The Section-2 redundancy measurement methodology.

To quantify duplication between two sandboxes A and B the paper samples
a K-byte chunk every 2K bytes of A, inserts the chunks' SHA-1 digests in
a hash table, then probes the table with B's sampled chunks.  Hash hits
are verified byte-for-byte, and each verified match is extended over the
surrounding non-hashed bytes up to a 2K-byte window; the redundancy of B
with respect to A is the fraction of B's bytes covered by such matches.

This is *measurement* machinery (used by the Figure 1/2 study), separate
from the dedup path's value-sampled fingerprints.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro._util import hash_bytes
from repro.memory.image import MemoryImage


@dataclass(frozen=True)
class RedundancyResult:
    """Outcome of one A-vs-B redundancy measurement."""

    duplicated_bytes: int
    total_bytes: int
    matched_chunks: int
    probed_chunks: int

    @property
    def redundancy(self) -> float:
        """Fraction of B's bytes identified as duplicates of A's."""
        if self.total_bytes == 0:
            return 0.0
        return self.duplicated_bytes / self.total_bytes


#: Cap on reference offsets kept per digest.  Heavily recurring content
#: (zero pages, pool blocks) would otherwise make the probe quadratic;
#: a handful of candidates is enough to find a maximal extension.
MAX_CANDIDATES_PER_DIGEST = 4


def _sampled_offsets(length: int, chunk_size: int) -> range:
    stride = 2 * chunk_size
    return range(0, max(0, length - chunk_size + 1), stride)


def _extend_match(
    b: np.ndarray,
    a: np.ndarray,
    b_off: int,
    a_off: int,
    chunk_size: int,
) -> tuple[int, int]:
    """Extend a verified chunk match into neighbouring bytes.

    Returns the matched interval ``[start, end)`` in B, capped at a total
    window of ``2 * chunk_size`` bytes as in the paper.
    """
    budget = 2 * chunk_size - chunk_size  # extra bytes beyond the chunk
    # Extend left.
    left = 0
    max_left = min(b_off, a_off, budget)
    while left < max_left and b[b_off - left - 1] == a[a_off - left - 1]:
        left += 1
    # Extend right with whatever budget remains.
    right = 0
    max_right = min(len(b) - (b_off + chunk_size), len(a) - (a_off + chunk_size), budget - left)
    b_tail = b[b_off + chunk_size : b_off + chunk_size + max_right]
    a_tail = a[a_off + chunk_size : a_off + chunk_size + max_right]
    if max_right > 0:
        neq = np.flatnonzero(b_tail != a_tail)
        right = int(neq[0]) if neq.size else max_right
    return b_off - left, b_off + chunk_size + right


def measure_redundancy(
    subject: MemoryImage | np.ndarray,
    reference: MemoryImage | np.ndarray,
    chunk_size: int = 64,
    *,
    digest_bits: int = 64,
) -> RedundancyResult:
    """Redundancy of ``subject`` (B) with respect to ``reference`` (A).

    Implements the Section-2 procedure: fixed-offset sampling at stride
    ``2 * chunk_size``, hash-table probe, byte verification, and match
    extension; duplicated coverage is accumulated on a byte mask so
    overlapping extensions are not double counted.
    """
    a = reference.data if isinstance(reference, MemoryImage) else reference
    b = subject.data if isinstance(subject, MemoryImage) else subject
    a_bytes = a.tobytes()
    b_bytes = b.tobytes()

    table: dict[int, list[int]] = defaultdict(list)
    for offset in _sampled_offsets(len(a_bytes), chunk_size):
        bucket = table[hash_bytes(a_bytes[offset : offset + chunk_size], digest_bits)]
        if len(bucket) < MAX_CANDIDATES_PER_DIGEST:
            bucket.append(offset)

    full_window = 2 * chunk_size
    covered = np.zeros(len(b_bytes), dtype=bool)
    matched = 0
    probed = 0
    for offset in _sampled_offsets(len(b_bytes), chunk_size):
        probed += 1
        chunk = b_bytes[offset : offset + chunk_size]
        candidates = table.get(hash_bytes(chunk, digest_bits))
        if not candidates:
            continue
        best: tuple[int, int] | None = None
        for a_off in candidates:
            if a_bytes[a_off : a_off + chunk_size] != chunk:
                continue  # hash collision: discard unverified match
            start, end = _extend_match(b, a, offset, a_off, chunk_size)
            if best is None or end - start > best[1] - best[0]:
                best = (start, end)
            if best[1] - best[0] >= full_window:
                break  # the extension window is saturated
        if best is not None:
            matched += 1
            covered[best[0] : best[1]] = True

    return RedundancyResult(
        duplicated_bytes=int(covered.sum()),
        total_bytes=len(b_bytes),
        matched_chunks=matched,
        probed_chunks=probed,
    )


def redundancy_matrix(
    images: dict[str, MemoryImage],
    chunk_size: int = 64,
) -> dict[tuple[str, str], float]:
    """Pairwise redundancy for a set of named images (Figure 1c).

    Entry ``(row, col)`` is the redundancy of ``row``'s image measured
    against ``col``'s image, matching the paper's axis convention.
    """
    return {
        (row_name, col_name): measure_redundancy(
            row_image, col_image, chunk_size
        ).redundancy
        for row_name, row_image in images.items()
        for col_name, col_image in images.items()
    }
