"""Medes reproduction: memory deduplication for serverless computing.

A from-scratch Python reproduction of *Memory Deduplication for
Serverless Computing with Medes* (EuroSys '22): the dedup sandbox state,
value-sampled page fingerprints, the cluster fingerprint registry, base
sandbox management, the warm/dedup optimization policy, and the full
evaluation harness (keep-alive baselines, Azure-style workloads, and
every table/figure of the paper's Section 7).

Quickstart::

    from repro import (
        AzureTraceGenerator, ClusterConfig, FunctionBenchSuite,
        PlatformKind, build_platform,
    )

    suite = FunctionBenchSuite.default()
    trace = AzureTraceGenerator(seed=42).generate(10, suite.names())
    platform = build_platform(PlatformKind.MEDES, ClusterConfig(), suite)
    report = platform.run(trace)
    print(report.summary())
"""

from repro.core.optimizer import Objective
from repro.core.policy import MedesPolicyConfig
from repro.platform.comparison import Comparison, run_comparison
from repro.platform.config import ClusterConfig, ColdStartMode
from repro.platform.metrics import RunMetrics, StartType, improvement_factors
from repro.platform.platform import Platform, PlatformKind, RunReport, build_platform
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite, FunctionProfile
from repro.workload.trace import Request, Trace

__version__ = "1.0.0"

__all__ = [
    "AzureTraceGenerator",
    "ClusterConfig",
    "ColdStartMode",
    "Comparison",
    "FunctionBenchSuite",
    "FunctionProfile",
    "MedesPolicyConfig",
    "Objective",
    "Platform",
    "PlatformKind",
    "Request",
    "RunMetrics",
    "RunReport",
    "StartType",
    "Trace",
    "build_platform",
    "improvement_factors",
    "run_comparison",
]
