"""Paired platform comparisons: replay one trace on several platforms.

The evaluation always compares Medes against the baselines on the
*identical* trace (same arrivals, same per-request execution times), so
latency improvements can be computed request by request (Figure 7a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import MIB
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import RunMetrics, improvement_factors
from repro.platform.platform import PlatformKind, RunReport, build_platform
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

#: The paper's standard comparison set.
DEFAULT_KINDS = (
    PlatformKind.FIXED_KEEP_ALIVE,
    PlatformKind.ADAPTIVE_KEEP_ALIVE,
    PlatformKind.MEDES,
)


@dataclass
class Comparison:
    """Results of replaying one trace across several platforms."""

    trace: Trace
    suite: FunctionBenchSuite
    config: ClusterConfig
    reports: dict[str, RunReport] = field(default_factory=dict)

    def metrics(self, name: str) -> RunMetrics:
        return self.reports[name].metrics

    @property
    def names(self) -> list[str]:
        return list(self.reports)

    def medes_name(self) -> str:
        for name in self.reports:
            if name.startswith("medes"):
                return name
        raise KeyError("comparison does not include a Medes run")

    def improvement_over(self, baseline_name: str, *, function: str | None = None) -> list[float]:
        """Per-request e2e improvement factors of Medes over a baseline."""
        return improvement_factors(
            self.metrics(baseline_name), self.metrics(self.medes_name()), function=function
        )

    def cold_start_table(self) -> list[tuple[str, dict[str, int]]]:
        """Per-platform cold-start counts by function (Figure 7b)."""
        functions = self.trace.functions()
        rows = []
        for name, report in self.reports.items():
            by_fn = report.metrics.cold_starts_by_function()
            rows.append((name, {fn: by_fn.get(fn, 0) for fn in functions}))
        return rows

    def tail_latency_table(self, pct: float = 99.9) -> list[tuple[str, dict[str, float]]]:
        """Per-platform tail e2e latency by function (Figure 7b, bottom)."""
        functions = self.trace.functions()
        return [
            (name, {fn: report.metrics.e2e_percentile(pct, fn) for fn in functions})
            for name, report in self.reports.items()
        ]

    def memory_table(self) -> list[tuple[str, float, float]]:
        """(platform, mean MB, median MB) cluster memory usage (Figure 9a)."""
        rows = [
            (
                name,
                report.metrics.mean_memory_bytes() / MIB,
                report.metrics.median_memory_bytes() / MIB,
            )
            for name, report in self.reports.items()
        ]
        return rows

    def extra_sandboxes_vs(self, baseline_name: str) -> float:
        """Percent more sandboxes Medes kept in memory vs a baseline
        (the paper's 7.74-37.7% claim)."""
        medes = self.metrics(self.medes_name()).mean_sandbox_count()
        base = self.metrics(baseline_name).mean_sandbox_count()
        if base == 0:
            return 0.0
        return (medes / base - 1.0) * 100.0


def run_comparison(
    trace: Trace,
    suite: FunctionBenchSuite,
    config: ClusterConfig,
    *,
    kinds: tuple[PlatformKind, ...] = DEFAULT_KINDS,
    medes: MedesPolicyConfig | None = None,
    fixed_keep_alive_ms: float = 600_000.0,
    catalyzer: bool = False,
) -> Comparison:
    """Replay ``trace`` on each platform kind and collect the reports."""
    comparison = Comparison(trace=trace, suite=suite, config=config)
    for kind in kinds:
        platform = build_platform(
            kind,
            config,
            suite,
            medes=medes,
            fixed_keep_alive_ms=fixed_keep_alive_ms,
            catalyzer=catalyzer,
        )
        report = platform.run(trace)
        comparison.reports[report.platform_name] = report
    return comparison
