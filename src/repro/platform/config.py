"""Cluster and experiment configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import MIB, PAGE_SIZE
from repro.core.costs import CostModel
from repro.faults.schedule import FaultsConfig
from repro.memory.fingerprint import FingerprintConfig
from repro.parallel.config import ParallelConfig
from repro.sandbox.node import EvictionOrder
from repro.sim.network import RdmaConfig
from repro.storage.tiers import StorageConfig
from repro.templates.catalog import TemplateConfig
from repro.tenancy.domains import TenantConfig
from repro.workload.functionbench import FunctionProfile


class ColdStartMode(enum.Enum):
    """How cold starts are served."""

    STANDARD = "standard"
    """Full environment initialization (today's platforms)."""

    CATALYZER = "catalyzer"
    """Emulated Catalyzer (Section 7.6): every cold start is replaced by
    a restore from an in-memory sandbox template snapshot."""


#: Emulated Catalyzer snapshot-restore cost model: fixed resume cost plus
#: a per-MB page-load component.
CATALYZER_FIXED_MS = 100.0
CATALYZER_MS_PER_MB = 1.0


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster (paper Section 7.1).

    The defaults mirror the testbed where it matters to behaviour: the
    paper runs 19 worker nodes with a *software-defined* 2 GB/node memory
    limit so the cluster is oversubscribed; experiments in this
    reproduction default to a smaller cluster with the same
    per-node limit and scale node counts per experiment.
    """

    nodes: int = 4
    node_memory_mb: float = 2048.0
    content_scale: float = 1.0 / 64.0
    page_size: int = PAGE_SIZE
    aslr: bool = False
    seed: int = 0
    rdma: RdmaConfig = field(default_factory=RdmaConfig)
    costs: CostModel = field(default_factory=CostModel)
    fingerprint: FingerprintConfig = field(default_factory=FingerprintConfig)
    base_threshold: int = 40
    base_savings_threshold: float = 0.45
    """Demarcate a function's first base sandbox only when a trial dedup
    against the existing (cross-function) bases saves less than this
    fraction — the paper's own measurement that ~67% of deduped pages
    match a *different* function makes per-function bases often
    unnecessary, and base checkpoints are expensive pinned state."""
    max_refs_per_digest: int = 8
    registry_shards: int = 1
    """Shards of the controller fingerprint registry (Section 4.3); 1
    reproduces the paper's single-controller experiments."""
    eviction_order: EvictionOrder = EvictionOrder.LRU
    eviction_scan_cap: int = 0
    """Bound on eviction candidates ranked per placement decision.  A
    permanently full node re-sorts its whole idle population on every
    cold start (quadratic thrash at cluster scale); a positive cap ranks
    only the top ``cap`` victims per decision (a ``heapq.nsmallest``
    prefix of the full order, so the victims chosen are identical
    whenever fewer than ``cap`` evictions suffice).  0 (the default)
    reproduces the unbounded full-sort behaviour bit-identically."""
    enable_dedup_abort: bool = True
    """Abort an in-flight dedup op to serve an arriving request warm
    (cheaper than a cold start); off reproduces a stricter reading of
    the paper, where DEDUPING sandboxes are simply unavailable."""
    cold_start_mode: ColdStartMode = ColdStartMode.STANDARD
    memory_sample_interval_ms: float = 10_000.0
    verify_restores: bool = False
    """Verify every restored image checksum (slow; tests enable it)."""
    indexed_control_plane: bool = True
    """Serve scheduling state from incrementally maintained indexes
    (O(1) per request) instead of rescanning sandboxes and re-summing
    node memory.  Off reproduces the pre-index scan paths exactly —
    kept for the e2e throughput benchmark and the equivalence tests
    that pin both modes to bit-identical RunReports."""
    verify_accounting: bool = False
    """Debug: assert every node's cached used-bytes counter against the
    recomputed per-resident sum on every read (slow; tests enable it)."""
    streamed_arrivals: bool = True
    """Inject trace arrivals chunk by chunk through
    :meth:`~repro.sim.engine.Simulator.schedule_stream` instead of
    pre-scheduling every request as its own heap entry before the run
    starts, keeping resident arrival state O(chunk) instead of O(trace).
    Bit-identical to eager pre-scheduling (the stream reserves the whole
    trace's event sequence numbers up front); off reproduces the
    pre-change eager path, kept for the streaming equivalence tests."""
    arrival_chunk: int = 4096
    """Resident window of streamed arrival injection: how many upcoming
    trace arrivals are scheduled on the event heap at once (only read
    when ``streamed_arrivals`` is on)."""
    checkpoint_tiering: bool = False
    """Tiered checkpoint storage (DESIGN.md §9): under pressure, demote
    base checkpoints to remote DRAM / local SSD and park expired dedup
    patch tables on SSD instead of purging; restores prefetch recorded
    working sets.  Off (the default) reproduces the Medes paper's
    DRAM-only behaviour bit-identically."""
    storage: StorageConfig = field(default_factory=StorageConfig)
    """Capacities and device timings of the non-DRAM tiers (only read
    when ``checkpoint_tiering`` is on)."""
    parallel_data_plane: bool = False
    """Charge dedup/restore ops with the parallel data plane's
    stage-overlap timing model (DESIGN.md §10): compute stages divide
    across ``parallel.workers``, registry round-trips are batched, and
    the post-checkpoint stages software-pipeline over page batches.
    Off (the default) reproduces the serial stage-sum accounting
    bit-identically."""
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    """Shape of the parallel data plane (only read when
    ``parallel_data_plane`` is on)."""
    template_sharing: bool = False
    """Forkable template checkpoints (DESIGN.md §14): factor shared
    RUNTIME/LIBRARY regions into cross-function template segments in a
    remote-DRAM pool and park idle sandboxes as per-function deltas, so
    a restore is template fork + delta apply — the TEMPLATE start type
    between WARM and DEDUP.  Off (the default) reproduces the dedup-only
    behaviour bit-identically."""
    templates: TemplateConfig = field(default_factory=TemplateConfig)
    """Shape of the template subsystem (only read when
    ``template_sharing`` is on)."""
    dedup_domains: TenantConfig = field(default_factory=TenantConfig)
    """Tenant-scoped dedup isolation domains (DESIGN.md §15): requests
    carry a ``tenant`` label, and every sharing point — fingerprint
    registry, replica index, base selection, template catalog — is
    partitioned so state never crosses a domain boundary.  The default
    (``DedupDomainMode.OFF``) maps every tenant to the single global
    domain and is pinned bit-identical to the pre-tenancy platform by
    the equivalence tests."""
    faults: FaultsConfig | None = None
    """Fault injection and recovery (DESIGN.md §11): a seeded
    :class:`~repro.faults.schedule.FaultSchedule` of node crashes,
    registry-shard outages and link faults, plus per-op transient RPC
    failures with retry/backoff.  ``None`` (the default) disables the
    fault layer entirely and is pinned bit-identical to a build without
    it; an empty ``FaultsConfig()`` enables the layer but injects
    nothing — also bit-identical, by the equivalence tests.  All fault
    randomness is seeded (``seed`` + ``faults.seed``), so a faulted run
    reproduces bit-for-bit."""

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("need at least one node")
        if self.node_memory_mb <= 0:
            raise ValueError("node_memory_mb must be positive")
        if not 0 < self.content_scale <= 1:
            raise ValueError("content_scale must be in (0, 1]")
        if self.base_threshold <= 0:
            raise ValueError("base_threshold must be positive")
        if self.registry_shards <= 0:
            raise ValueError("registry_shards must be positive")
        if self.arrival_chunk <= 0:
            raise ValueError("arrival_chunk must be positive")

    @property
    def node_capacity_bytes(self) -> int:
        return int(self.node_memory_mb * MIB)

    @property
    def cluster_capacity_bytes(self) -> int:
        return self.nodes * self.node_capacity_bytes

    def cold_start_ms(self, profile: FunctionProfile) -> float:
        """Cost of a cold start under the configured mode."""
        if self.cold_start_mode is ColdStartMode.CATALYZER:
            return CATALYZER_FIXED_MS + CATALYZER_MS_PER_MB * profile.memory_mb
        return profile.cold_start_ms
