"""Platform assembly: wire the substrates together and run a trace.

:func:`build_platform` constructs a ready-to-run platform for any of the
evaluated systems — Medes, the fixed and adaptive keep-alive baselines,
and the emulated-Catalyzer variants — and :meth:`Platform.run` replays a
trace against it, returning a :class:`RunReport`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro._util import stable_seed
from repro.controller.baselines import AdaptiveKeepAlivePolicy, FixedKeepAlivePolicy
from repro.controller.controller import ClusterController
from repro.core.agent import DedupAgent
from repro.core.basemgr import BaseSandboxManager
from repro.core.policy import FunctionStats, LifecyclePolicy, MedesPolicy, MedesPolicyConfig
from repro.core.registry import FingerprintRegistry, ShardedFingerprintRegistry
from repro.faults.health import FaultDomainHealth, FaultRuntime
from repro.faults.injector import FaultInjector
from repro.faults.retry import TransientFaults
from repro.platform.config import ClusterConfig, ColdStartMode
from repro.platform.metrics import RunMetrics
from repro.sandbox.checkpoint import CheckpointStore
from repro.sandbox.node import Node
from repro.sim.engine import Simulator
from repro.sim.network import RdmaFabric
from repro.storage.prefetch import WorkingSetRecorder
from repro.storage.store import TieredCheckpointStore
from repro.storage.tiers import StorageTier
from repro.templates.catalog import TemplateCatalog
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

#: Quiet time after the last arrival before a run is considered drained.
RUN_TAIL_MS = 60_000.0


class PlatformKind(enum.Enum):
    """The systems the evaluation compares."""

    MEDES = "medes"
    FIXED_KEEP_ALIVE = "fixed-keep-alive"
    ADAPTIVE_KEEP_ALIVE = "adaptive-keep-alive"


@dataclass(frozen=True)
class RunReport:
    """Result of replaying one trace on one platform."""

    platform_name: str
    config: ClusterConfig
    metrics: RunMetrics
    duration_ms: float

    def summary(self) -> str:
        """A terse human-readable digest of the run."""
        metrics = self.metrics
        counts = metrics.start_counts()
        total = sum(counts.values())
        lines = [
            f"platform: {self.platform_name}",
            f"requests completed: {total}",
            "starts: "
            + ", ".join(f"{t.value}={counts[t]}" for t in sorted(counts, key=lambda t: t.value)),
            f"p50 e2e: {metrics.e2e_percentile(50):.0f} ms, "
            f"p99.9 e2e: {metrics.e2e_percentile(99.9):.0f} ms",
            f"mean cluster memory: {metrics.mean_memory_bytes() / 2**20:.0f} MB",
            f"sandboxes created: {metrics.sandboxes_created}, "
            f"evictions: {metrics.evictions}, dedup ops: {len(metrics.dedup_ops)}",
        ]
        return "\n".join(lines)


class Platform:
    """A fully-wired serverless platform ready to replay traces."""

    def __init__(
        self,
        *,
        name: str,
        config: ClusterConfig,
        suite: FunctionBenchSuite,
        policy: LifecyclePolicy,
        stats: dict[str, FunctionStats] | None = None,
    ):
        self.name = name
        self.config = config
        self.suite = suite
        self.sim = Simulator()
        self.metrics = RunMetrics(platform_name=name)
        self.fabric = RdmaFabric(config.rdma)
        if config.registry_shards > 1:
            self.registry = ShardedFingerprintRegistry(
                config.registry_shards,
                config.fingerprint,
                max_refs_per_digest=config.max_refs_per_digest,
            )
        else:
            self.registry = FingerprintRegistry(
                config.fingerprint, max_refs_per_digest=config.max_refs_per_digest
            )
        if config.checkpoint_tiering:
            self.store: CheckpointStore = TieredCheckpointStore(
                config.storage, nodes=config.nodes
            )
            self.recorder = (
                WorkingSetRecorder() if config.storage.prefetch else None
            )
        else:
            self.store = CheckpointStore()
            self.recorder = None
        self.basemgr = BaseSandboxManager(self.store, threshold=config.base_threshold)
        if config.faults is not None:
            self.faults: FaultRuntime | None = FaultRuntime(
                config=config.faults,
                health=FaultDomainHealth(
                    nodes=config.nodes, shards=config.registry_shards
                ),
                transients=TransientFaults(
                    config.faults.rpc_failure_prob,
                    config.faults.retry,
                    seed=stable_seed("transient-rpc", config.seed, config.faults.seed),
                ),
            )
        else:
            self.faults = None
        self.templates: TemplateCatalog | None = (
            TemplateCatalog(
                config.templates,
                config.storage,
                content_scale=config.content_scale,
            )
            if config.template_sharing
            else None
        )
        self.nodes = [
            Node(
                node_id=i,
                capacity_bytes=config.node_capacity_bytes,
                cached_accounting=config.indexed_control_plane,
                verify_accounting=config.verify_accounting,
            )
            for i in range(config.nodes)
        ]
        self.agents = {
            node.node_id: DedupAgent(
                node.node_id,
                registry=self.registry,
                store=self.store,
                fabric=self.fabric,
                costs=config.costs,
                content_scale=config.content_scale,
                fingerprint_config=config.fingerprint,
                tiering=config.checkpoint_tiering,
                recorder=self.recorder,
                overlap_costs=config.parallel if config.parallel_data_plane else None,
                transients=self.faults.transients if self.faults is not None else None,
                templates=self.templates,
            )
            for node in self.nodes
        }
        self.controller = ClusterController(
            sim=self.sim,
            config=config,
            suite=suite,
            policy=policy,
            metrics=self.metrics,
            nodes=self.nodes,
            agents=self.agents,
            registry=self.registry,
            store=self.store,
            basemgr=self.basemgr,
            stats=stats,
            faults=self.faults,
            templates=self.templates,
        )
        self.injector: FaultInjector | None = (
            FaultInjector(
                sim=self.sim,
                config=config,
                runtime=self.faults,
                fabric=self.fabric,
                registry=self.registry,
                controller=self.controller,
                store=self.store,
                metrics=self.metrics,
            )
            if self.faults is not None
            else None
        )

    def cluster_snapshot(self) -> dict:
        """A point-in-time view of the cluster for observability.

        Returns per-node sandbox states, checkpoint pins and memory
        usage — what an operator dashboard would poll.  Read-only.
        """
        nodes = [
            {
                "node_id": node.node_id,
                "used_bytes": node.used_bytes(),
                "capacity_bytes": node.capacity_bytes,
                "sandboxes": [
                    {
                        "id": sandbox.sandbox_id,
                        "function": sandbox.function,
                        "state": sandbox.state.value,
                        "is_base": sandbox.is_base,
                        "memory_bytes": sandbox.memory_bytes(),
                    }
                    for sandbox in node.sandboxes.values()
                ],
                "checkpoints": [
                    {
                        "id": checkpoint.checkpoint_id,
                        "function": checkpoint.function,
                        "refcount": checkpoint.refcount,
                        "memory_bytes": checkpoint.memory_bytes(),
                    }
                    for checkpoint in node.checkpoints.values()
                ],
            }
            for node in self.nodes
        ]
        return {
            "time_ms": self.sim.now,
            "platform": self.name,
            "nodes": nodes,
            "registry_digests": self.registry.digest_count,
            "registry_bytes": self.registry.memory_bytes(),
        }

    def _sample_memory(self) -> None:
        warm, dedup, total = self.controller.sandbox_census()
        # append_row: the sampler runs on every tick of cluster-scale
        # replays; skip the per-sample object construction.
        self.metrics.memory_timeline.append_row(
            self.sim.now, self.controller.used_bytes(), warm, dedup, total
        )
        if isinstance(self.store, TieredCheckpointStore):
            occupancy = self.store.tier_used_bytes()
            self.metrics.tier_timeline.append_row(
                self.sim.now,
                occupancy[StorageTier.REMOTE_DRAM],
                occupancy[StorageTier.LOCAL_SSD],
                self.controller.cold_parked_tables,
            )
        if self.templates is not None:
            self.metrics.template_timeline.append_row(
                self.sim.now,
                self.templates.pool.used_bytes,
                self.templates.replica_bytes(),
                len(self.templates),
                self.templates.live_deltas,
            )

    def _inject_arrivals(self, trace: Trace) -> None:
        """Schedule the trace's arrivals on the simulator.

        Streamed mode (the default) keeps only ``config.arrival_chunk``
        upcoming arrivals on the heap via ``Simulator.schedule_stream``;
        the eager mode pre-schedules every request up front and is kept
        as the reference the streaming equivalence tests pin against.
        """
        requests = trace.requests
        if self.config.streamed_arrivals:
            submit = self.controller.submit
            self.sim.schedule_stream(
                [request.arrival_ms for request in requests],
                lambda i: lambda request=requests[i]: submit(request),
                chunk_size=self.config.arrival_chunk,
            )
        else:
            for request in requests:
                self.sim.at(
                    request.arrival_ms, lambda r=request: self.controller.submit(r)
                )

    def run(self, trace: Trace, *, tail_ms: float = RUN_TAIL_MS) -> RunReport:
        """Replay ``trace`` to completion and collect metrics.

        The simulation runs until every request has completed and a tail
        of quiet time has elapsed (so background dedup ops finish), but
        lifecycle timers beyond that point are not waited for.
        """
        if self.injector is not None:
            self.injector.arm()
        self._inject_arrivals(trace)
        sampler = self.sim.every(
            self.config.memory_sample_interval_ms, self._sample_memory
        )

        end = trace.duration_ms + tail_ms
        self.sim.run_until(end)
        # The trace (plus its quiet tail) is over: stop the sampler so
        # drain-guard extensions below don't append quiet-period samples
        # that drag down mean_memory_bytes.
        sampler.cancel()
        # Let any in-flight requests (queued under pressure) drain.  The
        # outstanding counter is maintained by RunMetrics in both
        # control-plane modes, so each guard check is O(1) instead of a
        # rescan of every request record.
        guard = 0
        while self.metrics.outstanding_requests > 0:
            end += RUN_TAIL_MS
            guard += 1
            self.sim.run_until(end)
            if guard > 10_000:
                raise RuntimeError("run did not drain; requests stuck in queue")
        if self.recorder is not None:
            self.metrics.prefetch_recordings = self.recorder.recordings
            self.metrics.prefetched_restores = self.recorder.prefetched_restores
            self.metrics.prefetch_hit_pages = self.recorder.hit_pages
            self.metrics.prefetch_miss_pages = self.recorder.miss_pages
        agents = self.agents.values()
        self.metrics.base_page_cache_hits = sum(a.base_page_cache.hits for a in agents)
        self.metrics.base_page_cache_misses = sum(
            a.base_page_cache.misses for a in agents
        )
        self.metrics.anchor_index_cache_hits = sum(
            a.anchor_index_cache.hits for a in agents
        )
        self.metrics.anchor_index_cache_misses = sum(
            a.anchor_index_cache.misses for a in agents
        )
        if self.faults is not None:
            transients = self.faults.transients
            self.metrics.rpc_retries = transients.retried_attempts
            self.metrics.retry_backoff_ms = transients.charged_backoff_ms
            self.metrics.rpc_exhausted_ops = transients.exhausted_ops
        return RunReport(
            platform_name=self.name,
            config=self.config,
            metrics=self.metrics,
            duration_ms=self.sim.now,
        )


def build_platform(
    kind: PlatformKind,
    config: ClusterConfig,
    suite: FunctionBenchSuite,
    *,
    medes: MedesPolicyConfig | None = None,
    fixed_keep_alive_ms: float = 600_000.0,
    catalyzer: bool = False,
) -> Platform:
    """Construct one of the evaluated platforms.

    Args:
        kind: Which system to build.
        config: Cluster configuration (shared across compared systems).
        suite: The function profiles the trace will reference.
        medes: Medes policy knobs (P1/P2 objective, periods); defaults
            to the latency objective with the paper's settings.
        fixed_keep_alive_ms: Keep-alive window of the fixed baseline.
        catalyzer: Emulate Catalyzer's template restore for cold starts
            (Section 7.6) on top of the chosen platform.
    """
    if catalyzer:
        config = replace(config, cold_start_mode=ColdStartMode.CATALYZER)
    if kind is PlatformKind.MEDES:
        policy_config = medes or MedesPolicyConfig()
        stats = {
            profile.name: FunctionStats(profile=profile, prior_dedup_start_ms=150.0)
            for profile in suite
        }
        policy = MedesPolicy(
            policy_config, warm_start_ms=config.costs.warm_start_ms, stats=stats
        )
        name = "medes+catalyzer" if catalyzer else "medes"
        return Platform(name=name, config=config, suite=suite, policy=policy, stats=stats)
    if kind is PlatformKind.FIXED_KEEP_ALIVE:
        policy = FixedKeepAlivePolicy(fixed_keep_alive_ms)
        name = f"{policy.name}+catalyzer" if catalyzer else policy.name
        return Platform(name=name, config=config, suite=suite, policy=policy)
    if kind is PlatformKind.ADAPTIVE_KEEP_ALIVE:
        policy = AdaptiveKeepAlivePolicy()
        name = f"{policy.name}+catalyzer" if catalyzer else policy.name
        return Platform(name=name, config=config, suite=suite, policy=policy)
    raise AssertionError(f"unhandled platform kind {kind}")
