"""Platform assembly, configuration and metrics."""

from repro.platform.config import ClusterConfig, ColdStartMode
from repro.platform.metrics import (
    DedupOpRecord,
    MemorySample,
    RequestRecord,
    RestoreOpRecord,
    RunMetrics,
    StartType,
    improvement_factors,
)
from repro.platform.platform import Platform, PlatformKind, RunReport, build_platform
from repro.platform.report_io import (
    comparison_to_dict,
    metrics_to_dict,
    report_to_dict,
    save_report,
)

__all__ = [
    "ClusterConfig",
    "ColdStartMode",
    "DedupOpRecord",
    "MemorySample",
    "Platform",
    "PlatformKind",
    "RequestRecord",
    "RestoreOpRecord",
    "RunMetrics",
    "RunReport",
    "StartType",
    "build_platform",
    "comparison_to_dict",
    "metrics_to_dict",
    "report_to_dict",
    "save_report",
    "improvement_factors",
]
