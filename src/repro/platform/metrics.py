"""Run metrics: request records, start counters, memory timeline.

Every platform run produces a :class:`RunMetrics` with one record per
request (start type, queueing, startup and end-to-end latency), dedup-op
and restore-op records, a sampled cluster-memory timeline, and sandbox
population counts — everything the evaluation's tables and figures are
derived from.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from dataclasses import dataclass, field, fields
from typing import Iterator

import numpy as np

from repro._util import percentile


class StartType(enum.Enum):
    """How a request's sandbox was obtained."""

    COLD = "cold"
    WARM = "warm"
    DEDUP = "dedup"
    TEMPLATE = "template"
    """Forked from a shared runtime/library template plus a per-function
    delta (DESIGN.md §14) — between WARM and DEDUP on the start ladder."""


#: Integer codes for the array-backed completion timeline (a request
#: that never started — crash-displaced and re-queued records mid-run —
#: carries ``None`` and is coded ``-1``).
START_CODES: dict[StartType | None, int] = {
    None: -1,
    StartType.COLD: 0,
    StartType.WARM: 1,
    StartType.DEDUP: 2,
    StartType.TEMPLATE: 3,
}


@dataclass(slots=True)
class RequestRecord:
    """Lifecycle of one request through the platform.

    Slotted: cluster-scale replays keep millions of these resident."""

    request_id: int
    function: str
    arrival_ms: float
    start_type: StartType | None = None
    queued_ms: float = 0.0
    startup_ms: float = 0.0
    exec_ms: float = 0.0
    completion_ms: float | None = None
    retry_penalty_ms: float = 0.0
    """Latency of *failed* fallback attempts (exhausted retries against
    an earlier dispatch candidate) charged into ``startup_ms`` when the
    request finally starts.  Zero unless the fault layer is active."""

    @property
    def e2e_ms(self) -> float:
        """End-to-end latency (arrival to completion)."""
        if self.completion_ms is None:
            raise RuntimeError(f"request {self.request_id} not completed")
        return self.completion_ms - self.arrival_ms

    @property
    def slowdown(self) -> float:
        """E2E latency normalized by pure execution time."""
        if self.exec_ms <= 0:
            return 1.0
        return self.e2e_ms / self.exec_ms


@dataclass(frozen=True)
class DedupOpRecord:
    """One dedup op (background) for overhead reporting (§7.7)."""

    function: str
    sandbox_id: int
    started_ms: float
    duration_ms: float
    lookup_ms: float
    savings_fraction: float
    retained_full_bytes: int
    same_function_pages: int
    cross_function_pages: int
    retry_ms: float = 0.0
    """Transient-RPC timeout/backoff latency charged to the op (faults)."""
    retries: int = 0


@dataclass(frozen=True)
class BaseOpRecord:
    """One base demarcation: checkpoint capture + registry registration.

    Both phases were previously uncharged (``CostModel.register_ms`` was
    dead code), understating the §7.7 overhead of creating a base.
    """

    function: str
    sandbox_id: int
    started_ms: float
    checkpoint_ms: float
    register_ms: float

    @property
    def total_ms(self) -> float:
        return self.checkpoint_ms + self.register_ms


@dataclass(frozen=True)
class RestoreOpRecord:
    """One restore op (dedup start) with the Figure-8 phase breakdown.

    The tiering fields keep their zero defaults when checkpoint tiering
    is off, so untieried records — and whole ``RunMetrics`` — compare
    equal to the pre-tiering code's.
    """

    function: str
    sandbox_id: int
    started_ms: float
    base_read_ms: float
    compute_ms: float
    restore_ms: float
    prefetched: bool = False
    """Base reads were issued as one recorded-working-set prefetch
    overlapping patch application (DESIGN.md §9)."""
    miss_read_ms: float = 0.0
    """Serial demand-miss read of pages the recording lacked."""
    prefetch_hit_pages: int = 0
    prefetch_miss_pages: int = 0
    promote_ms: float = 0.0
    """Charged tier promotions (parked table read-back, checkpoint
    promotion) serialized before the restore proper."""
    overlap_workers: int = 0
    """Parallel-data-plane workers the compute phase divided across
    (0 = serial accounting; mirrors ``RestoreTimings.overlap``)."""
    overlap_batches: int = 0
    """Page batches the op software-pipelined over (0 = serial)."""
    retry_ms: float = 0.0
    """Transient-RPC timeout/backoff latency charged to the op (faults)."""
    retries: int = 0

    @property
    def total_ms(self) -> float:
        compute_ms = self.compute_ms
        if self.overlap_workers:
            compute_ms /= self.overlap_workers
        if self.prefetched:
            fetch = max(self.base_read_ms, compute_ms) + self.miss_read_ms
        elif self.overlap_batches > 1:
            ramp = (self.base_read_ms + compute_ms) / self.overlap_batches
            steady = (
                max(self.base_read_ms, compute_ms)
                * (self.overlap_batches - 1)
                / self.overlap_batches
            )
            fetch = ramp + steady + self.miss_read_ms
        else:
            fetch = self.base_read_ms + compute_ms
        return fetch + self.restore_ms + self.promote_ms + self.retry_ms


@dataclass(frozen=True)
class TemplateOpRecord:
    """One templatize op: shared-segment publish + delta construction.

    The template analogue of :class:`DedupOpRecord` — an idle sandbox is
    parked as a per-function delta against the catalog's shared
    runtime/library segments instead of a patch table against a base.
    """

    function: str
    sandbox_id: int
    started_ms: float
    duration_ms: float
    publish_ms: float
    """Remote-DRAM pool write for segments this op created (0 when every
    segment was already published by an earlier templatize)."""
    segments_created: int
    segments_shared: int
    """Segments reused from the catalog (the cross-function hit count)."""
    published_bytes: int
    savings_fraction: float
    retained_full_bytes: int


@dataclass(frozen=True)
class TemplateForkRecord:
    """One template fork (TEMPLATE start): promote + delta apply."""

    function: str
    sandbox_id: int
    started_ms: float
    promote_ms: float
    """Charged remote-DRAM → node-DRAM promotion of segments forked on
    this node for the first time (0 once replicas are warm)."""
    apply_ms: float
    restore_ms: float
    promoted_bytes: int
    patched_pages: int
    unique_pages: int
    zero_pages: int
    retry_ms: float = 0.0
    """Transient-RPC timeout/backoff latency charged to the op (faults)."""
    retries: int = 0
    cow_shared_bytes: int = 0
    """Clean template pages the forked sandbox maps copy-on-write from
    the node's replicas — discounted from its warm DRAM charge."""

    @property
    def total_ms(self) -> float:
        return self.promote_ms + self.apply_ms + self.restore_ms + self.retry_ms


@dataclass(frozen=True, slots=True)
class TemplateSample:
    """Template catalog occupancy at one sampling instant."""

    time_ms: float
    pool_used_bytes: int
    """Remote-DRAM template pool occupancy (authoritative copies)."""
    replica_bytes: int
    """Node-DRAM template replicas across the cluster (fork caches)."""
    segments: int
    live_deltas: int
    """Parked sandboxes currently holding a template delta table."""


@dataclass(frozen=True, slots=True)
class CompletionSample:
    """One completed request, array-backed for vectorized percentiles.

    Appended by :meth:`RunMetrics.on_completion`; ``start_code`` is the
    :data:`START_CODES` integer so per-start-type latency percentiles are
    one numpy mask instead of a scan over millions of records.
    """

    time_ms: float
    start_code: int
    queued_ms: float
    startup_ms: float
    e2e_ms: float


@dataclass(frozen=True, slots=True)
class MemorySample:
    """Cluster memory usage at one sampling instant."""

    time_ms: float
    used_bytes: int
    warm_count: int
    dedup_count: int
    total_sandboxes: int


@dataclass(frozen=True)
class TierOpRecord:
    """One charged tier move (demotion or promotion), tiering only."""

    time_ms: float
    kind: str
    """"demote" or "promote"."""
    subject: str
    """"checkpoint" or "table"."""
    tier: str
    """Destination tier value (e.g. "local-ssd")."""
    nbytes: int
    cost_ms: float


@dataclass(frozen=True, slots=True)
class TierSample:
    """Occupancy of the non-DRAM tiers at one sampling instant."""

    time_ms: float
    remote_dram_bytes: int
    ssd_bytes: int
    cold_tables: int
    """Dedup sandboxes whose patch table is parked on SSD."""


class ColumnTimeline:
    """A growable numpy column store behind a list-of-samples API.

    Cluster-scale replays sample the memory/tier timelines millions of
    times; one Python object per sample does not survive that.  Samples
    are stored as per-field numpy columns (float64 for ``float`` fields,
    int64 for ``int`` fields) with amortized-doubling growth, while the
    exterior API stays the familiar list of frozen sample dataclasses:
    ``append`` takes a sample object, iteration/indexing yield sample
    objects, and equality works against both other timelines and plain
    lists of samples — so existing tests and reports are unchanged.

    Vectorized readers use :meth:`column` to get a numpy view of one
    field across every sample without materializing any objects.
    """

    __slots__ = ("_sample_type", "_names", "_columns", "_size")

    def __init__(self, sample_type: type, samples: Iterator | None = None):
        self._sample_type = sample_type
        self._names: tuple[str, ...] = ()
        self._columns: list[np.ndarray] = []
        for spec in fields(sample_type):
            dtype = np.float64 if spec.type in ("float", float) else np.int64
            self._names += (spec.name,)
            self._columns.append(np.empty(0, dtype=dtype))
        self._size = 0
        for sample in samples or ():
            self.append(sample)

    def _grow(self, needed: int) -> None:
        capacity = max(64, 2 * needed)
        for index, column in enumerate(self._columns):
            grown = np.empty(capacity, dtype=column.dtype)
            grown[: self._size] = column[: self._size]
            self._columns[index] = grown

    def append(self, sample) -> None:
        """Append one sample object (dataclass of the store's type)."""
        self.append_row(*(getattr(sample, name) for name in self._names))

    def append_row(self, *values) -> None:
        """Fast path: append one sample from positional field values."""
        size = self._size
        if size >= len(self._columns[0]):
            self._grow(size + 1)
        for column, value in zip(self._columns, values):
            column[size] = value
        self._size = size + 1

    def column(self, name: str) -> np.ndarray:
        """Numpy view of one field across all samples (no copies)."""
        return self._columns[self._names.index(name)][: self._size]

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        sample_type = self._sample_type
        columns = [column[: self._size].tolist() for column in self._columns]
        for row in zip(*columns):
            yield sample_type(*row)

    def __getitem__(self, index: int):
        if not -self._size <= index < self._size:
            raise IndexError(f"sample index {index} out of range ({self._size})")
        if index < 0:
            index += self._size
        return self._sample_type(
            *(column[index].item() for column in self._columns)
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnTimeline):
            return (
                self._sample_type is other._sample_type
                and self._size == other._size
                and all(
                    np.array_equal(a[: self._size], b[: other._size])
                    for a, b in zip(self._columns, other._columns)
                )
            )
        if isinstance(other, (list, tuple)):
            return len(other) == self._size and all(
                ours == theirs for ours, theirs in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"ColumnTimeline({self._sample_type.__name__}, n={self._size})"


@dataclass(frozen=True)
class FaultEventRecord:
    """One injected fault or heal, as it fired (DESIGN.md §11)."""

    time_ms: float
    kind: str
    """"node-crash", "node-restored", "shard-down", "shard-restored",
    "link-degraded", "link-partitioned" or "link-restored"."""
    domain: str
    """Failure domain label, e.g. "node:2", "shard:0", "link:1"."""


#: Pairing of fault kinds to their heal kinds, for MTTR computation.
_HEAL_KIND = {
    "node-crash": "node-restored",
    "shard-down": "shard-restored",
    "link-degraded": "link-restored",
    "link-partitioned": "link-restored",
}


@dataclass(frozen=True)
class AvailabilitySample:
    """Cluster availability right after a fault event took effect."""

    time_ms: float
    nodes_up: int
    shards_up: int
    degraded_links: int


@dataclass
class RunMetrics:
    """Everything measured during one platform run."""

    platform_name: str
    requests: dict[int, RequestRecord] = field(default_factory=dict)
    dedup_ops: list[DedupOpRecord] = field(default_factory=list)
    restore_ops: list[RestoreOpRecord] = field(default_factory=list)
    base_ops: list[BaseOpRecord] = field(default_factory=list)
    memory_timeline: ColumnTimeline = field(
        default_factory=lambda: ColumnTimeline(MemorySample)
    )
    """Sampled cluster memory usage, array-backed (list-of-sample API)."""
    evictions: int = 0
    eviction_candidates_scanned: int = 0
    """Eviction candidates ranked across all placement decisions — the
    tripwire for quadratic scan thrash on permanently full clusters
    (bounded per decision by ``ClusterConfig.eviction_scan_cap``)."""
    prewarm_spawns: int = 0
    sandboxes_created: int = 0
    bases_created: int = 0
    tier_ops: list[TierOpRecord] = field(default_factory=list)
    """Charged demotions/promotions (empty unless checkpoint tiering)."""
    tier_timeline: ColumnTimeline = field(
        default_factory=lambda: ColumnTimeline(TierSample)
    )
    """Sampled non-DRAM tier occupancy (empty unless checkpoint tiering)."""
    checkpoint_demotions: int = 0
    checkpoint_promotions: int = 0
    table_demotions: int = 0
    """Dedup patch tables parked on SSD instead of purged ("dedup-cold")."""
    table_promotions: int = 0
    """Parked tables read back for a restore."""
    prefetch_recordings: int = 0
    """Restore working sets recorded (first restores of a key)."""
    prefetched_restores: int = 0
    """Restores whose base reads were issued as one recorded prefetch."""
    prefetch_hit_pages: int = 0
    prefetch_miss_pages: int = 0
    base_page_cache_hits: int = 0
    """Decoded-base-page LRU hits summed over every agent (dedup and
    restore ops re-read the same hot base pages constantly; this is the
    visibility counter for how often the fetch was served locally)."""
    base_page_cache_misses: int = 0
    anchor_index_cache_hits: int = 0
    """Prebuilt anchor-index LRU hits summed over every agent."""
    anchor_index_cache_misses: int = 0
    outstanding_requests: int = 0
    """Arrived-but-not-completed requests, maintained by
    :meth:`on_arrival`/:meth:`on_completion` so the platform's drain
    loop is an O(1) counter check instead of a scan of every record."""
    fault_events: list[FaultEventRecord] = field(default_factory=list)
    """Injected faults and heals, in firing order (empty without faults)."""
    availability_timeline: list[AvailabilitySample] = field(default_factory=list)
    """Availability after each fault event (empty without faults)."""
    rpc_retries: int = 0
    """Failed transient-RPC attempts that were retried (fault layer)."""
    retry_backoff_ms: float = 0.0
    """Total timeout + backoff latency charged to retried ops."""
    rpc_exhausted_ops: int = 0
    """Ops whose every retry attempt failed (fell down the ladder)."""
    restore_replica_fallbacks: int = 0
    """Dedup sandboxes re-homed onto byte-identical replica base pages
    after their original base died."""
    cross_domain_replica_skips: int = 0
    """Rehome candidates rejected by the controller's defensive dedup-
    domain check (DESIGN.md §15).  Always 0 when the partitioned replica
    index is healthy — a nonzero count means the structural isolation
    was bypassed and the second enforcement point caught it."""
    restore_cold_fallbacks: int = 0
    """Dispatches that fell through failed dedup candidates to a cold
    start."""
    dedup_deferrals: int = 0
    """Dedup ops skipped or abandoned because the registry was
    unavailable (warm-only degradation)."""
    requests_rescheduled: int = 0
    """In-flight requests whose node crashed and that were re-dispatched."""
    crash_purged_sandboxes: int = 0
    """Sandboxes lost to node crashes (crash purge, not eviction)."""
    crash_reconciled_refs: int = 0
    """Orphaned base refcounts released or re-homed during crash
    reconciliation."""
    shard_rebuilds: int = 0
    shard_rebuild_ms: float = 0.0
    """Charged time rebuilding lost registry shards from surviving
    agents' base checkpoints."""
    completion_timeline: ColumnTimeline = field(
        default_factory=lambda: ColumnTimeline(CompletionSample)
    )
    """Array-backed per-completion latencies, fed by :meth:`on_completion`
    (the vectorized reader behind :meth:`latency_percentile`)."""
    template_ops: list[TemplateOpRecord] = field(default_factory=list)
    """Templatize ops (empty unless template sharing is on)."""
    template_forks: list[TemplateForkRecord] = field(default_factory=list)
    """Template fork restores (empty unless template sharing is on)."""
    template_timeline: ColumnTimeline = field(
        default_factory=lambda: ColumnTimeline(TemplateSample)
    )
    """Sampled template catalog occupancy (empty unless template sharing)."""
    template_segments_created: int = 0
    """Distinct (content, size) template segments published to the pool."""
    template_segments_shared: int = 0
    """Segment reuses across templatize ops — each is a whole shared
    region that needed no publish because another function (or an earlier
    sandbox) already put it in the pool."""
    template_promotions: int = 0
    """Charged pool → node-DRAM segment promotions (first fork per node)."""
    template_promote_bytes: int = 0
    template_replica_evictions: int = 0
    """Node-DRAM template replicas dropped under placement pressure (the
    pool copy survives, so this never loses content)."""
    template_fork_fallbacks: int = 0
    """Dispatches where a template fork failed (transient faults) and the
    request fell through to the dedup/cold rungs."""
    template_pool_rejections: int = 0
    """Templatize attempts refused because the remote-DRAM pool was full
    (the sandbox fell back to the dedup path)."""
    template_evict_parks: int = 0
    """Warm eviction victims parked as template deltas instead of purged
    (park-before-purge): their next start is a fork, not a cold start."""
    template_delta_spills: int = 0
    """Parked deltas demoted to node-local SSD ("template-cold")
    instead of purged: node DRAM frees fully, the sandbox stays
    fork-restorable at the charged SSD-read cost.  Node-local, like
    §9's dedup-cold tables — only shared template *segments* get
    remote-DRAM durability; a spilled delta dies with its node."""
    template_delta_spill_bytes: int = 0
    """SSD bytes written by those spills (node-local, never crosses the
    fabric)."""
    template_delta_unspill_bytes: int = 0
    """SSD bytes read back by forks of spilled sandboxes (the charged
    leg on the start path)."""

    # -------------------------------------------------------------- record

    def on_arrival(self, request_id: int, function: str, now: float) -> RequestRecord:
        record = RequestRecord(request_id=request_id, function=function, arrival_ms=now)
        self.requests[request_id] = record
        self.outstanding_requests += 1
        return record

    def on_completion(self, record: RequestRecord, now: float) -> None:
        """Mark ``record`` complete and retire it from the outstanding count."""
        if record.completion_ms is not None:
            raise RuntimeError(f"request {record.request_id} completed twice")
        record.completion_ms = now
        self.outstanding_requests -= 1
        self.completion_timeline.append_row(
            now,
            START_CODES[record.start_type],
            record.queued_ms,
            record.startup_ms,
            now - record.arrival_ms,
        )

    def completed_records(self) -> list[RequestRecord]:
        return [r for r in self.requests.values() if r.completion_ms is not None]

    # ------------------------------------------------------------- derive

    def start_counts(self, function: str | None = None) -> Counter[StartType]:
        counts: Counter[StartType] = Counter()
        for record in self.completed_records():
            if record.start_type is None:
                # Completed without ever dispatching (e.g. displaced by a
                # node crash and re-queued): there is no start to count,
                # and a None key would poison every ``Counter[StartType]``
                # consumer downstream (report sorting crashes on it).
                continue
            if function is None or record.function == function:
                counts[record.start_type] += 1
        return counts

    def cold_starts(self, function: str | None = None) -> int:
        return self.start_counts(function)[StartType.COLD]

    def cold_starts_by_function(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for record in self.completed_records():
            if record.start_type is StartType.COLD:
                counts[record.function] += 1
        return dict(counts)

    def e2e_percentile(self, pct: float, function: str | None = None) -> float:
        values = [
            r.e2e_ms
            for r in self.completed_records()
            if function is None or r.function == function
        ]
        return percentile(values, pct)

    def startup_percentile(self, pct: float, function: str | None = None) -> float:
        values = [
            r.startup_ms
            for r in self.completed_records()
            if function is None or r.function == function
        ]
        return percentile(values, pct)

    def latency_percentile(
        self,
        pct: float,
        *,
        start_type: StartType | None = None,
        metric: str = "e2e",
    ) -> float:
        """Latency percentile over completed requests, vectorized.

        Reads the array-backed completion timeline instead of scanning
        request records; ``start_type`` restricts to one rung of the
        start ladder (``None`` keeps every completed request, matching
        :meth:`e2e_percentile`).  ``metric`` selects ``"e2e"``,
        ``"startup"`` or ``"queued"``.  Returns ``nan`` when no request
        of that start type completed.
        """
        if metric not in ("e2e", "startup", "queued"):
            raise ValueError(f"unknown latency metric {metric!r}")
        values = self.completion_timeline.column(f"{metric}_ms")
        if start_type is not None:
            codes = self.completion_timeline.column("start_code")
            values = values[codes == START_CODES[start_type]]
        return percentile(values, pct)

    def mean_memory_bytes(self) -> float:
        timeline = self.memory_timeline
        if not timeline:
            return 0.0
        # Exact int64 sum, matching the former Python big-int sum/len.
        return int(timeline.column("used_bytes").sum()) / len(timeline)

    def median_memory_bytes(self) -> float:
        return percentile(self.memory_timeline.column("used_bytes"), 50)

    def memory_percentile(self, pct: float) -> float:
        """Percentile of sampled cluster memory usage (vectorized)."""
        return percentile(self.memory_timeline.column("used_bytes"), pct)

    def mean_sandbox_count(self) -> float:
        timeline = self.memory_timeline
        if not timeline:
            return 0.0
        return int(timeline.column("total_sandboxes").sum()) / len(timeline)

    def dedup_share(self) -> float:
        """Fraction of created sandboxes that were ever deduplicated."""
        if self.sandboxes_created == 0:
            return 0.0
        deduped = len({op.sandbox_id for op in self.dedup_ops})
        return deduped / self.sandboxes_created

    def mttr_ms(self) -> float:
        """Mean time-to-recovery over healed fault events (0.0 if none).

        Pairs each fault with its heal per failure domain; faults never
        healed within the run are excluded.  For shard outages the heal
        event fires only after the charged rebuild, so MTTR includes
        rebuild time.  When several unhealed faults on one domain map to
        the same heal kind (e.g. ``link-degraded`` then
        ``link-partitioned``, both healed by ``link-restored``), recovery
        is measured from the *earliest* open fault — a later fault on an
        already-faulty domain must not shrink the outage.
        """
        open_faults: dict[tuple[str, str], float] = {}
        durations: list[float] = []
        for event in self.fault_events:
            heal_kind = _HEAL_KIND.get(event.kind)
            if heal_kind is not None:
                open_faults.setdefault((heal_kind, event.domain), event.time_ms)
            else:
                started = open_faults.pop((event.kind, event.domain), None)
                if started is not None:
                    durations.append(event.time_ms - started)
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    def functions(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for record in self.requests.values():
            seen.setdefault(record.function, None)
        return tuple(seen)


def improvement_factors(
    baseline: RunMetrics,
    improved: RunMetrics,
    function: str | None = None,
) -> list[float]:
    """Per-request e2e ratios baseline/improved (Figure 7a's CDF).

    Requests are paired by id — both runs must have replayed the same
    trace.  A factor above 1 means ``improved`` was faster.
    """
    factors: list[float] = []
    for request_id, base_record in baseline.requests.items():
        other = improved.requests.get(request_id)
        if other is None or base_record.completion_ms is None or other.completion_ms is None:
            continue
        if function is not None and base_record.function != function:
            continue
        if other.e2e_ms <= 0:
            continue
        factors.append(base_record.e2e_ms / other.e2e_ms)
    return factors
