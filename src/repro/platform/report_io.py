"""Structured export of run reports and comparisons.

``report_to_dict`` / ``comparison_to_dict`` flatten the metrics into
JSON-serializable dictionaries so runs can be archived, diffed, or fed
to external dashboards; ``save_report`` writes them to disk.
"""

from __future__ import annotations

import json
import pathlib

from repro._util import MIB
from repro.platform.comparison import Comparison
from repro.platform.metrics import RunMetrics, StartType
from repro.platform.platform import RunReport


def metrics_to_dict(metrics: RunMetrics, *, include_requests: bool = False) -> dict:
    """Flatten a :class:`RunMetrics` into plain data."""
    counts = metrics.start_counts()
    result: dict = {
        "platform": metrics.platform_name,
        "requests_completed": len(metrics.completed_records()),
        "starts": {start.value: counts.get(start, 0) for start in StartType},
        "cold_starts_by_function": metrics.cold_starts_by_function(),
        "e2e_ms": {
            "p50": metrics.e2e_percentile(50),
            "p99": metrics.e2e_percentile(99),
            "p99.9": metrics.e2e_percentile(99.9),
        },
        "memory": {
            "mean_mb": metrics.mean_memory_bytes() / MIB,
            "median_mb": metrics.median_memory_bytes() / MIB,
            "mean_sandboxes": metrics.mean_sandbox_count(),
        },
        "dedup": {
            "ops": len(metrics.dedup_ops),
            "restores": len(metrics.restore_ops),
            "dedup_share": metrics.dedup_share(),
            "bases_created": metrics.bases_created,
        },
        "evictions": metrics.evictions,
        "prewarm_spawns": metrics.prewarm_spawns,
        "sandboxes_created": metrics.sandboxes_created,
    }
    if include_requests:
        result["requests"] = [
            {
                "id": record.request_id,
                "function": record.function,
                "arrival_ms": record.arrival_ms,
                "start_type": record.start_type.value if record.start_type else None,
                "queued_ms": record.queued_ms,
                "startup_ms": record.startup_ms,
                "exec_ms": record.exec_ms,
                "e2e_ms": record.e2e_ms if record.completion_ms is not None else None,
            }
            for record in metrics.requests.values()
        ]
    return result


def report_to_dict(report: RunReport, *, include_requests: bool = False) -> dict:
    """Flatten a :class:`RunReport` (config digest + metrics)."""
    config = report.config
    return {
        "platform": report.platform_name,
        "duration_ms": report.duration_ms,
        "config": {
            "nodes": config.nodes,
            "node_memory_mb": config.node_memory_mb,
            "content_scale": config.content_scale,
            "aslr": config.aslr,
            "seed": config.seed,
            "registry_shards": config.registry_shards,
            "cold_start_mode": config.cold_start_mode.value,
        },
        "metrics": metrics_to_dict(report.metrics, include_requests=include_requests),
    }


def comparison_to_dict(comparison: Comparison) -> dict:
    """Flatten a multi-platform comparison with paired improvements."""
    result: dict = {
        "functions": list(comparison.trace.functions()),
        "requests": len(comparison.trace),
        "platforms": {
            name: report_to_dict(report) for name, report in comparison.reports.items()
        },
    }
    medes = comparison.medes_name()
    improvements = {}
    for name in comparison.names:
        if name == medes:
            continue
        factors = sorted(comparison.improvement_over(name))
        if factors:
            improvements[name] = {
                "p50": factors[len(factors) // 2],
                "p99": factors[min(len(factors) - 1, int(len(factors) * 0.99))],
                "max": factors[-1],
            }
    result["medes_improvement_over"] = improvements
    return result


def save_report(
    report: RunReport,
    path: str | pathlib.Path,
    *,
    include_requests: bool = False,
) -> pathlib.Path:
    """Write a report to ``path`` as JSON; returns the path."""
    target = pathlib.Path(path)
    target.write_text(
        json.dumps(report_to_dict(report, include_requests=include_requests), indent=2)
        + "\n"
    )
    return target
