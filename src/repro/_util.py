"""Shared low-level helpers: stable seeding, deterministic RNGs, units.

Every stochastic choice in the reproduction flows through
:func:`stable_seed` so that a given configuration replays byte-identically
across runs and platforms (Python's built-in ``hash`` is salted per
process and is never used for seeding).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Generic, Hashable, Iterable, TypeVar

import numpy as np

#: Bytes per simulated OS page.  4 KiB matches x86-64 and the paper.
PAGE_SIZE = 4096

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def stable_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from arbitrary hashable parts.

    The derivation uses SHA-256 over the ``repr`` of each part, so it is
    independent of interpreter hash randomization and stable across runs.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest()[:8], "little")


def rng_for(*parts: object) -> np.random.Generator:
    """Return a numpy Generator deterministically seeded from ``parts``."""
    return np.random.Generator(np.random.PCG64(stable_seed(*parts)))


def hash_bytes(data: bytes, bits: int = 64) -> int:
    """SHA-1 digest of ``data`` truncated to ``bits`` bits.

    The paper uses SHA-1 for chunk hashes; ``bits`` lets experiments model
    smaller fingerprint tables (and hence hash collisions, Section 7.8).
    """
    if not 1 <= bits <= 160:
        raise ValueError(f"bits must be in [1, 160], got {bits}")
    full = int.from_bytes(hashlib.sha1(data).digest(), "little")
    return full & ((1 << bits) - 1)


def hash_bytes_many(chunks: Iterable[bytes], bits: int = 64) -> np.ndarray:
    """Batched :func:`hash_bytes`: one truncated SHA-1 digest per chunk.

    Returns a uint64 array whose elements equal
    ``[hash_bytes(c, bits) for c in chunks]`` for any ``bits <= 64``:
    truncating the little-endian 160-bit digest integer to ``bits`` bits
    only ever consumes the first 8 digest bytes, so each digest is read
    as a single ``<u8`` word and masked vectorised.  Hot-path helper for
    the fingerprint scan, which hashes every sampled chunk of an image
    in one call instead of a Python-level loop of big-int conversions.
    ``bits > 64`` does not fit the array dtype; callers needing the full
    digest width fall back to :func:`hash_bytes`.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    sha1 = hashlib.sha1
    words = np.frombuffer(
        b"".join(sha1(chunk).digest()[:8] for chunk in chunks), dtype="<u8"
    )
    if bits == 64:
        return words.copy()
    return words & np.uint64((1 << bits) - 1)


def gather_chunks(data: np.ndarray, starts: np.ndarray, chunk_size: int) -> np.ndarray:
    """Gather ``chunk_size``-byte chunks of ``data`` at ``starts``.

    One numpy gather builds the ``(len(starts), chunk_size)`` uint8
    matrix that the batched chunk-hash kernels consume — replacing a
    Python-level loop of ``data[s : s + chunk_size]`` slice objects on
    the fingerprint hot path.  The gather fancy-indexes a zero-copy
    sliding-window *view* along its first axis only, which avoids
    materializing the ``(chunks, chunk_size)`` int64 index matrix a
    broadcast ``starts[:, None] + arange`` gather would build (8x the
    output's size in indices alone).  ``starts`` must satisfy
    ``0 <= s <= len(data) - chunk_size`` (unchecked beyond numpy's own
    bounds errors).
    """
    if data.dtype != np.uint8:
        raise ValueError("expected uint8 data")
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size == 0:
        return np.empty((0, chunk_size), dtype=np.uint8)
    windows = np.lib.stride_tricks.sliding_window_view(np.ascontiguousarray(data), chunk_size)
    return np.ascontiguousarray(windows[starts])


def hash_rows_sha1(matrix: np.ndarray, bits: int = 64) -> np.ndarray:
    """Truncated SHA-1 digest of every row of a uint8 chunk matrix.

    Row ``i``'s value equals ``hash_bytes(matrix[i].tobytes(), bits)``
    for any ``bits <= 64``.  The rows are hashed straight from the
    C-contiguous matrix (hashlib accepts the row views' buffers), so no
    per-chunk ``bytes`` object is ever materialized — pair with
    :func:`gather_chunks` for the slice-free fingerprint hash path.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    matrix = np.ascontiguousarray(matrix)
    sha1 = hashlib.sha1
    words = np.frombuffer(
        b"".join(sha1(row).digest()[:8] for row in matrix), dtype="<u8"
    )
    if bits == 64:
        return words.copy()
    return words & np.uint64((1 << bits) - 1)


#: Odd multiplier of the vectorised polynomial chunk hash (the golden-
#: ratio constant of splitmix64 — odd, so multiplication is a bijection
#: on Z/2^64).
_POLY_R = np.uint64(0x9E3779B97F4A7C15)


def _fmix64(h: np.ndarray) -> np.ndarray:
    """Murmur3's 64-bit finalizer, vectorised (avalanches every bit)."""
    h = h ^ (h >> np.uint64(33))
    h = h * np.uint64(0xFF51AFD7ED558CCD)
    h = h ^ (h >> np.uint64(33))
    h = h * np.uint64(0xC4CEB9FE1A85EC53)
    return h ^ (h >> np.uint64(33))


def poly_hash_bytes(data: bytes, bits: int = 64) -> int:
    """Scalar reference of :func:`poly_hash_rows` for one chunk.

    Pure-Python big-int evaluation (Horner + the same finalizer), kept
    deliberately independent of the vectorised kernel so equivalence
    properties test two implementations, not one against itself.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    mask64 = (1 << 64) - 1
    r = int(_POLY_R)
    h = 0
    for byte in data:
        h = (h * r + byte) & mask64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & mask64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & mask64
    h ^= h >> 33
    return h & ((1 << bits) - 1)


def poly_hash_rows(matrix: np.ndarray, bits: int = 64) -> np.ndarray:
    """Fully vectorised polynomial digest of every row of a chunk matrix.

    Each row's bytes are evaluated as a polynomial in ``_POLY_R`` over
    Z/2^64 — one integer matmul for the whole matrix, no per-chunk
    Python work at all — then passed through a murmur-style finalizer so
    truncation to small ``bits`` keeps well-mixed bits.  This is the
    non-cryptographic ``hash_kind`` of the fingerprint scan: unlike the
    SHA-1 path it is trivially invertible (content-designable
    collisions), so it is an opt-in throughput/collision trade-off, not
    a default.  Deterministic across platforms and runs.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a (chunks, chunk_size) matrix")
    if matrix.shape[0] == 0:
        return np.empty(0, dtype=np.uint64)
    chunk_size = matrix.shape[1]
    # powers[j] = R ** (chunk_size - 1 - j) mod 2**64, so earlier bytes
    # get higher powers (a conventional polynomial evaluation).
    powers = np.empty(chunk_size, dtype=np.uint64)
    acc = 1  # Python ints: no numpy scalar-overflow warnings
    r = int(_POLY_R)
    for j in range(chunk_size - 1, -1, -1):
        powers[j] = acc
        acc = (acc * r) & ((1 << 64) - 1)
    mixed = _fmix64(matrix.astype(np.uint64) @ powers)
    if bits == 64:
        return mixed
    return mixed & np.uint64((1 << bits) - 1)


_K = TypeVar("_K", bound=Hashable)
_V = TypeVar("_V")


class LruCache(Generic[_K, _V]):
    """A small bounded mapping with least-recently-used eviction.

    Used by the dedup agent to keep decoded base pages hot across ops on
    a node (the same base pages are re-read constantly).  ``get`` marks
    an entry most-recently-used; inserting past ``capacity`` evicts the
    oldest entry.  Hit/miss counters support overhead reporting.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[_K, _V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: _K) -> _V | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: _K, value: _V) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: _K) -> bool:
        return key in self._entries


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    return ((value + multiple - 1) // multiple) * multiple


def percentile(values: Iterable[float], pct: float) -> float:
    """Percentile (0..100) of ``values`` using linear interpolation.

    Accepts numpy arrays without copying (the array-backed timelines
    pass column views directly).  Returns ``nan`` for an empty input
    rather than raising, which keeps report rendering robust for
    functions that received no requests.
    """
    if isinstance(values, np.ndarray):
        arr = values.astype(np.float64, copy=False)
    else:
        arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, pct))


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (e.g. ``'12.3MB'``)."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_ms(ms: float) -> str:
    """Human-readable duration from milliseconds."""
    if ms < 1.0:
        return f"{ms * 1000:.0f}us"
    if ms < 1000.0:
        return f"{ms:.1f}ms"
    return f"{ms / 1000:.2f}s"
