"""Experiment drivers for every table and figure of the evaluation.

Each ``run_*`` function reproduces one experiment of Section 7 at
benchmark-friendly scale and returns a result object whose ``render()``
prints the same rows/series the paper reports.  The benchmark harness
under ``benchmarks/`` calls these drivers; EXPERIMENTS.md records the
measured values against the paper's.

Scale note: the paper replays 1-hour Azure traces (5x rate) on a 19-node
cluster.  These drivers default to 15-30 minute synthetic traces on a
2-4 node cluster with the same 2 GB/node software memory limit, which
preserves the oversubscription regime the evaluation depends on while
keeping each experiment at seconds-to-minutes of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro._util import MIB, percentile
from repro.analysis import tables
from repro.analysis.study import per_function_microbench
from repro.core.optimizer import Objective
from repro.core.policy import MedesPolicyConfig
from repro.memory.fingerprint import FingerprintConfig
from repro.platform.comparison import Comparison, run_comparison
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import REPRESENTATIVE_SUBSET, FunctionBenchSuite
from repro.workload.trace import Trace

#: Default workload scale for the full 10-function experiments.
FULL_DURATION_MIN = 20.0
FULL_SEED = 11
#: Default cluster for the full workload: oversubscribed like the paper's
#: 2 GB/node limit (Section 7.2).
FULL_NODES = 2
FULL_NODE_MB = 1024.0

#: Representative 3-function workload (Sections 7.5-7.8).
REP_DURATION_MIN = 15.0
REP_SEED = 13
REP_NODES = 2
REP_NODE_MB = 1152.0


def full_workload(
    duration_min: float = FULL_DURATION_MIN,
    seed: int = FULL_SEED,
    copies: int = 2,
) -> tuple[FunctionBenchSuite, Trace]:
    """The 10-environment Azure-style workload of Sections 7.2-7.4.

    As in the paper, several distinct functions (arrival patterns) share
    each FunctionBench environment.
    """
    suite = FunctionBenchSuite.replicated(FunctionBenchSuite.default().names(), copies)
    trace = AzureTraceGenerator(seed=seed).generate(duration_min, suite.names())
    return suite, trace


def representative_workload(
    duration_min: float = REP_DURATION_MIN,
    seed: int = REP_SEED,
    copies: int = 6,
) -> tuple[FunctionBenchSuite, Trace]:
    """The {LinAlg, FeatureGen, ModelTrain} workload of Section 7.5+."""
    suite = FunctionBenchSuite.replicated(REPRESENTATIVE_SUBSET, copies)
    trace = AzureTraceGenerator(seed=seed).generate(duration_min, suite.names())
    return suite, trace


def full_config(**overrides) -> ClusterConfig:
    base = ClusterConfig(nodes=FULL_NODES, node_memory_mb=FULL_NODE_MB, seed=1)
    return replace(base, **overrides) if overrides else base


def representative_config(**overrides) -> ClusterConfig:
    base = ClusterConfig(nodes=REP_NODES, node_memory_mb=REP_NODE_MB, seed=1)
    return replace(base, **overrides) if overrides else base


# --------------------------------------------------------------- Figure 7


@dataclass
class Fig7Result:
    """Figure 7 + Section 7.2.1: latency improvements and their sources."""

    comparison: Comparison
    improvement_vs_fixed: list[float]
    improvement_vs_adaptive: list[float]

    def render(self) -> str:
        comp = self.comparison
        out = [
            tables.render_cdf(
                self.improvement_vs_fixed,
                title="Fig 7a (left): e2e improvement factor vs Fixed Keep-Alive",
            ),
            tables.render_cdf(
                self.improvement_vs_adaptive,
                title="Fig 7a (right): e2e improvement factor vs Adaptive Keep-Alive",
            ),
        ]
        functions = comp.trace.functions()
        cold_rows = [
            [name] + [by_fn[fn] for fn in functions]
            for name, by_fn in comp.cold_start_table()
        ]
        out.append(
            tables.render_table(
                ["platform"] + list(functions),
                cold_rows,
                title="Fig 7b (top): cold starts per function",
            )
        )
        tail_rows = [
            [name] + [f"{by_fn[fn]:.0f}" for fn in functions]
            for name, by_fn in comp.tail_latency_table()
        ]
        out.append(
            tables.render_table(
                ["platform"] + list(functions),
                tail_rows,
                title="Fig 7b (bottom): 99.9p end-to-end latency (ms)",
            )
        )
        medes = comp.metrics(comp.medes_name())
        out.append(
            "Sources of improvement (Sec 7.2.1): "
            f"dedup share of sandboxes = {medes.dedup_share() * 100:.1f}%, "
            f"extra sandboxes vs fixed = {comp.extra_sandboxes_vs('fixed-ka-10min'):+.1f}%, "
            f"extra vs adaptive = {comp.extra_sandboxes_vs('adaptive-ka'):+.1f}%"
        )
        return "\n\n".join(out)


def run_fig7(
    *,
    duration_min: float = FULL_DURATION_MIN,
    seed: int = FULL_SEED,
    config: ClusterConfig | None = None,
    medes: MedesPolicyConfig | None = None,
) -> Fig7Result:
    """Figure 7: function startup improvements under the P1 policy."""
    suite, trace = full_workload(duration_min, seed)
    comparison = run_comparison(
        trace,
        suite,
        config or full_config(),
        medes=medes or MedesPolicyConfig(objective=Objective.LATENCY, alpha=2.5),
    )
    return Fig7Result(
        comparison=comparison,
        improvement_vs_fixed=comparison.improvement_over("fixed-ka-10min"),
        improvement_vs_adaptive=comparison.improvement_over("adaptive-ka"),
    )


# --------------------------------------------------------------- Figure 8


@dataclass
class Fig8Result:
    """Figure 8: dedup-start breakdown vs cold start per function."""

    rows: list[tuple[str, float, float, float, float, float]]
    """(function, cold_ms, base_read_ms, compute_ms, restore_ms, dedup_total_ms)."""

    def render(self) -> str:
        return tables.render_table(
            ["function", "cold (ms)", "base read", "page compute", "sandbox restore", "dedup start total"],
            [
                (fn, f"{cold:.0f}", f"{read:.1f}", f"{compute:.1f}", f"{fixed:.1f}", f"{read + compute + fixed:.1f}")
                for fn, cold, read, compute, fixed, _ in self.rows
            ],
            title="Fig 8: dedup start breakdown vs cold start",
        )


def run_fig8(*, content_scale: float = 1.0 / 64.0, seed: int = 3) -> Fig8Result:
    """Figure 8 via the per-function dedup/restore microbenchmark."""
    suite = FunctionBenchSuite.default()
    micro = per_function_microbench(suite, content_scale=content_scale, seed=seed)
    rows = []
    for profile in suite:
        result = micro[profile.name]
        rows.append(
            (
                profile.name,
                profile.cold_start_ms,
                result.restore_base_read_ms,
                result.restore_compute_ms,
                result.restore_fixed_ms,
                result.dedup_total_ms,
            )
        )
    return Fig8Result(rows=rows)


# --------------------------------------------------------------- Figure 9


@dataclass
class Fig9Result:
    """Figure 9: memory usage under the P2 (memory) objective."""

    comparison: Comparison
    same_function_share: float
    cross_function_share: float

    def render(self) -> str:
        rows = [
            (name, f"{mean:.0f}", f"{median:.0f}")
            for name, mean, median in self.comparison.memory_table()
        ]
        out = [
            tables.render_table(
                ["platform", "mean MB", "median MB"],
                rows,
                title="Fig 9a: cluster memory usage",
            )
        ]
        functions = self.comparison.trace.functions()
        cold_rows = [
            [name] + [by_fn[fn] for fn in functions]
            for name, by_fn in self.comparison.cold_start_table()
        ]
        out.append(
            tables.render_table(
                ["platform"] + list(functions),
                cold_rows,
                title="Fig 9b: cold starts per function",
            )
        )
        out.append(
            "Cross-function duplication (Sec 7.3.1): "
            f"{self.same_function_share * 100:.1f}% of deduped pages matched the same "
            f"function, {self.cross_function_share * 100:.1f}% a different function"
        )
        return "\n\n".join(out)


def run_fig9(
    *,
    duration_min: float = FULL_DURATION_MIN,
    seed: int = FULL_SEED,
    config: ClusterConfig | None = None,
    alpha: float = 2.5,
) -> Fig9Result:
    """Figure 9: the P2 policy with a per-cluster memory budget."""
    config = config or full_config()
    suite, trace = full_workload(duration_min, seed)
    medes = MedesPolicyConfig(
        objective=Objective.MEMORY,
        alpha=alpha,
        memory_budget_bytes=int(config.cluster_capacity_bytes * 0.8),
    )
    comparison = run_comparison(trace, suite, config, medes=medes)
    metrics = comparison.metrics(comparison.medes_name())
    same = sum(op.same_function_pages for op in metrics.dedup_ops)
    cross = sum(op.cross_function_pages for op in metrics.dedup_ops)
    total = max(1, same + cross)
    return Fig9Result(
        comparison=comparison,
        same_function_share=same / total,
        cross_function_share=cross / total,
    )


# ---------------------------------------------------------- Figures 10-11


@dataclass
class PressureResult:
    """Figures 10-11: behaviour across shrinking memory pools."""

    pool_labels: list[str]
    comparisons: dict[str, Comparison]

    def render(self) -> str:
        out = []
        rows = []
        for label in self.pool_labels:
            comp = self.comparisons[label]
            rows.append(
                [label] + [f"{comp.metrics(name).cold_starts()}" for name in comp.names]
            )
        names = self.comparisons[self.pool_labels[0]].names
        out.append(
            tables.render_table(
                ["pool"] + list(names),
                rows,
                title="Fig 10a: total cold starts vs cluster pool size",
            )
        )
        for label in self.pool_labels[1:]:
            comp = self.comparisons[label]
            functions = comp.trace.functions()
            cold_rows = []
            tail_rows = []
            for name in comp.names:
                by_fn = comp.metrics(name).cold_starts_by_function()
                cold_rows.append([name] + [by_fn.get(fn, 0) for fn in functions])
                tail_rows.append(
                    [name]
                    + [f"{comp.metrics(name).e2e_percentile(99.9, fn):.0f}" for fn in functions]
                )
            out.append(
                tables.render_table(
                    ["platform"] + list(functions),
                    cold_rows,
                    title=f"Fig 10b: cold starts per function under {label}",
                )
            )
            out.append(
                tables.render_table(
                    ["platform"] + list(functions),
                    tail_rows,
                    title=f"Fig 11: 99.9p e2e latency (ms) under {label}",
                )
            )
        return "\n\n".join(out)


def run_pressure(
    *,
    duration_min: float = FULL_DURATION_MIN,
    seed: int = FULL_SEED,
    pool_mb: tuple[float, ...] = (3072.0, 2304.0, 1792.0),
    nodes: int = FULL_NODES,
) -> PressureResult:
    """Figures 10-11: sweep the cluster pool size (the paper's 40/30/20G).

    The default ladder matches the paper's *relative* pressure: the
    largest pool roughly covers the fixed-keep-alive demand and the
    smaller pools undercut it, where dedup's smaller footprints matter
    most.
    """
    suite, trace = full_workload(duration_min, seed)
    labels = []
    comparisons = {}
    for pool in pool_mb:
        label = f"{pool:.0f}MB"
        config = ClusterConfig(nodes=nodes, node_memory_mb=pool / nodes, seed=1)
        comparisons[label] = run_comparison(trace, suite, config)
        labels.append(label)
    return PressureResult(pool_labels=labels, comparisons=comparisons)


# --------------------------------------------------------------- Figure 12


@dataclass
class Fig12Result:
    """Figure 12: keep-alive period sweep vs Medes."""

    cold_starts: dict[str, int]

    def render(self) -> str:
        return tables.render_table(
            ["policy", "cold starts"],
            [(name, count) for name, count in self.cold_starts.items()],
            title="Fig 12: keep-alive sweep vs Medes (representative workload)",
        )


def run_fig12(
    *,
    duration_min: float = REP_DURATION_MIN,
    seed: int = REP_SEED,
    keep_alive_minutes: tuple[float, ...] = (5, 10, 15, 20),
    config: ClusterConfig | None = None,
) -> Fig12Result:
    """Figure 12: can a tuned fixed keep-alive match Medes?"""
    suite, trace = representative_workload(duration_min, seed)
    config = config or representative_config()
    cold_starts: dict[str, int] = {}
    for minutes in keep_alive_minutes:
        platform = build_platform(
            PlatformKind.FIXED_KEEP_ALIVE,
            config,
            suite,
            fixed_keep_alive_ms=minutes * 60_000.0,
        )
        report = platform.run(trace)
        cold_starts[f"KA-{minutes:g}"] = report.metrics.cold_starts()
    medes = build_platform(PlatformKind.MEDES, config, suite)
    cold_starts["Medes"] = medes.run(trace).metrics.cold_starts()
    return Fig12Result(cold_starts=cold_starts)


# --------------------------------------------------------------- Figure 13


@dataclass
class Fig13Result:
    """Figure 13: emulated Catalyzer with and without Medes."""

    cold_starts: dict[str, int]

    def render(self) -> str:
        return tables.render_table(
            ["system", "cold starts"],
            list(self.cold_starts.items()),
            title="Fig 13: integrating Medes with optimized checkpoint-restore",
        )


def run_fig13(
    *,
    duration_min: float = REP_DURATION_MIN,
    seed: int = REP_SEED,
    config: ClusterConfig | None = None,
) -> Fig13Result:
    """Figure 13: Catalyzer-style cold starts, with and without Medes."""
    suite, trace = representative_workload(duration_min, seed)
    config = config or representative_config()
    emulated = build_platform(
        PlatformKind.FIXED_KEEP_ALIVE, config, suite, catalyzer=True
    ).run(trace)
    combined = build_platform(PlatformKind.MEDES, config, suite, catalyzer=True).run(trace)
    return Fig13Result(
        cold_starts={
            "Emulated Catalyzer": emulated.metrics.cold_starts(),
            "Emulated Catalyzer + Medes": combined.metrics.cold_starts(),
        }
    )


# ----------------------------------------------------- Sensitivity (7.8)


@dataclass
class SweepResult:
    """A one-parameter sensitivity sweep (Figures 14-16)."""

    title: str
    parameter: str
    cold_starts: dict[str, int]
    extras: dict[str, str] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    """Per-setting auxiliary metric (e.g. mean savings fraction)."""

    def render(self) -> str:
        rows = [
            [label, count, self.extras.get(label, "")]
            for label, count in self.cold_starts.items()
        ]
        return tables.render_table(
            [self.parameter, "cold starts", "notes"], rows, title=self.title
        )


def run_fig14(
    *,
    duration_min: float = REP_DURATION_MIN,
    seed: int = REP_SEED,
    chunk_sizes: tuple[int, ...] = (32, 64, 128),
    config: ClusterConfig | None = None,
) -> SweepResult:
    """Figure 14: RSC chunk-size sensitivity.

    Smaller chunks collide in the fingerprint table (modelled by digest
    truncation), larger chunks identify less redundancy; both inflate
    retained footprints and hence cold starts.
    """
    suite, trace = representative_workload(duration_min, seed)
    base_config = config or representative_config()
    digest_bits = {32: 14, 64: 64, 128: 64}
    cold, extras, metrics = {}, {}, {}
    for chunk in chunk_sizes:
        fingerprint = FingerprintConfig(chunk_size=chunk, digest_bits=digest_bits[chunk])
        cfg = replace(base_config, fingerprint=fingerprint)
        report = build_platform(PlatformKind.MEDES, cfg, suite).run(trace)
        cold[f"{chunk}B"] = report.metrics.cold_starts()
        if report.metrics.dedup_ops:
            mean_saving = float(
                np.mean([op.savings_fraction for op in report.metrics.dedup_ops])
            )
            extras[f"{chunk}B"] = f"mean savings {mean_saving * 100:.0f}%"
            metrics[f"{chunk}B"] = mean_saving
    return SweepResult(
        title="Fig 14: sensitivity to the RSC chunk size",
        parameter="chunk size",
        cold_starts=cold,
        extras=extras,
        metrics=metrics,
    )


def run_fig15(
    *,
    duration_min: float = REP_DURATION_MIN,
    seed: int = REP_SEED,
    keep_dedup_minutes: tuple[float, ...] = (5, 10, 15, 20),
    config: ClusterConfig | None = None,
) -> SweepResult:
    """Figure 15: keep-dedup period sweep (plus a no-dedup reference)."""
    suite, trace = representative_workload(duration_min, seed)
    base_config = config or representative_config()
    cold: dict[str, int] = {}
    no_dedup = build_platform(
        PlatformKind.FIXED_KEEP_ALIVE, base_config, suite
    ).run(trace)
    cold["No Dedup"] = no_dedup.metrics.cold_starts()
    for minutes in keep_dedup_minutes:
        medes = MedesPolicyConfig(keep_dedup_ms=minutes * 60_000.0)
        report = build_platform(
            PlatformKind.MEDES, base_config, suite, medes=medes
        ).run(trace)
        cold[f"Keep-Dedup {minutes:g} min"] = report.metrics.cold_starts()
    return SweepResult(
        title="Fig 15: sensitivity to the keep-dedup period",
        parameter="keep-dedup",
        cold_starts=cold,
    )


@dataclass
class Fig16Result:
    """Figure 16: fingerprint set cardinality sensitivity."""

    cold_starts: dict[str, int]
    slowdowns: dict[str, list[float]]
    restore_ms: dict[str, float]
    savings_mb: dict[str, float]

    def render(self) -> str:
        rows = [
            [
                label,
                self.cold_starts[label],
                f"{self.restore_ms[label]:.0f}",
                f"{self.savings_mb[label]:.1f}",
                f"p99={percentile(self.slowdowns[label], 99):.2f}",
            ]
            for label in self.cold_starts
        ]
        return tables.render_table(
            ["cardinality", "cold starts", "mean restore ms", "mean saved MB/sandbox", "slowdown"],
            rows,
            title="Fig 16: sensitivity to the fingerprint set cardinality",
        )


def run_fig16(
    *,
    duration_min: float = REP_DURATION_MIN,
    seed: int = REP_SEED,
    cardinalities: tuple[int, ...] = (5, 10, 20),
    config: ClusterConfig | None = None,
) -> Fig16Result:
    """Figure 16: higher cardinality saves more memory, restores slower."""
    suite, trace = representative_workload(duration_min, seed)
    base_config = config or representative_config()
    cold, slowdowns, restores, savings = {}, {}, {}, {}
    for cardinality in cardinalities:
        fingerprint = FingerprintConfig(cardinality=cardinality)
        cfg = replace(base_config, fingerprint=fingerprint)
        report = build_platform(PlatformKind.MEDES, cfg, suite).run(trace)
        label = str(cardinality)
        metrics = report.metrics
        cold[label] = metrics.cold_starts()
        slowdowns[label] = [r.slowdown for r in metrics.completed_records()]
        restores[label] = (
            float(np.mean([r.total_ms for r in metrics.restore_ops]))
            if metrics.restore_ops
            else 0.0
        )
        if metrics.dedup_ops:
            saved = [
                op.savings_fraction * suite.get(op.function).memory_mb
                for op in metrics.dedup_ops
            ]
            savings[label] = float(np.mean(saved))
        else:
            savings[label] = 0.0
    return Fig16Result(
        cold_starts=cold, slowdowns=slowdowns, restore_ms=restores, savings_mb=savings
    )


# ------------------------------------------------------- Overheads (7.7)


@dataclass
class OverheadResult:
    """Section 7.7: dedup agent and controller overheads."""

    dedup_duration_ms: dict[str, float]
    lookup_ms: dict[str, float]
    registry_bytes: int
    registry_digests: int
    agent_metadata_share: float

    def render(self) -> str:
        rows = [
            (fn, f"{self.dedup_duration_ms[fn]:.0f}", f"{self.lookup_ms[fn]:.0f}")
            for fn in self.dedup_duration_ms
        ]
        out = [
            tables.render_table(
                ["function", "dedup op total (ms)", "registry lookup (ms)"],
                rows,
                title="Sec 7.7: dedup op duration by function",
            ),
            f"Controller fingerprint registry: {self.registry_digests} digests, "
            f"{self.registry_bytes / MIB:.1f} MB",
            f"Dedup agent metadata + base checkpoints: "
            f"{self.agent_metadata_share * 100:.1f}% of node memory usage",
        ]
        return "\n\n".join(out)


def run_overheads(
    *,
    duration_min: float = REP_DURATION_MIN,
    seed: int = REP_SEED,
    config: ClusterConfig | None = None,
) -> OverheadResult:
    """Section 7.7 overheads from a Medes run plus the microbenchmark."""
    suite, trace = representative_workload(duration_min, seed)
    config = config or representative_config()
    platform = build_platform(PlatformKind.MEDES, config, suite)
    platform.run(trace)
    micro = per_function_microbench(FunctionBenchSuite.default(), seed=seed)
    dedup_ms = {fn: m.dedup_total_ms for fn, m in micro.items()}
    lookup_ms = {fn: m.dedup_lookup_ms for fn, m in micro.items()}
    checkpoint_bytes = sum(
        ck.memory_bytes() for node in platform.nodes for ck in node.checkpoints.values()
    )
    # Agent-side metadata proper: the per-page dedup table entries (the
    # patches/unique pages themselves are the dedup sandboxes' state,
    # not overhead).
    from repro.core.agent import METADATA_BYTES_PER_PAGE

    table_metadata = sum(
        int(
            max(1, round(len(s.dedup_table.entries) / s.dedup_table.content_scale))
            * METADATA_BYTES_PER_PAGE
        )
        for node in platform.nodes
        for s in node.sandboxes.values()
        if s.dedup_table is not None
    )
    used = max(1, platform.controller.used_bytes())
    return OverheadResult(
        dedup_duration_ms=dedup_ms,
        lookup_ms=lookup_ms,
        registry_bytes=platform.registry.memory_bytes(),
        registry_digests=platform.registry.digest_count,
        agent_metadata_share=(checkpoint_bytes + table_metadata) / used,
    )
