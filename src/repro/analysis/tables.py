"""Plain-text rendering of the evaluation's tables and figure data.

The benchmark harness prints every reproduced table/figure as aligned
text so runs are self-describing without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in materialized
    )
    return "\n".join(lines)


def render_matrix(
    labels: Sequence[str],
    values: dict[tuple[str, str], float],
    *,
    title: str | None = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render a labelled square matrix (the Figure-1c heat map as text)."""
    headers = ["row\\col"] + list(labels)
    rows = []
    for row_label in labels:
        row = [row_label] + [fmt.format(values[(row_label, col)]) for col in labels]
        rows.append(row)
    return render_table(headers, rows, title=title)


def cdf_points(values: Iterable[float], *, points: int = 200) -> list[tuple[float, float]]:
    """(value, cumulative fraction) samples of the empirical CDF."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return []
    if arr.size <= points:
        return [(float(v), (i + 1) / arr.size) for i, v in enumerate(arr)]
    idx = np.linspace(0, arr.size - 1, points).astype(int)
    return [(float(arr[i]), (i + 1) / arr.size) for i in idx]


def cdf_summary(values: Iterable[float], percentiles: Sequence[float] = (1, 5, 25, 50, 75, 95, 99, 99.9)) -> str:
    """One-line percentile summary of a distribution."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return "(empty)"
    parts = [f"p{p:g}={np.percentile(arr, p):.2f}" for p in percentiles]
    return " ".join(parts)


def render_cdf(
    values: Iterable[float],
    *,
    title: str | None = None,
    quantiles: Sequence[float] = (0.01, 0.05, 0.25, 0.50, 0.75, 0.95, 0.99, 0.995, 0.999),
) -> str:
    """Render a CDF as a quantile table (the Figure-7a series as text)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    rows = []
    for q in quantiles:
        if arr.size == 0:
            rows.append([f"{q:.3f}", "n/a"])
        else:
            rows.append([f"{q:.3f}", f"{np.percentile(arr, q * 100):.3f}"])
    return render_table(["CDF quantile", "value"], rows, title=title)


def histogram_ascii(values: Iterable[float], *, bins: int = 10, width: int = 40) -> str:
    """A small ASCII histogram, for quick visual checks in bench output."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return "(empty)"
    counts, edges = np.histogram(arr, bins=bins)
    top = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / top))
        lines.append(f"[{lo:10.2f}, {hi:10.2f}) {count:6d} {bar}")
    return "\n".join(lines)
