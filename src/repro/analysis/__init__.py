"""Evaluation harness: the Section-2 study, renderers, experiment drivers."""

from repro.analysis.study import (
    FIG1_CHUNK_SIZES,
    FunctionMicrobench,
    SavingsMeasurement,
    TimelinePoint,
    cross_function_matrix,
    measure_function_savings,
    per_function_microbench,
    same_function_redundancy,
    savings_timeline,
)
from repro.analysis.tables import (
    cdf_points,
    cdf_summary,
    histogram_ascii,
    render_cdf,
    render_matrix,
    render_table,
)

__all__ = [
    "FIG1_CHUNK_SIZES",
    "FunctionMicrobench",
    "SavingsMeasurement",
    "TimelinePoint",
    "cdf_points",
    "cdf_summary",
    "cross_function_matrix",
    "histogram_ascii",
    "measure_function_savings",
    "per_function_microbench",
    "render_cdf",
    "render_matrix",
    "render_table",
    "same_function_redundancy",
    "savings_timeline",
]
