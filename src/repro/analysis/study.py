"""The Section-2 measurement study: Figures 1a, 1b, 1c and 2.

These drivers measure memory redundancy on freshly-initialized sandbox
checkpoints (the study's setting) using the paper's Rabin-style
fixed-offset sampling methodology, and estimate the achievable memory
savings of a keep-alive platform (Figure 2) by combining a lightweight
keep-alive occupancy model with per-function measured dedup savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import stable_seed
from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import FingerprintConfig, page_fingerprint
from repro.memory.redundancy import measure_redundancy
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.workload.functionbench import FunctionBenchSuite, FunctionProfile
from repro.workload.trace import Trace

#: Chunk sizes swept in Figures 1a/1b.
FIG1_CHUNK_SIZES = (64, 128, 256, 512, 1024)


def same_function_redundancy(
    suite: FunctionBenchSuite,
    *,
    chunk_sizes: tuple[int, ...] = FIG1_CHUNK_SIZES,
    aslr: bool = False,
    content_scale: float = 1.0 / 64.0,
    seed: int = 0,
) -> dict[str, dict[int, float]]:
    """Figure 1a/1b: redundancy between two sandboxes of each function.

    Returns ``{function: {chunk_size: redundancy}}``.
    """
    results: dict[str, dict[int, float]] = {}
    for index, profile in enumerate(suite):
        image_a = profile.synthesize(
            stable_seed("fig1-a", seed, profile.name), content_scale=content_scale, aslr=aslr
        )
        image_b = profile.synthesize(
            stable_seed("fig1-b", seed, profile.name), content_scale=content_scale, aslr=aslr
        )
        results[profile.name] = {
            chunk: measure_redundancy(image_b, image_a, chunk).redundancy
            for chunk in chunk_sizes
        }
    return results


def cross_function_matrix(
    suite: FunctionBenchSuite,
    *,
    chunk_size: int = 64,
    content_scale: float = 1.0 / 64.0,
    seed: int = 0,
) -> dict[tuple[str, str], float]:
    """Figure 1c: redundancy of each function w.r.t. every other.

    Entry ``(row, col)`` follows the paper's convention: the redundancy
    of ``row``'s sandbox measured against ``col``'s sandbox.
    """
    images = {
        profile.name: profile.synthesize(
            stable_seed("fig1c", seed, profile.name), content_scale=content_scale
        )
        for profile in suite
    }
    result: dict[tuple[str, str], float] = {}
    for row, row_image in images.items():
        for col, col_image in images.items():
            if row == col:
                # Same-function entry: compare two distinct instances.
                other = suite.get(row).synthesize(
                    stable_seed("fig1c-alt", seed, row), content_scale=content_scale
                )
                result[(row, col)] = measure_redundancy(other, col_image, chunk_size).redundancy
            else:
                result[(row, col)] = measure_redundancy(
                    row_image, col_image, chunk_size
                ).redundancy
    return result


@dataclass(frozen=True)
class SavingsMeasurement:
    """Measured dedup savings for one function (drives Table 3 / Fig 2)."""

    function: str
    savings_fraction: float
    saved_mb: float
    memory_mb: float


@dataclass(frozen=True)
class FunctionMicrobench:
    """Dedup + restore microbenchmark of one function (Table 3 / Fig 8)."""

    function: str
    savings_fraction: float
    retained_full_bytes: int
    dedup_total_ms: float
    dedup_lookup_ms: float
    restore_base_read_ms: float
    restore_compute_ms: float
    restore_fixed_ms: float
    unique_pages: int
    patched_pages: int
    zero_pages: int

    @property
    def restore_total_ms(self) -> float:
        return self.restore_base_read_ms + self.restore_compute_ms + self.restore_fixed_ms


def per_function_microbench(
    suite: FunctionBenchSuite,
    *,
    content_scale: float = 1.0 / 64.0,
    aslr: bool = False,
    fingerprint: FingerprintConfig | None = None,
    seed: int = 0,
    verify: bool = True,
) -> dict[str, FunctionMicrobench]:
    """Dedup then restore one sandbox of each function (one base each).

    The base sandboxes live on other nodes, so restores exercise remote
    (RDMA-model) base-page reads exactly like the paper's Figure 8.
    """
    fingerprint = fingerprint or FingerprintConfig()
    store = CheckpointStore()
    registry = FingerprintRegistry(fingerprint)
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=content_scale,
        fingerprint_config=fingerprint,
    )
    for index, profile in enumerate(suite):
        base_image = profile.synthesize(
            stable_seed("micro-base", seed, profile.name),
            content_scale=content_scale,
            aslr=aslr,
            executed=True,
        )
        checkpoint = BaseCheckpoint(
            function=profile.name,
            node_id=1 + index % 3,
            image=base_image,
            owner_sandbox_id=index,
            full_size_bytes=profile.memory_bytes,
        )
        store.add(checkpoint)
        for page_index in range(base_image.num_pages):
            registry.register_page(
                PageRef(checkpoint.checkpoint_id, checkpoint.node_id, page_index),
                page_fingerprint(base_image.page(page_index), fingerprint),
            )

    results: dict[str, FunctionMicrobench] = {}
    for index, profile in enumerate(suite):
        subject_seed = stable_seed("micro-subject", seed, profile.name)
        sandbox = Sandbox(
            profile=profile, node_id=0, instance_seed=subject_seed, created_at=0.0
        )
        sandbox.image = profile.synthesize(
            subject_seed, content_scale=content_scale, aslr=aslr, executed=True
        )
        outcome = agent.dedup(sandbox)
        restore = agent.restore(outcome.table, verify=verify)
        stats = outcome.table.stats
        results[profile.name] = FunctionMicrobench(
            function=profile.name,
            savings_fraction=stats.savings_fraction,
            retained_full_bytes=outcome.table.retained_full_bytes,
            dedup_total_ms=outcome.timings.total_ms,
            dedup_lookup_ms=outcome.timings.lookup_ms,
            restore_base_read_ms=restore.timings.base_read_ms,
            restore_compute_ms=restore.timings.compute_ms,
            restore_fixed_ms=restore.timings.restore_ms,
            unique_pages=stats.unique_pages,
            patched_pages=stats.patched_pages,
            zero_pages=stats.zero_pages,
        )
    return results


def measure_function_savings(
    suite: FunctionBenchSuite,
    *,
    content_scale: float = 1.0 / 64.0,
    aslr: bool = False,
    fingerprint: FingerprintConfig | None = None,
    seed: int = 0,
) -> dict[str, SavingsMeasurement]:
    """Table 3: per-function dedup savings with one base per function.

    Builds a registry populated with one base sandbox per function, then
    dedups a second (executed) sandbox of each function against it —
    the paper's per-sandbox savings methodology.
    """
    micro = per_function_microbench(
        suite,
        content_scale=content_scale,
        aslr=aslr,
        fingerprint=fingerprint,
        seed=seed,
        verify=False,
    )
    return {
        name: SavingsMeasurement(
            function=name,
            savings_fraction=result.savings_fraction,
            saved_mb=result.savings_fraction * suite.get(name).memory_mb,
            memory_mb=suite.get(name).memory_mb,
        )
        for name, result in micro.items()
    }


@dataclass(frozen=True)
class TimelinePoint:
    """One Figure-2 sample."""

    time_s: float
    keep_alive_mb: float
    after_dedup_mb: float


def savings_timeline(
    trace: Trace,
    suite: FunctionBenchSuite,
    *,
    keep_alive_ms: float = 600_000.0,
    sample_interval_ms: float = 30_000.0,
    savings: dict[str, SavingsMeasurement] | None = None,
    content_scale: float = 1.0 / 64.0,
) -> list[TimelinePoint]:
    """Figure 2: keep-alive memory usage vs usage after dedup, over time.

    Uses the paper's estimation methodology: replay the arrival trace
    through a keep-alive occupancy model (a function's warm pool at time
    t is its peak concurrency over the trailing keep-alive window), then
    discount each idle sandbox by its function's measured savings.
    """
    savings = savings or measure_function_savings(suite, content_scale=content_scale)
    profiles: dict[str, FunctionProfile] = {p.name: p for p in suite}

    arrivals_by_function: dict[str, list[float]] = {name: [] for name in profiles}
    busy_until: dict[str, list[float]] = {name: [] for name in profiles}
    for request in trace:
        arrivals_by_function[request.function].append(request.arrival_ms)
        busy_until[request.function].append(
            request.arrival_ms + profiles[request.function].exec_time_ms
        )

    points: list[TimelinePoint] = []
    t = sample_interval_ms
    end = trace.duration_ms + keep_alive_ms
    while t <= end:
        keep_alive_bytes = 0.0
        dedup_bytes = 0.0
        for name, profile in profiles.items():
            window_start = t - keep_alive_ms
            window = [a for a in arrivals_by_function[name] if window_start <= a <= t]
            pool = _peak_concurrency(window, profile.exec_time_ms) if window else 0
            running = sum(1 for b, a in zip(busy_until[name], arrivals_by_function[name])
                          if a <= t < b)
            idle = max(0, pool - running)
            keep_alive_bytes += pool * profile.memory_bytes
            fraction = savings[name].savings_fraction
            dedup_bytes += running * profile.memory_bytes
            dedup_bytes += idle * profile.memory_bytes * (1.0 - fraction)
        points.append(
            TimelinePoint(
                time_s=t / 1000.0,
                keep_alive_mb=keep_alive_bytes / 2**20,
                after_dedup_mb=dedup_bytes / 2**20,
            )
        )
        t += sample_interval_ms
    return points


def _peak_concurrency(arrivals: list[float], exec_ms: float) -> int:
    """Peak number of overlapping executions among ``arrivals``."""
    events: list[tuple[float, int]] = []
    for arrival in arrivals:
        events.append((arrival, +1))
        events.append((arrival + exec_ms, -1))
    events.sort()
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return max(peak, 1 if arrivals else 0)
