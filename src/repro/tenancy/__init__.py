"""Multi-tenant dedup isolation domains (DESIGN.md §15)."""

from repro.tenancy.domains import GLOBAL_DOMAIN, DedupDomainMode, TenantConfig

__all__ = ["GLOBAL_DOMAIN", "DedupDomainMode", "TenantConfig"]
