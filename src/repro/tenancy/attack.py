"""Seeded remote-dedup attack scenario (DESIGN.md §15).

The channel under test is the one *Remote Memory-Deduplication Attacks*
demonstrates against VM hosts, transplanted to Medes: cross-tenant page
dedup makes a victim's memory *content* observable through the
attacker's own restore timing.  The attacker plants a sandbox whose
pages it controls and infers, from how that sandbox behaves when the
platform parks and restores it, whether the victim holds identical
pages.

Concretely, in Medes terms: when an attacker function's pages match a
victim base checkpoint, the attacker's idle sandbox deduplicates against
the victim's base (high trial savings) and its *next* invocation is a
DEDUP start — a restore that fetches base pages and applies patches,
hundreds of milliseconds.  When nothing matches, the trial dedup saves
too little, the platform demarcates the attacker's sandbox as a fresh
base instead, and the next invocation is a WARM start — effectively
instant.  The start-latency gap is the leak.

The scenario is fully deterministic (counter-keyed jitter draws in the
style of :mod:`repro.faults.retry`) and paired: every probe round
launches one *hit probe* (a fresh function whose library set matches the
victim's — the planted guess is right) and one *miss probe* (a fresh
function importing a per-round unique guess library — the planted guess
is wrong).  Rounds are spaced wider than the scenario's keep-alive +
keep-dedup windows, so each round's probes find the attacker's dedup
domain empty of prior probe state and face only the victim's.

The measurement is the **distinguishing accuracy** between the hit- and
miss-probe second-invocation startup latencies: ~1.0 under global
sharing (``dedup_domains=off``, a measurable channel) and ~0.5 — a coin
flip — under ``per_tenant`` domains, where both probes see an empty
domain and behave identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import rng_for
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import RunMetrics, StartType
from repro.platform.platform import PlatformKind, RunReport, build_platform
from repro.tenancy.domains import TenantConfig
from repro.workload.functionbench import FunctionBenchSuite, FunctionProfile
from repro.workload.trace import Trace

#: Tenant labels of the two parties.
VICTIM_TENANT = "victim"
ATTACKER_TENANT = "attacker"

#: The victim runs an RNN-serving-style function: a large read-mostly ML
#: library (torch) is exactly the content a dedup channel leaks best.
VICTIM_LIBRARIES = ("torch",)
VICTIM_MEMORY_MB = 90.0


@dataclass(frozen=True)
class AttackConfig:
    """Shape of the probe workload (all times in simulated ms)."""

    rounds: int = 12
    """Paired probe rounds; each contributes one hit and one miss sample."""
    seed: int = 0
    """Keys every jitter draw; same seed, same trace, same RunMetrics."""
    nodes: int = 4
    idle_period_ms: float = 2_000.0
    """Short idle period so a probe is parked promptly after its first
    invocation (the scenario compresses Medes' default timescales)."""
    keep_alive_ms: float = 18_000.0
    keep_dedup_ms: float = 18_000.0
    alpha: float = 25.0
    """Loose latency bound so the optimizer always prefers parking idle
    sandboxes — the attack needs the platform to *take* the dedup path."""
    warmup_ms: float = 30_000.0
    """Victim-only traffic before round 0: time for the victim's base
    checkpoint to exist and settle."""
    victim_period_ms: float = 6_000.0
    """Victim arrival spacing — well inside keep-alive, so the victim's
    base sandbox stays resident for the whole scenario."""
    round_period_ms: float = 60_000.0
    """Round spacing; must exceed keep_alive + keep_dedup so each
    round's probes find no state left over from the previous round."""
    second_probe_delay_ms: float = 12_000.0
    """Gap between a probe's planting invocation and its measurement
    invocation: wide enough for cold start + exec + idle period + the
    dedup/demarcation op, narrow enough to beat keep-alive."""
    probe_exec_ms: float = 200.0
    probe_cold_start_ms: float = 1_500.0
    jitter_ms: float = 200.0
    """Bound on the per-arrival uniform jitter (counter-keyed draws)."""

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.round_period_ms <= self.keep_alive_ms + self.keep_dedup_ms:
            raise ValueError(
                "round_period_ms must exceed keep_alive_ms + keep_dedup_ms "
                "(probe state must drain between rounds)"
            )
        if self.second_probe_delay_ms >= self.keep_alive_ms:
            raise ValueError("second probe must land inside keep-alive")


@dataclass(frozen=True)
class ProbeObservation:
    """What the attacker measures for one probe function."""

    round_index: int
    kind: str
    """"hit" (guess matches the victim) or "miss" (guess is wrong)."""
    function: str
    second_start_type: str
    """Start type of the measurement invocation (the attacker observes
    this only through latency; recorded here for diagnostics)."""
    second_startup_ms: float
    """The attacker's actual observable: restore latency of the
    measurement invocation."""
    savings_fraction: float | None
    """Trial-dedup savings of the probe's park (None when the platform
    demarcated the probe as a base instead — the miss signature)."""


@dataclass(frozen=True)
class AttackResult:
    """One full scenario run under one domain policy."""

    mode: str
    observations: tuple[ProbeObservation, ...]
    leak_accuracy: float
    """Best-threshold distinguishing accuracy between hit and miss
    startup latencies (0.5 = indistinguishable, 1.0 = perfect leak)."""
    mean_hit_startup_ms: float
    mean_miss_startup_ms: float
    report: RunReport = field(repr=False)

    @property
    def hit_startups(self) -> tuple[float, ...]:
        return tuple(
            o.second_startup_ms for o in self.observations if o.kind == "hit"
        )

    @property
    def miss_startups(self) -> tuple[float, ...]:
        return tuple(
            o.second_startup_ms for o in self.observations if o.kind == "miss"
        )


def victim_profile() -> FunctionProfile:
    return FunctionProfile(
        name="Victim",
        description="Victim tenant's model-serving function",
        libraries=VICTIM_LIBRARIES,
        exec_time_ms=300,
        memory_mb=VICTIM_MEMORY_MB,
        cold_start_ms=2_000,
        exec_cv=0.05,
    )


def probe_profiles(config: AttackConfig) -> list[FunctionProfile]:
    """One fresh (hit, miss) probe pair per round.

    Fresh functions each round keep the channel clean: a reused probe
    would match its *own* earlier base from round r-1 and report a hit
    whatever the victim holds.  The hit probe imports the victim's exact
    library set at the victim's footprint (the guess is the victim's
    content); the miss probe plants a per-round unique guess library
    instead, so its pages match no victim base page.
    """
    profiles = []
    for round_index in range(config.rounds):
        for kind, libraries in (
            ("hit", VICTIM_LIBRARIES),
            ("miss", (f"guess-{round_index}",)),
        ):
            profiles.append(
                FunctionProfile(
                    name=probe_name(kind, round_index),
                    description=f"Attacker {kind} probe, round {round_index}",
                    libraries=libraries,
                    exec_time_ms=config.probe_exec_ms,
                    memory_mb=VICTIM_MEMORY_MB,
                    cold_start_ms=config.probe_cold_start_ms,
                    exec_cv=0.05,
                )
            )
    return profiles


def probe_name(kind: str, round_index: int) -> str:
    return f"probe-{kind}-{round_index}"


def build_attack_suite(config: AttackConfig) -> FunctionBenchSuite:
    return FunctionBenchSuite(
        profiles=tuple([victim_profile()] + probe_profiles(config))
    )


def build_attack_trace(config: AttackConfig) -> Trace:
    """The deterministic probe schedule, tenant-labelled.

    Victim traffic runs steadily for the whole scenario.  Round ``r``
    starts at ``warmup + r * round_period``: each probe is invoked once
    to plant its pages (cold start, then parked by the idle machinery)
    and once more after ``second_probe_delay_ms`` to measure the restore
    path the platform chose for it.  All jitter is counter-keyed on
    ``(seed, round, probe kind, arrival index)`` — same config, same
    trace, bit for bit.
    """

    def jitter(*key: object) -> float:
        rng = rng_for("attack-jitter", config.seed, *key)
        return float(rng.uniform(0.0, config.jitter_ms))

    arrivals: list[tuple[float, str, str]] = []
    end_ms = config.warmup_ms + config.rounds * config.round_period_ms
    count = int(end_ms // config.victim_period_ms) + 1
    for index in range(count):
        arrivals.append(
            (
                index * config.victim_period_ms + jitter("victim", index),
                "Victim",
                VICTIM_TENANT,
            )
        )
    for round_index in range(config.rounds):
        start = config.warmup_ms + round_index * config.round_period_ms
        for offset, kind in ((0.0, "hit"), (400.0, "miss")):
            function = probe_name(kind, round_index)
            arrivals.append(
                (
                    start + offset + jitter(round_index, kind, 0),
                    function,
                    ATTACKER_TENANT,
                )
            )
            arrivals.append(
                (
                    start
                    + offset
                    + config.second_probe_delay_ms
                    + jitter(round_index, kind, 1),
                    function,
                    ATTACKER_TENANT,
                )
            )
    return Trace.from_arrivals(arrivals)


def distinguishing_accuracy(
    hit_values: tuple[float, ...], miss_values: tuple[float, ...]
) -> float:
    """Best-threshold balanced accuracy at telling the two sets apart.

    The attacker's decision rule is a latency threshold; this scores the
    best one (either polarity).  0.5 means the distributions carry no
    information; 1.0 means a threshold separates them perfectly.
    """
    if not hit_values or not miss_values:
        return 0.5
    thresholds = [float("-inf")] + sorted(set(hit_values) | set(miss_values))
    best = 0.5
    for threshold in thresholds:
        above = sum(1 for v in hit_values if v > threshold) / len(hit_values)
        below = sum(1 for v in miss_values if v <= threshold) / len(miss_values)
        balanced = (above + below) / 2.0
        best = max(best, balanced, 1.0 - balanced)
    return best


def run_attack(
    dedup_domains: TenantConfig, config: AttackConfig | None = None
) -> AttackResult:
    """Replay the probe scenario under one domain policy."""
    config = config or AttackConfig()
    suite = build_attack_suite(config)
    trace = build_attack_trace(config)
    cluster = ClusterConfig(
        nodes=config.nodes,
        seed=config.seed,
        dedup_domains=dedup_domains,
    )
    platform = build_platform(
        PlatformKind.MEDES,
        cluster,
        suite,
        medes=MedesPolicyConfig(
            alpha=config.alpha,
            idle_period_ms=config.idle_period_ms,
            keep_alive_ms=config.keep_alive_ms,
            keep_dedup_ms=config.keep_dedup_ms,
        ),
    )
    report = platform.run(trace)
    observations = extract_observations(report.metrics, config)
    hits = tuple(o.second_startup_ms for o in observations if o.kind == "hit")
    misses = tuple(o.second_startup_ms for o in observations if o.kind == "miss")
    return AttackResult(
        mode=dedup_domains.mode.value,
        observations=observations,
        leak_accuracy=distinguishing_accuracy(hits, misses),
        mean_hit_startup_ms=sum(hits) / len(hits) if hits else 0.0,
        mean_miss_startup_ms=sum(misses) / len(misses) if misses else 0.0,
        report=report,
    )


def extract_observations(
    metrics: RunMetrics, config: AttackConfig
) -> tuple[ProbeObservation, ...]:
    """Pull each probe's measurement invocation out of the run record."""
    by_function: dict[str, list] = {}
    for record in metrics.requests.values():
        by_function.setdefault(record.function, []).append(record)
    savings_of: dict[str, float] = {}
    for op in metrics.dedup_ops:
        savings_of[op.function] = op.savings_fraction
    observations = []
    for round_index in range(config.rounds):
        for kind in ("hit", "miss"):
            function = probe_name(kind, round_index)
            records = sorted(
                by_function.get(function, ()), key=lambda r: r.arrival_ms
            )
            if len(records) < 2 or records[1].start_type is None:
                continue  # measurement invocation never completed
            second = records[1]
            observations.append(
                ProbeObservation(
                    round_index=round_index,
                    kind=kind,
                    function=function,
                    second_start_type=second.start_type.value
                    if isinstance(second.start_type, StartType)
                    else str(second.start_type),
                    second_startup_ms=second.startup_ms or 0.0,
                    savings_fraction=savings_of.get(function),
                )
            )
    return tuple(observations)
