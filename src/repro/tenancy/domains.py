"""Tenant-scoped dedup domains (DESIGN.md §15).

Medes shares base pages cluster-wide, but *Remote Memory-Deduplication
Attacks* (PAPERS.md) shows that dedup-induced latency differences are
measurable over the network and leak page contents across tenants: an
attacker plants a guessed page and learns from its own restore/dedup
timing whether the victim holds an identical page.  The defence is to
never merge memory across mutually untrusting tenants — every sharing
point (fingerprint registry, replica index, base selection, template
catalog) is partitioned into *dedup domains* and a lookup can only ever
return state from the requester's own domain.

This module is the pure policy half: :class:`TenantConfig` maps a
request's tenant label to its domain string.  It is deliberately
dependency-free (``ClusterConfig`` imports it) and stateless — the same
``(mode, trust_groups, tenant)`` always yields the same domain, so a
replay is deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: The single shared domain of ``DedupDomainMode.OFF`` — today's global
#: cluster-wide sharing.  Every pre-tenancy code path registers and
#: looks up under this domain, which is what pins ``off`` bit-identical.
GLOBAL_DOMAIN = ""


class DedupDomainMode(enum.Enum):
    """How tenants map to dedup domains."""

    OFF = "off"
    """One global domain: cluster-wide sharing, the paper's behaviour."""

    PER_TENANT = "per_tenant"
    """Every tenant is its own domain: no cross-tenant merging at all."""

    TRUST_GROUPS = "trust_groups"
    """Explicit tenant → domain groups; unlisted tenants are isolated
    in singleton domains (fail closed, never fail open)."""


@dataclass(frozen=True)
class TenantConfig:
    """Dedup-domain policy: tenant labels → domain strings.

    The default (``OFF``) reproduces global sharing bit-identically:
    every tenant maps to :data:`GLOBAL_DOMAIN`, so all registry
    partitions collapse into the single pre-tenancy table.
    """

    mode: DedupDomainMode = DedupDomainMode.OFF
    trust_groups: tuple[tuple[str, tuple[str, ...]], ...] = ()
    """``((group_name, (tenant, ...)), ...)`` — only read under
    ``TRUST_GROUPS``.  A tenant may appear in at most one group."""

    def __post_init__(self) -> None:
        if self.trust_groups and self.mode is not DedupDomainMode.TRUST_GROUPS:
            raise ValueError("trust_groups requires mode=TRUST_GROUPS")
        seen_groups: set[str] = set()
        seen_tenants: set[str] = set()
        for group, tenants in self.trust_groups:
            if not group:
                raise ValueError("trust group names must be non-empty")
            if group in seen_groups:
                raise ValueError(f"duplicate trust group {group!r}")
            seen_groups.add(group)
            for tenant in tenants:
                if tenant in seen_tenants:
                    raise ValueError(
                        f"tenant {tenant!r} appears in more than one trust group"
                    )
                seen_tenants.add(tenant)

    @property
    def enabled(self) -> bool:
        """True when domains actually partition anything."""
        return self.mode is not DedupDomainMode.OFF

    def domain_of(self, tenant: str) -> str:
        """The dedup domain a request labelled ``tenant`` shares in.

        ``OFF`` maps everyone to :data:`GLOBAL_DOMAIN`.  ``PER_TENANT``
        gives each tenant label its own domain (unlabelled requests form
        one anonymous tenant).  ``TRUST_GROUPS`` maps grouped tenants to
        their group's domain and everyone else to a singleton domain.
        """
        if self.mode is DedupDomainMode.OFF:
            return GLOBAL_DOMAIN
        if self.mode is DedupDomainMode.PER_TENANT:
            return f"tenant:{tenant}"
        for group, tenants in self.trust_groups:
            if tenant in tenants:
                return f"group:{group}"
        return f"tenant:{tenant}"
