"""Cluster control plane: the controller, and the keep-alive baselines."""

from repro.controller.baselines import AdaptiveKeepAlivePolicy, FixedKeepAlivePolicy
from repro.controller.controller import ClusterController
from repro.controller.index import NodeUsageIndex, SandboxIndex

__all__ = [
    "AdaptiveKeepAlivePolicy",
    "ClusterController",
    "FixedKeepAlivePolicy",
    "NodeUsageIndex",
    "SandboxIndex",
]
