"""The cluster controller: scheduling, lifecycle, and dedup orchestration.

One :class:`ClusterController` drives a whole platform run on the event
simulator.  It implements the paper's Section-3 workflows:

* **dispatch** — an incoming request goes to an idle warm sandbox of its
  function if one exists, else to a dedup sandbox (restore op), else a
  new sandbox is spawned cold on the least-used node (evicting idle
  sandboxes under memory pressure, queueing if nothing can fit);
* **lifecycle** — after execution a sandbox turns warm; at idle-period
  expiry the policy is consulted (keep warm / deduplicate / demarcate as
  base); keep-alive and keep-dedup expiries purge sandboxes;
* **dedup plumbing** — base-checkpoint creation and registration,
  refcount acquire/release around dedup tables, and base retirement.

The same controller runs the baselines: their policies simply never ask
for deduplication (``idle_period_ms`` is None) and may request
pre-warmed spawns (the adaptive policy).

Scheduling state is **indexed** by default
(``ClusterConfig.indexed_control_plane``): candidate sets, population
counters and the placement order are maintained incrementally (see
:mod:`repro.controller.index`), so per-request control-plane work is
independent of the sandbox population.  The original scan paths are
preserved behind the flag and pinned to bit-identical behaviour by
``tests/platform/test_control_plane_equivalence.py``.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro._util import hash_bytes, stable_seed
from repro.controller.index import NodeUsageIndex, SandboxIndex
from repro.core.agent import DedupAgent, PageKind
from repro.core.basemgr import BaseSandboxManager
from repro.core.policy import ClusterView, Decision, FunctionStats, LifecyclePolicy
from repro.core.registry import FingerprintRegistry, PageRef
from repro.faults.health import RegistryUnavailable
from repro.faults.retry import RetryExhausted
from repro.memory.fingerprint import batch_page_fingerprints
from repro.platform.config import ClusterConfig
from repro.platform.metrics import (
    BaseOpRecord,
    DedupOpRecord,
    RequestRecord,
    RestoreOpRecord,
    RunMetrics,
    StartType,
    TemplateForkRecord,
    TemplateOpRecord,
    TierOpRecord,
)
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.node import EvictionOrder, Node, rank_victims
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import SandboxState
from repro.sim.engine import Simulator, Timer
from repro.sim.network import PeerUnavailable
from repro.storage.store import TieredCheckpointStore
from repro.storage.tiers import StorageTier, TierAccount
from repro.templates.catalog import TemplateCatalog, TemplatePoolFull
from repro.templates.delta import TemplateDeltaTable
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Request
from repro._util import rng_for

if TYPE_CHECKING:
    from repro.core.agent import DedupPageTable
    from repro.faults.health import FaultRuntime


#: A queued request older than this may evict unpinned base sandboxes.
STARVATION_MS = 5_000.0

#: Sentinel ``busy_request_id`` marking a sandbox mid-base-demarcation
#: (checkpoint + registry registration); real request ids are >= 0.
_BASE_OP_BUSY = -1


@dataclass
class _SandboxTimers:
    idle: Timer | None = None
    keep_alive: Timer | None = None
    keep_dedup: Timer | None = None

    def cancel_all(self) -> None:
        for timer in (self.idle, self.keep_alive, self.keep_dedup):
            if timer is not None:
                timer.cancel()
        self.idle = self.keep_alive = self.keep_dedup = None


class ClusterController:
    """Controller + node daemons for one platform run."""

    def __init__(
        self,
        *,
        sim: Simulator,
        config: ClusterConfig,
        suite: FunctionBenchSuite,
        policy: LifecyclePolicy,
        metrics: RunMetrics,
        nodes: list[Node],
        agents: dict[int, DedupAgent],
        registry: FingerprintRegistry,
        store: CheckpointStore,
        basemgr: BaseSandboxManager,
        stats: dict[str, FunctionStats] | None = None,
        faults: "FaultRuntime | None" = None,
        templates: TemplateCatalog | None = None,
    ):
        self.sim = sim
        self.config = config
        self.suite = suite
        self.policy = policy
        self.metrics = metrics
        self.nodes = nodes
        self.agents = agents
        self.registry = registry
        self.store = store
        self.basemgr = basemgr
        self.stats = stats or {}
        self._faults = faults
        self.templates = templates
        """Cluster-wide template catalog (DESIGN.md §14; None unless
        ``template_sharing`` is on — every template code path below is
        gated on it, so the off configuration is bit-identical)."""
        #: request_id -> (completion timer, sandbox, request, record) of
        #: every request with a scheduled future event (startup or exec);
        #: a node crash cancels and re-dispatches the affected entries.
        self._inflight: dict[int, tuple[Timer, Sandbox, Request, RequestRecord]] = {}
        #: Node mid-crash-reconciliation (suppresses demote-on-purge of
        #: checkpoints whose device just died with the node).
        self._crashed_node: int | None = None
        self._by_function: dict[str, dict[int, Sandbox]] = {}
        self._timers: dict[int, _SandboxTimers] = {}
        self._queue: list[tuple[Request, RequestRecord]] = []
        self._pending_dedups: dict[int, tuple[Timer, object]] = {}
        self._instance_counter = 0
        self._draining = False
        self.indexed = config.indexed_control_plane
        self.tiering = config.checkpoint_tiering
        self.tiered_store: TieredCheckpointStore | None = (
            store if isinstance(store, TieredCheckpointStore) else None
        )
        if self.tiering and self.tiered_store is None:
            raise ValueError("checkpoint_tiering requires a TieredCheckpointStore")
        self._cold: dict[int, Sandbox] = {}
        """Dedup sandboxes whose table is parked on SSD, in demote order
        (the SSD-pressure LRU; tiering only)."""
        self._spilled: dict[int, Sandbox] = {}
        """Template sandboxes whose delta is parked on local SSD
        ("template-cold"), in spill order — the SSD-pressure LRU
        (template sharing only)."""
        self._delta_ssd: dict[int, TierAccount] = {}
        """Per-node SSD capacity accounts for spilled template deltas
        (template sharing only; built lazily on first spill)."""
        self._index = SandboxIndex()
        self._usage = NodeUsageIndex(nodes)
        if self.indexed:
            for node in nodes:
                node.on_used_changed = self._usage.update
        # Coalesced starvation machinery: the pending desperation
        # deadlines of queued requests (monotone, hence a deque) with a
        # single armed timer for the earliest — instead of one heap
        # event per queued request.
        self._starvation_deadlines: deque[float] = deque()
        self._starvation_timer: Timer | None = None
        # Tenancy (DESIGN.md §15): tenant label and dedup domain per
        # function, learned from each function's first request.  A
        # function belongs to exactly one tenant — sandboxes are
        # per-function, so a function served for two tenants would
        # itself merge their memory; submit() enforces the invariant.
        self._tenant_of: dict[str, str] = {}
        self._function_domain: dict[str, str] = {}

    def _domain_for(self, function: str, tenant: str) -> str:
        """Learn/validate the function's tenant; return its dedup domain."""
        known = self._tenant_of.setdefault(function, tenant)
        if known != tenant:
            raise ValueError(
                f"function {function!r} belongs to tenant {known!r}; "
                f"got a request labelled {tenant!r}"
            )
        try:
            return self._function_domain[function]
        except KeyError:
            domain = self._function_domain[function] = (
                self.config.dedup_domains.domain_of(tenant)
            )
            return domain

    # ------------------------------------------------------------ helpers

    def _function_sandboxes(self, function: str) -> dict[int, Sandbox]:
        return self._by_function.setdefault(function, {})

    def _timers_for(self, sandbox: Sandbox) -> _SandboxTimers:
        return self._timers.setdefault(sandbox.sandbox_id, _SandboxTimers())

    def _next_instance_seed(self) -> int:
        self._instance_counter += 1
        return stable_seed("instance", self.config.seed, self._instance_counter)

    def _ensure_image(self, sandbox: Sandbox) -> None:
        """Lazily synthesize the (post-execution) memory image.

        Images are only materialized when content actually matters — a
        dedup op or base demarcation — which keeps long runs cheap.
        """
        if sandbox.image is None:
            sandbox.image = sandbox.profile.synthesize(
                sandbox.instance_seed,
                content_scale=self.config.content_scale,
                aslr=self.config.aslr,
                executed=True,
            )

    def _exec_ms(self, request: Request) -> float:
        """Execution time for a request: identical across platforms.

        Seeded only from the request identity (not the platform), so
        Medes and every baseline replay the same work per request and
        Figure-7a's paired comparison is apples to apples.
        """
        profile = self.suite.get(request.function)
        rng = rng_for("exec-time", request.request_id, request.function)
        sigma = profile.exec_cv
        sample = float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
        return profile.exec_time_ms * sample

    def used_bytes(self) -> int:
        return sum(node.used_bytes() for node in self.nodes)

    def live_counts(self) -> tuple[dict[str, int], dict[str, int]]:
        """Per-function (serving-capable count, dedup count)."""
        if self.indexed:
            return dict(self._index.live_count), dict(self._index.dedup_count)
        live: dict[str, int] = {}
        dedup: dict[str, int] = {}
        live_states = {
            SandboxState.WARM,
            SandboxState.RUNNING,
            SandboxState.DEDUPING,
            SandboxState.DEDUP,
            SandboxState.RESTORING,
        }
        dedup_states = {SandboxState.DEDUPING, SandboxState.DEDUP}
        for function, sandboxes in self._by_function.items():
            live[function] = sum(1 for s in sandboxes.values() if s.state in live_states)
            dedup[function] = sum(1 for s in sandboxes.values() if s.state in dedup_states)
        return live, dedup

    def build_view(self) -> ClusterView:
        live, dedup = self.live_counts()
        now = self.sim.now
        rates = {fn: st.mean_rate(now) for fn, st in self.stats.items()}
        total_rate = sum(rates.values())
        shares = (
            {fn: rate / total_rate for fn, rate in rates.items()} if total_rate > 0 else {}
        )
        return ClusterView(
            now=now,
            live_counts=live,
            dedup_counts=dedup,
            used_bytes=self.used_bytes(),
            capacity_bytes=self.config.cluster_capacity_bytes,
            rate_shares=shares,
            registry_available=(
                self._faults is None or self._faults.health.registry_available()
            ),
            templates_available=self.templates is not None,
        )

    @property
    def cold_parked_tables(self) -> int:
        """Dedup sandboxes whose patch table is parked on SSD (tiering).

        Public read for observability (the platform's tier sampler);
        keeps callers off the controller's private LRU structures.
        """
        return len(self._cold)

    def sandbox_census(self) -> tuple[int, int, int]:
        """(warm-ish, dedup, total) sandbox counts for memory sampling."""
        if self.indexed:
            index = self._index
            return index.warm_census, index.dedup_census, index.total
        warm = dedup = total = 0
        for sandboxes in self._by_function.values():
            for sandbox in sandboxes.values():
                total += 1
                if sandbox.state in (SandboxState.WARM, SandboxState.RUNNING):
                    warm += 1
                elif sandbox.state in (SandboxState.DEDUP, SandboxState.DEDUPING):
                    dedup += 1
        return warm, dedup, total

    # ----------------------------------------------------------- dispatch

    def submit(self, request: Request) -> None:
        """Entry point: a client request arrives at the controller."""
        record = self.metrics.on_arrival(request.request_id, request.function, self.sim.now)
        self._domain_for(request.function, request.tenant)
        self.policy.on_arrival(request.function, self.sim.now)
        if request.function in self.stats:
            self.stats[request.function].record_arrival(self.sim.now)
        if not self._try_dispatch(request, record):
            self._queue.append((request, record))
            # Give the starvation path (last-resort base eviction) a
            # chance even if no other event frees memory meanwhile.
            if self.indexed:
                self._note_starvation_deadline(self.sim.now + STARVATION_MS + 1.0)
            else:
                self.sim.after(STARVATION_MS + 1.0, self._drain_queue)

    def _note_starvation_deadline(self, deadline: float) -> None:
        """Record a queued request's desperation deadline.

        One timer is armed for the earliest pending deadline; later
        deadlines wait in the deque instead of each occupying an event
        on the simulator heap (arrivals are monotone, so appends keep
        the deque sorted).
        """
        self._starvation_deadlines.append(deadline)
        if self._starvation_timer is None or not self._starvation_timer.pending:
            self._starvation_timer = self.sim.at(
                self._starvation_deadlines[0], self._fire_starvation_timer
            )

    def _fire_starvation_timer(self) -> None:
        """Drain once per due deadline, then re-arm for the next one."""
        self._starvation_timer = None
        while self._starvation_deadlines and self._starvation_deadlines[0] <= self.sim.now:
            self._starvation_deadlines.popleft()
            self._drain_queue()
        if self._starvation_deadlines:
            self._starvation_timer = self.sim.at(
                self._starvation_deadlines[0], self._fire_starvation_timer
            )

    def _dispatch_candidates(
        self, function: str
    ) -> tuple[list[Sandbox], list[Sandbox], list[Sandbox]]:
        """(idle-warm, restorable-dedup, abortable-deduping) candidates.

        The indexed path reads the maintained candidate sets; the scan
        path filters the whole per-function population.  Both return
        the same membership, and callers apply the same orderings, so
        dispatch decisions are identical.
        """
        if self.indexed:
            warm = list(self._index.idle_warm.get(function, {}).values())
            restorable = list(self._index.restorable.get(function, {}).values())
            abortable = (
                list(self._index.abortable.get(function, {}).values())
                if self.config.enable_dedup_abort
                else []
            )
            return warm, restorable, abortable
        sandboxes = self._function_sandboxes(function)
        warm = [s for s in sandboxes.values() if s.idle_warm]
        restorable = [
            s
            for s in sandboxes.values()
            if s.state is SandboxState.DEDUP and s.busy_request_id is None
        ]
        abortable = [
            s
            for s in sandboxes.values()
            if s.state is SandboxState.DEDUPING and s.busy_request_id is None
        ] if self.config.enable_dedup_abort else []
        return warm, restorable, abortable

    def _try_dispatch(
        self, request: Request, record: RequestRecord, *, desperate: bool = False
    ) -> bool:
        function = request.function
        warm_candidates, dedup_candidates, deduping = self._dispatch_candidates(function)

        if warm_candidates:
            sandbox = max(warm_candidates, key=lambda s: (s.last_used_at, s.sandbox_id))
            self._start_warm(sandbox, request, record)
            return True

        dedup_candidates.sort(key=lambda s: (s.last_used_at, s.sandbox_id), reverse=True)
        if self.templates is not None:
            # Template forks are the cheaper restore (no base fetches),
            # so they outrank dedup restores in the start ladder: warm >
            # template > dedup > cold.  Stable partition, so within each
            # flavour the MRU order above is preserved.
            dedup_candidates = [
                s
                for s in dedup_candidates
                if isinstance(s.dedup_table, TemplateDeltaTable)
            ] + [
                s
                for s in dedup_candidates
                if not isinstance(s.dedup_table, TemplateDeltaTable)
            ]
        failed_dedup = False
        for sandbox in dedup_candidates:
            if isinstance(sandbox.dedup_table, TemplateDeltaTable):
                started = self._start_template(sandbox, request, record)
            else:
                started = self._start_dedup(sandbox, request, record)
            if started:
                return True
            failed_dedup = True
            # That candidate's restore failed (retry storm, partition,
            # or unreachable bases past rehoming); try the next intact
            # dedup sandbox before the remaining options.

        # A sandbox mid-dedup is cheaper to reclaim than a cold start:
        # abort the (background) dedup op and serve the request warm.
        if deduping:
            sandbox = max(deduping, key=lambda s: (s.last_used_at, s.sandbox_id))
            self._abort_dedup(sandbox)
            self._start_warm(sandbox, request, record)
            return True

        started = self._start_cold(request, record, desperate=desperate)
        if started and failed_dedup:
            # The restore fallback chain bottomed out at a cold start.
            self.metrics.restore_cold_fallbacks += 1
        return started

    def _start_warm(self, sandbox: Sandbox, request: Request, record: RequestRecord) -> None:
        self._timers_for(sandbox).cancel_all()
        sandbox.busy_request_id = request.request_id
        sandbox.transition(SandboxState.RUNNING, self.sim.now)
        record.start_type = StartType.WARM
        record.queued_ms = self.sim.now - record.arrival_ms
        record.startup_ms = self.config.costs.warm_start_ms + record.retry_penalty_ms
        self._run_request(sandbox, request, record)

    def _start_dedup(self, sandbox: Sandbox, request: Request, record: RequestRecord) -> bool:
        """Serve ``request`` by restoring a dedup sandbox.

        Returns False when the restore cannot proceed, after walking the
        fallback chain (DESIGN.md §11): transient fetch failures already
        retried inside the agent; a dead base peer triggers one rehoming
        attempt onto surviving replicas of the same pages
        (``max_refs_per_digest`` gives the candidates); only then is the
        broken dedup sandbox purged (its state cannot be reconstructed)
        and the caller falls through to another start path (Section
        4.1.3's base-unavailability concern).
        """
        assert sandbox.dedup_table is not None
        agent = self.agents[sandbox.node_id]
        promote_ms = 0.0
        if self.tiering:
            # Read a parked ("dedup-cold") table back from SSD and bring
            # hot demoted checkpoints home before the restore proper.
            promote_ms += self._promote_table(sandbox)
            promote_ms += self._promote_checkpoints(sandbox.dedup_table)
        rehome_attempted = False
        while True:
            try:
                outcome = agent.restore(
                    sandbox.dedup_table, verify=self.config.verify_restores
                )
            except RetryExhausted as exc:
                # Transient RPC storm: the attempts' time is real latency
                # the request pays on whatever start path succeeds next.
                # The sandbox itself is intact — keep it restorable.
                record.retry_penalty_ms += exc.charged_ms
                return False
            except PeerUnavailable as exc:
                if self._faults is not None and self._faults.health.node_up(exc.peer):
                    # Link partition, not a dead node: the base state
                    # still exists, so keep the sandbox for post-heal.
                    return False
                dead = self._unreachable_refs(sandbox.dedup_table)
                if (
                    not rehome_attempted
                    and dead
                    and self._try_rehome(sandbox, dead)
                ):
                    rehome_attempted = True
                    continue
                self._purge(sandbox, reason="base-unavailable")
                return False
            else:
                break
        self._timers_for(sandbox).cancel_all()
        sandbox.busy_request_id = request.request_id
        sandbox.transition(SandboxState.RESTORING, self.sim.now)
        timings = outcome.timings
        startup_ms = timings.total_ms + promote_ms + record.retry_penalty_ms
        self.metrics.restore_ops.append(
            RestoreOpRecord(
                function=sandbox.function,
                sandbox_id=sandbox.sandbox_id,
                started_ms=self.sim.now,
                base_read_ms=timings.base_read_ms,
                compute_ms=timings.compute_ms,
                restore_ms=timings.restore_ms,
                prefetched=timings.prefetched,
                miss_read_ms=timings.miss_read_ms,
                prefetch_hit_pages=timings.prefetch_hit_pages,
                prefetch_miss_pages=timings.prefetch_miss_pages,
                promote_ms=promote_ms,
                overlap_workers=timings.overlap.workers if timings.overlap else 0,
                overlap_batches=timings.overlap.batches if timings.overlap else 0,
                retry_ms=timings.retry_ms,
                retries=timings.retries,
            )
        )
        if sandbox.function in self.stats:
            self.stats[sandbox.function].record_dedup_start(startup_ms)
        record.start_type = StartType.DEDUP
        record.queued_ms = self.sim.now - record.arrival_ms
        record.startup_ms = startup_ms

        def finish_restore() -> None:
            table = sandbox.dedup_table
            assert table is not None
            sandbox.image = outcome.image
            # Transition out of RESTORING while the table is still set:
            # accounting observers recompute memory_bytes() on every
            # transition, and a table-less RESTORING sandbox has no
            # defined footprint.
            sandbox.transition(SandboxState.RUNNING, self.sim.now)
            sandbox.dedup_table = None
            self._release_base_refs(table)
            self.basemgr.note_dedup(sandbox.function, -1)
            self._run_request(sandbox, request, record, already_started=True)

        timer = self.sim.after(startup_ms, finish_restore)
        self._inflight[request.request_id] = (timer, sandbox, request, record)
        return True

    def _start_template(
        self, sandbox: Sandbox, request: Request, record: RequestRecord
    ) -> bool:
        """Serve ``request`` by forking a template-parked sandbox.

        The fork promotes any segment the node lacks (charged pool read,
        pinned to the node's DRAM as a fork cache) and applies the
        per-function delta over the replicas.  Returns False when the
        promote's transient-RPC plan is exhausted — the sandbox stays
        parked and intact, and the caller walks down the ladder
        (another candidate, then dedup, then cold).
        """
        table = sandbox.dedup_table
        assert isinstance(table, TemplateDeltaTable)
        assert self.templates is not None
        agent = self.agents[sandbox.node_id]
        try:
            outcome = agent.fork_restore(
                table, now=self.sim.now, verify=self.config.verify_restores
            )
        except RetryExhausted as exc:
            record.retry_penalty_ms += exc.charged_ms
            self.metrics.template_fork_fallbacks += 1
            return False
        # A spilled ("template-cold") delta reads back from the pool
        # first — charged into the fork's promote leg, after the fork is
        # known to proceed so a failed attempt leaves the spill intact.
        unspill_ms = self._unspill_delta(sandbox)
        node = self.nodes[sandbox.node_id]
        for segment in outcome.promoted:
            node.pin_template(segment.segment_id, segment.full_bytes)
        self.metrics.template_promotions += len(outcome.promoted)
        self.metrics.template_promote_bytes += outcome.promoted_bytes
        self._timers_for(sandbox).cancel_all()
        sandbox.busy_request_id = request.request_id
        sandbox.transition(SandboxState.RESTORING, self.sim.now)
        timings = outcome.timings
        startup_ms = timings.total_ms + unspill_ms + record.retry_penalty_ms
        self.metrics.template_forks.append(
            TemplateForkRecord(
                function=sandbox.function,
                sandbox_id=sandbox.sandbox_id,
                started_ms=self.sim.now,
                promote_ms=timings.promote_ms + unspill_ms,
                apply_ms=timings.apply_ms,
                restore_ms=timings.restore_ms,
                promoted_bytes=outcome.promoted_bytes,
                patched_pages=table.patched_pages,
                unique_pages=len(table.unique_pages),
                zero_pages=len(table.zero_pages),
                retry_ms=timings.retry_ms,
                retries=timings.retries,
                cow_shared_bytes=table.cow_shareable_full_bytes,
            )
        )
        if sandbox.function in self.stats:
            # Template forks feed the same startup estimator as dedup
            # restores: both are the policy's "parked restart" latency.
            self.stats[sandbox.function].record_dedup_start(startup_ms)
        record.start_type = StartType.TEMPLATE
        record.queued_ms = self.sim.now - record.arrival_ms
        record.startup_ms = startup_ms

        def finish_fork() -> None:
            table = sandbox.dedup_table
            assert isinstance(table, TemplateDeltaTable)
            assert self.templates is not None
            sandbox.image = outcome.image
            cow = table.cow_shareable_full_bytes
            if cow > 0:
                # The fork maps clean template pages copy-on-write from
                # the node's replicas: the sandbox is charged only for
                # the pages it owns, and the shared replicas stay pinned
                # until it parks or dies (see _end_template_sharing).
                sandbox.template_cow_bytes = cow
                sandbox.template_share_keys = table.segment_keys
                self.templates.add_sharers(table.segment_keys, sandbox.node_id)
            # As in finish_restore: transition while the table is still
            # set so accounting observers see a defined footprint.
            sandbox.transition(SandboxState.RUNNING, self.sim.now)
            sandbox.dedup_table = None
            self.templates.release(table.segment_keys)
            self._run_request(sandbox, request, record, already_started=True)

        timer = self.sim.after(startup_ms, finish_fork)
        self._inflight[request.request_id] = (timer, sandbox, request, record)
        return True

    def _start_cold(
        self, request: Request, record: RequestRecord, *, desperate: bool = False
    ) -> bool:
        profile = self.suite.get(request.function)
        node = self._place(profile.memory_bytes, allow_bases=desperate)
        if node is None:
            return False
        sandbox = self._spawn(profile, node)
        sandbox.busy_request_id = request.request_id
        record.start_type = StartType.COLD
        record.queued_ms = self.sim.now - record.arrival_ms
        cold_ms = (
            self.config.cold_start_ms(profile)
            + self.config.costs.spawn_placement_ms
            + record.retry_penalty_ms
        )
        record.startup_ms = cold_ms

        def finish_spawn() -> None:
            if sandbox.state is not SandboxState.SPAWNING:
                return  # crash-purged mid-spawn; the request re-dispatched
            sandbox.transition(SandboxState.RUNNING, self.sim.now)
            self._run_request(sandbox, request, record, already_started=True)

        timer = self.sim.after(cold_ms, finish_spawn)
        self._inflight[request.request_id] = (timer, sandbox, request, record)
        return True

    def _run_request(
        self,
        sandbox: Sandbox,
        request: Request,
        record: RequestRecord,
        *,
        already_started: bool = False,
    ) -> None:
        """Schedule execution; startup (unless already elapsed) + exec."""
        exec_ms = self._exec_ms(request)
        record.exec_ms = exec_ms
        delay = exec_ms if already_started else record.startup_ms + exec_ms

        def complete() -> None:
            self._inflight.pop(request.request_id, None)
            self.metrics.on_completion(record, self.sim.now)
            sandbox.busy_request_id = None
            sandbox.served_requests += 1
            sandbox.transition(SandboxState.WARM, self.sim.now)
            self._arm_idle_timers(sandbox)
            self._drain_queue()

        timer = self.sim.after(delay, complete)
        self._inflight[request.request_id] = (timer, sandbox, request, record)

    # ------------------------------------------------------------- spawn

    def _spawn(self, profile, node: Node) -> Sandbox:
        sandbox = Sandbox(
            profile=profile,
            node_id=node.node_id,
            instance_seed=self._next_instance_seed(),
            created_at=self.sim.now,
            tenant=self._tenant_of.get(profile.name, ""),
            domain=self._function_domain.get(profile.name, ""),
        )
        node.admit(sandbox)
        if self.indexed:
            # After the node's accounting observer, so index reads see
            # up-to-date memory charges.
            sandbox.observers.append(self._index.on_transition)
            self._index.on_spawn(sandbox)
        self._function_sandboxes(profile.name)[sandbox.sandbox_id] = sandbox
        self.metrics.sandboxes_created += 1
        return sandbox

    def _evictable_sandboxes(self, node: Node) -> list[Sandbox]:
        """Node's purgeable idle victims, unranked."""
        victims = [s for s in node.sandboxes.values() if s.evictable]
        if self.tiering or self.templates is not None:
            # Dedup-cold / template-cold sandboxes hold no DRAM (their
            # table lives on SSD or in the remote template pool); purging
            # them frees nothing and destroys restorable state.
            victims = [s for s in victims if s.table_tier is None]
        return victims

    def _unpinned_base_sandboxes(self, node: Node) -> list[Sandbox]:
        """Node's last-resort base victims (refcount 0), unranked."""
        return [
            s
            for s in node.sandboxes.values()
            if s.is_base
            and s.idle_warm
            and s.base_checkpoint_id is not None
            and not self.store.get(s.base_checkpoint_id).pinned
        ]

    def _eviction_candidates(self, node: Node, *, include_bases: bool) -> list[Sandbox]:
        """Node's LRU idle victims.

        Base sandboxes anchor every future dedup of their function, so
        they are spared under ordinary pressure; ``include_bases`` opens
        up *unpinned* bases (refcount 0) as a genuine last resort —
        without it, an unpinned base on a full node could starve queued
        work indefinitely.  ``eviction_scan_cap`` bounds the candidates
        ranked per call without changing which victim is purged next
        (the capped list is an exact prefix of the unlimited order); the
        ranked count feeds ``metrics.eviction_candidates_scanned``, so
        scan volume under pressure is observable either way.
        """
        cap = self.config.eviction_scan_cap or None
        victims = rank_victims(
            self._evictable_sandboxes(node), self.config.eviction_order, limit=cap
        )
        self.metrics.eviction_candidates_scanned += len(victims)
        if include_bases:
            unpinned_bases = rank_victims(
                self._unpinned_base_sandboxes(node), EvictionOrder.LRU, limit=cap
            )
            self.metrics.eviction_candidates_scanned += len(unpinned_bases)
            victims = victims + unpinned_bases
        return victims

    def _reclaimable_bytes(self, node: Node, *, include_bases: bool) -> int:
        """Memory evicting every candidate would free — unranked.

        The placement gate only needs the *total*, so it skips the
        ranking entirely: an O(idle) sum that stays exact under an
        ``eviction_scan_cap`` (a capped ranked list would undercount and
        wrongly skip nodes with enough reclaimable memory).
        """
        total = sum(s.memory_bytes() for s in self._evictable_sandboxes(node))
        if include_bases:
            total += sum(
                s.memory_bytes() for s in self._unpinned_base_sandboxes(node)
            )
        if self.templates is not None:
            # Droppable template replicas (pool copies survive; the last
            # node-DRAM replica of a hot template is exempt).
            total += sum(
                segment.full_bytes
                for segment in self.templates.evictable_replicas(
                    node.node_id, self.sim.now
                )
            )
        return total

    def _place(self, needed_bytes: int, *, allow_bases: bool = False) -> Node | None:
        """Least-used node that fits, evicting idle sandboxes if needed.

        ``allow_bases`` is the starvation path: a request that has been
        queued past STARVATION_MS may also evict unpinned base sandboxes
        rather than wait indefinitely.
        """
        node = self._try_place(needed_bytes, include_bases=False)
        if node is not None or not allow_bases:
            return node
        return self._try_place(needed_bytes, include_bases=True)

    def _try_place(self, needed_bytes: int, *, include_bases: bool) -> Node | None:
        # Both paths fix the candidate order at entry (evictions below
        # do not re-rank it): the scan path by sorting a fresh list, the
        # indexed path by snapshotting the maintained order.
        down = self._faults.health.down_nodes if self._faults is not None else frozenset()
        if self.indexed:
            candidates = self._usage.snapshot(exclude=down)
        else:
            candidates = sorted(
                (n for n in self.nodes if n.node_id not in down),
                key=lambda n: (n.used_bytes(), n.node_id),
            )
        for node in candidates:
            if node.fits(needed_bytes):
                return node
        for node in candidates:
            reclaimable = node.free_bytes() + self._reclaimable_bytes(
                node, include_bases=include_bases
            )
            if reclaimable < needed_bytes:
                continue
            # Re-fetch candidates each round: purging can re-enter the
            # dispatcher (queued work drains) and evict on its own.
            while not node.fits(needed_bytes):
                if self.templates is not None and self._drop_one_replica(node):
                    # Replica eviction loses no state at all (the pool
                    # copy re-promotes), so it is always the cheapest
                    # rung — drop cold replicas before purging sandboxes.
                    continue
                victims = self._eviction_candidates(node, include_bases=include_bases)
                if not victims:
                    break
                victim = victims[0]
                if self.templates is not None:
                    # Function-coverage-aware order: a victim whose
                    # function has other live copies purges at zero wire
                    # cost, while evicting a *last* copy costs either a
                    # future cold start or a pool round-trip.  Prefer
                    # the redundant victim even if it is not the LRU
                    # head; last copies go only when every candidate is
                    # one.
                    victim = next(
                        (v for v in victims if self._has_other_copy(v)), victim
                    )
                if (
                    self.tiering
                    and victim.state is SandboxState.DEDUP
                    and self._demote_table(victim)
                ):
                    # Demote-before-purge: the table moved to SSD, its
                    # DRAM is free and the sandbox stays restorable.
                    continue
                if (
                    self.templates is not None
                    and victim.state is SandboxState.WARM
                    and self._park_victim_as_template(victim)
                ):
                    # Park-before-purge: the warm victim shrank to its
                    # template delta, so its next start is a fork rather
                    # than a cold start.  If the freed slack is still
                    # not enough, the loop comes back around and the
                    # spill rung below demotes the delta to the pool.
                    continue
                if (
                    self.templates is not None
                    and victim.state is SandboxState.DEDUP
                    and self._spill_delta(victim)
                ):
                    # Spill-before-purge: the parked delta moved to the
                    # remote-DRAM pool ("template-cold"), its node DRAM
                    # is free, and the sandbox stays fork-restorable at
                    # the charged pool-read cost.
                    continue
                self._purge(victim, reason="evicted")
                self.metrics.evictions += 1
            if node.fits(needed_bytes):
                return node
        return None

    def _has_other_copy(self, sandbox: Sandbox) -> bool:
        """Does any other live sandbox of this function exist?  If so,
        losing ``sandbox`` cannot by itself cause the function's next
        arrival to start cold."""
        return any(
            other is not sandbox and other.state is not SandboxState.PURGED
            for other in self._function_sandboxes(sandbox.function).values()
        )

    def _drop_one_replica(self, node: Node) -> bool:
        """Evict the coldest droppable template replica on ``node``.

        Never strands a parked delta: the pool copy is authoritative and
        the catalog's hot-window guard keeps the last node-DRAM replica
        of any recently forked template in place.
        """
        assert self.templates is not None
        victims = self.templates.evictable_replicas(node.node_id, self.sim.now)
        if not victims:
            return False
        segment = victims[0]
        self.templates.drop_replica(node.node_id, segment)
        self.templates.replica_evictions += 1
        node.unpin_template(segment.segment_id)
        self.metrics.template_replica_evictions += 1
        return True

    def _park_victim_as_template(self, sandbox: Sandbox) -> bool:
        """Eviction rung between replica drops and purges: park a warm
        victim as a template delta instead of destroying it.

        A dedup park is not viable here — it needs O(pages) registry
        round-trips mid-eviction — but a template park is local patching
        against known segments plus one pool write, so the controller
        can shrink the victim to its delta on the spot.  The memory gap
        (full footprint minus the retained delta) frees immediately;
        the park runs synchronously because placement needs those bytes
        in this very round.  Returns False (victim untouched, caller
        purges) when the pool cannot take the segments or the publish's
        transient-RPC plan is exhausted.

        Last-copy gated, like the spill rung: parking a *redundant*
        warm victim trades its full footprint for a delta the function
        will likely never fork (another sandbox already serves it), and
        under exactly the pressure that is evicting — the retained
        deltas crowd out warm capacity and the cold-start count goes
        *up*.  Redundant victims purge outright, as the template-free
        controller would.
        """
        assert self.templates is not None
        if self._has_other_copy(sandbox):
            return False
        self._ensure_image(sandbox)
        agent = self.agents[sandbox.node_id]
        try:
            outcome = agent.templatize(sandbox)
        except (TemplatePoolFull, RetryExhausted):
            self.metrics.template_pool_rejections += 1
            return False
        self._timers_for(sandbox).cancel_all()
        sandbox.transition(SandboxState.DEDUPING, self.sim.now)
        self._complete_templatize(sandbox, outcome, self.sim.now)
        self.metrics.template_evict_parks += 1
        # The delta stays in node DRAM: the park already freed the gap
        # between the full footprint and the retained delta, and the
        # paired warm charge's entropy never crosses the wire.  If that
        # slack is still not enough, the eviction loop comes back around
        # and the spill rung demotes this same delta to local SSD — the
        # demotion is paid lazily, only under sustained pressure.
        return True

    def _delta_ssd_account(self, node_id: int) -> TierAccount:
        """The node's SSD capacity account for spilled template deltas."""
        account = self._delta_ssd.get(node_id)
        if account is None:
            assert self.templates is not None
            config = self.templates.pool.config
            account = TierAccount(capacity_bytes=config.ssd_capacity_bytes)
            self._delta_ssd[node_id] = account
        return account

    def _spill_delta(self, sandbox: Sandbox) -> bool:
        """Demote a parked template delta onto the node's local SSD.

        The template analogue of :meth:`_demote_table`'s dedup-cold rung
        (§9 parks cold dedup tables on SSD the same way): the sandbox's
        node-DRAM charge drops to zero while it stays fork-restorable —
        the next fork reads the delta back at the charged SSD cost
        before applying it over the replicas.  The delta never crosses
        the fabric: only template *segments* get remote-DRAM durability
        (they are shared and must survive node crashes); a per-function
        delta dies with its node exactly like the warm image it came
        from, so shipping it to the pool buys nothing but wire traffic.

        Only the *last* live copy of a function's state is worth
        keeping: purging a redundant delta costs nothing (another
        sandbox still averts the cold start), while purging the last
        one turns the function's next arrival into a cold start.  The
        last-copy gate keeps spill traffic bounded by the function
        count, not the eviction rate.

        Under SSD pressure the node's oldest spilled delta is purged to
        make room (the coldest restorable state in the system); returns
        False when even that cannot fit the new delta.
        """
        assert self.templates is not None
        table = sandbox.dedup_table
        if (
            sandbox.state is not SandboxState.DEDUP
            or sandbox.busy_request_id is not None
            or sandbox.table_tier is not None
            or not isinstance(table, TemplateDeltaTable)
        ):
            return False
        if self._has_other_copy(sandbox):
            return False  # redundant copy: purging it loses nothing
        nbytes = table.retained_full_bytes
        ssd = self._delta_ssd_account(sandbox.node_id)
        while not ssd.fits(nbytes):
            victim = next(
                (s for s in self._spilled.values() if s.node_id == sandbox.node_id),
                None,
            )
            if victim is None:
                return False
            self._purge(victim, reason="ssd-pressure")
            if not (
                sandbox.state is SandboxState.DEDUP
                and sandbox.busy_request_id is None
                and sandbox.table_tier is None
            ):
                # The purge re-entered the dispatcher and this
                # sandbox was claimed for a fork meanwhile.
                return False
        ssd.charge(nbytes)
        self._timers_for(sandbox).cancel_all()
        sandbox.table_tier = StorageTier.LOCAL_SSD
        self.nodes[sandbox.node_id].recharge_sandbox(sandbox.sandbox_id)
        self._spilled[sandbox.sandbox_id] = sandbox
        self.metrics.template_delta_spills += 1
        self.metrics.template_delta_spill_bytes += nbytes
        return True

    def _unspill_delta(self, sandbox: Sandbox) -> float:
        """Read a spilled ("template-cold") delta back from the node's
        SSD for a fork; returns the charged read cost (0.0 when never
        spilled)."""
        if sandbox.table_tier is None:
            return 0.0
        assert self.templates is not None
        table = sandbox.dedup_table
        assert isinstance(table, TemplateDeltaTable)
        nbytes = table.retained_full_bytes
        cost_ms = self.templates.pool.config.ssd_read_ms(nbytes)
        self._delta_ssd_account(sandbox.node_id).release(nbytes)
        sandbox.table_tier = None
        self.nodes[sandbox.node_id].recharge_sandbox(sandbox.sandbox_id)
        self._spilled.pop(sandbox.sandbox_id, None)
        self.metrics.template_delta_unspill_bytes += nbytes
        return cost_ms

    def spawn_prewarmed(self, function: str) -> bool:
        """Spawn a sandbox ahead of demand (adaptive policy pre-warming)."""
        profile = self.suite.get(function)
        node = self._place(profile.memory_bytes)
        if node is None:
            return False
        sandbox = self._spawn(profile, node)
        self.metrics.prewarm_spawns += 1
        cold_ms = self.config.cold_start_ms(profile) + self.config.costs.spawn_placement_ms

        def finish_spawn() -> None:
            if sandbox.state is not SandboxState.SPAWNING:
                return  # crash-purged mid-spawn
            sandbox.transition(SandboxState.WARM, self.sim.now)
            self._arm_idle_timers(sandbox)
            self._drain_queue()

        self.sim.after(cold_ms, finish_spawn)
        return True

    def _drain_queue(self) -> None:
        if self._draining or not self._queue:
            return
        self._draining = True
        try:
            remaining: list[tuple[Request, RequestRecord]] = []
            for request, record in self._queue:
                desperate = self.sim.now - record.arrival_ms > STARVATION_MS
                if not self._try_dispatch(request, record, desperate=desperate):
                    remaining.append((request, record))
            self._queue = remaining
        finally:
            self._draining = False

    # ---------------------------------------------------------- lifecycle

    def _arm_idle_timers(self, sandbox: Sandbox) -> None:
        """Arm the idle-period and keep-alive timers of an idle warm sandbox."""
        timers = self._timers_for(sandbox)
        timers.cancel_all()
        function = sandbox.function
        idle_period = self.policy.idle_period_ms(function)
        if idle_period is not None:
            timers.idle = self.sim.after(idle_period, lambda: self._on_idle_expiry(sandbox))
        keep_alive = self.policy.keep_alive_ms(function, self.sim.now)
        timers.keep_alive = self.sim.after(
            keep_alive, lambda: self._on_keep_alive_expiry(sandbox)
        )

    def _on_idle_expiry(self, sandbox: Sandbox) -> None:
        """Idle period elapsed: consult the policy (Medes only)."""
        if not sandbox.idle_warm:
            return
        timers = self._timers_for(sandbox)
        idle_period = self.policy.idle_period_ms(sandbox.function)
        if idle_period is None:
            return
        if sandbox.is_base:
            # Base sandboxes stay warm while they anchor dedup state.
            timers.idle = self.sim.after(idle_period, lambda: self._on_idle_expiry(sandbox))
            return
        registry_down = (
            self._faults is not None and not self._faults.health.registry_available()
        )
        if registry_down and self.templates is None:
            # Degradation ladder (DESIGN.md §11): with a registry shard
            # down no new dedup ops are admitted; stay warm and re-ask
            # after the next idle period.  (Template parking needs no
            # registry, so a catalog keeps the consultation open.)
            self.metrics.dedup_deferrals += 1
            timers.idle = self.sim.after(idle_period, lambda: self._on_idle_expiry(sandbox))
            return
        decision = self.policy.decide_idle(sandbox.function, self.build_view())
        if decision is Decision.KEEP_WARM:
            timers.idle = self.sim.after(idle_period, lambda: self._on_idle_expiry(sandbox))
            return
        if decision is Decision.TEMPLATE:
            if self._begin_templatize(sandbox):
                return
            # Pool full or publish retry storm: fall down one rung.
            if registry_down:
                # No dedup rung during the outage; stay warm and re-ask.
                self.metrics.dedup_deferrals += 1
                timers.idle = self.sim.after(
                    idle_period, lambda: self._on_idle_expiry(sandbox)
                )
                return
            # Fall through to the base rule and the dedup op below.
        # The D/B > T rule: a function with heavy dedup traffic gets an
        # additional base outright.
        if self.basemgr.base_count(sandbox.function) > 0 and self.basemgr.needs_new_base(
            sandbox.function
        ):
            self._make_base(sandbox)
            timers.idle = self.sim.after(idle_period, lambda: self._on_idle_expiry(sandbox))
            return
        became_base = self._begin_dedup(sandbox)
        if became_base:
            # _begin_dedup cancelled the timers; the sandbox stayed warm
            # (as a base), so both idle and keep-alive must be re-armed.
            self._arm_idle_timers(sandbox)

    def _on_keep_alive_expiry(self, sandbox: Sandbox) -> None:
        if not sandbox.idle_warm:
            return
        now = self.sim.now
        keep_alive = self.policy.keep_alive_ms(sandbox.function, now)
        idle_for = now - sandbox.last_used_at
        if idle_for + 1e-6 < keep_alive:
            # The policy's window moved (adaptive); re-arm for the rest.
            self._timers_for(sandbox).keep_alive = self.sim.after(
                keep_alive - idle_for, lambda: self._on_keep_alive_expiry(sandbox)
            )
            return
        if sandbox.is_base and sandbox.base_checkpoint_id is not None:
            checkpoint = self.store.get(sandbox.base_checkpoint_id)
            if checkpoint.pinned:
                # Keep the anchor warm; re-check one keep-alive later.
                self._timers_for(sandbox).keep_alive = self.sim.after(
                    keep_alive, lambda: self._on_keep_alive_expiry(sandbox)
                )
                return
        function = sandbox.function
        self._purge(sandbox, reason="keep-alive")
        delay = self.policy.prewarm_delay_ms(function, self.sim.now)
        if delay is not None:
            self.sim.after(delay, lambda: self.spawn_prewarmed(function))

    def _on_keep_dedup_expiry(self, sandbox: Sandbox) -> None:
        if sandbox.state is SandboxState.DEDUP and sandbox.busy_request_id is None:
            if (
                self.tiering
                and not isinstance(sandbox.dedup_table, TemplateDeltaTable)
                and self._demote_table(sandbox)
            ):
                # Dedup-cold: the patch table parks on SSD instead of
                # dying; the sandbox stays restorable at SSD read cost.
                return
            self._purge(sandbox, reason="keep-dedup")

    # ------------------------------------------------------------- tiering

    def _demote_table(self, sandbox: Sandbox) -> bool:
        """Park a DEDUP sandbox's patch table on its node's SSD.

        Returns False when the sandbox is no longer demotable (already
        cold, or reclaimed by a re-entrant dispatch while we purged cold
        victims for SSD room) or when the SSD cannot make room.
        """
        store = self.tiered_store
        assert store is not None
        if sandbox.table_tier is not None:
            return False
        table = sandbox.dedup_table
        assert table is not None
        if isinstance(table, TemplateDeltaTable):
            # Template deltas demote through the template pool
            # (:meth:`_spill_delta`), never through the SSD tier.
            return False
        nbytes = table.retained_full_bytes
        node_id = sandbox.node_id
        while not store.ssd_fits(node_id, nbytes):
            # SSD pressure: retire the oldest cold table on this node.
            victim = next(
                (s for s in self._cold.values() if s.node_id == node_id), None
            )
            if victim is None:
                return False
            self._purge(victim, reason="ssd-pressure")
            if not (
                sandbox.state is SandboxState.DEDUP
                and sandbox.busy_request_id is None
                and sandbox.table_tier is None
            ):
                # The purge re-entered the dispatcher and this sandbox
                # was claimed for a restore meanwhile.
                return False
        cost_ms = store.demote_table(sandbox.sandbox_id, node_id, nbytes)
        self._timers_for(sandbox).cancel_all()
        sandbox.table_tier = StorageTier.LOCAL_SSD
        self.nodes[node_id].recharge_sandbox(sandbox.sandbox_id)
        self._cold[sandbox.sandbox_id] = sandbox
        self.metrics.table_demotions += 1
        self.metrics.tier_ops.append(
            TierOpRecord(
                time_ms=self.sim.now,
                kind="demote",
                subject="table",
                tier=StorageTier.LOCAL_SSD.value,
                nbytes=nbytes,
                cost_ms=cost_ms,
            )
        )
        self._drain_queue()  # the freed DRAM may admit queued work
        return True

    def _promote_table(self, sandbox: Sandbox) -> float:
        """Read a parked table back from SSD for a restore; returns the
        charged read cost (0.0 when the table was never parked)."""
        store = self.tiered_store
        assert store is not None
        location = store.table_location(sandbox.sandbox_id)
        if location is None:
            return 0.0
        _node_id, nbytes = location
        cost_ms = store.promote_table(sandbox.sandbox_id)
        sandbox.table_tier = None
        self.nodes[sandbox.node_id].recharge_sandbox(sandbox.sandbox_id)
        self._cold.pop(sandbox.sandbox_id, None)
        self.metrics.table_promotions += 1
        self.metrics.tier_ops.append(
            TierOpRecord(
                time_ms=self.sim.now,
                kind="promote",
                subject="table",
                tier=StorageTier.NODE_DRAM.value,
                nbytes=nbytes,
                cost_ms=cost_ms,
            )
        )
        return cost_ms

    def _promote_checkpoints(self, table) -> float:
        """Bring demoted base checkpoints a restore will read back into
        their node's DRAM, where it has room; returns the charged cost.

        A popular base paying tier reads on every restore earns its DRAM
        back the first time a restore touches it on an unloaded node;
        checkpoints on full (or unreachable) nodes stay demoted and the
        restore reads through at tier cost instead.
        """
        store = self.tiered_store
        assert store is not None
        fabric = next(iter(self.agents.values())).fabric
        total_ms = 0.0
        for checkpoint_id in sorted(table.base_refs):
            checkpoint = store.get(checkpoint_id)
            if checkpoint.tier is StorageTier.NODE_DRAM:
                continue
            if not fabric.peer_available(checkpoint.node_id):
                continue
            node = self.nodes[checkpoint.node_id]
            if not node.fits(checkpoint.full_size_bytes):
                continue
            move = store.promote_checkpoint(checkpoint)
            node.recharge_checkpoint(checkpoint.checkpoint_id)
            self.metrics.checkpoint_promotions += 1
            self.metrics.tier_ops.append(
                TierOpRecord(
                    time_ms=self.sim.now,
                    kind="promote",
                    subject="checkpoint",
                    tier=StorageTier.NODE_DRAM.value,
                    nbytes=move.nbytes,
                    cost_ms=move.cost_ms,
                )
            )
            total_ms += move.cost_ms
        return total_ms

    def _demote_checkpoint(self, checkpoint: BaseCheckpoint) -> bool:
        """Move a pinned, ownerless checkpoint off node DRAM (far-memory
        pool first, node SSD as overflow)."""
        store = self.tiered_store
        assert store is not None
        move = store.demote_checkpoint(checkpoint)
        if move is None:
            return False
        self.nodes[checkpoint.node_id].recharge_checkpoint(checkpoint.checkpoint_id)
        self.metrics.checkpoint_demotions += 1
        self.metrics.tier_ops.append(
            TierOpRecord(
                time_ms=self.sim.now,
                kind="demote",
                subject="checkpoint",
                tier=move.tier.value,
                nbytes=move.nbytes,
                cost_ms=move.cost_ms,
            )
        )
        return True

    # -------------------------------------------------------------- dedup

    def _make_base(self, sandbox: Sandbox) -> None:
        """Demarcate a warm sandbox as a base (Section 4.1.3).

        Checkpointing the image and registering every page's fingerprint
        take real time (``CostModel.checkpoint_ms`` / ``register_ms``);
        the sandbox is marked busy for that duration, so it cannot serve
        requests or re-enter the idle machinery mid-demarcation.  The
        registry contents become visible immediately — the simulation
        collapses the op's effect to its start, like the dedup op does —
        but the time is charged and surfaced in ``metrics.base_ops``.
        """
        self._ensure_image(sandbox)
        assert sandbox.image is not None
        node = self.nodes[sandbox.node_id]
        checkpoint = BaseCheckpoint(
            function=sandbox.function,
            node_id=sandbox.node_id,
            image=sandbox.image,
            owner_sandbox_id=sandbox.sandbox_id,
            full_size_bytes=sandbox.profile.memory_bytes,
            domain=sandbox.domain,
        )
        self.basemgr.add_base(checkpoint)
        node.pin_checkpoint(checkpoint)
        agent = self.agents[sandbox.node_id]
        image = checkpoint.image
        fingerprints = batch_page_fingerprints(
            image.data, image.page_size, agent.fingerprint_config
        )
        for index, fingerprint in enumerate(fingerprints):
            ref = PageRef(checkpoint.checkpoint_id, sandbox.node_id, index)
            self.registry.register_page(ref, fingerprint, checkpoint.domain)
            # The full-page replica index (exact content digests) backs
            # crash rehoming: byte-identical pages on surviving bases
            # can absorb a dead base's patch references unchanged.
            self.registry.register_page_location(
                ref, hash_bytes(image.page_bytes(index)), checkpoint.domain
            )
        sandbox.is_base = True
        sandbox.base_checkpoint_id = checkpoint.checkpoint_id
        self.metrics.bases_created += 1

        costs = self.config.costs
        full_pages = max(1, round(image.num_pages / self.config.content_scale))
        record = BaseOpRecord(
            function=sandbox.function,
            sandbox_id=sandbox.sandbox_id,
            started_ms=self.sim.now,
            checkpoint_ms=costs.checkpoint_ms(full_pages),
            register_ms=costs.register_ms(full_pages),
        )
        self.metrics.base_ops.append(record)
        sandbox.busy_request_id = _BASE_OP_BUSY
        if self.indexed:
            # The busy flag changed without a state transition, so no
            # observer fired; update candidate membership by hand.
            self._index.refresh(sandbox)

        def finish_base_op() -> None:
            if sandbox.busy_request_id != _BASE_OP_BUSY:
                return  # purged (or otherwise reclaimed) mid-demarcation
            sandbox.busy_request_id = None
            if self.indexed:
                self._index.refresh(sandbox)
            if sandbox.state is SandboxState.WARM:
                self._arm_idle_timers(sandbox)

        self.sim.after(record.total_ms, finish_base_op)

    def _abort_dedup(self, sandbox: Sandbox) -> None:
        """Cancel an in-flight dedup op and return the sandbox to warm.

        The refcounts the op acquired are rolled back; the memory
        checkpoint is simply dropped (the warm image never went away).
        """
        pending = self._pending_dedups.pop(sandbox.sandbox_id, None)
        if pending is None:
            raise RuntimeError(f"sandbox {sandbox.sandbox_id} has no dedup in flight")
        timer, outcome = pending
        timer.cancel()
        self._release_retained(outcome.table)
        sandbox.transition(SandboxState.WARM, self.sim.now)

    def _begin_dedup(self, sandbox: Sandbox) -> bool:
        """Kick off the (background) dedup op for an idle warm sandbox.

        Returns True when the trial dedup saved too little — the cluster
        lacks base coverage for this function's content — and the
        sandbox was demarcated as a base instead of deduplicating.
        """
        self._timers_for(sandbox).cancel_all()
        sandbox.transition(SandboxState.DEDUPING, self.sim.now)
        self._ensure_image(sandbox)
        agent = self.agents[sandbox.node_id]
        try:
            outcome = agent.dedup(sandbox)
        except RegistryUnavailable:
            # Registry lookups timed out past the retry budget: defer
            # the dedup (no refcounts were acquired) and stay warm.
            sandbox.transition(SandboxState.WARM, self.sim.now)
            self.metrics.dedup_deferrals += 1
            self._arm_idle_timers(sandbox)
            return False
        if (
            outcome.table.stats.savings_fraction < self.config.base_savings_threshold
            and self.basemgr.needs_new_base(sandbox.function)
        ):
            self._release_base_refs(outcome.table)
            sandbox.transition(SandboxState.WARM, self.sim.now)
            self._make_base(sandbox)
            return True
        started = self.sim.now

        def finish_dedup() -> None:
            self._pending_dedups.pop(sandbox.sandbox_id, None)
            sandbox.dedup_table = outcome.table
            sandbox.image = None
            sandbox.dedup_count += 1
            self._end_template_sharing(sandbox)
            sandbox.transition(SandboxState.DEDUP, self.sim.now)
            self.basemgr.note_dedup(sandbox.function, +1)
            if sandbox.function in self.stats:
                fraction = outcome.table.retained_full_bytes / sandbox.profile.memory_bytes
                self.stats[sandbox.function].record_retained_fraction(min(1.0, fraction))
            self.metrics.dedup_ops.append(
                DedupOpRecord(
                    function=sandbox.function,
                    sandbox_id=sandbox.sandbox_id,
                    started_ms=started,
                    duration_ms=outcome.timings.total_ms,
                    lookup_ms=outcome.timings.lookup_ms,
                    savings_fraction=outcome.table.stats.savings_fraction,
                    retained_full_bytes=outcome.table.retained_full_bytes,
                    same_function_pages=outcome.table.stats.same_function_pages,
                    cross_function_pages=outcome.table.stats.cross_function_pages,
                    retry_ms=outcome.timings.retry_ms,
                    retries=outcome.timings.retries,
                )
            )
            timers = self._timers_for(sandbox)
            timers.keep_dedup = self.sim.after(
                self.policy.keep_dedup_ms(sandbox.function),
                lambda: self._on_keep_dedup_expiry(sandbox),
            )
            self._drain_queue()  # the freed memory may admit queued work

        timer = self.sim.after(outcome.timings.total_ms, finish_dedup)
        self._pending_dedups[sandbox.sandbox_id] = (timer, outcome)
        return False

    def _begin_templatize(self, sandbox: Sandbox) -> bool:
        """Kick off the (background) template park of an idle warm sandbox.

        Returns False when the template path cannot proceed — the pool
        cannot fit the missing segments even after reclaiming idle ones,
        or the pool write's transient-RPC plan was exhausted.  Either
        way no state was created (the agent's op is all-or-nothing), the
        sandbox is untouched, and the caller falls back to the dedup
        rung of the ladder.
        """
        self._ensure_image(sandbox)
        agent = self.agents[sandbox.node_id]
        try:
            outcome = agent.templatize(sandbox)
        except (TemplatePoolFull, RetryExhausted):
            self.metrics.template_pool_rejections += 1
            return False
        self._timers_for(sandbox).cancel_all()
        sandbox.transition(SandboxState.DEDUPING, self.sim.now)
        started = self.sim.now

        def finish_templatize() -> None:
            self._pending_dedups.pop(sandbox.sandbox_id, None)
            self._complete_templatize(sandbox, outcome, started)
            self._drain_queue()  # the freed memory may admit queued work

        timer = self.sim.after(outcome.duration_ms, finish_templatize)
        self._pending_dedups[sandbox.sandbox_id] = (timer, outcome)
        return True

    def _complete_templatize(self, sandbox: Sandbox, outcome, started: float) -> None:
        """Land a finished templatize op: attach the delta, park the
        sandbox, record the op, and arm the keep-dedup expiry."""
        sandbox.dedup_table = outcome.table
        sandbox.image = None
        sandbox.dedup_count += 1
        self._end_template_sharing(sandbox)
        sandbox.transition(SandboxState.DEDUP, self.sim.now)
        # The base manager stays blind to template parks: they hold
        # no base references, so they must not skew the D/B rule.
        if sandbox.function in self.stats:
            fraction = (
                outcome.table.retained_full_bytes / sandbox.profile.memory_bytes
            )
            self.stats[sandbox.function].record_retained_fraction(min(1.0, fraction))
        self.metrics.template_segments_created += outcome.segments_created
        self.metrics.template_segments_shared += outcome.segments_shared
        self.metrics.template_ops.append(
            TemplateOpRecord(
                function=sandbox.function,
                sandbox_id=sandbox.sandbox_id,
                started_ms=started,
                duration_ms=outcome.duration_ms,
                publish_ms=outcome.publish_ms,
                segments_created=outcome.segments_created,
                segments_shared=outcome.segments_shared,
                published_bytes=outcome.published_bytes,
                savings_fraction=outcome.table.savings_fraction,
                retained_full_bytes=outcome.table.retained_full_bytes,
            )
        )
        timers = self._timers_for(sandbox)
        timers.keep_dedup = self.sim.after(
            self.policy.keep_dedup_ms(sandbox.function),
            lambda: self._on_keep_dedup_expiry(sandbox),
        )

    def _end_template_sharing(self, sandbox: Sandbox) -> None:
        """Unshare a forked sandbox's copy-on-write template pages.

        Called wherever the warm image stops being resident (park,
        purge): the sandbox's charge reverts from the CoW-discounted
        footprint, and the node's replicas become droppable again once
        their last sharer is gone."""
        if not sandbox.template_share_keys:
            return
        assert self.templates is not None
        self.templates.drop_sharers(sandbox.template_share_keys, sandbox.node_id)
        sandbox.template_share_keys = ()
        sandbox.template_cow_bytes = 0

    def _release_retained(self, table) -> None:
        """Release whatever a parked table holds references to: catalog
        segments for a template delta, base checkpoints otherwise."""
        if isinstance(table, TemplateDeltaTable):
            assert self.templates is not None
            self.templates.release(table.segment_keys)
        else:
            self._release_base_refs(table)

    def _release_base_refs(self, table) -> None:
        for checkpoint_id, count in table.base_refs.items():
            checkpoint = self.store.get(checkpoint_id)
            checkpoint.release(count)
            self._maybe_retire_checkpoint(checkpoint)

    def _maybe_retire_checkpoint(self, checkpoint: BaseCheckpoint) -> None:
        """Retire an unpinned base checkpoint whose owner is gone."""
        if checkpoint.pinned or checkpoint.owner_resident:
            return
        self.registry.deregister_checkpoint(checkpoint.checkpoint_id)
        self.nodes[checkpoint.node_id].unpin_checkpoint(checkpoint.checkpoint_id)
        self.basemgr.remove_base(checkpoint)
        self.store.remove(checkpoint.checkpoint_id)

    # ----------------------------------------------------- fault recovery

    def _checkpoint_survives(self, checkpoint: BaseCheckpoint) -> bool:
        """Whether a checkpoint's content outlives its home node's crash
        (far-memory residency only; see ``TieredCheckpointStore``)."""
        return self.tiered_store is not None and self.tiered_store.survives_node_failure(
            checkpoint
        )

    def _unreachable_refs(self, table: "DedupPageTable") -> set[int]:
        """Checkpoint ids in ``table`` whose base pages cannot be read:
        home node unreachable and content not in a surviving tier."""
        fabric = next(iter(self.agents.values())).fabric
        dead: set[int] = set()
        for checkpoint_id in table.base_refs:
            checkpoint = self.store.get(checkpoint_id)
            if self._checkpoint_survives(checkpoint):
                continue
            if not fabric.peer_available(checkpoint.node_id):
                dead.add(checkpoint_id)
        return dead

    def _replica_for(
        self, ref: PageRef, dead: set[int], local_node_id: int, domain: str
    ) -> PageRef | None:
        """A live byte-identical same-domain replica of ``ref``'s page.

        Prefers a replica already on the restoring sandbox's node (free
        local reads), then the lowest (checkpoint, page) for determinism.
        The replica index is partitioned by dedup domain, so it cannot
        return a foreign ref; the explicit ``domain`` check here is a
        second, independent enforcement point — a rehome onto another
        tenant's byte-identical page would silently merge their memory,
        so a mismatch is skipped (and counted) rather than trusted.
        """
        candidates = []
        for replica in self.registry.replicas_for(ref):
            if replica.checkpoint_id in dead:
                continue
            if self._faults is not None and not self._faults.health.node_up(
                replica.node_id
            ):
                continue
            try:
                checkpoint = self.store.get(replica.checkpoint_id)
            except KeyError:
                continue  # retired since it was indexed
            if checkpoint.domain != domain:
                self.metrics.cross_domain_replica_skips += 1
                continue
            candidates.append(replica)
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (r.node_id != local_node_id, r.checkpoint_id, r.page_index),
        )

    def _try_rehome(self, sandbox: Sandbox, dead: set[int]) -> bool:
        """Re-point a dedup sandbox's patched pages at surviving replicas.

        All-or-nothing: either every patched page whose base died has a
        byte-identical live replica (the patches then apply unchanged)
        and the table is rewritten, or the table is left untouched and
        the caller purges.  Refcounts move atomically — acquire the new
        bases, then release the dead ones exactly once.
        """
        if self._faults is None or not self._faults.health.registry_available():
            return False
        table = sandbox.dedup_table
        assert table is not None
        replacements: dict[PageRef, PageRef] = {}
        for entry in table.entries:
            if entry.kind is not PageKind.PATCHED:
                continue
            assert entry.base is not None
            if entry.base.checkpoint_id not in dead:
                continue
            if entry.base in replacements:
                continue
            replica = self._replica_for(entry.base, dead, sandbox.node_id, sandbox.domain)
            if replica is None:
                return False
            replacements[entry.base] = replica
        if not replacements:
            return False
        new_entries = tuple(
            replace(entry, base=replacements[entry.base])
            if entry.kind is PageKind.PATCHED and entry.base in replacements
            else entry
            for entry in table.entries
        )
        new_refs: Counter[int] = Counter()
        for entry in new_entries:
            if entry.kind is PageKind.PATCHED:
                assert entry.base is not None
                new_refs[entry.base.checkpoint_id] += 1
        moved = sum(
            count
            for checkpoint_id, count in table.base_refs.items()
            if checkpoint_id in dead
        )
        for checkpoint_id, count in new_refs.items():
            self.store.get(checkpoint_id).acquire(count)
        self._release_base_refs(table)
        table.entries = new_entries
        table.base_refs = new_refs
        self.metrics.restore_replica_fallbacks += 1
        self.metrics.crash_reconciled_refs += moved
        return True

    def _crash_purge(self, sandbox: Sandbox) -> None:
        """Purge a sandbox on a crashed node, whatever it was doing.

        Normalizes transient states first: a RUNNING/RESTORING sandbox
        has no purge edge in the state machine, so it exits via WARM
        after its in-flight work is rolled back (refcounts released,
        dedup census decremented).
        """
        if sandbox.state is SandboxState.PURGED:
            return
        if sandbox.state is SandboxState.RESTORING:
            table = sandbox.dedup_table
            assert table is not None
            sandbox.dedup_table = None
            sandbox.busy_request_id = None
            sandbox.transition(SandboxState.WARM, self.sim.now)
            if isinstance(table, TemplateDeltaTable):
                assert self.templates is not None
                self.templates.release(table.segment_keys)
            else:
                self._release_base_refs(table)
                self.basemgr.note_dedup(sandbox.function, -1)
        elif sandbox.state is SandboxState.RUNNING:
            sandbox.busy_request_id = None
            sandbox.transition(SandboxState.WARM, self.sim.now)
        self._purge(sandbox, reason="node-crash")

    def on_node_crash(self, node_id: int) -> None:
        """Reconcile cluster state after ``node_id`` died (DESIGN.md §11).

        1. Cancel and collect the in-flight requests the node was
           serving (they re-dispatch below, onto surviving nodes).
        2. Purge every sandbox that lived on the node, rolling back
           whatever each was mid-way through.
        3. For base checkpoints that died with the node: abort in-flight
           dedup ops referencing them, rehome (or purge) the dedup
           sandboxes patched against them, and retire the orphans.
        """
        self._draining = True  # purges must not re-enter dispatch mid-sweep
        self._crashed_node = node_id
        node = self.nodes[node_id]
        displaced: list[tuple[Request, RequestRecord]] = []
        try:
            for request_id in [
                rid
                for rid, (_, sandbox, _, _) in self._inflight.items()
                if sandbox.node_id == node_id
            ]:
                timer, _, request, record = self._inflight.pop(request_id)
                timer.cancel()
                displaced.append((request, record))
            for sandbox in list(node.sandboxes.values()):
                self._crash_purge(sandbox)
                self.metrics.crash_purged_sandboxes += 1
            if self.templates is not None:
                # The node's template replicas died with its DRAM; the
                # pool copies are remote and survive, so every parked
                # delta stays forkable — the next fork on a surviving
                # node just pays the promote read again.
                for segment in self.templates.drop_replicas(node_id):
                    node.unpin_template(segment.segment_id)
            dead = {
                checkpoint.checkpoint_id: checkpoint
                for checkpoint in list(self.store)
                if checkpoint.node_id == node_id
                and not self._checkpoint_survives(checkpoint)
            }
            if dead:
                self._reconcile_dead_bases(dead)
        finally:
            self._draining = False
            self._crashed_node = None
        for request, record in displaced:
            self.metrics.requests_rescheduled += 1
            if not self._try_dispatch(request, record):
                self._queue.append((request, record))
                if self.indexed:
                    self._note_starvation_deadline(self.sim.now + STARVATION_MS + 1.0)
                else:
                    self.sim.after(STARVATION_MS + 1.0, self._drain_queue)
        self._drain_queue()

    def _reconcile_dead_bases(self, dead: dict[int, BaseCheckpoint]) -> None:
        """Release or re-home every reference into dead base checkpoints."""
        dead_ids = set(dead)
        for sandboxes in list(self._by_function.values()):
            for sandbox in list(sandboxes.values()):
                if sandbox.state is SandboxState.DEDUPING:
                    pending = self._pending_dedups.get(sandbox.sandbox_id)
                    if (
                        pending is not None
                        and not isinstance(pending[1].table, TemplateDeltaTable)
                        and dead_ids & set(pending[1].table.base_refs)
                    ):
                        # The op's output would reference dead bases;
                        # abort it (the warm image never went away).
                        self._abort_dedup(sandbox)
                        self.metrics.crash_reconciled_refs += sum(
                            count
                            for cid, count in pending[1].table.base_refs.items()
                            if cid in dead_ids
                        )
                        self._arm_idle_timers(sandbox)
                elif sandbox.state is SandboxState.DEDUP:
                    table = sandbox.dedup_table
                    assert table is not None
                    if isinstance(table, TemplateDeltaTable):
                        # Template segments live in the remote-DRAM pool:
                        # no node's crash can strand a parked delta.
                        continue
                    lost = sum(
                        count
                        for cid, count in table.base_refs.items()
                        if cid in dead_ids
                    )
                    if not lost:
                        continue
                    if not self._try_rehome(sandbox, dead_ids):
                        self.metrics.crash_reconciled_refs += lost
                        self._purge(sandbox, reason="base-lost")
                # RESTORING sandboxes already read their base pages (the
                # simulation charges reads at op start); they finish and
                # release their references naturally.
        for checkpoint_id, checkpoint in dead.items():
            try:
                self.store.get(checkpoint_id)
            except KeyError:
                continue  # already retired while its referents unwound
            self._maybe_retire_checkpoint(checkpoint)

    def on_fault_heal(self) -> None:
        """A fault domain recovered: queued work may be schedulable now."""
        self._drain_queue()

    # -------------------------------------------------------------- purge

    def _purge(self, sandbox: Sandbox, *, reason: str) -> None:
        if sandbox.state is SandboxState.PURGED:
            return  # nested eviction may race a stale candidate list
        self._timers_for(sandbox).cancel_all()
        self._timers.pop(sandbox.sandbox_id, None)
        pending = self._pending_dedups.pop(sandbox.sandbox_id, None)
        if pending is not None:
            # Mid-dedup purge: the completion timer lives outside
            # _SandboxTimers and the op already acquired base refcounts;
            # cancel and roll back so the stale finish_dedup never fires
            # on a purged sandbox and the base checkpoints can retire.
            timer, outcome = pending
            timer.cancel()
            self._release_retained(outcome.table)
            if sandbox.state is SandboxState.DEDUPING:
                # Figure 4b has no DEDUPING -> PURGED edge; the aborted
                # op leaves the warm image intact, so exit via WARM.
                sandbox.transition(SandboxState.WARM, self.sim.now)
        if sandbox.state is SandboxState.DEDUP:
            assert sandbox.dedup_table is not None
            if isinstance(sandbox.dedup_table, TemplateDeltaTable):
                assert self.templates is not None
                if sandbox.table_tier is not None:
                    # A spilled delta dies with its sandbox (and its
                    # node): release the SSD bytes it held.
                    self._delta_ssd_account(sandbox.node_id).release(
                        sandbox.dedup_table.retained_full_bytes
                    )
                    self._spilled.pop(sandbox.sandbox_id, None)
                    sandbox.table_tier = None
                self.templates.release(sandbox.dedup_table.segment_keys)
            else:
                self._release_base_refs(sandbox.dedup_table)
                self.basemgr.note_dedup(sandbox.function, -1)
                if self.tiering:
                    assert self.tiered_store is not None
                    self.tiered_store.release_table(sandbox.sandbox_id)
                    self._cold.pop(sandbox.sandbox_id, None)
        self._end_template_sharing(sandbox)
        sandbox.transition(SandboxState.PURGED, self.sim.now)
        sandbox.dedup_table = None
        sandbox.image = None
        self.nodes[sandbox.node_id].remove(sandbox.sandbox_id)
        self._function_sandboxes(sandbox.function).pop(sandbox.sandbox_id, None)
        if sandbox.is_base and sandbox.base_checkpoint_id is not None:
            checkpoint = self.store.get(sandbox.base_checkpoint_id)
            checkpoint.owner_resident = False
            # The copy-on-write discount ends with the owner: re-account
            # the pinned checkpoint at its full footprint.
            self.nodes[checkpoint.node_id].recharge_checkpoint(checkpoint.checkpoint_id)
            if (
                self.tiering
                and checkpoint.pinned
                and checkpoint.node_id != self._crashed_node
            ):
                # Rather than charge the full footprint to DRAM, move
                # the ownerless-but-pinned checkpoint down a tier; a
                # later restore promotes it back if DRAM has room.  A
                # crashed node's devices died with it — nothing to copy.
                self._demote_checkpoint(checkpoint)
            self._maybe_retire_checkpoint(checkpoint)
        self._drain_queue()
