"""Baseline sandbox-management policies (paper Section 7.1).

* :class:`FixedKeepAlivePolicy` — the AWS Lambda / OpenWhisk model: an
  idle warm sandbox survives a fixed keep-alive period (the paper's
  default, 10 minutes, which its Section-7.5 sweep found best) and is
  then purged.  No deduplication.
* :class:`AdaptiveKeepAlivePolicy` — the Azure Functions model (Shahrad
  et al.): a per-function histogram of inter-arrival times picks the
  keep-alive window, and strongly regular functions are pre-warmed just
  before the predicted next arrival.  Its shorter windows save memory at
  the cost of extra cold starts — exactly the trade-off Figure 9 shows.

Both implement the :class:`~repro.core.policy.LifecyclePolicy` interface
with deduplication disabled (``idle_period_ms`` is None and
``decide_idle`` always keeps sandboxes warm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.policy import ClusterView, Decision

#: Histogram range of the adaptive policy: 1-minute bins up to 4 hours
#: (the Azure policy's bounds).
HISTOGRAM_BIN_MS = 60_000.0
HISTOGRAM_MAX_MS = 240 * 60_000.0

#: Keep-alive percentile of the inter-arrival distribution.  Covering
#: most gaps but not the tail reproduces the adaptive baseline's
#: behaviour in the paper: noticeably lower memory, ~50% more cold
#: starts than Medes.
ADAPTIVE_PERCENTILE = 75.0
ADAPTIVE_MARGIN = 1.2
ADAPTIVE_MIN_MS = 30_000.0
ADAPTIVE_MAX_MS = 20 * 60_000.0
#: Observations needed before trusting the histogram.
ADAPTIVE_MIN_SAMPLES = 5
#: Pre-warm lead time before the predicted next arrival.
PREWARM_LEAD_MS = 2_000.0
#: Regularity bound (IT coefficient of variation) enabling pre-warming.
PREWARM_MAX_CV = 0.5


class FixedKeepAlivePolicy:
    """Fixed keep-alive, no dedup (AWS Lambda / OpenWhisk style)."""

    def __init__(self, keep_alive_ms: float = 600_000.0):
        if keep_alive_ms <= 0:
            raise ValueError("keep_alive_ms must be positive")
        self.name = f"fixed-ka-{keep_alive_ms / 60_000:g}min"
        self._keep_alive_ms = keep_alive_ms

    def keep_alive_ms(self, function: str, now: float) -> float:
        return self._keep_alive_ms

    def idle_period_ms(self, function: str) -> float | None:
        return None

    def keep_dedup_ms(self, function: str) -> float:
        raise RuntimeError("fixed keep-alive never deduplicates")

    def decide_idle(self, function: str, view: ClusterView) -> Decision:
        return Decision.KEEP_WARM

    def on_arrival(self, function: str, now: float) -> None:
        pass

    def prewarm_delay_ms(self, function: str, now: float) -> float | None:
        return None


@dataclass
class _FunctionHistory:
    last_arrival_ms: float | None = None
    intervals: list[float] = field(default_factory=list)

    def observe(self, now: float) -> None:
        if self.last_arrival_ms is not None:
            gap = min(now - self.last_arrival_ms, HISTOGRAM_MAX_MS)
            if gap >= HISTOGRAM_BIN_MS:
                # Bin-center representation, clamped to the histogram range.
                bin_index = int(gap // HISTOGRAM_BIN_MS)
                gap = min((bin_index + 0.5) * HISTOGRAM_BIN_MS, HISTOGRAM_MAX_MS)
            self.intervals.append(gap)
        self.last_arrival_ms = now


class AdaptiveKeepAlivePolicy:
    """Histogram-driven keep-alive with pre-warming (Azure style)."""

    def __init__(
        self,
        *,
        default_keep_alive_ms: float = 600_000.0,
        percentile: float = ADAPTIVE_PERCENTILE,
    ):
        self.name = "adaptive-ka"
        self.default_keep_alive_ms = default_keep_alive_ms
        self.percentile = percentile
        self._history: dict[str, _FunctionHistory] = {}

    def _entry(self, function: str) -> _FunctionHistory:
        return self._history.setdefault(function, _FunctionHistory())

    def on_arrival(self, function: str, now: float) -> None:
        self._entry(function).observe(now)

    def keep_alive_ms(self, function: str, now: float) -> float:
        intervals = self._entry(function).intervals
        if len(intervals) < ADAPTIVE_MIN_SAMPLES:
            return self.default_keep_alive_ms
        window = float(np.percentile(intervals, self.percentile)) * ADAPTIVE_MARGIN
        return float(min(max(window, ADAPTIVE_MIN_MS), ADAPTIVE_MAX_MS))

    def idle_period_ms(self, function: str) -> float | None:
        return None

    def keep_dedup_ms(self, function: str) -> float:
        raise RuntimeError("adaptive keep-alive never deduplicates")

    def decide_idle(self, function: str, view: ClusterView) -> Decision:
        return Decision.KEEP_WARM

    def prewarm_delay_ms(self, function: str, now: float) -> float | None:
        """Pre-warm regular functions just before the predicted arrival.

        Called when a sandbox is purged: a strongly regular function
        (low inter-arrival CV) gets a fresh sandbox spawned
        ``PREWARM_LEAD_MS`` before its next expected invocation.
        """
        entry = self._entry(function)
        intervals = entry.intervals
        if len(intervals) < ADAPTIVE_MIN_SAMPLES or entry.last_arrival_ms is None:
            return None
        mean = float(np.mean(intervals))
        std = float(np.std(intervals))
        if mean <= 0 or std / mean > PREWARM_MAX_CV:
            return None
        predicted_next = entry.last_arrival_ms + mean
        delay = predicted_next - now - PREWARM_LEAD_MS
        if delay <= 0:
            return None
        return delay
