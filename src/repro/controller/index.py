"""Incrementally maintained control-plane indexes.

The seed controller recomputed every scheduling fact by scanning all
sandboxes: dispatch filtered the whole per-function population for
candidates, ``live_counts``/``sandbox_census`` re-counted states, and
placement re-sorted every node by a freshly recomputed memory sum.  Per
request that is O(S) work in the sandbox population S — exactly the
control-plane scaling wall the paper's Section 4.3 distributes the
controller to avoid.

This module holds the two index structures that make the per-request
work independent of S:

* :class:`SandboxIndex` — per-function candidate sets (idle-warm,
  restorable-dedup, abortable-deduping) plus cached live/dedup/census
  counters, maintained from the :meth:`Sandbox.transition` observer
  hook and from the controller's explicit busy-flag refreshes.
* :class:`NodeUsageIndex` — nodes keyed by ``(used_bytes, node_id)`` in
  a bisect-maintained sorted list, updated from ``Node.on_used_changed``
  so placement reads an already-sorted order instead of sorting per
  cold start.

Both indexes mirror the scan results *exactly* (same membership, same
orderings, same tie-breaks); the equivalence tests in
``tests/platform/test_control_plane_equivalence.py`` pin indexed runs
to bit-identical ``RunReport`` metrics against the scan paths.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Iterable

from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import SandboxState

if TYPE_CHECKING:
    from repro.sandbox.node import Node

#: States in which a sandbox is serving-capable ("live" in the policy's
#: ClusterView sense): everything between spawn completion and purge.
LIVE_STATES = frozenset(
    {
        SandboxState.WARM,
        SandboxState.RUNNING,
        SandboxState.DEDUPING,
        SandboxState.DEDUP,
        SandboxState.RESTORING,
    }
)
#: States counted as deduplicated (in or entering dedup).
DEDUP_STATES = frozenset({SandboxState.DEDUPING, SandboxState.DEDUP})
#: States counted as warm-ish by the memory-timeline census.
CENSUS_WARM_STATES = frozenset({SandboxState.WARM, SandboxState.RUNNING})


class SandboxIndex:
    """Candidate sets and population counters, updated in O(1) per event."""

    def __init__(self) -> None:
        #: function -> {sandbox_id: sandbox} in WARM with no request.
        self.idle_warm: dict[str, dict[int, Sandbox]] = {}
        #: function -> {sandbox_id: sandbox} in DEDUP with no request.
        self.restorable: dict[str, dict[int, Sandbox]] = {}
        #: function -> {sandbox_id: sandbox} mid-dedup with no request.
        self.abortable: dict[str, dict[int, Sandbox]] = {}
        #: function -> sandboxes in a LIVE state.
        self.live_count: dict[str, int] = {}
        #: function -> sandboxes in a DEDUP state.
        self.dedup_count: dict[str, int] = {}
        self.warm_census = 0
        self.dedup_census = 0
        self.total = 0

    # ------------------------------------------------------------ events

    def on_spawn(self, sandbox: Sandbox) -> None:
        """A sandbox entered the cluster (state SPAWNING)."""
        self.total += 1
        self.refresh(sandbox)

    def on_transition(
        self, sandbox: Sandbox, old_state: SandboxState, new_state: SandboxState
    ) -> None:
        """Observer for :meth:`Sandbox.transition`."""
        function = sandbox.function
        live_delta = (new_state in LIVE_STATES) - (old_state in LIVE_STATES)
        if live_delta:
            self.live_count[function] = self.live_count.get(function, 0) + live_delta
        dedup_delta = (new_state in DEDUP_STATES) - (old_state in DEDUP_STATES)
        if dedup_delta:
            self.dedup_count[function] = self.dedup_count.get(function, 0) + dedup_delta
        self.warm_census += (new_state in CENSUS_WARM_STATES) - (
            old_state in CENSUS_WARM_STATES
        )
        self.dedup_census += (new_state in DEDUP_STATES) - (old_state in DEDUP_STATES)
        if new_state is SandboxState.PURGED:
            self.total -= 1
        self.refresh(sandbox)

    def refresh(self, sandbox: Sandbox) -> None:
        """Recompute the candidate-set membership of one sandbox.

        Called from the transition observer and — because base
        demarcation toggles ``busy_request_id`` without a state
        transition — explicitly by the controller wherever the busy
        flag changes outside :meth:`Sandbox.transition`.
        """
        function = sandbox.function
        for candidates in (self.idle_warm, self.restorable, self.abortable):
            bucket = candidates.get(function)
            if bucket is not None:
                bucket.pop(sandbox.sandbox_id, None)
        if sandbox.busy_request_id is not None:
            return
        if sandbox.state is SandboxState.WARM:
            target = self.idle_warm
        elif sandbox.state is SandboxState.DEDUP:
            target = self.restorable
        elif sandbox.state is SandboxState.DEDUPING:
            target = self.abortable
        else:
            return
        target.setdefault(function, {})[sandbox.sandbox_id] = sandbox


class NodeUsageIndex:
    """Nodes in ``(used_bytes, node_id)`` order, maintained incrementally.

    ``snapshot()`` returns the current placement order — the same order
    ``sorted(nodes, key=lambda n: (n.used_bytes(), n.node_id))``
    produces — without recomputing or re-sorting anything.  Updates are
    O(n) list surgery in the *node* count, which is configuration-fixed
    and tiny next to the sandbox population the seed code scanned.
    """

    def __init__(self, nodes: Iterable["Node"]):
        self._nodes: dict[int, Node] = {node.node_id: node for node in nodes}
        self._keys: dict[int, tuple[int, int]] = {
            node.node_id: (node.used_bytes(), node.node_id)
            for node in self._nodes.values()
        }
        self._order: list[tuple[int, int]] = sorted(self._keys.values())

    def update(self, node: "Node") -> None:
        """Re-key one node after its memory charge changed."""
        old_key = self._keys[node.node_id]
        new_key = (node.used_bytes(), node.node_id)
        if new_key == old_key:
            return
        self._order.remove(old_key)
        insort(self._order, new_key)
        self._keys[node.node_id] = new_key

    def snapshot(self, exclude: frozenset[int] | set[int] = frozenset()) -> list["Node"]:
        """Nodes in ascending (used, id) order at this instant.

        ``exclude`` filters out down nodes (fault layer); the common
        no-fault call keeps the allocation-only fast path.
        """
        if not exclude:
            return [self._nodes[node_id] for _, node_id in self._order]
        return [
            self._nodes[node_id]
            for _, node_id in self._order
            if node_id not in exclude
        ]
