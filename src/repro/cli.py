"""Command-line entry point: run any reproduced experiment from a shell.

Examples::

    medes-repro list
    medes-repro quickstart
    medes-repro study --aslr
    medes-repro experiment fig7
    medes-repro experiment fig12 --duration 10
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments, study, tables
from repro.platform import ClusterConfig, PlatformKind, build_platform
from repro.workload import AzureTraceGenerator, FunctionBenchSuite
from repro.workload.trace_io import dump_trace

_EXPERIMENTS = {
    "fig7": "Figure 7: e2e latency improvements vs both baselines (P1 policy)",
    "fig8": "Figure 8: dedup-start breakdown vs cold start",
    "fig9": "Figure 9: cluster memory usage under the P2 policy",
    "fig10": "Figures 10-11: cold starts/latency under memory pressure",
    "fig12": "Figure 12: keep-alive period sweep vs Medes",
    "fig13": "Figure 13: emulated Catalyzer with and without Medes",
    "fig14": "Figure 14: RSC chunk-size sensitivity",
    "fig15": "Figure 15: keep-dedup period sensitivity",
    "fig16": "Figure 16: fingerprint cardinality sensitivity",
    "sec77": "Section 7.7: dedup agent and controller overheads",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print(tables.render_table(["id", "description"], sorted(_EXPERIMENTS.items())))
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    suite = FunctionBenchSuite.default()
    trace = AzureTraceGenerator(seed=args.seed).generate(args.duration, suite.names())
    config = ClusterConfig(nodes=args.nodes, node_memory_mb=args.node_memory_mb)
    print(f"Replaying {len(trace)} requests on {config.nodes} nodes "
          f"({config.node_memory_mb:.0f} MB each)...\n")
    for kind in (PlatformKind.FIXED_KEEP_ALIVE, PlatformKind.MEDES):
        report = build_platform(kind, config, suite).run(trace)
        print(report.summary())
        print()
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    suite = FunctionBenchSuite.default()
    redundancy = study.same_function_redundancy(suite, aslr=args.aslr)
    chunk_sizes = study.FIG1_CHUNK_SIZES
    rows = [
        [fn] + [f"{by_chunk[c]:.3f}" for c in chunk_sizes]
        for fn, by_chunk in redundancy.items()
    ]
    label = "ASLR on" if args.aslr else "ASLR off"
    print(
        tables.render_table(
            ["function"] + [f"{c}B" for c in chunk_sizes],
            rows,
            title=f"Fig 1: same-function memory redundancy ({label})",
        )
    )
    print()
    matrix = study.cross_function_matrix(suite)
    print(
        tables.render_matrix(
            list(suite.names()), matrix, title="Fig 1c: cross-function redundancy @64B"
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    suite = FunctionBenchSuite.default()
    names = suite.names() if args.functions is None else tuple(args.functions.split(","))
    for name in names:
        suite.get(name)  # validate
    trace = AzureTraceGenerator(seed=args.seed).generate(args.duration, names)
    dump_trace(trace, args.output)
    print(f"wrote {len(trace)} requests ({args.duration:g} min, "
          f"{len(names)} functions) to {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name not in _EXPERIMENTS:
        print(f"unknown experiment {name!r}; see `medes-repro list`", file=sys.stderr)
        return 2
    kwargs = {}
    if args.duration is not None and name not in ("fig8", "sec77"):
        kwargs["duration_min"] = args.duration
    runners = {
        "fig7": experiments.run_fig7,
        "fig8": experiments.run_fig8,
        "fig9": experiments.run_fig9,
        "fig10": experiments.run_pressure,
        "fig12": experiments.run_fig12,
        "fig13": experiments.run_fig13,
        "fig14": experiments.run_fig14,
        "fig15": experiments.run_fig15,
        "fig16": experiments.run_fig16,
        "sec77": experiments.run_overheads,
    }
    if name == "fig8":
        result = experiments.run_fig8()
    elif name == "sec77":
        result = experiments.run_overheads()
    else:
        result = runners[name](**kwargs)
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="medes-repro",
        description="Medes (EuroSys '22) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments").set_defaults(
        func=_cmd_list
    )

    quick = sub.add_parser("quickstart", help="small Medes-vs-baseline comparison")
    quick.add_argument("--duration", type=float, default=10.0, help="trace minutes")
    quick.add_argument("--seed", type=int, default=42)
    quick.add_argument("--nodes", type=int, default=2)
    quick.add_argument("--node-memory-mb", type=float, default=1024.0)
    quick.set_defaults(func=_cmd_quickstart)

    st = sub.add_parser("study", help="Section-2 redundancy measurement study")
    st.add_argument("--aslr", action="store_true", help="enable ASLR effects")
    st.set_defaults(func=_cmd_study)

    exp = sub.add_parser("experiment", help="run one evaluation experiment")
    exp.add_argument("name", help="experiment id (see `list`)")
    exp.add_argument("--duration", type=float, default=None, help="trace minutes")
    exp.set_defaults(func=_cmd_experiment)

    tr = sub.add_parser("trace", help="generate an Azure-style trace CSV")
    tr.add_argument("output", help="CSV file to write")
    tr.add_argument("--duration", type=float, default=30.0, help="trace minutes")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument(
        "--functions",
        default=None,
        help="comma-separated FunctionBench names (default: all ten)",
    )
    tr.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
