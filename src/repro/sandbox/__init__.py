"""Sandbox substrate: lifecycle, checkpoints, sandbox entities, nodes."""

from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.node import AccountingError, CapacityError, EvictionOrder, Node
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import (
    ASSIGNABLE_STATES,
    FULL_FOOTPRINT_STATES,
    InvalidTransition,
    SandboxState,
    allowed_transitions,
    check_transition,
)

__all__ = [
    "ASSIGNABLE_STATES",
    "AccountingError",
    "BaseCheckpoint",
    "CapacityError",
    "EvictionOrder",
    "CheckpointStore",
    "FULL_FOOTPRINT_STATES",
    "InvalidTransition",
    "Node",
    "Sandbox",
    "SandboxState",
    "allowed_transitions",
    "check_transition",
]
