"""Sandbox lifecycle state machine (paper Figure 4b).

Medes extends the classic cold/warm lifecycle with the dedup state and
its transitions.  Transient states (SPAWNING, DEDUPING, RESTORING) model
the operations in flight; a sandbox in a transient state cannot accept
requests.  Transitions outside the table below raise
:class:`InvalidTransition`, which tests use to pin the lifecycle down.
"""

from __future__ import annotations

import enum


class SandboxState(enum.Enum):
    """States of the Medes sandbox lifecycle."""

    SPAWNING = "spawning"
    """Cold start in progress: environment being initialized."""

    RUNNING = "running"
    """Executing a function request."""

    WARM = "warm"
    """Idle with full memory state resident; serves warm starts."""

    DEDUPING = "deduping"
    """Dedup op in progress (checkpoint, lookup, patch)."""

    DEDUP = "dedup"
    """Deduplicated: only patches + unique pages resident."""

    RESTORING = "restoring"
    """Restore op in progress (base-page reads, patch application)."""

    PURGED = "purged"
    """Removed from memory; terminal."""


_ALLOWED: dict[SandboxState, frozenset[SandboxState]] = {
    SandboxState.SPAWNING: frozenset(
        # SPAWNING -> WARM is the pre-warm path: a sandbox spawned ahead
        # of demand becomes idle-warm without serving a request first.
        {SandboxState.RUNNING, SandboxState.WARM, SandboxState.PURGED}
    ),
    SandboxState.RUNNING: frozenset({SandboxState.WARM}),
    SandboxState.WARM: frozenset(
        {SandboxState.RUNNING, SandboxState.DEDUPING, SandboxState.PURGED}
    ),
    SandboxState.DEDUPING: frozenset({SandboxState.DEDUP, SandboxState.WARM}),
    SandboxState.DEDUP: frozenset({SandboxState.RESTORING, SandboxState.PURGED}),
    SandboxState.RESTORING: frozenset({SandboxState.RUNNING, SandboxState.WARM}),
    SandboxState.PURGED: frozenset(),
}

#: States in which the sandbox occupies its full warm footprint.
FULL_FOOTPRINT_STATES = frozenset(
    {SandboxState.SPAWNING, SandboxState.RUNNING, SandboxState.WARM, SandboxState.DEDUPING}
)

#: States in which a sandbox may be assigned a request.
ASSIGNABLE_STATES = frozenset({SandboxState.WARM, SandboxState.DEDUP})


class InvalidTransition(RuntimeError):
    """Raised on a lifecycle transition outside Figure 4b."""


def check_transition(current: SandboxState, new: SandboxState) -> None:
    """Validate a lifecycle transition, raising :class:`InvalidTransition`."""
    if new not in _ALLOWED[current]:
        raise InvalidTransition(f"illegal sandbox transition {current.value} -> {new.value}")


def allowed_transitions(state: SandboxState) -> frozenset[SandboxState]:
    """The set of states reachable from ``state`` in one transition."""
    return _ALLOWED[state]
