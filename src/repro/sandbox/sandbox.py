"""The sandbox entity: one container with its memory state and lifecycle."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.memory.image import MemoryImage
from repro.sandbox.state import (
    ASSIGNABLE_STATES,
    FULL_FOOTPRINT_STATES,
    SandboxState,
    check_transition,
)
from repro.storage.tiers import StorageTier
from repro.workload.functionbench import FunctionProfile

#: Signature of a transition observer: (sandbox, old_state, new_state).
TransitionObserver = Callable[["Sandbox", SandboxState, SandboxState], None]

_sandbox_ids = itertools.count(1)


@runtime_checkable
class RetainedState(Protocol):
    """What a dedup page table must expose to the sandbox's accounting."""

    @property
    def retained_full_bytes(self) -> int:
        """Full-scale bytes kept in memory for the deduplicated sandbox."""
        ...


@dataclass
class Sandbox:
    """One sandbox instance on a node.

    The sandbox owns its memory image while warm and its dedup page
    table while deduplicated; the two are never resident together except
    transiently during dedup/restore ops.
    """

    profile: FunctionProfile
    node_id: int
    instance_seed: int
    created_at: float
    state: SandboxState = SandboxState.SPAWNING
    sandbox_id: int = field(default_factory=lambda: next(_sandbox_ids))
    image: MemoryImage | None = None
    dedup_table: RetainedState | None = None
    last_used_at: float = 0.0
    last_idle_at: float = 0.0
    busy_request_id: int | None = None
    is_base: bool = False
    base_checkpoint_id: int | None = None
    table_tier: StorageTier | None = None
    """Residency of the dedup page table when off node DRAM (the
    "dedup-cold" state, checkpoint tiering only); ``None`` means DRAM."""
    template_cow_bytes: int = 0
    """Full-scale bytes a template-forked sandbox shares copy-on-write
    with its node's template replicas — unwritten template pages, the
    TrEnv fork model.  Discounted from the warm charge while the share
    lasts (template sharing only; zero otherwise)."""
    template_share_keys: tuple = ()
    """Catalog keys of the shared segments (for releasing the share)."""
    served_requests: int = 0
    dedup_count: int = 0
    tenant: str = ""
    """Owning tenant (from the first request of this function)."""
    domain: str = ""
    """Dedup domain the sandbox shares state in (DESIGN.md §15) — every
    registry/template interaction on this sandbox's behalf is scoped to
    this domain.  "" is the global domain of ``dedup_domains=off``."""
    observers: list[TransitionObserver] = field(default_factory=list, compare=False)
    """Transition hooks (node accounting, controller indexes).  Each is
    called *after* the state and timestamps update, so it observes the
    post-transition sandbox.  Observers must not transition sandboxes."""

    def __post_init__(self) -> None:
        self.last_used_at = self.created_at
        self.last_idle_at = self.created_at

    @property
    def function(self) -> str:
        return self.profile.name

    @property
    def assignable(self) -> bool:
        """Can this sandbox be handed a request right now?"""
        return self.state in ASSIGNABLE_STATES and self.busy_request_id is None

    @property
    def idle_warm(self) -> bool:
        return self.state is SandboxState.WARM and self.busy_request_id is None

    @property
    def evictable(self) -> bool:
        """Idle sandboxes may be evicted; base sandboxes are pinned."""
        if self.is_base:
            return False
        return self.busy_request_id is None and self.state in (
            SandboxState.WARM,
            SandboxState.DEDUP,
        )

    def transition(self, new_state: SandboxState, now: float) -> None:
        """Move the lifecycle forward, enforcing Figure 4b."""
        check_transition(self.state, new_state)
        old_state = self.state
        self.state = new_state
        if new_state is SandboxState.WARM:
            self.last_idle_at = now
        if new_state is SandboxState.RUNNING:
            self.last_used_at = now
        for observer in self.observers:
            observer(self, old_state, new_state)

    def memory_bytes(self) -> int:
        """Full-scale memory charge of this sandbox in its current state.

        * warm/running/spawning/deduping: the full warm footprint;
        * dedup: only the retained patches/unique pages + metadata;
        * restoring: both are transiently resident (this is the restore
          overhead ``m_R`` the policy accounts for, Section 5.1);
        * purged: nothing.
        """
        if self.state is SandboxState.PURGED:
            return 0
        full = self.profile.memory_bytes
        if self.state in FULL_FOOTPRINT_STATES:
            # A template-forked sandbox maps its clean template pages
            # from the node's replicas (copy-on-write), so it is charged
            # only for what it actually owns.
            return full - self.template_cow_bytes
        if self.dedup_table is None:
            raise RuntimeError(f"sandbox {self.sandbox_id} in {self.state} without dedup table")
        retained = self.dedup_table.retained_full_bytes
        if self.state is SandboxState.DEDUP:
            if self.table_tier is not None:
                return 0  # table parked on a lower tier ("dedup-cold")
            return retained
        if self.state is SandboxState.RESTORING:
            return full + retained
        raise AssertionError(f"unhandled state {self.state}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sandbox(id={self.sandbox_id}, fn={self.function}, node={self.node_id}, "
            f"state={self.state.value}, base={self.is_base})"
        )
