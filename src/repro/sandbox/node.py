"""Worker nodes: memory accounting for sandboxes and pinned checkpoints.

A node is a capacity-bounded container of residents.  The scheduler
consults nodes for placement (least-used-memory first, as the paper's
default) and the eviction machinery asks them for idle candidates when
memory pressure hits.  Per-node memory limits are *soft-defined* the way
the paper's testbed does it: a software limit passed in the cluster
configuration (Section 7.1 uses 2 GB/node to oversubscribe the cluster).

Accounting is **incremental**: the node keeps a ``used`` counter updated
on admit/remove/pin/unpin and — via a transition observer it installs on
every admitted sandbox — on lifecycle transitions that change a
sandbox's footprint (warm↔dedup↔restoring).  ``used_bytes``, ``fits``
and ``free_bytes`` are therefore O(1) instead of O(residents).  The
recomputed sum survives as :meth:`recomputed_used_bytes`, asserted
against the counter on every read when ``verify_accounting`` is set
(tests enable it) and used directly when ``cached_accounting`` is off
(the pre-index behaviour, kept for the throughput benchmark and the
equivalence tests).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro._util import stable_seed
from repro.sandbox.checkpoint import BaseCheckpoint
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import SandboxState


class EvictionOrder(enum.Enum):
    """Victim ordering under memory pressure (ablation knob).

    The platform defaults to LRU; the alternatives exist to quantify how
    much of Medes' advantage depends on the baseline's eviction quality
    (see benchmarks/bench_ablations.py).
    """

    LRU = "lru"
    """Least-recently-used idle sandbox first (default)."""
    LARGEST_FIRST = "largest-first"
    """Free the most memory with the fewest evictions."""
    RANDOM = "random"
    """Uniformly random among idle sandboxes (deterministic per state)."""


def rank_victims(
    victims: list[Sandbox],
    order: EvictionOrder = EvictionOrder.LRU,
    *,
    limit: int | None = None,
) -> list[Sandbox]:
    """Sort eviction ``victims`` into the configured order.

    ``limit`` returns only the first ``limit`` victims — computed with a
    heap selection instead of a full sort, so a permanently full node's
    placement decisions cost ``O(idle)`` rather than
    ``O(idle log idle)`` and the ranked list handed downstream stays
    bounded.  The result is always an exact prefix of the unlimited
    order (``heapq.nsmallest`` matches ``sorted(...)[:limit]``), so a
    cap never changes *which* sandbox is evicted next.
    """
    if order is EvictionOrder.LRU:
        key = lambda s: (s.last_used_at, s.sandbox_id)  # noqa: E731
    elif order is EvictionOrder.LARGEST_FIRST:
        key = lambda s: (-s.memory_bytes(), s.last_used_at, s.sandbox_id)  # noqa: E731
    elif order is EvictionOrder.RANDOM:
        key = lambda s: stable_seed("evict", s.sandbox_id, s.last_used_at)  # noqa: E731
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled eviction order {order}")
    if limit is not None and len(victims) > limit:
        return heapq.nsmallest(limit, victims, key=key)
    return sorted(victims, key=key)


class CapacityError(RuntimeError):
    """Raised when an admission would exceed the node's memory limit."""


class AccountingError(AssertionError):
    """Raised when the incremental ``used`` counter drifts from the
    recomputed per-resident sum (only checked under ``verify_accounting``)."""


@dataclass
class Node:
    """One worker node."""

    node_id: int
    capacity_bytes: int
    sandboxes: dict[int, Sandbox] = field(default_factory=dict)
    checkpoints: dict[int, BaseCheckpoint] = field(default_factory=dict)
    cached_accounting: bool = True
    """Serve ``used_bytes`` from the incremental counter (O(1)).  Off
    recomputes the per-resident sum on every call — the pre-index cost
    model, kept selectable for the e2e throughput benchmark."""
    verify_accounting: bool = False
    """Debug: assert counter == recomputed sum on every read."""
    on_used_changed: Callable[["Node"], None] | None = field(
        default=None, repr=False, compare=False
    )
    """Hook fired whenever the node's memory charge changes (the
    controller's placement index subscribes here)."""
    _used: int = field(default=0, repr=False)
    _sandbox_charges: dict[int, int] = field(default_factory=dict, repr=False)
    _checkpoint_charges: dict[int, int] = field(default_factory=dict, repr=False)
    _template_charges: dict[int, int] = field(default_factory=dict, repr=False)
    """Full-scale DRAM charge per resident template-segment replica,
    keyed by segment id (empty unless template sharing is on)."""

    # -------------------------------------------------------- accounting

    def used_bytes(self) -> int:
        """Current full-scale memory charge on this node."""
        if self.verify_accounting:
            recomputed = self.recomputed_used_bytes()
            if recomputed != self._used:
                raise AccountingError(
                    f"node {self.node_id}: cached used={self._used} != "
                    f"recomputed {recomputed}"
                )
        if self.cached_accounting:
            return self._used
        return self.recomputed_used_bytes()

    def recomputed_used_bytes(self) -> int:
        """The O(residents) sum the counter must always agree with."""
        total = sum(sandbox.memory_bytes() for sandbox in self.sandboxes.values())
        total += sum(checkpoint.memory_bytes() for checkpoint in self.checkpoints.values())
        total += sum(self._template_charges.values())
        return total

    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes()

    def fits(self, extra_bytes: int) -> bool:
        """Would admitting ``extra_bytes`` stay within the soft limit?"""
        return self.used_bytes() + extra_bytes <= self.capacity_bytes

    def _apply_delta(self, delta: int) -> None:
        if delta == 0:
            return
        self._used += delta
        if self.on_used_changed is not None:
            self.on_used_changed(self)

    def _on_sandbox_transition(
        self, sandbox: Sandbox, old_state: SandboxState, new_state: SandboxState
    ) -> None:
        """Transition observer: recharge the sandbox at its new footprint."""
        charged = self._sandbox_charges.get(sandbox.sandbox_id)
        if charged is None:
            return  # not (or no longer) resident here
        new_charge = sandbox.memory_bytes()
        self._sandbox_charges[sandbox.sandbox_id] = new_charge
        self._apply_delta(new_charge - charged)

    # --------------------------------------------------------- residents

    def admit(self, sandbox: Sandbox) -> None:
        """Place a sandbox on this node (capacity is checked by callers
        via :meth:`fits` so that eviction can run first; this guards
        against programming errors, not pressure)."""
        if sandbox.sandbox_id in self.sandboxes:
            raise ValueError(f"sandbox {sandbox.sandbox_id} already on node {self.node_id}")
        if sandbox.node_id != self.node_id:
            raise ValueError(
                f"sandbox {sandbox.sandbox_id} targets node {sandbox.node_id}, "
                f"not {self.node_id}"
            )
        self.sandboxes[sandbox.sandbox_id] = sandbox
        charge = sandbox.memory_bytes()
        self._sandbox_charges[sandbox.sandbox_id] = charge
        sandbox.observers.append(self._on_sandbox_transition)
        self._apply_delta(charge)

    def remove(self, sandbox_id: int) -> Sandbox:
        try:
            sandbox = self.sandboxes.pop(sandbox_id)
        except KeyError:
            raise KeyError(f"sandbox {sandbox_id} not on node {self.node_id}") from None
        charge = self._sandbox_charges.pop(sandbox_id)
        try:
            sandbox.observers.remove(self._on_sandbox_transition)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._apply_delta(-charge)
        return sandbox

    def pin_checkpoint(self, checkpoint: BaseCheckpoint) -> None:
        if checkpoint.node_id != self.node_id:
            raise ValueError("checkpoint pinned to the wrong node")
        self.checkpoints[checkpoint.checkpoint_id] = checkpoint
        charge = checkpoint.memory_bytes()
        self._checkpoint_charges[checkpoint.checkpoint_id] = charge
        self._apply_delta(charge)

    def unpin_checkpoint(self, checkpoint_id: int) -> BaseCheckpoint:
        try:
            checkpoint = self.checkpoints.pop(checkpoint_id)
        except KeyError:
            raise KeyError(f"checkpoint {checkpoint_id} not on node {self.node_id}") from None
        self._apply_delta(-self._checkpoint_charges.pop(checkpoint_id))
        return checkpoint

    def pin_template(self, segment_id: int, nbytes: int) -> None:
        """Charge a template-segment replica promoted onto this node.

        Replicas are fork caches: the authoritative copy stays in the
        remote-DRAM pool, so unpinning never loses content."""
        if segment_id in self._template_charges:
            raise ValueError(f"template segment {segment_id} already on node {self.node_id}")
        self._template_charges[segment_id] = nbytes
        self._apply_delta(nbytes)

    def unpin_template(self, segment_id: int) -> None:
        try:
            charge = self._template_charges.pop(segment_id)
        except KeyError:
            raise KeyError(
                f"template segment {segment_id} not on node {self.node_id}"
            ) from None
        self._apply_delta(-charge)

    def template_replica_bytes(self) -> int:
        """Total DRAM charged to template replicas on this node."""
        return sum(self._template_charges.values())

    def recharge_sandbox(self, sandbox_id: int) -> None:
        """Re-account a resident sandbox whose charge changed *without*
        a lifecycle transition — a dedup table demoted to (or promoted
        from) a lower storage tier flips ``table_tier`` in place."""
        sandbox = self.sandboxes[sandbox_id]
        charged = self._sandbox_charges[sandbox_id]
        new_charge = sandbox.memory_bytes()
        self._sandbox_charges[sandbox_id] = new_charge
        self._apply_delta(new_charge - charged)

    def recharge_checkpoint(self, checkpoint_id: int) -> None:
        """Re-account a pinned checkpoint whose charge changed.

        The only such change is the owner sandbox's purge: a checkpoint
        charged at the copy-on-write fraction while its owner was
        resident costs its full footprint afterwards.  The controller
        calls this right after flipping ``owner_resident``.
        """
        checkpoint = self.checkpoints[checkpoint_id]
        charged = self._checkpoint_charges[checkpoint_id]
        new_charge = checkpoint.memory_bytes()
        self._checkpoint_charges[checkpoint_id] = new_charge
        self._apply_delta(new_charge - charged)

    # ---------------------------------------------------------- eviction

    def eviction_candidates(
        self,
        order: EvictionOrder = EvictionOrder.LRU,
        *,
        limit: int | None = None,
    ) -> list[Sandbox]:
        """Idle, non-base sandboxes in eviction order (default LRU).

        ``limit`` returns only the first ``limit`` victims of the order
        (see :func:`rank_victims`).
        """
        victims = [s for s in self.sandboxes.values() if s.evictable]
        return rank_victims(victims, order, limit=limit)
