"""Worker nodes: memory accounting for sandboxes and pinned checkpoints.

A node is a capacity-bounded container of residents.  The scheduler
consults nodes for placement (least-used-memory first, as the paper's
default) and the eviction machinery asks them for idle candidates when
memory pressure hits.  Per-node memory limits are *soft-defined* the way
the paper's testbed does it: a software limit passed in the cluster
configuration (Section 7.1 uses 2 GB/node to oversubscribe the cluster).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import stable_seed
from repro.sandbox.checkpoint import BaseCheckpoint
from repro.sandbox.sandbox import Sandbox


class EvictionOrder(enum.Enum):
    """Victim ordering under memory pressure (ablation knob).

    The platform defaults to LRU; the alternatives exist to quantify how
    much of Medes' advantage depends on the baseline's eviction quality
    (see benchmarks/bench_ablations.py).
    """

    LRU = "lru"
    """Least-recently-used idle sandbox first (default)."""
    LARGEST_FIRST = "largest-first"
    """Free the most memory with the fewest evictions."""
    RANDOM = "random"
    """Uniformly random among idle sandboxes (deterministic per state)."""


class CapacityError(RuntimeError):
    """Raised when an admission would exceed the node's memory limit."""


@dataclass
class Node:
    """One worker node."""

    node_id: int
    capacity_bytes: int
    sandboxes: dict[int, Sandbox] = field(default_factory=dict)
    checkpoints: dict[int, BaseCheckpoint] = field(default_factory=dict)

    def used_bytes(self) -> int:
        """Current full-scale memory charge on this node."""
        total = sum(sandbox.memory_bytes() for sandbox in self.sandboxes.values())
        total += sum(checkpoint.memory_bytes() for checkpoint in self.checkpoints.values())
        return total

    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes()

    def fits(self, extra_bytes: int) -> bool:
        """Would admitting ``extra_bytes`` stay within the soft limit?"""
        return self.used_bytes() + extra_bytes <= self.capacity_bytes

    def admit(self, sandbox: Sandbox) -> None:
        """Place a sandbox on this node (capacity is checked by callers
        via :meth:`fits` so that eviction can run first; this guards
        against programming errors, not pressure)."""
        if sandbox.sandbox_id in self.sandboxes:
            raise ValueError(f"sandbox {sandbox.sandbox_id} already on node {self.node_id}")
        if sandbox.node_id != self.node_id:
            raise ValueError(
                f"sandbox {sandbox.sandbox_id} targets node {sandbox.node_id}, "
                f"not {self.node_id}"
            )
        self.sandboxes[sandbox.sandbox_id] = sandbox

    def remove(self, sandbox_id: int) -> Sandbox:
        try:
            return self.sandboxes.pop(sandbox_id)
        except KeyError:
            raise KeyError(f"sandbox {sandbox_id} not on node {self.node_id}") from None

    def pin_checkpoint(self, checkpoint: BaseCheckpoint) -> None:
        if checkpoint.node_id != self.node_id:
            raise ValueError("checkpoint pinned to the wrong node")
        self.checkpoints[checkpoint.checkpoint_id] = checkpoint

    def unpin_checkpoint(self, checkpoint_id: int) -> BaseCheckpoint:
        try:
            return self.checkpoints.pop(checkpoint_id)
        except KeyError:
            raise KeyError(f"checkpoint {checkpoint_id} not on node {self.node_id}") from None

    def eviction_candidates(
        self, order: EvictionOrder = EvictionOrder.LRU
    ) -> list[Sandbox]:
        """Idle, non-base sandboxes in eviction order (default LRU)."""
        victims = [s for s in self.sandboxes.values() if s.evictable]
        if order is EvictionOrder.LRU:
            victims.sort(key=lambda s: (s.last_used_at, s.sandbox_id))
        elif order is EvictionOrder.LARGEST_FIRST:
            victims.sort(key=lambda s: (-s.memory_bytes(), s.last_used_at, s.sandbox_id))
        elif order is EvictionOrder.RANDOM:
            victims.sort(key=lambda s: stable_seed("evict", s.sandbox_id, s.last_used_at))
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled eviction order {order}")
        return victims


def least_used_node(nodes: list[Node]) -> Node:
    """The paper's default placement: the node with least memory usage."""
    if not nodes:
        raise ValueError("no nodes")
    return min(nodes, key=lambda n: (n.used_bytes(), n.node_id))
