"""Checkpoints: frozen memory states (the reproduction's CRIU).

Two kinds of checkpoint exist in Medes:

* the transient checkpoint taken at the start of a dedup op (here simply
  the sandbox's immutable :class:`~repro.memory.image.MemoryImage`); and
* pinned **base checkpoints** — the frozen memory of a base sandbox,
  registered in the fingerprint registry and kept addressable (in memory,
  RDMA-readable) for other sandboxes' patches.  A refcount, maintained by
  the controller, pins a base checkpoint for as long as any dedup
  sandbox's page table references it (Section 4.1.3).

Base checkpoints are cheap while their owner sandbox is still resident
(the pages are shared copy-on-write with the warm sandbox) and cost their
full footprint once the owner is purged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.memory.image import MemoryImage
from repro.storage.tiers import StorageTier

_checkpoint_ids = itertools.count(1)


@dataclass(eq=False)
class BaseCheckpoint:
    # eq=False: checkpoints are mutable entities compared by identity.
    """A pinned, RDMA-readable frozen memory state of a base sandbox."""

    function: str
    node_id: int
    image: MemoryImage
    owner_sandbox_id: int
    full_size_bytes: int
    """Full-scale footprint the checkpoint represents (accounting)."""
    cow_overhead_fraction: float = 0.10
    """Fraction of the footprint charged while the owner is resident."""
    checkpoint_id: int = field(default_factory=lambda: next(_checkpoint_ids))
    refcount: int = 0
    owner_resident: bool = True
    registered: bool = False
    """Whether this checkpoint's pages populate the fingerprint registry."""
    domain: str = ""
    """Dedup domain the checkpoint's pages are registered under
    (DESIGN.md §15); "" is the global domain of ``dedup_domains=off``."""
    tier: StorageTier = StorageTier.NODE_DRAM
    """Residency tier; only :class:`repro.storage.store.TieredCheckpointStore`
    moves it off ``NODE_DRAM``."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.cow_overhead_fraction <= 1.0:
            raise ValueError(
                f"cow_overhead_fraction must be in [0, 1], "
                f"got {self.cow_overhead_fraction}"
            )

    def acquire(self, count: int = 1) -> None:
        """Add references from a dedup sandbox's page table."""
        if count < 0:
            raise ValueError("negative refcount acquire")
        self.refcount += count

    def release(self, count: int = 1) -> None:
        """Drop references; the refcount never goes negative."""
        if count < 0:
            raise ValueError("negative refcount release")
        if self.refcount - count < 0:
            raise RuntimeError(
                f"base checkpoint {self.checkpoint_id}: refcount underflow "
                f"({self.refcount} - {count})"
            )
        self.refcount -= count

    @property
    def pinned(self) -> bool:
        """True while dedup sandboxes still depend on this checkpoint."""
        return self.refcount > 0

    def memory_bytes(self) -> int:
        """Accounting charge of this checkpoint on its node.

        Copy-on-write with the resident owner is nearly free; once the
        owner is purged the frozen pages are charged in full.  A
        checkpoint demoted off node DRAM is charged to its tier's
        account instead (checkpoint tiering).
        """
        if self.tier is not StorageTier.NODE_DRAM:
            return 0
        if self.owner_resident:
            return int(self.full_size_bytes * self.cow_overhead_fraction)
        return self.full_size_bytes

    def page_bytes(self, index: int) -> bytes:
        """Content of page ``index`` (what an RDMA read returns)."""
        return self.image.page_bytes(index)


class CheckpointStore:
    """Cluster-wide directory of base checkpoints, addressable by id.

    This plays the role of RDMA-registered memory: any node can read a
    base page given its (checkpoint, page) address.  The *cost* of such
    reads is modelled by :class:`repro.sim.network.RdmaFabric`; this
    store provides the content.
    """

    def __init__(self) -> None:
        self._by_id: dict[int, BaseCheckpoint] = {}
        # Per-function index so for_function never scans the cluster
        # (same discipline as the controller's SandboxIndex, PR 2).
        self._by_function: dict[str, dict[int, BaseCheckpoint]] = {}

    def add(self, checkpoint: BaseCheckpoint) -> None:
        if checkpoint.checkpoint_id in self._by_id:
            raise ValueError(f"duplicate checkpoint id {checkpoint.checkpoint_id}")
        self._by_id[checkpoint.checkpoint_id] = checkpoint
        self._by_function.setdefault(checkpoint.function, {})[
            checkpoint.checkpoint_id
        ] = checkpoint

    def get(self, checkpoint_id: int) -> BaseCheckpoint:
        checkpoint = self._by_id.get(checkpoint_id)
        if checkpoint is None:
            raise KeyError(f"unknown checkpoint {checkpoint_id}")
        return checkpoint

    def remove(self, checkpoint_id: int) -> BaseCheckpoint:
        """Drop a checkpoint; refuses while it is still pinned."""
        checkpoint = self.get(checkpoint_id)
        if checkpoint.pinned:
            raise RuntimeError(
                f"checkpoint {checkpoint_id} still referenced ({checkpoint.refcount})"
            )
        bucket = self._by_function[checkpoint.function]
        del bucket[checkpoint_id]
        if not bucket:
            del self._by_function[checkpoint.function]
        return self._by_id.pop(checkpoint_id)

    def for_function(self, function: str) -> list[BaseCheckpoint]:
        """All live base checkpoints of ``function`` (indexed, O(result))."""
        return list(self._by_function.get(function, {}).values())

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())
