"""Tests for the Sandbox entity."""

from __future__ import annotations

import pytest

from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import InvalidTransition, SandboxState


class FakeTable:
    """Minimal RetainedState implementation."""

    def __init__(self, retained: int):
        self._retained = retained

    @property
    def retained_full_bytes(self) -> int:
        return self._retained


@pytest.fixture
def sandbox(linalg_profile) -> Sandbox:
    return Sandbox(profile=linalg_profile, node_id=0, instance_seed=1, created_at=100.0)


class TestLifecycle:
    def test_initial_state(self, sandbox):
        assert sandbox.state is SandboxState.SPAWNING
        assert sandbox.last_used_at == 100.0

    def test_transition_updates_timestamps(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 150.0)
        assert sandbox.last_used_at == 150.0
        sandbox.transition(SandboxState.WARM, 200.0)
        assert sandbox.last_idle_at == 200.0

    def test_invalid_transition_raises(self, sandbox):
        with pytest.raises(InvalidTransition):
            sandbox.transition(SandboxState.DEDUP, 150.0)

    def test_function_name(self, sandbox):
        assert sandbox.function == "LinAlg"


class TestAvailability:
    def test_warm_idle_assignable(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        assert sandbox.assignable
        assert sandbox.idle_warm

    def test_busy_not_assignable(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        sandbox.busy_request_id = 7
        assert not sandbox.assignable
        assert not sandbox.idle_warm

    def test_dedup_assignable(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        sandbox.transition(SandboxState.DEDUPING, 130.0)
        sandbox.transition(SandboxState.DEDUP, 140.0)
        assert sandbox.assignable

    def test_base_not_evictable(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        assert sandbox.evictable
        sandbox.is_base = True
        assert not sandbox.evictable


class TestMemoryAccounting:
    def test_warm_full_footprint(self, sandbox, linalg_profile):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        assert sandbox.memory_bytes() == linalg_profile.memory_bytes

    def test_dedup_charges_retained(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        sandbox.transition(SandboxState.DEDUPING, 130.0)
        sandbox.dedup_table = FakeTable(5_000_000)
        sandbox.transition(SandboxState.DEDUP, 140.0)
        assert sandbox.memory_bytes() == 5_000_000

    def test_restoring_charges_both(self, sandbox, linalg_profile):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        sandbox.transition(SandboxState.DEDUPING, 130.0)
        sandbox.dedup_table = FakeTable(5_000_000)
        sandbox.transition(SandboxState.DEDUP, 140.0)
        sandbox.transition(SandboxState.RESTORING, 150.0)
        assert sandbox.memory_bytes() == linalg_profile.memory_bytes + 5_000_000

    def test_purged_is_free(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        sandbox.transition(SandboxState.PURGED, 130.0)
        assert sandbox.memory_bytes() == 0

    def test_dedup_without_table_is_error(self, sandbox):
        sandbox.transition(SandboxState.RUNNING, 110.0)
        sandbox.transition(SandboxState.WARM, 120.0)
        sandbox.transition(SandboxState.DEDUPING, 130.0)
        sandbox.transition(SandboxState.DEDUP, 140.0)
        with pytest.raises(RuntimeError, match="without dedup table"):
            sandbox.memory_bytes()
