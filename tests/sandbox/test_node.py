"""Tests for worker-node memory accounting and eviction candidates."""

from __future__ import annotations

import pytest

from repro._util import MIB
from repro.sandbox.checkpoint import BaseCheckpoint
from repro.sandbox.node import AccountingError, Node
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import SandboxState


class FakeDedupTable:
    """Minimal RetainedState: a fixed retained-bytes figure."""

    def __init__(self, retained_full_bytes: int):
        self.retained_full_bytes = retained_full_bytes


def make_sandbox(profile, node_id=0, created=0.0) -> Sandbox:
    sandbox = Sandbox(profile=profile, node_id=node_id, instance_seed=1, created_at=created)
    sandbox.transition(SandboxState.RUNNING, created)
    sandbox.transition(SandboxState.WARM, created + 1)
    return sandbox


@pytest.fixture
def node() -> Node:
    return Node(node_id=0, capacity_bytes=256 * MIB, verify_accounting=True)


class TestAccounting:
    def test_empty_node(self, node):
        assert node.used_bytes() == 0
        assert node.free_bytes() == node.capacity_bytes
        assert node.fits(node.capacity_bytes)
        assert not node.fits(node.capacity_bytes + 1)

    def test_admit_counts_memory(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        assert node.used_bytes() == linalg_profile.memory_bytes

    def test_admit_wrong_node_rejected(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile, node_id=3)
        with pytest.raises(ValueError, match="targets node"):
            node.admit(sandbox)

    def test_double_admit_rejected(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        with pytest.raises(ValueError, match="already"):
            node.admit(sandbox)

    def test_remove(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        assert node.remove(sandbox.sandbox_id) is sandbox
        assert node.used_bytes() == 0
        with pytest.raises(KeyError):
            node.remove(sandbox.sandbox_id)


class TestIncrementalAccounting:
    """The cached counter must track footprint changes it never re-sums."""

    def test_transition_recharges_resident(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        sandbox.transition(SandboxState.DEDUPING, 2.0)
        assert node.used_bytes() == linalg_profile.memory_bytes
        sandbox.dedup_table = FakeDedupTable(retained_full_bytes=3 * MIB)
        sandbox.transition(SandboxState.DEDUP, 3.0)
        assert node.used_bytes() == 3 * MIB
        sandbox.transition(SandboxState.RESTORING, 4.0)
        assert node.used_bytes() == linalg_profile.memory_bytes + 3 * MIB

    def test_removed_sandbox_transitions_do_not_charge(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        node.remove(sandbox.sandbox_id)
        sandbox.transition(SandboxState.DEDUPING, 2.0)
        assert node.used_bytes() == 0

    def test_checkpoint_recharge_after_owner_leaves(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        sandbox.image = linalg_profile.synthesize(1, content_scale=1 / 64, executed=True)
        checkpoint = BaseCheckpoint(
            function=linalg_profile.name,
            node_id=0,
            image=sandbox.image,
            owner_sandbox_id=sandbox.sandbox_id,
            full_size_bytes=linalg_profile.memory_bytes,
        )
        node.pin_checkpoint(checkpoint)
        cow_charge = node.used_bytes()
        checkpoint.owner_resident = False
        node.recharge_checkpoint(checkpoint.checkpoint_id)
        assert node.used_bytes() == checkpoint.memory_bytes() > cow_charge

    def test_on_used_changed_hook_fires(self, linalg_profile):
        seen: list[int] = []
        node = Node(node_id=0, capacity_bytes=256 * MIB)
        node.on_used_changed = lambda n: seen.append(n.used_bytes())
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        node.remove(sandbox.sandbox_id)
        assert seen == [linalg_profile.memory_bytes, 0]

    def test_verify_accounting_detects_drift(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        node._used += 1  # simulate a lost update
        with pytest.raises(AccountingError, match="cached used"):
            node.used_bytes()

    def test_uncached_mode_recomputes(self, linalg_profile):
        node = Node(node_id=0, capacity_bytes=256 * MIB, cached_accounting=False)
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        assert node.used_bytes() == node.recomputed_used_bytes()


class TestEvictionCandidates:
    def test_lru_ordering(self, node, linalg_profile):
        old = make_sandbox(linalg_profile, created=0.0)
        new = make_sandbox(linalg_profile, created=100.0)
        node.admit(new)
        node.admit(old)
        victims = node.eviction_candidates()
        assert victims == [old, new]

    def test_busy_and_base_excluded(self, node, linalg_profile):
        busy = make_sandbox(linalg_profile)
        busy.busy_request_id = 1
        base = make_sandbox(linalg_profile)
        base.is_base = True
        idle = make_sandbox(linalg_profile)
        for s in (busy, base, idle):
            node.admit(s)
        assert node.eviction_candidates() == [idle]
