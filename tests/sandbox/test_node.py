"""Tests for worker-node memory accounting and eviction candidates."""

from __future__ import annotations

import pytest

from repro._util import MIB
from repro.sandbox.node import Node, least_used_node
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import SandboxState


def make_sandbox(profile, node_id=0, created=0.0) -> Sandbox:
    sandbox = Sandbox(profile=profile, node_id=node_id, instance_seed=1, created_at=created)
    sandbox.transition(SandboxState.RUNNING, created)
    sandbox.transition(SandboxState.WARM, created + 1)
    return sandbox


@pytest.fixture
def node() -> Node:
    return Node(node_id=0, capacity_bytes=256 * MIB)


class TestAccounting:
    def test_empty_node(self, node):
        assert node.used_bytes() == 0
        assert node.free_bytes() == node.capacity_bytes
        assert node.fits(node.capacity_bytes)
        assert not node.fits(node.capacity_bytes + 1)

    def test_admit_counts_memory(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        assert node.used_bytes() == linalg_profile.memory_bytes

    def test_admit_wrong_node_rejected(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile, node_id=3)
        with pytest.raises(ValueError, match="targets node"):
            node.admit(sandbox)

    def test_double_admit_rejected(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        with pytest.raises(ValueError, match="already"):
            node.admit(sandbox)

    def test_remove(self, node, linalg_profile):
        sandbox = make_sandbox(linalg_profile)
        node.admit(sandbox)
        assert node.remove(sandbox.sandbox_id) is sandbox
        assert node.used_bytes() == 0
        with pytest.raises(KeyError):
            node.remove(sandbox.sandbox_id)


class TestEvictionCandidates:
    def test_lru_ordering(self, node, linalg_profile):
        old = make_sandbox(linalg_profile, created=0.0)
        new = make_sandbox(linalg_profile, created=100.0)
        node.admit(new)
        node.admit(old)
        victims = node.eviction_candidates()
        assert victims == [old, new]

    def test_busy_and_base_excluded(self, node, linalg_profile):
        busy = make_sandbox(linalg_profile)
        busy.busy_request_id = 1
        base = make_sandbox(linalg_profile)
        base.is_base = True
        idle = make_sandbox(linalg_profile)
        for s in (busy, base, idle):
            node.admit(s)
        assert node.eviction_candidates() == [idle]


class TestLeastUsedNode:
    def test_picks_emptiest(self, linalg_profile):
        a = Node(node_id=0, capacity_bytes=256 * MIB)
        b = Node(node_id=1, capacity_bytes=256 * MIB)
        sandbox = make_sandbox(linalg_profile, node_id=0)
        a.admit(sandbox)
        assert least_used_node([a, b]) is b

    def test_tie_breaks_by_id(self):
        a = Node(node_id=0, capacity_bytes=1)
        b = Node(node_id=1, capacity_bytes=1)
        assert least_used_node([b, a]) is a

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            least_used_node([])
