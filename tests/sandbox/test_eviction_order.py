"""Tests for the configurable eviction orders."""

from __future__ import annotations

import pytest

from repro._util import MIB
from repro.sandbox.node import EvictionOrder, Node
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import SandboxState
from repro.workload.functionbench import FunctionBenchSuite


@pytest.fixture
def node(suite):
    node = Node(node_id=0, capacity_bytes=1024 * MIB)

    def add(profile_name: str, used_at: float) -> Sandbox:
        sandbox = Sandbox(
            profile=suite.get(profile_name),
            node_id=0,
            instance_seed=1,
            created_at=0.0,
        )
        sandbox.transition(SandboxState.RUNNING, used_at)
        sandbox.transition(SandboxState.WARM, used_at + 1)
        node.admit(sandbox)
        return sandbox

    node.add = add  # type: ignore[attr-defined]
    return node


class TestOrders:
    def test_lru_by_last_use(self, node):
        old = node.add("Vanilla", 10.0)
        new = node.add("Vanilla", 100.0)
        assert node.eviction_candidates(EvictionOrder.LRU) == [old, new]

    def test_largest_first_by_footprint(self, node):
        small = node.add("Vanilla", 10.0)  # 17 MB
        large = node.add("RNNModel", 100.0)  # 90 MB
        assert node.eviction_candidates(EvictionOrder.LARGEST_FIRST) == [large, small]

    def test_random_deterministic(self, node):
        node.add("Vanilla", 10.0)
        node.add("LinAlg", 20.0)
        node.add("RNNModel", 30.0)
        first = node.eviction_candidates(EvictionOrder.RANDOM)
        second = node.eviction_candidates(EvictionOrder.RANDOM)
        assert first == second

    def test_all_orders_same_victim_set(self, node):
        node.add("Vanilla", 10.0)
        node.add("LinAlg", 20.0)
        sets = {
            order: frozenset(s.sandbox_id for s in node.eviction_candidates(order))
            for order in EvictionOrder
        }
        assert len(set(sets.values())) == 1
