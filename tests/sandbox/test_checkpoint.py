"""Tests for base checkpoints and the checkpoint store."""

from __future__ import annotations

import pytest

from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from tests.conftest import TEST_SCALE


@pytest.fixture
def checkpoint(linalg_profile) -> BaseCheckpoint:
    image = linalg_profile.synthesize(1, content_scale=TEST_SCALE)
    return BaseCheckpoint(
        function="LinAlg",
        node_id=2,
        image=image,
        owner_sandbox_id=10,
        full_size_bytes=linalg_profile.memory_bytes,
    )


class TestRefcounting:
    def test_acquire_release(self, checkpoint):
        checkpoint.acquire(3)
        assert checkpoint.refcount == 3
        assert checkpoint.pinned
        checkpoint.release(3)
        assert checkpoint.refcount == 0
        assert not checkpoint.pinned

    def test_underflow_raises(self, checkpoint):
        checkpoint.acquire(1)
        with pytest.raises(RuntimeError, match="underflow"):
            checkpoint.release(2)

    def test_negative_counts_rejected(self, checkpoint):
        with pytest.raises(ValueError):
            checkpoint.acquire(-1)
        with pytest.raises(ValueError):
            checkpoint.release(-1)


class TestMemoryAccounting:
    def test_cheap_while_owner_resident(self, checkpoint):
        charge = checkpoint.memory_bytes()
        assert charge == int(checkpoint.full_size_bytes * 0.10)

    def test_full_charge_after_owner_purged(self, checkpoint):
        checkpoint.owner_resident = False
        assert checkpoint.memory_bytes() == checkpoint.full_size_bytes

    def test_page_bytes_reads_image(self, checkpoint):
        assert checkpoint.page_bytes(0) == checkpoint.image.page_bytes(0)


class TestCowValidation:
    @pytest.mark.parametrize("fraction", [-0.01, 1.01, 10.0])
    def test_out_of_range_fraction_rejected(self, checkpoint, fraction):
        with pytest.raises(ValueError, match="cow_overhead_fraction"):
            BaseCheckpoint(
                function="LinAlg",
                node_id=0,
                image=checkpoint.image,
                owner_sandbox_id=1,
                full_size_bytes=1000,
                cow_overhead_fraction=fraction,
            )

    @pytest.mark.parametrize("fraction", [0.0, 0.10, 1.0])
    def test_boundary_fractions_accepted(self, checkpoint, fraction):
        created = BaseCheckpoint(
            function="LinAlg",
            node_id=0,
            image=checkpoint.image,
            owner_sandbox_id=1,
            full_size_bytes=1000,
            cow_overhead_fraction=fraction,
        )
        assert created.memory_bytes() == int(1000 * fraction)


class TestCheckpointStore:
    def test_add_get(self, checkpoint):
        store = CheckpointStore()
        store.add(checkpoint)
        assert store.get(checkpoint.checkpoint_id) is checkpoint
        assert len(store) == 1

    def test_duplicate_add_rejected(self, checkpoint):
        store = CheckpointStore()
        store.add(checkpoint)
        with pytest.raises(ValueError, match="duplicate"):
            store.add(checkpoint)

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError):
            CheckpointStore().get(999999)

    def test_remove_refuses_pinned(self, checkpoint):
        store = CheckpointStore()
        store.add(checkpoint)
        checkpoint.acquire(1)
        with pytest.raises(RuntimeError, match="referenced"):
            store.remove(checkpoint.checkpoint_id)
        checkpoint.release(1)
        assert store.remove(checkpoint.checkpoint_id) is checkpoint
        assert len(store) == 0

    def test_for_function(self, checkpoint, linalg_profile):
        store = CheckpointStore()
        store.add(checkpoint)
        other = BaseCheckpoint(
            function="Other",
            node_id=0,
            image=linalg_profile.synthesize(5, content_scale=TEST_SCALE),
            owner_sandbox_id=11,
            full_size_bytes=100,
        )
        store.add(other)
        assert store.for_function("LinAlg") == [checkpoint]
        assert store.for_function("nothing") == []

    def test_iteration(self, checkpoint):
        store = CheckpointStore()
        store.add(checkpoint)
        assert list(store) == [checkpoint]

    def test_for_function_after_remove(self, checkpoint, linalg_profile):
        store = CheckpointStore()
        store.add(checkpoint)
        sibling = BaseCheckpoint(
            function="LinAlg",
            node_id=0,
            image=linalg_profile.synthesize(6, content_scale=TEST_SCALE),
            owner_sandbox_id=12,
            full_size_bytes=100,
        )
        store.add(sibling)
        store.remove(checkpoint.checkpoint_id)
        assert store.for_function("LinAlg") == [sibling]
        store.remove(sibling.checkpoint_id)
        assert store.for_function("LinAlg") == []

    def test_for_function_does_not_scan(self, checkpoint):
        """Tripwire: ``for_function`` must read the per-function index,
        never scan the whole cluster directory."""

        class ScanTrap(dict):
            def values(self):
                raise AssertionError("for_function scanned the full directory")

        store = CheckpointStore()
        store.add(checkpoint)
        store._by_id = ScanTrap(store._by_id)
        assert store.for_function("LinAlg") == [checkpoint]
        assert store.for_function("missing") == []
