"""Tests for the sandbox lifecycle state machine (Figure 4b)."""

from __future__ import annotations

import pytest

from repro.sandbox.state import (
    ASSIGNABLE_STATES,
    FULL_FOOTPRINT_STATES,
    InvalidTransition,
    SandboxState,
    allowed_transitions,
    check_transition,
)

LEGAL = [
    (SandboxState.SPAWNING, SandboxState.RUNNING),
    (SandboxState.SPAWNING, SandboxState.WARM),
    (SandboxState.SPAWNING, SandboxState.PURGED),
    (SandboxState.RUNNING, SandboxState.WARM),
    (SandboxState.WARM, SandboxState.RUNNING),
    (SandboxState.WARM, SandboxState.DEDUPING),
    (SandboxState.WARM, SandboxState.PURGED),
    (SandboxState.DEDUPING, SandboxState.DEDUP),
    (SandboxState.DEDUPING, SandboxState.WARM),
    (SandboxState.DEDUP, SandboxState.RESTORING),
    (SandboxState.DEDUP, SandboxState.PURGED),
    (SandboxState.RESTORING, SandboxState.RUNNING),
    (SandboxState.RESTORING, SandboxState.WARM),
]


@pytest.mark.parametrize("current,new", LEGAL)
def test_legal_transitions(current, new):
    check_transition(current, new)  # must not raise


def test_illegal_transitions_exhaustive():
    legal = set(LEGAL)
    for current in SandboxState:
        for new in SandboxState:
            if (current, new) in legal:
                continue
            with pytest.raises(InvalidTransition):
                check_transition(current, new)


def test_purged_is_terminal():
    assert allowed_transitions(SandboxState.PURGED) == frozenset()


def test_figure_4b_key_paths():
    """The paper's lifecycle: warm -> dedup -> restore -> running -> warm."""
    path = [
        SandboxState.SPAWNING,
        SandboxState.RUNNING,
        SandboxState.WARM,
        SandboxState.DEDUPING,
        SandboxState.DEDUP,
        SandboxState.RESTORING,
        SandboxState.RUNNING,
        SandboxState.WARM,
        SandboxState.PURGED,
    ]
    for current, new in zip(path, path[1:]):
        check_transition(current, new)


def test_assignable_states():
    assert SandboxState.WARM in ASSIGNABLE_STATES
    assert SandboxState.DEDUP in ASSIGNABLE_STATES
    assert SandboxState.RUNNING not in ASSIGNABLE_STATES
    assert SandboxState.DEDUPING not in ASSIGNABLE_STATES


def test_full_footprint_states():
    assert SandboxState.WARM in FULL_FOOTPRINT_STATES
    assert SandboxState.DEDUP not in FULL_FOOTPRINT_STATES
