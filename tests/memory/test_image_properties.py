"""Property-based tests over image synthesis and the dedup premise."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.image import synthesize_image
from repro.memory.layout import standard_layout
from repro.memory.patch import apply_patch, compute_patch
from repro._util import MIB

LAYOUT = standard_layout("PropFn", ("numpy",), 32 * MIB)


class TestSynthesisProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        aslr=st.booleans(),
        executed=st.booleans(),
    )
    def test_any_seed_yields_valid_image(self, seed, aslr, executed):
        image = synthesize_image(
            LAYOUT, 128 * 1024, seed, aslr=aslr, executed=executed
        )
        assert image.num_pages >= len(LAYOUT.regions)
        assert image.nbytes % image.page_size == 0
        # Regions lie within the image and are ordered.
        last_end = 0
        for placed in image.regions:
            assert placed.offset >= last_end
            assert placed.end <= image.nbytes
            last_end = placed.end

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_same_seed_same_bytes(self, seed):
        a = synthesize_image(LAYOUT, 128 * 1024, seed, executed=True)
        b = synthesize_image(LAYOUT, 128 * 1024, seed, executed=True)
        assert a.checksum() == b.checksum()

    @settings(max_examples=10, deadline=None)
    @given(
        seed_a=st.integers(min_value=0, max_value=2**16),
        seed_b=st.integers(min_value=2**16 + 1, max_value=2**17),
    )
    def test_cross_instance_pages_patch_small_or_unique(self, seed_a, seed_b):
        """Every page pair either patches to well below page size or is
        handled as unique — there is no pathological middle where the
        'patch' exceeds the page itself by much (codec overhead bound)."""
        a = synthesize_image(LAYOUT, 64 * 1024, seed_a, executed=True)
        b = synthesize_image(LAYOUT, 64 * 1024, seed_b, executed=True)
        for index in range(min(a.num_pages, b.num_pages)):
            patch = compute_patch(b.page(index), a.page(index))
            assert apply_patch(patch, a.page(index)) == b.page_bytes(index)
            assert patch.size_bytes <= b.page_size + 64
