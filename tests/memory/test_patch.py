"""Tests for the binary delta codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import rng_for
from repro.memory.patch import (
    CopyOp,
    InsertOp,
    Patch,
    apply_patch,
    compute_patch,
)


def random_bytes(tag: str, n: int) -> bytes:
    return rng_for("patch-test", tag).integers(0, 256, size=n, dtype=np.uint8).tobytes()


class TestRoundTrip:
    def test_identical_buffers(self):
        base = random_bytes("a", 4096)
        patch = compute_patch(base, base)
        assert apply_patch(patch, base) == base
        assert patch.size_bytes < 64

    def test_single_byte_change(self):
        base = bytearray(random_bytes("b", 4096))
        target = bytes(base)
        base[100] ^= 0xFF
        patch = compute_patch(target, bytes(base))
        assert apply_patch(patch, bytes(base)) == target
        assert patch.size_bytes < 128

    def test_unrelated_buffers(self):
        base = random_bytes("c", 4096)
        target = random_bytes("d", 4096)
        patch = compute_patch(target, base)
        assert apply_patch(patch, base) == target
        # Degenerates to roughly one big insert.
        assert patch.size_bytes >= 4096

    def test_shifted_content_found_by_anchors(self):
        base = random_bytes("e", 4096)
        target = base[128:] + base[:128]  # rotation
        patch = compute_patch(target, base)
        assert apply_patch(patch, base) == target
        assert patch.size_bytes < 1024

    def test_different_lengths(self):
        base = random_bytes("f", 4096)
        target = base[:1000] + random_bytes("g", 200) + base[2000:]
        patch = compute_patch(target, base)
        assert apply_patch(patch, base) == target
        assert patch.size_bytes < len(target) // 2

    def test_empty_target(self):
        base = random_bytes("h", 512)
        patch = compute_patch(b"", base)
        assert apply_patch(patch, base) == b""

    def test_empty_base(self):
        target = random_bytes("i", 512)
        patch = compute_patch(target, b"")
        assert apply_patch(patch, b"") == target

    def test_numpy_inputs(self):
        base = np.frombuffer(random_bytes("j", 2048), dtype=np.uint8)
        target = base.copy()
        target.setflags(write=True)
        target[10:20] = 0
        patch = compute_patch(target, base)
        assert apply_patch(patch, base) == target.tobytes()

    @given(st.data())
    def test_property_roundtrip(self, data):
        base = data.draw(st.binary(min_size=0, max_size=2048))
        strategy = data.draw(st.sampled_from(["mutate", "unrelated", "subset"]))
        if strategy == "mutate" and base:
            target = bytearray(base)
            for _ in range(data.draw(st.integers(0, 10))):
                pos = data.draw(st.integers(0, len(base) - 1))
                target[pos] = data.draw(st.integers(0, 255))
            target = bytes(target)
        elif strategy == "subset" and len(base) > 10:
            lo = data.draw(st.integers(0, len(base) // 2))
            hi = data.draw(st.integers(lo, len(base)))
            target = base[lo:hi] * 2
        else:
            target = data.draw(st.binary(min_size=0, max_size=2048))
        patch = compute_patch(target, base)
        assert apply_patch(patch, base) == target


class TestSerialization:
    def _sample_patch(self) -> tuple[Patch, bytes]:
        base = random_bytes("s", 4096)
        target = bytearray(base)
        target[500:600] = random_bytes("t", 100)
        patch = compute_patch(bytes(target), base)
        return patch, base

    def test_serialize_roundtrip(self):
        patch, base = self._sample_patch()
        decoded = Patch.deserialize(patch.serialize())
        assert decoded == patch
        assert apply_patch(decoded, base) == apply_patch(patch, base)

    def test_size_bytes_matches_encoding(self):
        patch, _ = self._sample_patch()
        assert patch.size_bytes == len(patch.serialize())

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Patch.deserialize(b"garbage-bytes-here")

    def test_copied_plus_literal_equals_target(self):
        patch, _ = self._sample_patch()
        assert patch.copied_bytes + patch.literal_bytes == patch.target_len


class TestDeserializeHardening:
    """Malformed blobs must raise ValueError, never struct.error/IndexError."""

    def _multi_op_blob(self) -> bytes:
        patch = Patch(
            ops=(
                CopyOp(src_off=0, length=100),
                InsertOp(data=b"x" * 40),
                CopyOp(src_off=200, length=60),
            ),
            target_len=200,
            base_len=4096,
        )
        return patch.serialize()

    def test_truncation_at_every_boundary(self):
        blob = self._multi_op_blob()
        assert Patch.deserialize(blob).target_len == 200  # sanity
        for cut in range(len(blob)):
            with pytest.raises(ValueError):
                Patch.deserialize(blob[:cut])

    def test_bad_magic(self):
        blob = bytearray(self._multi_op_blob())
        blob[0] ^= 0xFF
        with pytest.raises(ValueError, match="not a valid patch blob"):
            Patch.deserialize(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(self._multi_op_blob())
        blob[2] += 1  # version byte follows the 2-byte magic
        with pytest.raises(ValueError, match="not a valid patch blob"):
            Patch.deserialize(bytes(blob))

    def test_unknown_op_tag(self):
        from repro.memory.patch import _HEADER

        blob = bytearray(self._multi_op_blob())
        blob[_HEADER.size] = 0x7F  # first op's tag byte
        with pytest.raises(ValueError, match="unknown op tag"):
            Patch.deserialize(bytes(blob))

    def test_inconsistent_target_len(self):
        from repro.memory.patch import _HEADER, _MAGIC, _VERSION

        blob = _HEADER.pack(_MAGIC, _VERSION, 0, 999, 0, 0)
        with pytest.raises(ValueError, match="inconsistent patch blob"):
            Patch.deserialize(blob)

    def test_trailing_garbage_ignored_ops_still_validated(self):
        # Extra bytes past the declared op list do not crash the decoder.
        blob = self._multi_op_blob() + b"\x00\x01\x02"
        assert Patch.deserialize(blob[: len(blob) - 3]).target_len == 200


class TestValidation:
    def test_ops_must_produce_target_len(self):
        with pytest.raises(ValueError):
            Patch(ops=(InsertOp(data=b"abc"),), target_len=5, base_len=0)

    def test_apply_rejects_wrong_base_length(self):
        patch = Patch(ops=(CopyOp(src_off=0, length=4),), target_len=4, base_len=4)
        with pytest.raises(ValueError, match="base length"):
            apply_patch(patch, b"too-long-base")

    def test_apply_rejects_out_of_bounds_copy(self):
        patch = Patch(ops=(CopyOp(src_off=2, length=4),), target_len=4, base_len=4)
        with pytest.raises(ValueError, match="bounds"):
            apply_patch(patch, b"abcd")

    def test_compute_rejects_non_uint8_array(self):
        with pytest.raises(ValueError):
            compute_patch(np.zeros(4, dtype=np.int32), b"abcd")


class TestPatchQuality:
    def test_similar_pages_much_smaller_than_page(self, linalg_profile):
        """The dedup premise: same-function pages patch down to ~nothing."""
        a = linalg_profile.synthesize(1, content_scale=1 / 256)
        b = linalg_profile.synthesize(2, content_scale=1 / 256)
        sizes = []
        for i in range(min(a.num_pages, b.num_pages)):
            patch = compute_patch(b.page(i), a.page(i))
            assert apply_patch(patch, a.page(i)) == b.page_bytes(i)
            sizes.append(patch.size_bytes)
        assert np.mean(sizes) < 0.2 * a.page_size

    def test_level_two_at_least_as_small_on_shifts(self):
        base = random_bytes("lvl", 4096)
        target = base[40:] + base[:40]  # awkward non-multiple-of-8 shift
        level1 = compute_patch(target, base, level=1)
        level2 = compute_patch(target, base, level=2)
        assert apply_patch(level2, base) == target
        assert level2.size_bytes <= level1.size_bytes
