"""Tests for MemoryImage synthesis and access."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import MIB, PAGE_SIZE
from repro.memory.image import (
    MemoryImage,
    shared_fraction_upper_bound,
    synthesize_image,
)
from repro.memory.layout import standard_layout
from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def layout():
    return standard_layout("LinAlg", ("numpy",), 32 * MIB)


class TestSynthesizeImage:
    def test_deterministic(self, layout):
        a = synthesize_image(layout, 256 * 1024, instance_seed=1)
        b = synthesize_image(layout, 256 * 1024, instance_seed=1)
        assert a.checksum() == b.checksum()

    def test_distinct_seeds_distinct_images(self, layout):
        a = synthesize_image(layout, 256 * 1024, instance_seed=1, executed=True)
        b = synthesize_image(layout, 256 * 1024, instance_seed=2, executed=True)
        assert a.checksum() != b.checksum()

    def test_page_multiple_length(self, layout):
        image = synthesize_image(layout, 256 * 1024, instance_seed=1)
        assert image.nbytes % PAGE_SIZE == 0
        assert image.num_pages == image.nbytes // PAGE_SIZE

    def test_regions_cover_placement(self, layout):
        image = synthesize_image(layout, 256 * 1024, instance_seed=1)
        names = {r.spec.name for r in image.regions}
        assert {"runtime", "zero", "stack", "heap", "unique"} <= names

    def test_aslr_inserts_guard_pages(self, layout):
        plain = synthesize_image(layout, 256 * 1024, instance_seed=1)
        randomized = synthesize_image(layout, 256 * 1024, instance_seed=1, aslr=True)
        assert randomized.nbytes >= plain.nbytes

    def test_executed_flag_recorded(self, layout):
        image = synthesize_image(layout, 256 * 1024, instance_seed=1, executed=True)
        assert image.executed


class TestMemoryImageAccess:
    def test_page_views(self, linalg_image):
        page = linalg_image.page(0)
        assert len(page) == linalg_image.page_size
        assert page.dtype == np.uint8

    def test_page_bytes_matches_view(self, linalg_image):
        assert linalg_image.page_bytes(3) == linalg_image.page(3).tobytes()

    def test_page_out_of_range(self, linalg_image):
        with pytest.raises(IndexError):
            linalg_image.page(linalg_image.num_pages)
        with pytest.raises(IndexError):
            linalg_image.page(-1)

    def test_iter_pages_complete(self, linalg_image):
        pages = list(linalg_image.iter_pages())
        assert len(pages) == linalg_image.num_pages
        assert pages[0][0] == 0

    def test_data_is_read_only(self, linalg_image):
        with pytest.raises(ValueError):
            linalg_image.data[0] = 1

    def test_region_of(self, linalg_image):
        first = linalg_image.regions[0]
        assert linalg_image.region_of(first.offset) is first.spec
        assert linalg_image.region_of(first.end - 1) is first.spec

    def test_rejects_non_page_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            MemoryImage(
                function="f",
                instance_seed=0,
                data=np.zeros(100, dtype=np.uint8),
                page_size=PAGE_SIZE,
                regions=(),
            )

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="uint8"):
            MemoryImage(
                function="f",
                instance_seed=0,
                data=np.zeros(PAGE_SIZE, dtype=np.uint16),
                page_size=PAGE_SIZE,
                regions=(),
            )


class TestSharedFractionBound:
    def test_bound_below_one(self, layout):
        bound = shared_fraction_upper_bound(layout)
        assert 0.5 < bound < 1.0

    def test_profile_savings_never_exceed_bound(self, linalg_profile):
        # The analytic bound holds for actual measured dedup savings;
        # checked more thoroughly in analysis tests, asserted here on
        # the layout level: INSTANCE fraction is excluded.
        bound = shared_fraction_upper_bound(linalg_profile.layout())
        unique = next(
            r.fraction for r in linalg_profile.layout().regions if r.name == "unique"
        )
        assert abs(bound + unique - 1.0) < 1e-9
