"""Tests for deterministic content synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.layout import AslrBehavior, RegionSpec, SharingScope
from repro.memory.synth import (
    POOL_BLOCK,
    POOL_BLOCKS,
    base_region_content,
    build_region,
    common_pool,
)


def spec(**overrides) -> RegionSpec:
    base = dict(
        name="r",
        scope=SharingScope.FUNCTION,
        content_key="test-key",
        fraction=1.0,
    )
    base.update(overrides)
    return RegionSpec(**base)


class TestCommonPool:
    def test_shape_and_dtype(self):
        pool = common_pool()
        assert pool.shape == (POOL_BLOCKS, POOL_BLOCK)
        assert pool.dtype == np.uint8

    def test_cached_identity(self):
        assert common_pool() is common_pool()


class TestBaseContent:
    def test_deterministic(self):
        a = base_region_content(spec(), 4096)
        b = base_region_content(spec(), 4096)
        assert np.array_equal(a, b)

    def test_prefix_stable(self):
        short = base_region_content(spec(), 4096)
        long = base_region_content(spec(), 64 * 1024)
        assert np.array_equal(long[:4096], short)

    def test_different_keys_differ(self):
        a = base_region_content(spec(content_key="k1"), 8192)
        b = base_region_content(spec(content_key="k2"), 8192)
        assert not np.array_equal(a, b)

    def test_zero_fill(self):
        content = base_region_content(spec(zero_fill=True), 4096)
        assert not content.any()

    def test_common_fill_shares_blocks_across_keys(self):
        a = base_region_content(spec(content_key="ka", common_fill=1.0), 64 * 1024)
        b = base_region_content(spec(content_key="kb", common_fill=1.0), 64 * 1024)
        blocks_a = {a[i : i + POOL_BLOCK].tobytes() for i in range(0, len(a), POOL_BLOCK)}
        blocks_b = {b[i : i + POOL_BLOCK].tobytes() for i in range(0, len(b), POOL_BLOCK)}
        assert blocks_a & blocks_b  # recurring pool blocks appear in both

    def test_no_common_fill_no_shared_blocks(self):
        a = base_region_content(spec(content_key="ka", common_fill=0.0), 32 * 1024)
        b = base_region_content(spec(content_key="kb", common_fill=0.0), 32 * 1024)
        blocks_a = {a[i : i + POOL_BLOCK].tobytes() for i in range(0, len(a), POOL_BLOCK)}
        blocks_b = {b[i : i + POOL_BLOCK].tobytes() for i in range(0, len(b), POOL_BLOCK)}
        assert not (blocks_a & blocks_b)


class TestBuildRegion:
    def test_instance_determinism(self):
        a = build_region(spec(mutation_rate=1e-3), 16 * 4096, instance_seed=5)
        b = build_region(spec(mutation_rate=1e-3), 16 * 4096, instance_seed=5)
        assert np.array_equal(a, b)

    def test_instances_diverge_via_mutations(self):
        a = build_region(spec(mutation_rate=1e-3), 16 * 4096, instance_seed=1)
        b = build_region(spec(mutation_rate=1e-3), 16 * 4096, instance_seed=2)
        diff = int((a != b).sum())
        assert 0 < diff < len(a) * 0.05

    def test_no_mutations_identical_instances(self):
        a = build_region(spec(), 16 * 4096, instance_seed=1)
        b = build_region(spec(), 16 * 4096, instance_seed=2)
        assert np.array_equal(a, b)

    def test_pointers_shared_without_aslr(self):
        region = spec(pointer_interval=256)
        a = build_region(region, 16 * 4096, instance_seed=1)
        b = build_region(region, 16 * 4096, instance_seed=2)
        assert np.array_equal(a, b)

    def test_pointers_diverge_with_aslr(self):
        region = spec(pointer_interval=256)
        a = build_region(region, 16 * 4096, instance_seed=1, aslr=True)
        b = build_region(region, 16 * 4096, instance_seed=2, aslr=True)
        diff = int((a != b).sum())
        assert diff > 0
        # Only the randomized pointer bytes differ: a small fraction.
        assert diff < len(a) * 0.05

    def test_dirty_pages_only_when_executed(self):
        region = spec(dirty_page_rate=0.5)
        fresh_a = build_region(region, 32 * 4096, instance_seed=1)
        fresh_b = build_region(region, 32 * 4096, instance_seed=2)
        assert np.array_equal(fresh_a, fresh_b)
        executed_a = build_region(region, 32 * 4096, instance_seed=1, executed=True)
        executed_b = build_region(region, 32 * 4096, instance_seed=2, executed=True)
        assert not np.array_equal(executed_a, executed_b)

    def test_dirty_pages_are_page_granular(self):
        region = spec(dirty_page_rate=0.5)
        fresh = build_region(region, 32 * 4096, instance_seed=9)
        executed = build_region(region, 32 * 4096, instance_seed=9, executed=True)
        changed_pages = 0
        for page in range(32):
            sl = slice(page * 4096, (page + 1) * 4096)
            page_diff = (fresh[sl] != executed[sl]).mean()
            # A page is either untouched or substantially rewritten.
            assert page_diff == 0.0 or page_diff > 0.5
            changed_pages += page_diff > 0.5
        assert 0 < changed_pages < 32

    def test_fine_aslr_shifts_content(self):
        region = spec(aslr=AslrBehavior.FINE)
        plain = build_region(region, 16 * 4096, instance_seed=3)
        shifted = build_region(region, 16 * 4096, instance_seed=3, aslr=True)
        assert len(plain) == len(shifted)
        # Content is a rotation of the original: same multiset of bytes.
        assert sorted(plain.tobytes()) == sorted(shifted.tobytes())

    def test_page_aslr_does_not_shift_region_content(self):
        region = spec(aslr=AslrBehavior.PAGE)
        plain = build_region(region, 16 * 4096, instance_seed=3)
        with_aslr = build_region(region, 16 * 4096, instance_seed=3, aslr=True)
        assert np.array_equal(plain, with_aslr)
