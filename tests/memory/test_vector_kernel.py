"""Equivalence properties of the vectorized fingerprint/anchor kernels.

Every batch kernel of the VectorCDC-style rewrite is pinned against its
scalar oracle here: segmented greedy thinning vs ``enforce_spacing``,
gathered chunk hashing vs ``page_fingerprint``, the vectorised
polynomial digest vs its pure-Python reference, batched window values vs
the per-target pass, and the batched anchor fallback vs
``compute_patch_reference`` — across page sizes, marker configs, ASLR'd
synthetic images, sampling strategies, and the ``digest_bits > 64``
fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import MIB, hash_bytes, poly_hash_bytes, poly_hash_rows
from repro.memory.chunks import (
    batch_enforce_spacing,
    batch_marker_ends,
    enforce_spacing,
    fixed_offset_digests,
    split_positions_by_page,
)
from repro.memory.fingerprint import (
    DEFAULT_CARDINALITY,
    FingerprintConfig,
    HashKind,
    SamplingStrategy,
    batch_fingerprint_arrays,
    batch_page_fingerprints,
    batch_sample_chunk_offsets,
    fingerprints_from_arrays,
    page_fingerprint,
)
from repro.memory.image import synthesize_image
from repro.memory.layout import standard_layout
from repro.memory.patch import (
    _window_values,
    batch_window_values,
    compute_patch_reference,
    compute_patches,
)

MARKER_BYTE = 0x77


def _rng(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


@st.composite
def page_buffers(draw) -> tuple[int, np.ndarray]:
    """A flat multi-page buffer with tunable marker density."""
    page_size = draw(st.sampled_from([64, 128, 256, 512]))
    num_pages = draw(st.integers(min_value=0, max_value=6))
    seed = draw(st.integers(0, 2**32 - 1))
    marker_rich = draw(st.booleans())
    rng = _rng(seed)
    if marker_rich:
        # Heavy marker density (runs of 0x77 included), so spacing and
        # cardinality caps actually bind.
        alphabet = np.array([0, 1, MARKER_BYTE, MARKER_BYTE], dtype=np.uint8)
        data = rng.choice(alphabet, size=page_size * num_pages)
    else:
        data = rng.integers(0, 256, size=page_size * num_pages, dtype=np.uint8)
    return page_size, data


@st.composite
def fp_configs(draw) -> FingerprintConfig:
    strategy = draw(st.sampled_from(list(SamplingStrategy)))
    hash_kind = draw(st.sampled_from(list(HashKind)))
    if hash_kind is HashKind.POLY64:
        digest_bits = draw(st.sampled_from([16, 64]))
    else:
        digest_bits = draw(st.sampled_from([16, 64, 128]))
    marker_mask, marker_value = draw(
        st.sampled_from([(0x00FF, 0x0077), (0x0003, 0x0001), (0xFFFF, 0x7777)])
    )
    return FingerprintConfig(
        chunk_size=draw(st.sampled_from([8, 16, 64])),
        cardinality=draw(st.sampled_from([1, 3, DEFAULT_CARDINALITY])),
        digest_bits=digest_bits,
        marker_mask=marker_mask,
        marker_value=marker_value,
        strategy=strategy,
        hash_kind=hash_kind,
    )


class TestSegmentedThinning:
    @given(
        page_buffers(),
        st.integers(min_value=1, max_value=6),
        st.sampled_from([4, 8, 16, 64]),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_per_page_enforce_spacing(self, buf, cap, spacing):
        page_size, data = buf
        num_pages = len(data) // page_size
        hits = batch_marker_ends(
            data, page_size, mask=0x00FF, value=MARKER_BYTE, min_position=spacing - 1
        )
        kept = batch_enforce_spacing(hits, page_size, spacing, cap=cap)
        parts = split_positions_by_page(hits, page_size, num_pages)
        expected = [enforce_spacing(part, spacing, cap=cap) for part in parts]
        flat = (
            np.concatenate(expected) if expected else np.empty(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(kept, flat)

    def test_rejects_bad_args(self):
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            batch_enforce_spacing(empty, 64, 0, cap=5)
        with pytest.raises(ValueError):
            batch_enforce_spacing(empty, 64, 8, cap=0)


class TestBatchFingerprintEquivalence:
    @given(page_buffers(), fp_configs())
    @settings(max_examples=80, deadline=None)
    def test_matches_page_oracle(self, buf, cfg):
        page_size, data = buf
        got = batch_page_fingerprints(data, page_size, cfg)
        pages = data.reshape(-1, page_size)
        expected = [page_fingerprint(page, cfg) for page in pages]
        assert got == expected

    @given(page_buffers(), fp_configs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_page_subset_matches_full(self, buf, cfg, seed):
        page_size, data = buf
        num_pages = len(data) // page_size
        mask = _rng(seed).random(num_pages) < 0.5
        subset = np.flatnonzero(mask)
        got = batch_page_fingerprints(data, page_size, cfg, pages=subset)
        full = batch_page_fingerprints(data, page_size, cfg)
        assert got == [full[i] for i in subset.tolist()]

    def test_flat_arrays_round_trip(self):
        data = _rng(11).integers(0, 256, size=8 * 4096, dtype=np.uint8)
        digests, offsets, counts = batch_fingerprint_arrays(data, 4096)
        assert digests.dtype == np.uint64
        assert int(counts.sum()) == len(digests) == len(offsets)
        assert fingerprints_from_arrays(digests, offsets, counts) == (
            batch_page_fingerprints(data, 4096)
        )

    def test_flat_arrays_reject_wide_digests(self):
        data = np.zeros(4096, dtype=np.uint8)
        with pytest.raises(ValueError):
            batch_fingerprint_arrays(data, 4096, FingerprintConfig(digest_bits=128))

    @pytest.mark.parametrize("aslr", [False, True])
    def test_synthetic_image_matches_oracle(self, aslr):
        layout = standard_layout("LinAlg", ("numpy",), 32 * MIB)
        image = synthesize_image(layout, 128 * 1024, instance_seed=3, aslr=aslr)
        cfg = FingerprintConfig()
        got = batch_page_fingerprints(image.data, image.page_size, cfg)
        expected = [page_fingerprint(page, cfg) for _, page in image.iter_pages()]
        assert got == expected


class TestPolyHash:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(min_value=1, max_value=8),
        st.sampled_from([8, 64]),
        st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rows_match_scalar(self, seed, rows, chunk, bits):
        matrix = _rng(seed).integers(0, 256, size=(rows, chunk), dtype=np.uint8)
        vec = poly_hash_rows(matrix, bits).tolist()
        assert vec == [poly_hash_bytes(row.tobytes(), bits) for row in matrix]

    def test_poly_config_rejects_wide_digests(self):
        with pytest.raises(ValueError):
            FingerprintConfig(hash_kind=HashKind.POLY64, digest_bits=128)

    def test_disjoint_from_sha1(self):
        data = _rng(5).integers(0, 256, size=2 * 4096, dtype=np.uint8)
        sha = batch_page_fingerprints(data, 4096, FingerprintConfig())
        poly = batch_page_fingerprints(
            data, 4096, FingerprintConfig(hash_kind=HashKind.POLY64)
        )
        assert [fp.offsets for fp in sha] == [fp.offsets for fp in poly]
        assert all(a.digests != b.digests for a, b in zip(sha, poly))


class TestFixedOffsetRegressions:
    def test_offset_lists_are_independent(self):
        # Regression: the FIXED_OFFSETS batch path used to return the
        # *same* list object for every page ([offsets] * num_pages).
        cfg = FingerprintConfig(strategy=SamplingStrategy.FIXED_OFFSETS)
        data = np.zeros(3 * 4096, dtype=np.uint8)
        out = batch_sample_chunk_offsets(data, 4096, cfg)
        assert out[0] == out[1] == out[2]
        assert out[0] is not out[1]
        out[0].append(-1)
        assert len(out[1]) == cfg.cardinality
        assert out[1] == out[2]

    @given(st.integers(0, 2**32 - 1), st.sampled_from([8, 64, 128]))
    @settings(max_examples=40, deadline=None)
    def test_fixed_offset_digests_match_scalar(self, seed, bits):
        data = _rng(seed).integers(0, 256, size=1024, dtype=np.uint8)
        chunk_size, stride = 16, 24
        got = fixed_offset_digests(data, chunk_size, stride, bits)
        raw = data.tobytes()
        assert got == [
            (off, hash_bytes(raw[off : off + chunk_size], bits))
            for off in range(0, len(raw) - chunk_size + 1, stride)
        ]


class TestBatchedAnchorProbes:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(min_value=8, max_value=200),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_window_values_match_scalar(self, seed, n, rows):
        matrix = _rng(seed).integers(0, 256, size=(rows, n), dtype=np.uint8)
        vals = batch_window_values(matrix)
        for j in range(rows):
            np.testing.assert_array_equal(
                vals[j], _window_values(matrix[j].tobytes())
            )

    def test_batch_window_values_rejects_bad_input(self):
        with pytest.raises(ValueError):
            batch_window_values(np.zeros(16, dtype=np.uint8))
        with pytest.raises(ValueError):
            batch_window_values(np.zeros((2, 4), dtype=np.uint8))

    @given(st.integers(0, 2**32 - 1), st.sampled_from([1, 2]))
    @settings(max_examples=25, deadline=None)
    def test_fallback_patches_match_reference(self, seed, level):
        # A batch mixing aligned-good pairs with shifted pairs that force
        # the anchor fallback (its probe positions are hashed in one
        # batched window-value pass) must stay byte-identical to the
        # scalar per-pair reference.
        rng = _rng(seed)
        n = 512
        base = rng.integers(0, 256, size=n, dtype=np.uint8)
        shift = int(rng.integers(1, 64))
        shifted = np.roll(base, shift)
        near = base.copy()
        near[10:20] = rng.integers(0, 256, size=10, dtype=np.uint8)
        unrelated = rng.integers(0, 256, size=n, dtype=np.uint8)
        targets = [shifted, near, unrelated, base.copy()]
        bases = [base, base, base, base]
        got = compute_patches(targets, bases, level=level)
        expected = [
            compute_patch_reference(t, b, level=level)
            for t, b in zip(targets, bases)
        ]
        assert got == expected
