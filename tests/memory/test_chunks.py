"""Tests for chunk hashing and value-sampling primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.chunks import (
    enforce_spacing,
    fixed_offset_digests,
    hash_chunk,
    marker_positions,
    rolling_last2,
)


class TestFixedOffsetDigests:
    def test_offsets_follow_stride(self):
        data = np.arange(1024, dtype=np.uint8)
        digests = fixed_offset_digests(data, chunk_size=64, stride=128)
        assert [off for off, _ in digests] == list(range(0, 1024 - 64 + 1, 128))

    def test_digest_matches_hash_chunk(self):
        data = np.arange(256, dtype=np.uint8)
        digests = fixed_offset_digests(data, chunk_size=64, stride=128)
        off, digest = digests[1]
        assert digest == hash_chunk(data[off : off + 64].tobytes())

    def test_short_input_yields_nothing(self):
        data = np.zeros(16, dtype=np.uint8)
        assert fixed_offset_digests(data, chunk_size=64, stride=128) == []

    def test_rejects_bad_parameters(self):
        data = np.zeros(256, dtype=np.uint8)
        with pytest.raises(ValueError):
            fixed_offset_digests(data, chunk_size=0, stride=128)
        with pytest.raises(ValueError):
            fixed_offset_digests(data, chunk_size=64, stride=0)


class TestRollingLast2:
    def test_values(self):
        data = np.array([0x12, 0x34, 0x56], dtype=np.uint8)
        values = rolling_last2(data)
        assert values[0] == 0
        assert values[1] == 0x1234
        assert values[2] == 0x3456

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            rolling_last2(np.zeros(4, dtype=np.int32))

    @given(st.binary(min_size=2, max_size=200))
    def test_matches_naive(self, raw):
        data = np.frombuffer(raw, dtype=np.uint8)
        values = rolling_last2(data)
        for i in range(1, len(data)):
            assert values[i] == (int(data[i - 1]) << 8) | int(data[i])


class TestMarkerPositions:
    def test_finds_marker(self):
        data = np.zeros(128, dtype=np.uint8)
        data[63] = 0x77  # last byte of a window at position 63
        hits = marker_positions(data, mask=0x00FF, value=0x0077, min_position=63)
        assert 63 in hits

    def test_respects_min_position(self):
        data = np.zeros(128, dtype=np.uint8)
        data[10] = 0x77
        hits = marker_positions(data, mask=0x00FF, value=0x0077, min_position=63)
        assert 10 not in hits


class TestEnforceSpacing:
    def test_empty(self):
        result = enforce_spacing(np.array([], dtype=np.int64), 64)
        assert result.size == 0

    def test_greedy_thinning(self):
        positions = np.array([0, 10, 64, 70, 128], dtype=np.int64)
        kept = enforce_spacing(positions, 64)
        assert list(kept) == [0, 64, 128]

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100),
        st.integers(min_value=1, max_value=512),
    )
    def test_spacing_invariant(self, raw_positions, spacing):
        positions = np.asarray(sorted(raw_positions), dtype=np.int64)
        kept = enforce_spacing(positions, spacing)
        gaps = np.diff(kept)
        assert (gaps >= spacing).all()
        # First element always kept.
        assert kept[0] == positions[0]
