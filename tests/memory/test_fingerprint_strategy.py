"""Tests for the fingerprint sampling strategies (value vs fixed offsets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.memory.fingerprint import (
    FingerprintConfig,
    SamplingStrategy,
    page_fingerprint,
    sample_chunk_offsets,
)


@pytest.fixture(scope="module")
def page():
    return rng_for("strategy-page").integers(0, 256, size=4096, dtype=np.uint8)


FIXED = FingerprintConfig(strategy=SamplingStrategy.FIXED_OFFSETS)
VALUE = FingerprintConfig(strategy=SamplingStrategy.VALUE_SAMPLED)


class TestFixedOffsets:
    def test_deterministic(self, page):
        a = sample_chunk_offsets(page, FIXED)
        b = sample_chunk_offsets(page, FIXED)
        assert list(a) == list(b)

    def test_same_offsets_for_any_content(self, page):
        other = rng_for("strategy-other").integers(0, 256, size=4096, dtype=np.uint8)
        assert list(sample_chunk_offsets(page, FIXED)) == list(
            sample_chunk_offsets(other, FIXED)
        )

    def test_cardinality_respected(self, page):
        config = FingerprintConfig(
            strategy=SamplingStrategy.FIXED_OFFSETS, cardinality=3
        )
        assert len(sample_chunk_offsets(page, config)) == 3

    def test_chunks_fit(self, page):
        for start in sample_chunk_offsets(page, FIXED):
            assert 0 <= start <= len(page) - FIXED.chunk_size

    def test_identical_pages_match(self, page):
        fp_a = page_fingerprint(page, FIXED)
        fp_b = page_fingerprint(page.copy(), FIXED)
        assert fp_a.overlap(fp_b) == len(fp_a.digest_set)

    def test_tiny_page(self):
        tiny = np.zeros(16, dtype=np.uint8)
        assert sample_chunk_offsets(tiny, FIXED).size == 0


class TestStrategyContrast:
    """The Section-8 Difference Engine comparison: value sampling
    survives content shifts, fixed offsets do not."""

    def test_shifted_content_value_wins(self, page):
        shifted = np.roll(page, 272)  # a non-page sub-shift
        value_overlap = page_fingerprint(page, VALUE).overlap(
            page_fingerprint(shifted, VALUE)
        )
        fixed_overlap = page_fingerprint(page, FIXED).overlap(
            page_fingerprint(shifted, FIXED)
        )
        assert value_overlap > fixed_overlap

    def test_unshifted_content_both_match(self, page):
        assert page_fingerprint(page, VALUE).overlap(
            page_fingerprint(page.copy(), VALUE)
        ) == len(page_fingerprint(page, VALUE).digest_set)
        assert page_fingerprint(page, FIXED).overlap(
            page_fingerprint(page.copy(), FIXED)
        ) == len(page_fingerprint(page, FIXED).digest_set)

    def test_savings_gap_on_aslr_images(self):
        """End to end: ASLR'd sandboxes dedup better with value sampling."""
        from repro.analysis.study import measure_function_savings
        from repro.workload.functionbench import FunctionBenchSuite

        suite = FunctionBenchSuite.subset(["LinAlg"])
        value = measure_function_savings(
            suite, content_scale=1 / 256, aslr=True, fingerprint=VALUE
        )["LinAlg"].savings_fraction
        fixed = measure_function_savings(
            suite, content_scale=1 / 256, aslr=True, fingerprint=FIXED
        )["LinAlg"].savings_fraction
        assert value >= fixed
