"""Tests for the Section-2 redundancy measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.memory.redundancy import (
    RedundancyResult,
    measure_redundancy,
    redundancy_matrix,
)
from tests.conftest import TEST_SCALE


def random_buffer(tag: str, n: int) -> np.ndarray:
    return rng_for("red-test", tag).integers(0, 256, size=n, dtype=np.uint8)


class TestMeasureRedundancy:
    def test_identical_buffers_near_full(self):
        data = random_buffer("a", 64 * 1024)
        result = measure_redundancy(data, data.copy(), 64)
        assert result.redundancy > 0.95

    def test_unrelated_buffers_near_zero(self):
        a = random_buffer("b", 64 * 1024)
        b = random_buffer("c", 64 * 1024)
        result = measure_redundancy(b, a, 64)
        assert result.redundancy < 0.02

    def test_bounds(self):
        a = random_buffer("d", 16 * 1024)
        b = a.copy()
        b[::7] = 0  # heavy damage
        result = measure_redundancy(b, a, 64)
        assert 0.0 <= result.redundancy <= 1.0

    def test_half_shared(self):
        shared = random_buffer("e", 32 * 1024)
        a = np.concatenate([shared, random_buffer("f", 32 * 1024)])
        b = np.concatenate([shared, random_buffer("g", 32 * 1024)])
        result = measure_redundancy(b, a, 64)
        assert 0.35 < result.redundancy < 0.65

    def test_counts_consistent(self):
        a = random_buffer("h", 16 * 1024)
        result = measure_redundancy(a, a.copy(), 64)
        assert result.matched_chunks <= result.probed_chunks
        assert result.duplicated_bytes <= result.total_bytes

    def test_empty_subject(self):
        a = random_buffer("i", 1024)
        result = measure_redundancy(np.zeros(0, dtype=np.uint8), a, 64)
        assert result.redundancy == 0.0

    def test_accepts_images(self, linalg_image, linalg_profile):
        other = linalg_profile.synthesize(99, content_scale=TEST_SCALE)
        result = measure_redundancy(other, linalg_image, 64)
        assert isinstance(result, RedundancyResult)
        assert result.redundancy > 0.5


class TestPaperProperties:
    """The measurement study's qualitative findings (Figure 1)."""

    def test_same_function_high_redundancy(self, linalg_profile):
        a = linalg_profile.synthesize(11, content_scale=TEST_SCALE)
        b = linalg_profile.synthesize(12, content_scale=TEST_SCALE)
        assert measure_redundancy(b, a, 64).redundancy > 0.8

    def test_redundancy_decays_with_chunk_size(self, linalg_profile):
        a = linalg_profile.synthesize(11, content_scale=TEST_SCALE)
        b = linalg_profile.synthesize(12, content_scale=TEST_SCALE)
        small = measure_redundancy(b, a, 64).redundancy
        large = measure_redundancy(b, a, 1024).redundancy
        assert large < small

    def test_cross_function_lower_but_substantial(self, suite):
        vanilla = suite.get("Vanilla").synthesize(21, content_scale=TEST_SCALE)
        linalg_a = suite.get("LinAlg").synthesize(22, content_scale=TEST_SCALE)
        linalg_b = suite.get("LinAlg").synthesize(23, content_scale=TEST_SCALE)
        cross = measure_redundancy(linalg_a, vanilla, 64).redundancy
        same = measure_redundancy(linalg_a, linalg_b, 64).redundancy
        assert 0.4 < cross < same

    def test_aslr_causes_small_drop(self, linalg_profile):
        plain_a = linalg_profile.synthesize(31, content_scale=TEST_SCALE)
        plain_b = linalg_profile.synthesize(32, content_scale=TEST_SCALE)
        aslr_a = linalg_profile.synthesize(33, content_scale=TEST_SCALE, aslr=True)
        aslr_b = linalg_profile.synthesize(34, content_scale=TEST_SCALE, aslr=True)
        plain = measure_redundancy(plain_b, plain_a, 64).redundancy
        randomized = measure_redundancy(aslr_b, aslr_a, 64).redundancy
        assert randomized < plain
        assert plain - randomized < 0.25  # a drop, not a collapse


class TestRedundancyMatrix:
    def test_matrix_structure(self, small_suite):
        images = {
            p.name: p.synthesize(40 + i, content_scale=TEST_SCALE)
            for i, p in enumerate(small_suite)
        }
        matrix = redundancy_matrix(images, 64)
        names = list(images)
        assert set(matrix) == {(r, c) for r in names for c in names}
        for value in matrix.values():
            assert 0.0 <= value <= 1.0

    def test_diagonal_is_self_redundancy(self, small_suite):
        images = {
            p.name: p.synthesize(50 + i, content_scale=TEST_SCALE)
            for i, p in enumerate(small_suite)
        }
        matrix = redundancy_matrix(images, 64)
        for name in images:
            assert matrix[(name, name)] > 0.9
