"""Tests for value-sampled page fingerprints."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import rng_for
from repro.memory.fingerprint import (
    DEFAULT_CARDINALITY,
    FingerprintConfig,
    PageFingerprint,
    image_fingerprints,
    page_fingerprint,
    sample_chunk_offsets,
)


@pytest.fixture(scope="module")
def random_page():
    return rng_for("fp-test-page").integers(0, 256, size=4096, dtype=np.uint8)


class TestConfig:
    def test_defaults(self):
        config = FingerprintConfig()
        assert config.chunk_size == 64
        assert config.cardinality == DEFAULT_CARDINALITY

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 2},
            {"cardinality": 0},
            {"digest_bits": 0},
            {"digest_bits": 200},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FingerprintConfig(**kwargs)


class TestSampling:
    def test_deterministic(self, random_page):
        config = FingerprintConfig()
        a = sample_chunk_offsets(random_page, config)
        b = sample_chunk_offsets(random_page, config)
        assert list(a) == list(b)

    def test_cardinality_cap(self, random_page):
        config = FingerprintConfig(cardinality=3)
        offsets = sample_chunk_offsets(random_page, config)
        assert len(offsets) <= 3

    def test_chunks_fit_in_page(self, random_page):
        config = FingerprintConfig()
        for start in sample_chunk_offsets(random_page, config):
            assert 0 <= start <= len(random_page) - config.chunk_size

    def test_chunks_non_overlapping(self, random_page):
        config = FingerprintConfig(cardinality=16)
        offsets = sorted(sample_chunk_offsets(random_page, config))
        assert all(b - a >= config.chunk_size for a, b in zip(offsets, offsets[1:]))

    def test_zero_page_has_no_samples(self):
        zero_page = np.zeros(4096, dtype=np.uint8)
        fingerprint = page_fingerprint(zero_page)
        assert fingerprint.digests == ()

    def test_sampling_positions_are_content_defined(self, random_page):
        """Shifting content shifts the sampled chunks with it."""
        config = FingerprintConfig(cardinality=32)
        shifted = np.roll(random_page, 256)
        original = page_fingerprint(random_page, config)
        moved = page_fingerprint(shifted, config)
        # Most digests survive the shift (windows travel with content).
        shared = original.overlap(moved)
        assert shared >= len(original.digests) // 2


class TestPageFingerprint:
    def test_overlap_symmetric(self, random_page):
        other = random_page.copy()
        other[:512] = rng_for("fp-other").integers(0, 256, size=512, dtype=np.uint8)
        fp_a = page_fingerprint(random_page)
        fp_b = page_fingerprint(other)
        assert fp_a.overlap(fp_b) == fp_b.overlap(fp_a)

    def test_identical_pages_full_overlap(self, random_page):
        fp_a = page_fingerprint(random_page)
        fp_b = page_fingerprint(random_page.copy())
        assert fp_a.overlap(fp_b) == len(fp_a.digest_set)

    def test_digest_bits_truncation(self, random_page):
        config = FingerprintConfig(digest_bits=16)
        fingerprint = page_fingerprint(random_page, config)
        assert all(d < 2**16 for d in fingerprint.digests)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PageFingerprint(digests=(1, 2), offsets=(0,))

    def test_image_fingerprints_per_page(self, linalg_image):
        fingerprints = image_fingerprints(linalg_image)
        assert len(fingerprints) == linalg_image.num_pages

    @given(st.integers(min_value=1, max_value=20))
    def test_cardinality_monotone_in_digest_count(self, cardinality):
        page = rng_for("fp-prop-page").integers(0, 256, size=4096, dtype=np.uint8)
        config = FingerprintConfig(cardinality=cardinality)
        fingerprint = page_fingerprint(page, config)
        assert len(fingerprint.digests) <= cardinality
