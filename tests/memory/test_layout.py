"""Tests for the memory region model."""

from __future__ import annotations

import pytest

from repro._util import MIB, PAGE_SIZE
from repro.memory.layout import (
    RUNTIME_BYTES,
    AslrBehavior,
    ImageLayout,
    RegionSpec,
    SharingScope,
    standard_layout,
)


def spec(**overrides) -> RegionSpec:
    base = dict(
        name="r",
        scope=SharingScope.FUNCTION,
        content_key="k",
        fraction=0.5,
    )
    base.update(overrides)
    return RegionSpec(**base)


class TestRegionSpec:
    def test_valid(self):
        region = spec(mutation_rate=0.001, pointer_interval=128, common_fill=0.5)
        assert region.fraction == 0.5

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_bad_fraction(self, fraction):
        with pytest.raises(ValueError):
            spec(fraction=fraction)

    def test_bad_mutation_rate(self):
        with pytest.raises(ValueError):
            spec(mutation_rate=-1e-3)
        with pytest.raises(ValueError):
            spec(mutation_rate=1.0)

    def test_bad_common_fill(self):
        with pytest.raises(ValueError):
            spec(common_fill=1.5)

    def test_bad_dirty_rate(self):
        with pytest.raises(ValueError):
            spec(dirty_page_rate=-0.2)

    def test_bad_pointer_interval(self):
        with pytest.raises(ValueError):
            spec(pointer_interval=-1)


class TestImageLayout:
    def _two_region_layout(self) -> ImageLayout:
        return ImageLayout(
            function="f",
            regions=(
                spec(name="a", fraction=0.25),
                spec(name="b", fraction=0.75),
            ),
        )

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            ImageLayout(function="f", regions=(spec(name="a", fraction=0.5),))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ImageLayout(
                function="f",
                regions=(spec(name="a", fraction=0.5), spec(name="a", fraction=0.5)),
            )

    def test_place_is_page_aligned_and_contiguous(self):
        layout = self._two_region_layout()
        placed = layout.place(1 * MIB)
        offset = 0
        for region in placed:
            assert region.offset == offset
            assert region.size % PAGE_SIZE == 0
            assert region.size >= PAGE_SIZE
            offset += region.size

    def test_place_total_close_to_request(self):
        layout = self._two_region_layout()
        placed = layout.place(1 * MIB)
        total = sum(r.size for r in placed)
        assert abs(total - 1 * MIB) <= PAGE_SIZE * len(placed)

    def test_place_rejects_tiny_total(self):
        layout = self._two_region_layout()
        with pytest.raises(ValueError):
            layout.place(PAGE_SIZE)


class TestStandardLayout:
    def test_fractions_sum_to_one(self):
        layout = standard_layout("F", ("numpy",), 32 * MIB)
        assert abs(sum(r.fraction for r in layout.regions) - 1.0) < 1e-9

    def test_runtime_region_absolute_size_invariant(self):
        # Two differently-sized functions share an equally-sized runtime.
        small = standard_layout("S", (), 17 * MIB)
        large = standard_layout("L", ("torch",), 90 * MIB)
        small_runtime = next(r for r in small.regions if r.name == "runtime")
        large_runtime = next(r for r in large.regions if r.name == "runtime")
        assert abs(small_runtime.fraction * 17 * MIB - RUNTIME_BYTES) < PAGE_SIZE
        assert abs(large_runtime.fraction * 90 * MIB - RUNTIME_BYTES) < PAGE_SIZE

    def test_library_regions_present_and_shared_key(self):
        a = standard_layout("A", ("numpy",), 32 * MIB)
        b = standard_layout("B", ("numpy", "pandas"), 64 * MIB)
        key_a = next(r.content_key for r in a.regions if r.name == "lib-numpy")
        key_b = next(r.content_key for r in b.regions if r.name == "lib-numpy")
        assert key_a == key_b == "lib:numpy"

    def test_function_private_regions_keyed_by_function(self):
        a = standard_layout("A", (), 17 * MIB)
        b = standard_layout("B", (), 17 * MIB)
        heap_a = next(r for r in a.regions if r.name == "heap")
        heap_b = next(r for r in b.regions if r.name == "heap")
        assert heap_a.content_key != heap_b.content_key

    def test_unique_region_is_instance_scope_and_fully_dirty(self):
        layout = standard_layout("F", (), 17 * MIB)
        unique = next(r for r in layout.regions if r.name == "unique")
        assert unique.scope is SharingScope.INSTANCE
        assert unique.dirty_page_rate == 1.0

    def test_stack_uses_fine_grained_aslr(self):
        layout = standard_layout("F", (), 17 * MIB)
        stack = next(r for r in layout.regions if r.name == "stack")
        assert stack.aslr is AslrBehavior.FINE

    def test_oversized_libraries_are_squeezed(self):
        # torch alone is 42 MB; a 56 MB footprint forces a squeeze but
        # must still produce a valid layout.
        layout = standard_layout("F", ("torch", "pandas", "opencv"), 70 * MIB)
        assert abs(sum(r.fraction for r in layout.regions) - 1.0) < 1e-9
        shared = sum(
            r.fraction
            for r in layout.regions
            if r.scope in (SharingScope.RUNTIME, SharingScope.LIBRARY)
        )
        assert shared <= 0.95

    def test_rejects_footprint_below_runtime(self):
        with pytest.raises(ValueError):
            standard_layout("F", (), RUNTIME_BYTES // 2)

    def test_unique_boost_grows_unique_region(self):
        plain = standard_layout("F", (), 66 * MIB)
        boosted = standard_layout("F", (), 66 * MIB, unique_boost=2.5)
        plain_unique = next(r.fraction for r in plain.regions if r.name == "unique")
        boosted_unique = next(r.fraction for r in boosted.regions if r.name == "unique")
        assert boosted_unique > plain_unique
