"""Unit tests for the dedup-domain policy and its registry tripwire.

The :class:`TenantConfig` policy maps tenants to domain strings; the
registry pins each checkpoint to the single domain it first registered
under and raises on any attempt to span two (DESIGN.md §15).
"""

from __future__ import annotations

import pytest

from repro.core.registry import FingerprintRegistry, PageRef, ShardedFingerprintRegistry
from repro.memory.fingerprint import PageFingerprint
from repro.tenancy.domains import GLOBAL_DOMAIN, DedupDomainMode, TenantConfig


def fp(*digests: int) -> PageFingerprint:
    return PageFingerprint(digests=tuple(digests), offsets=tuple(range(len(digests))))


class TestTenantConfig:
    def test_default_is_off_and_global(self):
        config = TenantConfig()
        assert config.mode is DedupDomainMode.OFF
        assert not config.enabled
        assert config.domain_of("anyone") == GLOBAL_DOMAIN
        assert config.domain_of("") == GLOBAL_DOMAIN

    def test_per_tenant_domains_are_distinct(self):
        config = TenantConfig(mode=DedupDomainMode.PER_TENANT)
        assert config.enabled
        assert config.domain_of("a") != config.domain_of("b")
        assert config.domain_of("a") == config.domain_of("a")
        assert config.domain_of("a") != GLOBAL_DOMAIN

    def test_trust_groups_share_one_domain(self):
        config = TenantConfig(
            mode=DedupDomainMode.TRUST_GROUPS,
            trust_groups=(("ml", ("a", "b")), ("web", ("c",))),
        )
        assert config.domain_of("a") == config.domain_of("b")
        assert config.domain_of("c") != config.domain_of("a")

    def test_unlisted_tenant_fails_closed(self):
        """A tenant outside every trust group gets a singleton domain —
        never the global one, never another group's."""
        config = TenantConfig(
            mode=DedupDomainMode.TRUST_GROUPS, trust_groups=(("ml", ("a",)),)
        )
        stranger = config.domain_of("stranger")
        assert stranger != GLOBAL_DOMAIN
        assert stranger != config.domain_of("a")
        assert stranger != config.domain_of("other-stranger")

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantConfig(trust_groups=(("g", ("a",)),))  # groups need the mode
        with pytest.raises(ValueError):
            TenantConfig(
                mode=DedupDomainMode.TRUST_GROUPS,
                trust_groups=(("g", ("a",)), ("g", ("b",))),
            )
        with pytest.raises(ValueError):
            TenantConfig(
                mode=DedupDomainMode.TRUST_GROUPS,
                trust_groups=(("g", ("a",)), ("h", ("a",))),
            )


@pytest.mark.parametrize(
    "make",
    [FingerprintRegistry, lambda: ShardedFingerprintRegistry(3)],
    ids=["plain", "sharded"],
)
class TestRegistryDomainTripwire:
    def test_checkpoint_cannot_span_domains(self, make):
        registry = make()
        ref = PageRef(checkpoint_id=1, node_id=0, page_index=0)
        registry.register_page(ref, fp(1, 2, 3), "tenant:a")
        with pytest.raises(ValueError, match="domain"):
            registry.register_page(
                PageRef(checkpoint_id=1, node_id=0, page_index=1),
                fp(4, 5, 6),
                "tenant:b",
            )
        with pytest.raises(ValueError, match="domain"):
            registry.register_page_location(ref, 99, "tenant:b")

    def test_lookup_never_crosses_domains(self, make):
        registry = make()
        registry.register_page(PageRef(1, 0, 0), fp(1, 2, 3), "tenant:a")
        registry.register_page(PageRef(2, 1, 0), fp(1, 2, 3), "tenant:b")
        for domain, expected_checkpoint in (("tenant:a", 1), ("tenant:b", 2)):
            counts = registry.lookup(fp(1, 2, 3), domain)
            assert {ref.checkpoint_id for ref in counts} == {expected_checkpoint}
        assert registry.lookup(fp(1, 2, 3), GLOBAL_DOMAIN) == {}
        assert registry.lookup(fp(1, 2, 3), "tenant:c") == {}

    def test_replicas_never_cross_domains(self, make):
        registry = make()
        ours = PageRef(1, 0, 0)
        twin_ours = PageRef(2, 1, 0)
        twin_theirs = PageRef(3, 1, 0)
        registry.register_page_location(ours, 7, "tenant:a")
        registry.register_page_location(twin_ours, 7, "tenant:a")
        registry.register_page_location(twin_theirs, 7, "tenant:b")
        assert registry.replicas_for(ours) == (twin_ours,)
        assert registry.page_replicas(7, "tenant:a") == (ours, twin_ours)
        assert registry.page_replicas(7, "tenant:b") == (twin_theirs,)

    def test_deregister_clears_domain_claim(self, make):
        registry = make()
        registry.register_page(PageRef(1, 0, 0), fp(1, 2), "tenant:a")
        assert registry.checkpoint_domain(1) == "tenant:a"
        registry.deregister_checkpoint(1)
        assert registry.checkpoint_domain(1) is None
        # The id may now be reused under a different domain.
        registry.register_page(PageRef(1, 0, 0), fp(1, 2), "tenant:b")
        assert registry.checkpoint_domain(1) == "tenant:b"
