"""Property: every sharing decision stays inside the requester's domain.

For any trace x tenant assignment x domain policy, after a full Medes
run (dedup + template sharing + sharded or plain registry):

* every base checkpoint carries its owner's domain, and the registry's
  claim map agrees;
* every registry partition contains only refs of checkpoints in that
  partition's domain;
* every dedup sandbox's patched pages reference bases in the sandbox's
  own domain, and every template delta's segment keys carry it;
* a function served under two different tenant labels trips the
  controller's ownership check instead of blending domains.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.tenancy.domains import DedupDomainMode, TenantConfig
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0
MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)
FUNCTIONS = ("Vanilla", "LinAlg", "FeatureGen")
TENANTS = ("alice", "bob", "carol")

POLICIES = (
    TenantConfig(),
    TenantConfig(mode=DedupDomainMode.PER_TENANT),
    TenantConfig(
        mode=DedupDomainMode.TRUST_GROUPS, trust_groups=(("pair", ("alice", "bob")),)
    ),
    TenantConfig(
        mode=DedupDomainMode.TRUST_GROUPS,
        trust_groups=(("solo-a", ("alice",)), ("solo-c", ("carol",))),
    ),
)

scenarios = st.fixed_dictionaries(
    {
        "policy": st.sampled_from(POLICIES),
        "tenant_of": st.fixed_dictionaries(
            {name: st.sampled_from(TENANTS) for name in FUNCTIONS}
        ),
        "shards": st.sampled_from([1, 4]),
        "seed": st.integers(0, 2**16),
    }
)

#: Two bursts so bases form, idle, and serve dedup restores; a tail
#: arrival re-exercises the candidate indexes late in the run.
ARRIVAL_PATTERN = [
    (0.0, "Vanilla"),
    (1.0, "Vanilla"),
    (2.0, "LinAlg"),
    (3.0, "FeatureGen"),
    (4.0, "FeatureGen"),
    (26_000.0, "Vanilla"),
    (26_010.0, "LinAlg"),
    (60_000.0, "FeatureGen"),
    (61_000.0, "Vanilla"),
]


def run_scenario(policy, tenant_of, shards, seed):
    suite = FunctionBenchSuite.subset(list(FUNCTIONS))
    trace = Trace.from_arrivals(
        [(at, fn, tenant_of[fn]) for at, fn in ARRIVAL_PATTERN]
    )
    config = ClusterConfig(
        nodes=2,
        node_memory_mb=256.0,
        content_scale=SCALE,
        seed=seed,
        registry_shards=shards,
        template_sharing=True,
        dedup_domains=policy,
    )
    sandbox_module._sandbox_ids = itertools.count(1)
    checkpoint_module._checkpoint_ids = itertools.count(1)
    platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
    report = platform.run(trace)
    return platform, report


class TestDomainPurity:
    @settings(max_examples=10, deadline=None)
    @given(scenarios)
    def test_every_decision_stays_in_domain(self, scenario):
        policy = scenario["policy"]
        tenant_of = scenario["tenant_of"]
        platform, report = run_scenario(
            policy, tenant_of, scenario["shards"], scenario["seed"]
        )
        expected = {fn: policy.domain_of(tenant_of[fn]) for fn in FUNCTIONS}

        for record in report.metrics.requests.values():
            assert record.completion_ms is not None

        # Checkpoints carry their function's domain; the registry agrees.
        registry = platform.registry
        for checkpoint in platform.store:
            assert checkpoint.domain == expected[checkpoint.function]
            if checkpoint.registered:
                claimed = registry.checkpoint_domain(checkpoint.checkpoint_id)
                assert claimed == checkpoint.domain

        # Registry partitions are pure: a domain's tables only hold refs
        # of checkpoints claimed by that domain.
        live = {c.checkpoint_id: c for c in platform.store}
        for domain in registry.domains():
            assert domain in set(expected.values())
            for refs in registry.domain_digests(domain).values():
                for ref in refs:
                    assert registry.checkpoint_domain(ref.checkpoint_id) == domain
                    if ref.checkpoint_id in live:
                        assert live[ref.checkpoint_id].domain == domain
            for refs in registry.domain_locations(domain).values():
                for ref in refs:
                    assert registry.checkpoint_domain(ref.checkpoint_id) == domain

        # Sandboxes: dedup bases and template segments are same-domain.
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                assert sandbox.domain == expected[sandbox.function]
                table = sandbox.dedup_table
                if table is None:
                    continue
                for cid in getattr(table, "base_refs", ()):
                    if cid in live:
                        assert live[cid].domain == sandbox.domain
                for key in getattr(table, "segment_keys", ()):
                    assert key[0] == sandbox.domain

        # The template catalog never forked a segment across domains.
        if platform.templates is not None:
            for key in platform.templates._segments:
                assert key[0] in set(expected.values())

        # The structural partition held, so the defence-in-depth counter
        # never fired.
        assert report.metrics.cross_domain_replica_skips == 0


class TestTenantOwnershipTripwire:
    def test_function_cannot_serve_two_tenants(self):
        suite = FunctionBenchSuite.subset(["Vanilla"])
        config = ClusterConfig(
            nodes=1,
            node_memory_mb=256.0,
            content_scale=SCALE,
            dedup_domains=TenantConfig(mode=DedupDomainMode.PER_TENANT),
        )
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
        trace = Trace.from_arrivals(
            [(0.0, "Vanilla", "alice"), (1.0, "Vanilla", "mallory")]
        )
        with pytest.raises(ValueError, match="tenant"):
            platform.run(trace)
