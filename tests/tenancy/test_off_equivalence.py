"""Dedup domains off == the pre-tenancy platform, bit for bit.

``ClusterConfig.dedup_domains`` follows the PR-3/5/8 flag discipline:
with the default ``off`` policy every request maps to the single global
domain, the registry collapses to one partition, and tenant labels on
the trace must be *inert* — a fully tenant-labelled replay produces the
exact ``RunMetrics`` of the anonymous replay, across all three platform
kinds and every eviction order.  (Both runs share one binary, so the
equality also pins that no off-path code reads the labels at all.)
"""

from __future__ import annotations

import itertools

import pytest

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.node import EvictionOrder
from repro.tenancy.domains import DedupDomainMode, TenantConfig
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 256.0
MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)

PLATFORMS = [
    pytest.param(PlatformKind.MEDES, {"medes": MEDES}, id="medes"),
    pytest.param(PlatformKind.FIXED_KEEP_ALIVE, {}, id="fixed"),
    pytest.param(PlatformKind.ADAPTIVE_KEEP_ALIVE, {}, id="adaptive"),
]

ORDERS = [
    pytest.param(order, id=order.name.lower())
    for order in (EvictionOrder.LRU, EvictionOrder.LARGEST_FIRST, EvictionOrder.RANDOM)
]


def pressure_workload():
    suite = FunctionBenchSuite.subset(["FeatureGen", "RNNModel"])
    trace = AzureTraceGenerator(seed=5, rate_scale=8.0).generate(4.0, suite.names())
    return suite, trace


def run_once(kind, config, suite, trace, **build_kwargs):
    sandbox_module._sandbox_ids = itertools.count(1)
    checkpoint_module._checkpoint_ids = itertools.count(1)
    platform = build_platform(kind, config, suite, **build_kwargs)
    return platform.run(trace)


class TestOffIsInert:
    """3 platforms x 3 eviction orders: labels change nothing under off."""

    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("kind,kwargs", PLATFORMS)
    def test_matrix(self, kind, kwargs, order):
        suite, trace = pressure_workload()
        config = ClusterConfig(
            nodes=1,
            node_memory_mb=256.0,
            content_scale=SCALE,
            seed=7,
            eviction_order=order,
        )
        labelled = trace.with_tenants(
            {name: f"tenant-{name}" for name in suite.names()}
        )
        baseline = run_once(kind, config, suite, trace, **kwargs)
        relabelled = run_once(kind, config, suite, labelled, **kwargs)
        assert relabelled.duration_ms == baseline.duration_ms
        assert relabelled.metrics == baseline.metrics
        assert baseline.metrics.cross_domain_replica_skips == 0

    def test_off_collapses_to_one_domain(self):
        suite, trace = pressure_workload()
        config = ClusterConfig(nodes=1, node_memory_mb=256.0, content_scale=SCALE, seed=7)
        labelled = trace.with_tenants(
            {name: f"tenant-{name}" for name in suite.names()}
        )
        sandbox_module._sandbox_ids = itertools.count(1)
        checkpoint_module._checkpoint_ids = itertools.count(1)
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
        platform.run(labelled)
        assert platform.registry.domains() == ("",)

    def test_enabled_domains_change_behaviour(self):
        """The converse guard: per-tenant domains on the same labelled
        trace must NOT be a silent no-op — the partition must actually
        cost dedup opportunities (more bases, or fewer dedup hits)."""
        suite, trace = pressure_workload()
        config = ClusterConfig(nodes=1, node_memory_mb=256.0, content_scale=SCALE, seed=7)
        labelled = trace.with_tenants(
            {name: f"tenant-{name}" for name in suite.names()}
        )
        off = run_once(PlatformKind.MEDES, config, suite, labelled, medes=MEDES)
        per_tenant = run_once(
            PlatformKind.MEDES,
            ClusterConfig(
                nodes=1,
                node_memory_mb=256.0,
                content_scale=SCALE,
                seed=7,
                dedup_domains=TenantConfig(mode=DedupDomainMode.PER_TENANT),
            ),
            suite,
            labelled,
            medes=MEDES,
        )
        assert per_tenant.metrics != off.metrics
        assert per_tenant.metrics.bases_created >= off.metrics.bases_created
