"""Shard loss + rebuild must reconstruct per-domain partitions exactly.

Satellite of DESIGN.md §15: ``drop_shard`` wipes one shard's tables
(including its slice of every domain partition), and the heal path
re-registers surviving checkpoints *under their recorded domains*.  The
recount property compares the rebuilt sharded registry against a plain
registry that never lost anything: domain membership, bucket contents,
replica indexes and digest counts must all match, for every domain.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import stable_seed
from repro.core.policy import MedesPolicyConfig
from repro.core.registry import (
    FingerprintRegistry,
    PageRef,
    ShardedFingerprintRegistry,
)
from repro.faults.schedule import FaultSchedule, FaultsConfig, ShardOutage
from repro.memory.fingerprint import PageFingerprint
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.tenancy.domains import DedupDomainMode, TenantConfig
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

DOMAINS = ("", "tenant:a", "tenant:b", "group:ml")


@st.composite
def registrations(draw):
    """(checkpoint_id, domain, digests, page_digest) tuples; each
    checkpoint belongs to exactly one domain (the registry invariant)."""
    n_checkpoints = draw(st.integers(1, 8))
    domain_of = {
        cid: draw(st.sampled_from(DOMAINS)) for cid in range(1, n_checkpoints + 1)
    }
    entries = []
    for cid, domain in domain_of.items():
        pages = draw(st.integers(1, 3))
        for page in range(pages):
            digests = tuple(
                stable_seed("digest", draw(st.integers(0, 40)), i) for i in range(4)
            )
            page_digest = stable_seed("content", draw(st.integers(0, 10)))
            entries.append((cid, domain, page, digests, page_digest))
    return entries


def fp(digests) -> PageFingerprint:
    return PageFingerprint(digests=tuple(digests), offsets=tuple(range(len(digests))))


def populate(registry, entries):
    for cid, domain, page, digests, page_digest in entries:
        ref = PageRef(checkpoint_id=cid, node_id=cid % 3, page_index=page)
        registry.register_page(ref, fp(digests), domain)
        registry.register_page_location(ref, page_digest, domain)


def assert_domain_parity(sharded, plain):
    assert sharded.domains() == plain.domains()
    assert sharded.digest_count == plain.digest_count
    for domain in plain.domains():
        assert sharded.domain_digests(domain) == plain.domain_digests(domain)
        assert sharded.domain_locations(domain) == plain.domain_locations(domain)


class TestRebuildRecount:
    @settings(max_examples=25, deadline=None)
    @given(entries=registrations(), n_shards=st.sampled_from([2, 3, 5]), lost=st.integers(0, 4))
    def test_rebuild_restores_every_domain_partition(self, entries, n_shards, lost):
        plain = FingerprintRegistry()
        sharded = ShardedFingerprintRegistry(n_shards)
        populate(plain, entries)
        populate(sharded, entries)
        assert_domain_parity(sharded, plain)
        # Page- and digest-level stats agree between variants while both
        # are intact (the PR-1 discipline, now under domains).
        assert sharded.stats.pages_registered == plain.stats.pages_registered
        assert sharded.stats.digests_registered == plain.stats.digests_registered

        sharded.drop_shard(lost % n_shards)
        # The heal replay: every surviving checkpoint re-registers under
        # its original domain; untouched shards absorb it idempotently.
        populate(sharded, entries)
        assert_domain_parity(sharded, plain)
        for cid, domain, _, _, _ in entries:
            assert sharded.checkpoint_domain(cid) == domain

    @settings(max_examples=15, deadline=None)
    @given(entries=registrations())
    def test_replica_routing_survives_shard_loss(self, entries):
        """The sharded front-end's location routes are not shard state:
        after a drop + rebuild, ``replicas_for`` answers match a plain
        registry's for every registered ref."""
        plain = FingerprintRegistry()
        sharded = ShardedFingerprintRegistry(3)
        populate(plain, entries)
        populate(sharded, entries)
        sharded.drop_shard(1)
        populate(sharded, entries)
        for cid, domain, page, _, _ in entries:
            ref = PageRef(checkpoint_id=cid, node_id=cid % 3, page_index=page)
            assert sharded.replicas_for(ref) == plain.replicas_for(ref)


class TestRebuildUnderDomainsEndToEnd:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_healed_outage_rebuilds_domain_partitions(self, shards):
        """A mid-run shard outage under per-tenant domains: after heal,
        every registered checkpoint's pages are back in its own (and
        only its own) partition, and refcounts recount cleanly."""
        suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
        trace = Trace.from_arrivals(
            [
                (0.0, "Vanilla", "alice"),
                (1.0, "Vanilla", "alice"),
                (2.0, "LinAlg", "bob"),
                (3.0, "LinAlg", "bob"),
                (60_000.0, "Vanilla", "alice"),
                (61_000.0, "LinAlg", "bob"),
                (120_000.0, "Vanilla", "alice"),
            ]
        )
        config = ClusterConfig(
            nodes=2,
            node_memory_mb=512.0,
            content_scale=1.0 / 256.0,
            seed=4,
            registry_shards=shards,
            verify_restores=True,
            dedup_domains=TenantConfig(mode=DedupDomainMode.PER_TENANT),
            faults=FaultsConfig(
                schedule=FaultSchedule(
                    shard_outages=(
                        ShardOutage(at_ms=30_000.0, shard=0, heal_at_ms=50_000.0),
                    )
                )
            ),
        )
        platform = build_platform(
            PlatformKind.MEDES,
            config,
            suite,
            medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
        )
        report = platform.run(trace)
        metrics = report.metrics
        assert metrics.shard_rebuilds == 1
        for record in metrics.requests.values():
            assert record.completion_ms is not None

        registry = platform.registry
        function_domain = {"Vanilla": "tenant:alice", "LinAlg": "tenant:bob"}
        registered = [c for c in platform.store if c.registered]
        assert registered, "the run must leave live bases to recount"
        for checkpoint in registered:
            domain = checkpoint.domain
            assert domain == function_domain[checkpoint.function]
            owned = {
                ref.checkpoint_id
                for refs in registry.domain_digests(domain).values()
                for ref in refs
            }
            assert checkpoint.checkpoint_id in owned
            for other in registry.domains():
                if other == domain:
                    continue
                foreign = {
                    ref.checkpoint_id
                    for refs in registry.domain_digests(other).values()
                    for ref in refs
                }
                assert checkpoint.checkpoint_id not in foreign

        # Refcount recount (the PR-2 discipline, under domains + heal).
        expected: Counter[int] = Counter()
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    expected.update(
                        getattr(sandbox.dedup_table, "base_refs", ())
                    )
        for checkpoint in platform.store:
            assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)
        assert metrics.cross_domain_replica_skips == 0
