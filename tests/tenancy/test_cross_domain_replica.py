"""Replica rehoming must never cross a dedup-domain boundary (§15).

Two layers of defence, each pinned here:

* **Structural** — the replica index is partitioned by domain, so under
  a node crash a dedup sandbox whose base died can only ever rehome
  onto a same-domain byte-identical replica.  A crash run under
  per-tenant domains completes with zero cross-domain skips because
  foreign replicas are simply invisible.
* **Defence in depth** — ``ClusterController._replica_for`` re-checks
  the candidate checkpoint's recorded domain against the requester's.
  If the partition is ever bypassed (simulated here by hand-planting a
  byte-identical foreign checkpoint into the victim's partition, the
  kind of state a poisoned or corrupted index would hold), the replica
  is skipped and counted, rehoming fails, and the sandbox falls down
  the ladder to purge → cold instead of silently merging two tenants'
  memory.
"""

from __future__ import annotations

from repro._util import hash_bytes
from repro.core.policy import MedesPolicyConfig
from repro.core.registry import PageRef
from repro.faults.schedule import FaultSchedule, FaultsConfig, NodeCrash
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.checkpoint import BaseCheckpoint
from repro.sandbox.state import SandboxState
from repro.tenancy.domains import DedupDomainMode, TenantConfig
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0
MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)

#: Bursts that form dedup state before the fault window (mirrors the
#: fault-injection suite's DEDUP_WORKLOAD, with tenant labels).
ARRIVALS = [
    (0.0, "Vanilla", "alice"),
    (1.0, "Vanilla", "alice"),
    (2.0, "LinAlg", "bob"),
    (3.0, "LinAlg", "bob"),
    (26_000.0, "Vanilla", "alice"),
    (26_010.0, "Vanilla", "alice"),
    (60_000.0, "Vanilla", "alice"),
    (61_000.0, "LinAlg", "bob"),
    (120_000.0, "Vanilla", "alice"),
]


def run_crash(dedup_domains):
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
    config = ClusterConfig(
        nodes=2,
        node_memory_mb=512.0,
        content_scale=SCALE,
        seed=4,
        verify_restores=True,
        dedup_domains=dedup_domains,
        faults=FaultsConfig(
            schedule=FaultSchedule(node_crashes=(NodeCrash(at_ms=45_000.0, node_id=1),))
        ),
    )
    platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
    report = platform.run(Trace.from_arrivals(ARRIVALS))
    return platform, report


class TestStructuralPartition:
    def test_crash_recovery_never_crosses_domains(self):
        platform, report = run_crash(TenantConfig(mode=DedupDomainMode.PER_TENANT))
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        # The partition kept foreign replicas invisible: recovery ran
        # (reconciliation, possibly rehomes) without a single candidate
        # even reaching the domain check.
        assert report.metrics.cross_domain_replica_skips == 0
        live = {c.checkpoint_id: c for c in platform.store}
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                table = sandbox.dedup_table
                if table is None:
                    continue
                for cid in getattr(table, "base_refs", ()):
                    if cid in live:
                        assert live[cid].domain == sandbox.domain


class TestDefenceInDepth:
    def _dedup_sandbox(self, platform):
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if (
                    sandbox.state is SandboxState.DEDUP
                    and sandbox.dedup_table is not None
                    and getattr(sandbox.dedup_table, "base_refs", None)
                ):
                    return sandbox
        raise AssertionError("run produced no parked dedup sandbox")

    def test_planted_foreign_replica_is_skipped_not_leaked(self):
        """Poisoned replica index: a byte-identical checkpoint of another
        tenant planted inside the victim's partition must be skipped
        (and counted), so rehoming fails and the purge → cold path runs
        instead of merging the tenants' memory."""
        # A clean (no-crash) per-tenant run that leaves a parked dedup
        # sandbox behind.
        suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
        config = ClusterConfig(
            nodes=2,
            node_memory_mb=512.0,
            content_scale=SCALE,
            seed=4,
            dedup_domains=TenantConfig(mode=DedupDomainMode.PER_TENANT),
            # A benign fault config arms the recovery machinery (health
            # tracking) without injecting anything.
            faults=FaultsConfig(schedule=FaultSchedule()),
        )
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
        platform.run(Trace.from_arrivals(ARRIVALS[:6]))
        controller = platform.controller
        sandbox = self._dedup_sandbox(platform)
        base_id = next(iter(sandbox.dedup_table.base_refs))
        base = platform.store.get(base_id)
        assert base.domain == sandbox.domain

        # Plant a byte-identical copy of the base, owned by another
        # tenant, directly into the victim's replica partition — the
        # structural invariant the index normally guarantees is now
        # violated on purpose.
        foreign = BaseCheckpoint(
            function=base.function,
            node_id=base.node_id,
            image=base.image,
            owner_sandbox_id=base.owner_sandbox_id,
            full_size_bytes=base.full_size_bytes,
            domain="tenant:mallory",
        )
        platform.store.add(foreign)
        for index in range(base.image.num_pages):
            platform.registry.register_page_location(
                PageRef(foreign.checkpoint_id, foreign.node_id, index),
                hash_bytes(base.image.page_bytes(index)),
                sandbox.domain,
            )

        # The victim's base dies; the planted twin is the only replica.
        dead = {base_id}
        skips_before = controller.metrics.cross_domain_replica_skips
        entry_base = next(
            entry.base
            for entry in sandbox.dedup_table.entries
            if entry.base is not None and entry.base.checkpoint_id == base_id
        )
        assert (
            controller._replica_for(entry_base, dead, sandbox.node_id, sandbox.domain)
            is None
        )
        assert controller.metrics.cross_domain_replica_skips > skips_before
        # And the full rehome attempt fails with it: the caller's next
        # rung is purge → cold, never the foreign page.
        assert controller._try_rehome(sandbox, dead) is False
