"""Tests for platform construction and naming."""

from __future__ import annotations

import pytest

from repro.controller.baselines import AdaptiveKeepAlivePolicy, FixedKeepAlivePolicy
from repro.core.policy import MedesPolicy
from repro.platform.config import ClusterConfig, ColdStartMode
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.functionbench import FunctionBenchSuite


@pytest.fixture(scope="module")
def small_config():
    return ClusterConfig(nodes=2, node_memory_mb=256.0, content_scale=1 / 256)


@pytest.fixture(scope="module")
def tiny_suite():
    return FunctionBenchSuite.subset(["Vanilla"])


class TestBuildPlatform:
    def test_medes_wiring(self, small_config, tiny_suite):
        platform = build_platform(PlatformKind.MEDES, small_config, tiny_suite)
        assert platform.name == "medes"
        assert isinstance(platform.controller.policy, MedesPolicy)
        # Medes platforms carry per-function estimators.
        assert set(platform.controller.stats) == {"Vanilla"}
        assert len(platform.nodes) == 2
        assert len(platform.agents) == 2

    def test_fixed_wiring(self, small_config, tiny_suite):
        platform = build_platform(
            PlatformKind.FIXED_KEEP_ALIVE, small_config, tiny_suite,
            fixed_keep_alive_ms=300_000.0,
        )
        assert platform.name == "fixed-ka-5min"
        assert isinstance(platform.controller.policy, FixedKeepAlivePolicy)
        assert platform.controller.stats == {}

    def test_adaptive_wiring(self, small_config, tiny_suite):
        platform = build_platform(
            PlatformKind.ADAPTIVE_KEEP_ALIVE, small_config, tiny_suite
        )
        assert platform.name == "adaptive-ka"
        assert isinstance(platform.controller.policy, AdaptiveKeepAlivePolicy)

    def test_catalyzer_flag_changes_name_and_mode(self, small_config, tiny_suite):
        platform = build_platform(
            PlatformKind.MEDES, small_config, tiny_suite, catalyzer=True
        )
        assert platform.name == "medes+catalyzer"
        assert platform.config.cold_start_mode is ColdStartMode.CATALYZER
        baseline = build_platform(
            PlatformKind.FIXED_KEEP_ALIVE, small_config, tiny_suite, catalyzer=True
        )
        assert baseline.name.endswith("+catalyzer")

    def test_catalyzer_does_not_mutate_input_config(self, small_config, tiny_suite):
        build_platform(PlatformKind.MEDES, small_config, tiny_suite, catalyzer=True)
        assert small_config.cold_start_mode is ColdStartMode.STANDARD

    def test_agents_share_registry_and_store(self, small_config, tiny_suite):
        platform = build_platform(PlatformKind.MEDES, small_config, tiny_suite)
        registries = {id(agent.registry) for agent in platform.agents.values()}
        stores = {id(agent.store) for agent in platform.agents.values()}
        assert registries == {id(platform.registry)}
        assert stores == {id(platform.store)}

    def test_node_capacity_from_config(self, small_config, tiny_suite):
        platform = build_platform(PlatformKind.MEDES, small_config, tiny_suite)
        for node in platform.nodes:
            assert node.capacity_bytes == small_config.node_capacity_bytes
