"""Streamed vs eager arrival injection: bit-identical run behaviour.

Streamed arrival injection (``ClusterConfig.streamed_arrivals``) must be
a pure memory-footprint change: :meth:`Simulator.schedule_stream`
reserves the whole trace's event sequence numbers up front, so every
arrival fires at exactly the (time, seq) slot eager pre-scheduling would
have given it and every downstream event — sandbox lifecycle, policy
timers, dedup completions — keeps its sequence number too.  These tests
pin the two injection modes to identical ``RunMetrics`` across platform
kinds and trace shapes, with chunk sizes small enough to force many
mid-run refills.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0

MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)


def run_both_injections(kind, config, suite, trace, *, chunk=2, **build_kwargs):
    """Run one platform with eager and streamed arrival injection."""
    reports = {}
    for streamed in (False, True):
        # Sandbox/checkpoint ids are process-global counters; reset them
        # so both runs mint identical ids.
        sandbox_module._sandbox_ids = itertools.count(1)
        checkpoint_module._checkpoint_ids = itertools.count(1)
        cfg = replace(config, streamed_arrivals=streamed, arrival_chunk=chunk)
        platform = build_platform(kind, cfg, suite, **build_kwargs)
        reports[streamed] = platform.run(trace)
    return reports[False], reports[True]


def assert_identical(eager_report, streamed_report):
    assert streamed_report.duration_ms == eager_report.duration_ms
    assert streamed_report.metrics == eager_report.metrics


@pytest.fixture(scope="module")
def azure_workload():
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg", "FeatureGen"])
    trace = AzureTraceGenerator(seed=3).generate(6.0, suite.names())
    return suite, trace


class TestPlatformKinds:
    """A dense multi-function trace, chunk=2 forcing constant refills."""

    CONFIG = ClusterConfig(nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=2)

    def test_medes(self, azure_workload):
        suite, trace = azure_workload
        assert_identical(
            *run_both_injections(
                PlatformKind.MEDES, self.CONFIG, suite, trace, medes=MEDES
            )
        )

    def test_fixed_keep_alive(self, azure_workload):
        suite, trace = azure_workload
        assert_identical(
            *run_both_injections(
                PlatformKind.FIXED_KEEP_ALIVE, self.CONFIG, suite, trace
            )
        )

    def test_adaptive_keep_alive(self, azure_workload):
        suite, trace = azure_workload
        assert_identical(
            *run_both_injections(
                PlatformKind.ADAPTIVE_KEEP_ALIVE, self.CONFIG, suite, trace
            )
        )

    def test_scan_control_plane(self, azure_workload):
        """Streaming composes with the scan control plane too."""
        suite, trace = azure_workload
        config = replace(self.CONFIG, indexed_control_plane=False)
        assert_identical(
            *run_both_injections(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        )


class TestTraceShapes:
    def test_simultaneous_arrivals_keep_fifo(self):
        """Same-time arrivals must submit in trace order in both modes,
        and tie-break identically against non-arrival events."""
        suite = FunctionBenchSuite.subset(["LinAlg"])
        config = ClusterConfig(nodes=1, node_memory_mb=512.0, content_scale=SCALE)
        trace = Trace.from_arrivals([(0.0, "LinAlg")] * 6 + [(40_000.0, "LinAlg")] * 3)
        assert_identical(
            *run_both_injections(
                PlatformKind.MEDES, config, suite, trace, medes=MEDES, chunk=4
            )
        )

    def test_pressure_with_evictions(self):
        suite = FunctionBenchSuite.subset(["FeatureGen", "RNNModel"])
        config = ClusterConfig(nodes=1, node_memory_mb=256.0, content_scale=SCALE, seed=7)
        trace = AzureTraceGenerator(seed=5, rate_scale=8.0).generate(4.0, suite.names())
        eager, streamed = run_both_injections(
            PlatformKind.MEDES, config, suite, trace, medes=MEDES, chunk=3
        )
        assert eager.metrics.evictions > 0, "workload must exercise eviction"
        assert_identical(eager, streamed)

    def test_empty_trace(self):
        suite = FunctionBenchSuite.subset(["LinAlg"])
        config = ClusterConfig(nodes=1, content_scale=SCALE)
        assert_identical(
            *run_both_injections(
                PlatformKind.MEDES, config, suite, Trace(requests=()), medes=MEDES
            )
        )


class TestPropertyEquivalence:
    """Hypothesis sweep: random small traces, platform kinds and chunk
    sizes all stay bit-identical between injection modes."""

    @settings(max_examples=15, deadline=None)
    @given(
        kind=st.sampled_from(list(PlatformKind)),
        chunk=st.integers(min_value=1, max_value=5),
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=120_000.0),
                st.sampled_from(["LinAlg", "Vanilla"]),
            ),
            min_size=1,
            max_size=12,
        ),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_random_traces(self, kind, chunk, arrivals, seed):
        suite = FunctionBenchSuite.subset(["LinAlg", "Vanilla"])
        config = ClusterConfig(
            nodes=1, node_memory_mb=384.0, content_scale=SCALE, seed=seed
        )
        trace = Trace.from_arrivals(arrivals)
        kwargs = {"medes": MEDES} if kind is PlatformKind.MEDES else {}
        assert_identical(
            *run_both_injections(kind, config, suite, trace, chunk=chunk, **kwargs)
        )
