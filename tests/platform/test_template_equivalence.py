"""Template sharing off == the template-free platform, bit for bit.

``ClusterConfig.template_sharing`` follows the same equivalence
discipline as tiering and faults: with the flag off (the default) no
``TemplateCatalog`` is even constructed, every template code path in the
agent/controller/platform is gated on it, and a run must produce the
exact ``RunMetrics`` the template-free code produced — even under a
wildly perturbed ``TemplateConfig``.  With the flag *on*, runs must stay
deterministic and actually fork templates under the pressure workload.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.templates.catalog import TemplateConfig
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0

MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)

#: A deliberately extreme template configuration: if any off-path code
#: read it, the run could not stay identical to the defaults.
PERTURBED_TEMPLATES = TemplateConfig(
    pool_mb=0.0,
    hot_window_ms=0.0,
    patch_level=0,
)


def run_once(kind, config, suite, trace, **build_kwargs):
    sandbox_module._sandbox_ids = itertools.count(1)
    checkpoint_module._checkpoint_ids = itertools.count(1)
    platform = build_platform(kind, config, suite, **build_kwargs)
    return platform.run(trace)


def assert_templates_inert(kind, config, suite, trace, **build_kwargs):
    """Two template-off runs — default vs perturbed config — must match."""
    baseline = run_once(kind, config, suite, trace, **build_kwargs)
    perturbed = run_once(
        kind,
        replace(config, templates=PERTURBED_TEMPLATES),
        suite,
        trace,
        **build_kwargs,
    )
    assert perturbed.duration_ms == baseline.duration_ms
    assert perturbed.metrics == baseline.metrics
    metrics = baseline.metrics
    assert metrics.template_ops == []
    assert metrics.template_forks == []
    assert len(metrics.template_timeline) == 0
    assert metrics.template_segments_created == 0
    assert metrics.template_segments_shared == 0
    assert metrics.template_promotions == 0
    assert metrics.template_promote_bytes == 0
    assert metrics.template_replica_evictions == 0
    assert metrics.template_fork_fallbacks == 0
    assert metrics.template_pool_rejections == 0
    assert metrics.template_evict_parks == 0
    assert metrics.template_delta_spills == 0
    assert metrics.template_delta_spill_bytes == 0
    assert metrics.template_delta_unspill_bytes == 0
    assert StartType.TEMPLATE not in metrics.start_counts()
    return baseline


PLATFORMS = [
    pytest.param(PlatformKind.MEDES, {"medes": MEDES}, id="medes"),
    pytest.param(PlatformKind.FIXED_KEEP_ALIVE, {}, id="fixed"),
    pytest.param(PlatformKind.ADAPTIVE_KEEP_ALIVE, {}, id="adaptive"),
]


def pressure_workload():
    suite = FunctionBenchSuite.subset(["FeatureGen", "RNNModel"])
    config = ClusterConfig(nodes=1, node_memory_mb=256.0, content_scale=SCALE, seed=7)
    trace = AzureTraceGenerator(seed=5, rate_scale=8.0).generate(4.0, suite.names())
    return suite, config, trace


def starvation_workload():
    suite = FunctionBenchSuite.subset(["RNNModel", "ModelTrain"])
    config = ClusterConfig(nodes=1, node_memory_mb=150.0, content_scale=SCALE, seed=9)
    trace = Trace.from_arrivals([(0.0, "RNNModel"), (20_000.0, "ModelTrain")])
    return suite, config, trace


def burst_workload():
    suite = FunctionBenchSuite.subset(["LinAlg"])
    config = ClusterConfig(nodes=1, node_memory_mb=220.0, content_scale=SCALE, seed=4)
    trace = Trace.from_arrivals([(float(i * 10), "LinAlg") for i in range(12)])
    return suite, config, trace


WORKLOADS = [
    pytest.param(pressure_workload, id="pressure"),
    pytest.param(starvation_workload, id="starvation"),
    pytest.param(burst_workload, id="burst"),
]


class TestTemplatesOffAreInert:
    """3 platforms x 3 workloads: disabled template sharing changes nothing."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("kind,kwargs", PLATFORMS)
    def test_matrix(self, kind, kwargs, workload):
        suite, config, trace = workload()
        assert_templates_inert(kind, config, suite, trace, **kwargs)


class TestTemplatesOnBehaviour:
    def test_deterministic_rerun(self):
        suite, config, trace = pressure_workload()
        config = replace(config, template_sharing=True)
        first = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        second = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        assert second.duration_ms == first.duration_ms
        assert second.metrics == first.metrics

    def test_pressure_exercises_templates(self):
        suite, config, trace = pressure_workload()
        config = replace(config, template_sharing=True, verify_accounting=True)
        report = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        metrics = report.metrics
        assert metrics.template_ops, "idle sandboxes must park as templates"
        assert metrics.template_forks, "repeat arrivals must fork templates"
        assert len(metrics.template_timeline) > 0
        assert metrics.start_counts().get(StartType.TEMPLATE, 0) > 0
        assert metrics.template_segments_created > 0
        # Two functions share at least the runtime segment.
        assert metrics.template_segments_shared > 0
        # Forks promote replicas exactly once per node per segment.
        assert metrics.template_promotions > 0
        assert metrics.template_promote_bytes > 0

    def test_forks_verify_byte_exact(self):
        """Every fork re-checksums its image when verification is on."""
        suite, config, trace = pressure_workload()
        config = replace(config, template_sharing=True, verify_restores=True)
        report = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        assert report.metrics.template_forks  # ran to completion, verified

    def test_templates_relieve_pressure(self):
        """Sharing on must not degrade the latency tail.

        Raw cold-start and eviction counts are the wrong invariants at
        this tiny scale: the spill path frees enough DRAM that the
        cluster *scales out* — extra concurrent sandboxes (counted as
        cold starts) instead of queueing — and the last-copy spill gate
        deliberately purges redundant deltas (counted as evictions)
        just like the template-free run purges all of them.  The claim
        that survives every scale is the tail: forks and scale-out must
        serve the pressure spikes no slower than the dedup-only
        baseline.  Cold-start counts are compared on the Fig-10 ladder
        (``benchmarks/bench_template_sharing.py``) where the baseline
        genuinely purges last copies under pressure.
        """
        suite, config, trace = pressure_workload()
        off = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        on = run_once(
            PlatformKind.MEDES,
            replace(config, template_sharing=True),
            suite,
            trace,
            medes=MEDES,
        )
        assert on.metrics.latency_percentile(95.0) <= off.metrics.latency_percentile(95.0)
        assert on.metrics.latency_percentile(99.0) <= off.metrics.latency_percentile(99.0)
