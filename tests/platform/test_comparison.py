"""Tests for the Comparison container and its derived tables."""

from __future__ import annotations

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.comparison import DEFAULT_KINDS, Comparison, run_comparison
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def comparison():
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
    trace = Trace.from_arrivals(
        [(0.0, "Vanilla"), (3_000.0, "LinAlg"), (6_000.0, "Vanilla"), (9_000.0, "LinAlg")]
    )
    config = ClusterConfig(nodes=1, node_memory_mb=512.0, content_scale=1 / 256, seed=2)
    return run_comparison(
        trace, suite, config, medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)
    )


class TestStructure:
    def test_default_kinds(self):
        assert PlatformKind.MEDES in DEFAULT_KINDS
        assert len(DEFAULT_KINDS) == 3

    def test_names_and_medes_lookup(self, comparison):
        assert set(comparison.names) == {"fixed-ka-10min", "adaptive-ka", "medes"}
        assert comparison.medes_name() == "medes"

    def test_medes_lookup_fails_without_medes(self, comparison):
        partial = Comparison(
            trace=comparison.trace, suite=comparison.suite, config=comparison.config
        )
        partial.reports["fixed-ka-10min"] = comparison.reports["fixed-ka-10min"]
        with pytest.raises(KeyError):
            partial.medes_name()


class TestDerivedTables:
    def test_cold_start_table_covers_functions(self, comparison):
        table = comparison.cold_start_table()
        functions = set(comparison.trace.functions())
        for name, by_fn in table:
            assert set(by_fn) == functions
            assert all(v >= 0 for v in by_fn.values())

    def test_tail_latency_table(self, comparison):
        for name, by_fn in comparison.tail_latency_table(99):
            for value in by_fn.values():
                assert value > 0

    def test_memory_table(self, comparison):
        table = comparison.memory_table()
        assert len(table) == 3
        for name, mean_mb, median_mb in table:
            assert mean_mb >= 0
            assert median_mb >= 0

    def test_improvement_pairs_all_requests(self, comparison):
        factors = comparison.improvement_over("fixed-ka-10min")
        assert len(factors) == len(comparison.trace)
        assert all(f > 0 for f in factors)

    def test_improvement_function_filter(self, comparison):
        factors = comparison.improvement_over("fixed-ka-10min", function="Vanilla")
        assert len(factors) == 2

    def test_extra_sandboxes_metric(self, comparison):
        value = comparison.extra_sandboxes_vs("fixed-ka-10min")
        assert isinstance(value, float)
