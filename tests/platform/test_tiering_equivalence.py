"""Checkpoint tiering off == the untiered platform, bit for bit.

``ClusterConfig.checkpoint_tiering`` follows the PR-1/PR-2 equivalence
discipline: with the flag off (the default) every run must produce the
exact ``RunMetrics`` the untiered code produced — the ``StorageConfig``
is inert, no tier records appear, restore records keep their zero-valued
tiering fields.  These tests pin that across the three platforms and the
pressure/starvation/burst workloads, by perturbing the storage
configuration wildly under a disabled flag and requiring identical runs.

With the flag *on*, runs must stay deterministic (same seed, same
metrics) and actually exercise the tier machinery under pressure.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.storage.tiers import StorageConfig
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0

MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)

#: A deliberately extreme storage configuration: if any off-path code
#: read it, the run could not stay identical to the defaults.
PERTURBED_STORAGE = StorageConfig(
    remote_dram_mb=1.0,
    remote_dram_latency_us=9_999.0,
    remote_dram_gbps=0.001,
    ssd_capacity_mb=1.0,
    ssd_read_latency_us=99_999.0,
    ssd_read_mb_per_s=0.5,
    ssd_write_mb_per_s=0.25,
    prefetch=False,
)


def run_once(kind, config, suite, trace, **build_kwargs):
    sandbox_module._sandbox_ids = itertools.count(1)
    checkpoint_module._checkpoint_ids = itertools.count(1)
    platform = build_platform(kind, config, suite, **build_kwargs)
    return platform.run(trace)


def assert_storage_inert(kind, config, suite, trace, **build_kwargs):
    """Two tiering-off runs — default vs perturbed storage — must match."""
    baseline = run_once(kind, config, suite, trace, **build_kwargs)
    perturbed = run_once(
        kind, replace(config, storage=PERTURBED_STORAGE), suite, trace, **build_kwargs
    )
    assert perturbed.duration_ms == baseline.duration_ms
    assert perturbed.metrics == baseline.metrics
    assert baseline.metrics.tier_ops == []
    assert baseline.metrics.tier_timeline == []
    assert baseline.metrics.table_demotions == 0
    assert baseline.metrics.prefetched_restores == 0
    assert all(
        not op.prefetched and op.promote_ms == 0.0
        for op in baseline.metrics.restore_ops
    )
    return baseline


PLATFORMS = [
    pytest.param(PlatformKind.MEDES, {"medes": MEDES}, id="medes"),
    pytest.param(PlatformKind.FIXED_KEEP_ALIVE, {}, id="fixed"),
    pytest.param(PlatformKind.ADAPTIVE_KEEP_ALIVE, {}, id="adaptive"),
]


def pressure_workload():
    suite = FunctionBenchSuite.subset(["FeatureGen", "RNNModel"])
    config = ClusterConfig(nodes=1, node_memory_mb=256.0, content_scale=SCALE, seed=7)
    trace = AzureTraceGenerator(seed=5, rate_scale=8.0).generate(4.0, suite.names())
    return suite, config, trace


def starvation_workload():
    suite = FunctionBenchSuite.subset(["RNNModel", "ModelTrain"])
    config = ClusterConfig(nodes=1, node_memory_mb=150.0, content_scale=SCALE, seed=9)
    trace = Trace.from_arrivals([(0.0, "RNNModel"), (20_000.0, "ModelTrain")])
    return suite, config, trace


def burst_workload():
    suite = FunctionBenchSuite.subset(["LinAlg"])
    config = ClusterConfig(nodes=1, node_memory_mb=220.0, content_scale=SCALE, seed=4)
    trace = Trace.from_arrivals([(float(i * 10), "LinAlg") for i in range(12)])
    return suite, config, trace


WORKLOADS = [
    pytest.param(pressure_workload, id="pressure"),
    pytest.param(starvation_workload, id="starvation"),
    pytest.param(burst_workload, id="burst"),
]


class TestTieringOffIsInert:
    """3 platforms x 3 workloads: disabled tiering changes nothing."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("kind,kwargs", PLATFORMS)
    def test_matrix(self, kind, kwargs, workload):
        suite, config, trace = workload()
        assert_storage_inert(kind, config, suite, trace, **kwargs)


class TestTieringOnBehaviour:
    def test_deterministic_rerun(self):
        suite, config, trace = pressure_workload()
        config = replace(config, checkpoint_tiering=True)
        first = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        second = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        assert second.duration_ms == first.duration_ms
        assert second.metrics == first.metrics

    def test_pressure_exercises_tiers(self):
        suite, config, trace = pressure_workload()
        config = replace(config, checkpoint_tiering=True, verify_accounting=True)
        report = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        metrics = report.metrics
        assert metrics.table_demotions > 0, "pressure must park tables on SSD"
        assert metrics.tier_ops, "tier moves must be recorded"
        assert metrics.tier_timeline, "tier occupancy must be sampled"
        # Recorded restores appear once a working set repeats.
        if metrics.prefetched_restores:
            assert any(op.prefetched for op in metrics.restore_ops)

    def test_cold_tables_restore_correctly(self):
        """Restores from SSD-parked tables must still verify checksums."""
        suite, config, trace = pressure_workload()
        config = replace(config, checkpoint_tiering=True, verify_restores=True)
        report = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        assert report.metrics.table_promotions >= 0  # ran to completion, verified
        assert any(op.promote_ms > 0 for op in report.metrics.restore_ops) or (
            report.metrics.table_promotions == 0
        )

    def test_tiering_reduces_cold_starts_under_pressure(self):
        suite, config, trace = pressure_workload()
        off = run_once(PlatformKind.MEDES, config, suite, trace, medes=MEDES)
        on = run_once(
            PlatformKind.MEDES,
            replace(config, checkpoint_tiering=True),
            suite,
            trace,
            medes=MEDES,
        )
        assert on.metrics.cold_starts() <= off.metrics.cold_starts()
