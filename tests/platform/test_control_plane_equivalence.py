"""Indexed vs scan control plane: bit-identical run behaviour.

The indexed control plane (``ClusterConfig.indexed_control_plane``) must
be a pure performance change: candidate sets, counters and placement
order mirror the original scan paths exactly, so every platform run
produces the *same* ``RunMetrics`` — same start types, same latencies,
same evictions, same memory timeline — in both modes.  These tests pin
that, across all three platforms and across workloads that exercise the
tricky paths (dedup churn, memory pressure, starvation eviction, the
eviction-order ablations).

``verify_accounting`` is switched on for the indexed runs, so every
``used_bytes`` read also asserts the incremental counter against the
recomputed per-resident sum.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.node import EvictionOrder
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0

MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)


def run_both_modes(kind, config, suite, trace, **build_kwargs):
    """Run one platform in scan mode and indexed mode on ``trace``."""
    reports = {}
    for indexed in (False, True):
        # Sandbox/checkpoint ids are process-global counters; reset them
        # so both runs mint identical ids and the per-op records (which
        # embed sandbox ids) compare equal.
        sandbox_module._sandbox_ids = itertools.count(1)
        checkpoint_module._checkpoint_ids = itertools.count(1)
        cfg = replace(
            config,
            indexed_control_plane=indexed,
            # The cached counter only exists on the indexed path; verify
            # it there on every read.
            verify_accounting=indexed,
        )
        platform = build_platform(kind, cfg, suite, **build_kwargs)
        reports[indexed] = platform.run(trace)
    return reports[False], reports[True]


def assert_identical(scan_report, indexed_report):
    assert indexed_report.duration_ms == scan_report.duration_ms
    assert indexed_report.metrics == scan_report.metrics


@pytest.fixture(scope="module")
def azure_workload():
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg", "FeatureGen"])
    trace = AzureTraceGenerator(seed=3).generate(6.0, suite.names())
    return suite, trace


class TestAzureWorkloadEquivalence:
    """A dense multi-function trace with dedup churn on every platform."""

    CONFIG = ClusterConfig(nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=2)

    def test_medes(self, azure_workload):
        suite, trace = azure_workload
        assert_identical(
            *run_both_modes(PlatformKind.MEDES, self.CONFIG, suite, trace, medes=MEDES)
        )

    def test_fixed_keep_alive(self, azure_workload):
        suite, trace = azure_workload
        assert_identical(
            *run_both_modes(PlatformKind.FIXED_KEEP_ALIVE, self.CONFIG, suite, trace)
        )

    def test_adaptive_keep_alive(self, azure_workload):
        suite, trace = azure_workload
        assert_identical(
            *run_both_modes(PlatformKind.ADAPTIVE_KEEP_ALIVE, self.CONFIG, suite, trace)
        )


class TestPressureEquivalence:
    """Memory pressure: queueing, evictions and the starvation path."""

    def test_eviction_under_pressure(self):
        suite = FunctionBenchSuite.subset(["FeatureGen", "RNNModel"])
        config = ClusterConfig(
            nodes=1, node_memory_mb=256.0, content_scale=SCALE, seed=7
        )
        trace = AzureTraceGenerator(seed=5, rate_scale=8.0).generate(4.0, suite.names())
        scan, indexed = run_both_modes(
            PlatformKind.MEDES, config, suite, trace, medes=MEDES
        )
        assert scan.metrics.evictions > 0, "workload must exercise eviction"
        assert_identical(scan, indexed)

    def test_starvation_evicts_same_base(self):
        """The desperate path (unpinned-base eviction after STARVATION_MS)
        must fire at the same time and pick the same victim."""
        suite = FunctionBenchSuite.subset(["RNNModel", "ModelTrain"])
        config = ClusterConfig(
            nodes=1, node_memory_mb=150.0, content_scale=SCALE, seed=9
        )
        trace = Trace.from_arrivals([(0.0, "RNNModel"), (20_000.0, "ModelTrain")])
        scan, indexed = run_both_modes(
            PlatformKind.MEDES, config, suite, trace, medes=MEDES
        )
        assert scan.metrics.requests[1].queued_ms > 0, "request must starve first"
        assert_identical(scan, indexed)

    def test_queued_burst_same_drain_times(self):
        """Many simultaneously queued requests: the coalesced starvation
        timer must drain them at the same instants the per-request
        timers did."""
        suite = FunctionBenchSuite.subset(["LinAlg"])
        config = ClusterConfig(
            nodes=1, node_memory_mb=220.0, content_scale=SCALE, seed=4
        )
        arrivals = [(float(i * 10), "LinAlg") for i in range(12)]
        trace = Trace.from_arrivals(arrivals)
        scan, indexed = run_both_modes(
            PlatformKind.MEDES, config, suite, trace, medes=MEDES
        )
        assert any(r.queued_ms > 0 for r in scan.metrics.requests.values())
        assert_identical(scan, indexed)


class TestEvictionOrderEquivalence:
    """Every eviction-order ablation picks the same victims in both modes."""

    @pytest.mark.parametrize("order", list(EvictionOrder))
    def test_order(self, order):
        suite = FunctionBenchSuite.subset(["FeatureGen", "RNNModel"])
        config = ClusterConfig(
            nodes=1,
            node_memory_mb=256.0,
            content_scale=SCALE,
            seed=7,
            eviction_order=order,
        )
        trace = AzureTraceGenerator(seed=5, rate_scale=8.0).generate(4.0, suite.names())
        scan, indexed = run_both_modes(
            PlatformKind.MEDES, config, suite, trace, medes=MEDES
        )
        assert scan.metrics.evictions > 0, "workload must exercise eviction"
        assert_identical(scan, indexed)
