"""Tests for cluster configuration."""

from __future__ import annotations

import pytest

from repro._util import MIB
from repro.platform.config import (
    CATALYZER_FIXED_MS,
    CATALYZER_MS_PER_MB,
    ClusterConfig,
    ColdStartMode,
)


class TestValidation:
    def test_defaults_valid(self):
        config = ClusterConfig()
        assert config.nodes > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"node_memory_mb": 0},
            {"content_scale": 0.0},
            {"content_scale": 1.5},
            {"base_threshold": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestCapacities:
    def test_node_capacity(self):
        config = ClusterConfig(nodes=3, node_memory_mb=2048)
        assert config.node_capacity_bytes == 2048 * MIB
        assert config.cluster_capacity_bytes == 3 * 2048 * MIB


class TestColdStartModes:
    def test_standard_uses_profile(self, linalg_profile):
        config = ClusterConfig()
        assert config.cold_start_ms(linalg_profile) == linalg_profile.cold_start_ms

    def test_catalyzer_restore_model(self, linalg_profile):
        config = ClusterConfig(cold_start_mode=ColdStartMode.CATALYZER)
        expected = CATALYZER_FIXED_MS + CATALYZER_MS_PER_MB * linalg_profile.memory_mb
        assert config.cold_start_ms(linalg_profile) == expected

    def test_catalyzer_faster_than_standard(self, suite):
        config = ClusterConfig(cold_start_mode=ColdStartMode.CATALYZER)
        for profile in suite:
            assert config.cold_start_ms(profile) < profile.cold_start_ms
