"""End-to-end platform run tests: determinism, pairing, Medes benefits."""

from __future__ import annotations

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.comparison import run_comparison
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 256.0


@pytest.fixture(scope="module")
def workload():
    suite = FunctionBenchSuite.replicated(["Vanilla", "LinAlg", "RNNModel"], 3)
    trace = AzureTraceGenerator(seed=21).generate(10, suite.names())
    return suite, trace


@pytest.fixture(scope="module")
def pressured_config():
    return ClusterConfig(
        nodes=2, node_memory_mb=256.0, content_scale=SCALE, seed=3, verify_restores=True
    )


@pytest.fixture(scope="module")
def comparison(workload, pressured_config):
    suite, trace = workload
    return run_comparison(
        trace,
        suite,
        pressured_config,
        medes=MedesPolicyConfig(alpha=25.0, idle_period_ms=10_000.0),
    )


class TestDeterminism:
    def test_same_config_same_results(self, workload, pressured_config):
        suite, trace = workload
        reports = []
        for _ in range(2):
            platform = build_platform(PlatformKind.MEDES, pressured_config, suite)
            reports.append(platform.run(trace))
        first, second = reports
        assert first.metrics.cold_starts() == second.metrics.cold_starts()
        e2e_first = [r.e2e_ms for r in first.metrics.completed_records()]
        e2e_second = [r.e2e_ms for r in second.metrics.completed_records()]
        assert e2e_first == e2e_second

    def test_exec_times_platform_independent(self, comparison):
        names = comparison.names
        for request_id in list(comparison.metrics(names[0]).requests)[:50]:
            execs = {
                comparison.metrics(name).requests[request_id].exec_ms for name in names
            }
            assert len(execs) == 1


class TestRunCompleteness:
    def test_every_request_completes_on_every_platform(self, comparison):
        for name in comparison.names:
            for record in comparison.metrics(name).requests.values():
                assert record.completion_ms is not None, (name, record.request_id)

    def test_start_types_partition_requests(self, comparison):
        for name in comparison.names:
            metrics = comparison.metrics(name)
            assert sum(metrics.start_counts().values()) == len(metrics.requests)

    def test_memory_timeline_collected(self, comparison):
        for name in comparison.names:
            assert len(comparison.metrics(name).memory_timeline) > 10


class TestMedesBenefits:
    """The paper's headline claims, at test scale, under pressure."""

    def test_fewer_cold_starts_than_baselines(self, comparison):
        medes = comparison.metrics(comparison.medes_name()).cold_starts()
        fixed = comparison.metrics("fixed-ka-10min").cold_starts()
        adaptive = comparison.metrics("adaptive-ka").cold_starts()
        assert medes < fixed
        assert medes < adaptive

    def test_dedup_starts_served(self, comparison):
        counts = comparison.metrics(comparison.medes_name()).start_counts()
        assert counts[StartType.DEDUP] > 0

    def test_baselines_never_dedup(self, comparison):
        for name in ("fixed-ka-10min", "adaptive-ka"):
            assert comparison.metrics(name).start_counts()[StartType.DEDUP] == 0
            assert not comparison.metrics(name).dedup_ops

    def test_improvement_factors_favor_medes_in_tail(self, comparison):
        factors = sorted(comparison.improvement_over("fixed-ka-10min"))
        assert factors  # paired requests exist
        top_decile = factors[int(len(factors) * 0.9) :]
        assert max(top_decile) >= 1.0

    def test_dedup_starts_faster_than_cold(self, comparison, workload):
        suite, _ = workload
        metrics = comparison.metrics(comparison.medes_name())
        for record in metrics.completed_records():
            if record.start_type is StartType.DEDUP:
                assert record.startup_ms < suite.get(record.function).cold_start_ms


class TestSummary:
    def test_summary_text(self, comparison):
        report = comparison.reports[comparison.medes_name()]
        text = report.summary()
        assert "medes" in text
        assert "cold" in text
        assert "requests completed" in text


class TestDrainLoop:
    """Regressions on Platform.run's post-trace drain behaviour."""

    @staticmethod
    def _pressured_platform():
        suite = FunctionBenchSuite.subset(["LinAlg"])
        config = ClusterConfig(
            nodes=1,
            node_memory_mb=384.0,
            content_scale=SCALE,
            memory_sample_interval_ms=1_000.0,
        )
        return suite, build_platform(PlatformKind.MEDES, config, suite)

    def test_sampler_stops_when_trace_ends(self):
        """Regression: the memory sampler used to keep ticking through
        drain-guard extensions, appending quiet-period samples that
        dragged down mean_memory_bytes."""
        from repro.workload.trace import Trace

        suite, platform = self._pressured_platform()
        trace = Trace.from_arrivals([(float(i * 500), "LinAlg") for i in range(10)])
        # A tail too short for the in-flight requests: the drain guard
        # must extend the run past `end`, with the sampler already dead.
        report = platform.run(trace, tail_ms=100.0)
        end = trace.duration_ms + 100.0
        assert platform.sim.now > end, "workload must exercise the drain guard"
        times = report.metrics.memory_timeline.column("time_ms")
        assert len(times) > 0
        assert times.max() <= end

    def test_drain_does_not_rescan_request_records(self):
        """Regression: the drain guard used to rescan every request
        record per extension (quadratic at cluster scale); it must now
        read only the outstanding counter."""
        from repro.workload.trace import Trace

        class CountingDict(dict):
            values_calls = 0

            def values(self):
                CountingDict.values_calls += 1
                return super().values()

        suite, platform = self._pressured_platform()
        platform.metrics.requests = CountingDict()
        trace = Trace.from_arrivals([(float(i * 500), "LinAlg") for i in range(10)])
        platform.run(trace, tail_ms=100.0)
        assert platform.sim.now > trace.duration_ms + 100.0
        assert CountingDict.values_calls == 0
        assert platform.metrics.outstanding_requests == 0
