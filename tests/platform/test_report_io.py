"""Tests for report/comparison JSON export."""

from __future__ import annotations

import json

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.comparison import run_comparison
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.platform.report_io import (
    comparison_to_dict,
    metrics_to_dict,
    report_to_dict,
    save_report,
)
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def report():
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
    trace = Trace.from_arrivals(
        [(0.0, "Vanilla"), (1.0, "Vanilla"), (60_000.0, "LinAlg"), (120_000.0, "Vanilla")]
    )
    config = ClusterConfig(nodes=1, node_memory_mb=512.0, content_scale=1 / 256)
    platform = build_platform(
        PlatformKind.MEDES, config, suite,
        medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
    )
    return platform.run(trace)


class TestReportToDict:
    def test_json_serializable(self, report):
        payload = report_to_dict(report, include_requests=True)
        encoded = json.dumps(payload)
        assert "medes" in encoded

    def test_counts_consistent(self, report):
        payload = report_to_dict(report)
        metrics = payload["metrics"]
        assert metrics["requests_completed"] == 4
        assert sum(metrics["starts"].values()) == 4
        assert metrics["starts"]["cold"] == sum(
            metrics["cold_starts_by_function"].values()
        )

    def test_config_digest(self, report):
        payload = report_to_dict(report)
        assert payload["config"]["nodes"] == 1
        assert payload["config"]["cold_start_mode"] == "standard"

    def test_request_detail(self, report):
        payload = report_to_dict(report, include_requests=True)
        requests = payload["metrics"]["requests"]
        assert len(requests) == 4
        assert all(r["e2e_ms"] is not None for r in requests)

    def test_save_report(self, report, tmp_path):
        path = save_report(report, tmp_path / "run.json")
        loaded = json.loads(path.read_text())
        assert loaded["platform"] == "medes"


class TestComparisonToDict:
    def test_structure(self):
        suite = FunctionBenchSuite.subset(["Vanilla"])
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (5_000.0, "Vanilla")])
        config = ClusterConfig(nodes=1, node_memory_mb=256.0, content_scale=1 / 256)
        comparison = run_comparison(trace, suite, config)
        payload = comparison_to_dict(comparison)
        assert set(payload["platforms"]) == set(comparison.names)
        assert payload["requests"] == 2
        assert "fixed-ka-10min" in payload["medes_improvement_over"]
        json.dumps(payload)  # fully serializable


class TestMetricsToDict:
    def test_empty_metrics(self):
        from repro.platform.metrics import RunMetrics

        payload = metrics_to_dict(RunMetrics(platform_name="empty"))
        assert payload["requests_completed"] == 0
        assert payload["dedup"]["ops"] == 0
