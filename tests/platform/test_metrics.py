"""Tests for run metrics and paired comparisons."""

from __future__ import annotations

import math

import pytest

from repro.platform.metrics import (
    MemorySample,
    RequestRecord,
    RunMetrics,
    StartType,
    improvement_factors,
)


def completed(metrics: RunMetrics, request_id: int, function: str, *,
              arrival: float, e2e: float, start: StartType) -> RequestRecord:
    record = metrics.on_arrival(request_id, function, arrival)
    record.start_type = start
    record.exec_ms = e2e / 2
    record.completion_ms = arrival + e2e
    return record


class TestRequestRecord:
    def test_e2e_requires_completion(self):
        record = RequestRecord(request_id=0, function="f", arrival_ms=10.0)
        with pytest.raises(RuntimeError):
            _ = record.e2e_ms

    def test_e2e_and_slowdown(self):
        record = RequestRecord(request_id=0, function="f", arrival_ms=10.0)
        record.exec_ms = 50.0
        record.completion_ms = 110.0
        assert record.e2e_ms == 100.0
        assert record.slowdown == 2.0

    def test_slowdown_degenerate_exec(self):
        record = RequestRecord(request_id=0, function="f", arrival_ms=0.0)
        record.completion_ms = 10.0
        assert record.slowdown == 1.0


class TestAggregation:
    @pytest.fixture
    def metrics(self) -> RunMetrics:
        metrics = RunMetrics(platform_name="test")
        completed(metrics, 0, "a", arrival=0.0, e2e=100.0, start=StartType.COLD)
        completed(metrics, 1, "a", arrival=10.0, e2e=20.0, start=StartType.WARM)
        completed(metrics, 2, "b", arrival=20.0, e2e=500.0, start=StartType.COLD)
        completed(metrics, 3, "b", arrival=30.0, e2e=50.0, start=StartType.DEDUP)
        metrics.on_arrival(4, "b", 40.0)  # never completes
        return metrics

    def test_start_counts(self, metrics):
        counts = metrics.start_counts()
        assert counts[StartType.COLD] == 2
        assert counts[StartType.WARM] == 1
        assert counts[StartType.DEDUP] == 1

    def test_cold_starts_filtered(self, metrics):
        assert metrics.cold_starts() == 2
        assert metrics.cold_starts("a") == 1
        assert metrics.cold_starts_by_function() == {"a": 1, "b": 1}

    def test_incomplete_requests_excluded(self, metrics):
        assert len(metrics.completed_records()) == 4

    def test_percentiles(self, metrics):
        assert metrics.e2e_percentile(100) == 500.0
        assert metrics.e2e_percentile(0, "a") == 20.0
        assert math.isnan(metrics.e2e_percentile(50, "missing"))

    def test_functions(self, metrics):
        assert metrics.functions() == ("a", "b")

    def test_dedup_share(self, metrics):
        metrics.sandboxes_created = 4
        from repro.platform.metrics import DedupOpRecord

        metrics.dedup_ops.append(
            DedupOpRecord(
                function="a",
                sandbox_id=1,
                started_ms=0.0,
                duration_ms=100.0,
                lookup_ms=10.0,
                savings_fraction=0.5,
                retained_full_bytes=100,
                same_function_pages=5,
                cross_function_pages=5,
            )
        )
        assert metrics.dedup_share() == 0.25


class TestMemoryTimeline:
    def test_mean_and_median(self):
        metrics = RunMetrics(platform_name="test")
        for i, used in enumerate([100, 200, 300]):
            metrics.memory_timeline.append(
                MemorySample(
                    time_ms=float(i),
                    used_bytes=used,
                    warm_count=1,
                    dedup_count=0,
                    total_sandboxes=1,
                )
            )
        assert metrics.mean_memory_bytes() == 200.0
        assert metrics.median_memory_bytes() == 200.0
        assert metrics.mean_sandbox_count() == 1.0

    def test_empty_timeline(self):
        metrics = RunMetrics(platform_name="test")
        assert metrics.mean_memory_bytes() == 0.0


class TestImprovementFactors:
    def test_pairing_by_request_id(self):
        baseline = RunMetrics(platform_name="base")
        improved = RunMetrics(platform_name="fast")
        completed(baseline, 0, "a", arrival=0.0, e2e=200.0, start=StartType.COLD)
        completed(improved, 0, "a", arrival=0.0, e2e=100.0, start=StartType.DEDUP)
        completed(baseline, 1, "a", arrival=5.0, e2e=50.0, start=StartType.WARM)
        completed(improved, 1, "a", arrival=5.0, e2e=50.0, start=StartType.WARM)
        factors = improvement_factors(baseline, improved)
        assert sorted(factors) == [1.0, 2.0]

    def test_function_filter(self):
        baseline = RunMetrics(platform_name="base")
        improved = RunMetrics(platform_name="fast")
        completed(baseline, 0, "a", arrival=0.0, e2e=200.0, start=StartType.COLD)
        completed(improved, 0, "a", arrival=0.0, e2e=100.0, start=StartType.WARM)
        completed(baseline, 1, "b", arrival=0.0, e2e=300.0, start=StartType.COLD)
        completed(improved, 1, "b", arrival=0.0, e2e=100.0, start=StartType.WARM)
        assert improvement_factors(baseline, improved, function="b") == [3.0]

    def test_unmatched_requests_skipped(self):
        baseline = RunMetrics(platform_name="base")
        improved = RunMetrics(platform_name="fast")
        completed(baseline, 0, "a", arrival=0.0, e2e=200.0, start=StartType.COLD)
        assert improvement_factors(baseline, improved) == []
