"""Tests for run metrics and paired comparisons."""

from __future__ import annotations

import math

import pytest

import numpy as np

from repro.platform.metrics import (
    ColumnTimeline,
    FaultEventRecord,
    MemorySample,
    RequestRecord,
    RunMetrics,
    StartType,
    TierSample,
    improvement_factors,
)


def completed(metrics: RunMetrics, request_id: int, function: str, *,
              arrival: float, e2e: float, start: StartType) -> RequestRecord:
    record = metrics.on_arrival(request_id, function, arrival)
    record.start_type = start
    record.exec_ms = e2e / 2
    record.completion_ms = arrival + e2e
    return record


class TestRequestRecord:
    def test_e2e_requires_completion(self):
        record = RequestRecord(request_id=0, function="f", arrival_ms=10.0)
        with pytest.raises(RuntimeError):
            _ = record.e2e_ms

    def test_e2e_and_slowdown(self):
        record = RequestRecord(request_id=0, function="f", arrival_ms=10.0)
        record.exec_ms = 50.0
        record.completion_ms = 110.0
        assert record.e2e_ms == 100.0
        assert record.slowdown == 2.0

    def test_slowdown_degenerate_exec(self):
        record = RequestRecord(request_id=0, function="f", arrival_ms=0.0)
        record.completion_ms = 10.0
        assert record.slowdown == 1.0


class TestAggregation:
    @pytest.fixture
    def metrics(self) -> RunMetrics:
        metrics = RunMetrics(platform_name="test")
        completed(metrics, 0, "a", arrival=0.0, e2e=100.0, start=StartType.COLD)
        completed(metrics, 1, "a", arrival=10.0, e2e=20.0, start=StartType.WARM)
        completed(metrics, 2, "b", arrival=20.0, e2e=500.0, start=StartType.COLD)
        completed(metrics, 3, "b", arrival=30.0, e2e=50.0, start=StartType.DEDUP)
        metrics.on_arrival(4, "b", 40.0)  # never completes
        return metrics

    def test_start_counts(self, metrics):
        counts = metrics.start_counts()
        assert counts[StartType.COLD] == 2
        assert counts[StartType.WARM] == 1
        assert counts[StartType.DEDUP] == 1

    def test_cold_starts_filtered(self, metrics):
        assert metrics.cold_starts() == 2
        assert metrics.cold_starts("a") == 1
        assert metrics.cold_starts_by_function() == {"a": 1, "b": 1}

    def test_incomplete_requests_excluded(self, metrics):
        assert len(metrics.completed_records()) == 4

    def test_percentiles(self, metrics):
        assert metrics.e2e_percentile(100) == 500.0
        assert metrics.e2e_percentile(0, "a") == 20.0
        assert math.isnan(metrics.e2e_percentile(50, "missing"))

    def test_functions(self, metrics):
        assert metrics.functions() == ("a", "b")

    def test_dedup_share(self, metrics):
        metrics.sandboxes_created = 4
        from repro.platform.metrics import DedupOpRecord

        metrics.dedup_ops.append(
            DedupOpRecord(
                function="a",
                sandbox_id=1,
                started_ms=0.0,
                duration_ms=100.0,
                lookup_ms=10.0,
                savings_fraction=0.5,
                retained_full_bytes=100,
                same_function_pages=5,
                cross_function_pages=5,
            )
        )
        assert metrics.dedup_share() == 0.25


class TestMemoryTimeline:
    def test_mean_and_median(self):
        metrics = RunMetrics(platform_name="test")
        for i, used in enumerate([100, 200, 300]):
            metrics.memory_timeline.append(
                MemorySample(
                    time_ms=float(i),
                    used_bytes=used,
                    warm_count=1,
                    dedup_count=0,
                    total_sandboxes=1,
                )
            )
        assert metrics.mean_memory_bytes() == 200.0
        assert metrics.median_memory_bytes() == 200.0
        assert metrics.mean_sandbox_count() == 1.0

    def test_empty_timeline(self):
        metrics = RunMetrics(platform_name="test")
        assert metrics.mean_memory_bytes() == 0.0


def _sample(i: int, used: int = 100) -> MemorySample:
    return MemorySample(
        time_ms=float(i),
        used_bytes=used,
        warm_count=i,
        dedup_count=0,
        total_sandboxes=i,
    )


class TestColumnTimeline:
    """The array-backed timeline keeps the list-of-samples API."""

    def test_append_iterate_getitem(self):
        timeline = ColumnTimeline(MemorySample)
        samples = [_sample(i, used=100 * (i + 1)) for i in range(5)]
        for sample in samples:
            timeline.append(sample)
        assert len(timeline) == 5
        assert list(timeline) == samples
        assert timeline[0] == samples[0]
        assert timeline[-1] == samples[-1]
        assert timeline[2] == samples[2]
        with pytest.raises(IndexError):
            timeline[5]
        with pytest.raises(IndexError):
            timeline[-6]

    def test_append_row_matches_append(self):
        by_object = ColumnTimeline(MemorySample)
        by_row = ColumnTimeline(MemorySample)
        for i in range(3):
            sample = _sample(i)
            by_object.append(sample)
            by_row.append_row(
                sample.time_ms,
                sample.used_bytes,
                sample.warm_count,
                sample.dedup_count,
                sample.total_sandboxes,
            )
        assert by_object == by_row

    def test_equality_against_lists(self):
        timeline = ColumnTimeline(MemorySample)
        samples = [_sample(i) for i in range(3)]
        for sample in samples:
            timeline.append(sample)
        assert timeline == samples
        assert timeline == tuple(samples)
        assert not timeline == samples[:2]
        assert not timeline == [*samples[:2], _sample(99)]

    def test_equality_between_timelines(self):
        a, b = ColumnTimeline(MemorySample), ColumnTimeline(MemorySample)
        a.append(_sample(1))
        b.append(_sample(1))
        assert a == b
        b.append(_sample(2))
        assert a != b
        assert ColumnTimeline(MemorySample) != ColumnTimeline(TierSample)

    def test_column_views_and_dtypes(self):
        timeline = ColumnTimeline(MemorySample)
        for i in range(3):
            timeline.append(_sample(i, used=10**9 + i))
        used = timeline.column("used_bytes")
        assert used.dtype == np.int64
        assert timeline.column("time_ms").dtype == np.float64
        assert used.tolist() == [10**9, 10**9 + 1, 10**9 + 2]
        assert len(used) == 3  # view excludes unused capacity

    def test_growth_past_initial_capacity(self):
        timeline = ColumnTimeline(MemorySample)
        for i in range(1000):
            timeline.append_row(float(i), i, 0, 0, 0)
        assert len(timeline) == 1000
        assert timeline[999].used_bytes == 999
        assert timeline.column("used_bytes").sum() == 999 * 1000 // 2

    def test_construct_from_samples(self):
        samples = [_sample(i) for i in range(4)]
        timeline = ColumnTimeline(MemorySample, iter(samples))
        assert timeline == samples

    def test_percentile_parity_with_lists(self):
        metrics = RunMetrics(platform_name="test")
        values = [300, 100, 500, 200, 400]
        for i, used in enumerate(values):
            metrics.memory_timeline.append(_sample(i, used=used))
        from repro._util import percentile

        for pct in (0, 25, 50, 90, 100):
            assert metrics.memory_percentile(pct) == percentile(values, pct)
        assert metrics.median_memory_bytes() == percentile(values, 50)


class TestMttr:
    def test_overlapping_faults_measure_from_earliest(self):
        """Regression: two unhealed faults on one domain that map to the
        same heal kind (link-degraded then link-partitioned, both healed
        by link-restored) used to overwrite the open-fault start, so the
        escalation *shrank* the reported outage."""
        metrics = RunMetrics(platform_name="test")
        metrics.fault_events += [
            FaultEventRecord(time_ms=1_000.0, kind="link-degraded", domain="link:0"),
            FaultEventRecord(time_ms=9_000.0, kind="link-partitioned", domain="link:0"),
            FaultEventRecord(time_ms=21_000.0, kind="link-restored", domain="link:0"),
        ]
        assert metrics.mttr_ms() == pytest.approx(20_000.0)

    def test_domains_do_not_interfere(self):
        metrics = RunMetrics(platform_name="test")
        metrics.fault_events += [
            FaultEventRecord(time_ms=0.0, kind="node-crash", domain="node:0"),
            FaultEventRecord(time_ms=5_000.0, kind="node-crash", domain="node:1"),
            FaultEventRecord(time_ms=10_000.0, kind="node-restored", domain="node:0"),
            FaultEventRecord(time_ms=6_000.0, kind="node-restored", domain="node:1"),
        ]
        assert metrics.mttr_ms() == pytest.approx((10_000.0 + 1_000.0) / 2)

    def test_unhealed_faults_excluded(self):
        metrics = RunMetrics(platform_name="test")
        metrics.fault_events.append(
            FaultEventRecord(time_ms=0.0, kind="node-crash", domain="node:0")
        )
        assert metrics.mttr_ms() == 0.0


def finished(metrics: RunMetrics, request_id: int, function: str, *,
             arrival: float, e2e: float, start: StartType | None,
             queued: float = 0.0, startup: float = 0.0) -> RequestRecord:
    """Complete a request through ``on_completion`` so it lands in the
    completion timeline (unlike :func:`completed`, which bypasses it)."""
    record = metrics.on_arrival(request_id, function, arrival)
    record.start_type = start
    record.queued_ms = queued
    record.startup_ms = startup
    record.exec_ms = e2e / 2
    metrics.on_completion(record, arrival + e2e)
    return record


class TestStartCountsSkipNoneStarts:
    """Regression: a request completed without ever dispatching (e.g.
    displaced by a node crash and re-queued) has ``start_type=None``;
    counting it under a ``None`` key poisoned every ``Counter[StartType]``
    consumer (``RunReport.summary`` sorts counts by ``t.value``)."""

    def test_none_start_type_not_counted(self):
        metrics = RunMetrics(platform_name="test")
        finished(metrics, 0, "a", arrival=0.0, e2e=10.0, start=StartType.COLD)
        finished(metrics, 1, "a", arrival=1.0, e2e=10.0, start=None)
        counts = metrics.start_counts()
        assert None not in counts
        assert counts[StartType.COLD] == 1
        assert sum(counts.values()) == 1
        # The summary-style sort the None key used to crash.
        assert sorted(counts, key=lambda t: t.value) == [StartType.COLD]

    def test_none_start_still_a_completed_record(self):
        metrics = RunMetrics(platform_name="test")
        finished(metrics, 0, "a", arrival=0.0, e2e=10.0, start=None)
        assert len(metrics.completed_records()) == 1
        assert metrics.cold_starts() == 0


class TestLatencyPercentile:
    @pytest.fixture
    def metrics(self) -> RunMetrics:
        metrics = RunMetrics(platform_name="test")
        finished(metrics, 0, "a", arrival=0.0, e2e=100.0,
                 start=StartType.COLD, queued=5.0, startup=80.0)
        finished(metrics, 1, "a", arrival=10.0, e2e=20.0,
                 start=StartType.WARM, queued=1.0, startup=0.0)
        finished(metrics, 2, "b", arrival=20.0, e2e=500.0,
                 start=StartType.COLD, queued=9.0, startup=400.0)
        finished(metrics, 3, "b", arrival=30.0, e2e=50.0,
                 start=StartType.DEDUP, queued=2.0, startup=30.0)
        finished(metrics, 4, "b", arrival=40.0, e2e=40.0,
                 start=StartType.TEMPLATE, queued=2.0, startup=20.0)
        return metrics

    def test_unfiltered_matches_e2e_percentile(self, metrics):
        for pct in (0, 50, 100):
            assert metrics.latency_percentile(pct) == metrics.e2e_percentile(pct)

    def test_filter_by_start_type(self, metrics):
        assert metrics.latency_percentile(0, start_type=StartType.COLD) == 100.0
        assert metrics.latency_percentile(100, start_type=StartType.COLD) == 500.0
        assert metrics.latency_percentile(50, start_type=StartType.WARM) == 20.0
        assert metrics.latency_percentile(50, start_type=StartType.TEMPLATE) == 40.0

    def test_metric_selection(self, metrics):
        assert metrics.latency_percentile(
            100, start_type=StartType.COLD, metric="startup"
        ) == 400.0
        assert metrics.latency_percentile(
            0, start_type=StartType.COLD, metric="queued"
        ) == 5.0

    def test_empty_selection_is_nan(self):
        fresh = RunMetrics(platform_name="empty")
        assert math.isnan(fresh.latency_percentile(50))
        finished(fresh, 0, "a", arrival=0.0, e2e=10.0, start=StartType.COLD)
        # No template-started requests completed in this run.
        assert math.isnan(fresh.latency_percentile(50, start_type=StartType.TEMPLATE))

    def test_unknown_metric_rejected(self, metrics):
        with pytest.raises(ValueError, match="unknown latency metric"):
            metrics.latency_percentile(50, metric="bogus")

    def test_incomplete_requests_not_in_timeline(self):
        metrics = RunMetrics(platform_name="test")
        metrics.on_arrival(0, "a", 0.0)  # never completes
        finished(metrics, 1, "a", arrival=1.0, e2e=30.0, start=StartType.WARM)
        assert len(metrics.completion_timeline) == 1
        assert metrics.latency_percentile(50) == 30.0


class TestImprovementFactors:
    def test_pairing_by_request_id(self):
        baseline = RunMetrics(platform_name="base")
        improved = RunMetrics(platform_name="fast")
        completed(baseline, 0, "a", arrival=0.0, e2e=200.0, start=StartType.COLD)
        completed(improved, 0, "a", arrival=0.0, e2e=100.0, start=StartType.DEDUP)
        completed(baseline, 1, "a", arrival=5.0, e2e=50.0, start=StartType.WARM)
        completed(improved, 1, "a", arrival=5.0, e2e=50.0, start=StartType.WARM)
        factors = improvement_factors(baseline, improved)
        assert sorted(factors) == [1.0, 2.0]

    def test_function_filter(self):
        baseline = RunMetrics(platform_name="base")
        improved = RunMetrics(platform_name="fast")
        completed(baseline, 0, "a", arrival=0.0, e2e=200.0, start=StartType.COLD)
        completed(improved, 0, "a", arrival=0.0, e2e=100.0, start=StartType.WARM)
        completed(baseline, 1, "b", arrival=0.0, e2e=300.0, start=StartType.COLD)
        completed(improved, 1, "b", arrival=0.0, e2e=100.0, start=StartType.WARM)
        assert improvement_factors(baseline, improved, function="b") == [3.0]

    def test_unmatched_requests_skipped(self):
        baseline = RunMetrics(platform_name="base")
        improved = RunMetrics(platform_name="fast")
        completed(baseline, 0, "a", arrival=0.0, e2e=200.0, start=StartType.COLD)
        assert improvement_factors(baseline, improved) == []
