"""Tests for Platform.run() mechanics: tails, sampling, prewarm metrics."""

from __future__ import annotations

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0


@pytest.fixture(scope="module")
def tiny_suite():
    return FunctionBenchSuite.subset(["Vanilla"])


def small_config(**overrides):
    base = dict(nodes=1, node_memory_mb=256.0, content_scale=SCALE, seed=6)
    base.update(overrides)
    return ClusterConfig(**base)


class TestRunMechanics:
    def test_memory_samples_cover_run(self, tiny_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (90_000.0, "Vanilla")])
        platform = build_platform(PlatformKind.MEDES, small_config(), tiny_suite)
        report = platform.run(trace)
        times = [s.time_ms for s in report.metrics.memory_timeline]
        assert times, "no memory samples collected"
        assert times == sorted(times)
        assert times[-1] >= trace.duration_ms

    def test_background_dedups_finish_within_tail(self, tiny_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "Vanilla")])
        platform = build_platform(
            PlatformKind.MEDES,
            small_config(),
            tiny_suite,
            medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
        )
        report = platform.run(trace)
        for op in report.metrics.dedup_ops:
            assert op.started_ms + op.duration_ms <= report.duration_ms

    def test_empty_trace_runs(self, tiny_suite):
        platform = build_platform(PlatformKind.MEDES, small_config(), tiny_suite)
        report = platform.run(Trace(requests=()))
        assert report.metrics.requests == {}
        assert report.metrics.sandboxes_created == 0

    def test_prewarm_spawns_counted(self, tiny_suite):
        # A crisp 90-second timer: the adaptive policy purges quickly and
        # pre-warms before each tick.
        arrivals = [(i * 90_000.0, "Vanilla") for i in range(12)]
        platform = build_platform(
            PlatformKind.ADAPTIVE_KEEP_ALIVE, small_config(), tiny_suite
        )
        report = platform.run(Trace.from_arrivals(arrivals))
        # Pre-warming requires the histogram to stabilize; once it does,
        # spawns are recorded in the dedicated counter.
        assert report.metrics.prewarm_spawns >= 0  # counter exists
        total_starts = sum(report.metrics.start_counts().values())
        assert total_starts == len(arrivals)

    def test_run_report_duration_reasonable(self, tiny_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla")])
        platform = build_platform(PlatformKind.MEDES, small_config(), tiny_suite)
        report = platform.run(trace)
        assert report.duration_ms >= 60_000.0  # at least the tail


class TestClusterSnapshot:
    def test_snapshot_structure_and_consistency(self, tiny_suite):
        import json

        trace = Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "Vanilla")])
        platform = build_platform(
            PlatformKind.MEDES,
            small_config(),
            tiny_suite,
            medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
        )
        platform.run(trace)
        snapshot = platform.cluster_snapshot()
        json.dumps(snapshot)  # serializable
        assert snapshot["platform"] == "medes"
        assert len(snapshot["nodes"]) == 1
        node = snapshot["nodes"][0]
        # The snapshot's accounting matches the node's own.
        reported = sum(s["memory_bytes"] for s in node["sandboxes"])
        reported += sum(c["memory_bytes"] for c in node["checkpoints"])
        assert node["used_bytes"] == reported
        assert snapshot["registry_digests"] >= 0
