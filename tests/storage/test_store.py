"""Tests for TieredCheckpointStore: residency moves and accounting."""

from __future__ import annotations

import pytest

from repro._util import MIB
from repro.storage.store import TieredCheckpointStore
from repro.storage.tiers import StorageConfig, StorageTier
from repro.sandbox.checkpoint import BaseCheckpoint
from tests.conftest import TEST_SCALE


@pytest.fixture
def store() -> TieredCheckpointStore:
    return TieredCheckpointStore(
        StorageConfig(remote_dram_mb=64.0, ssd_capacity_mb=64.0), nodes=2
    )


@pytest.fixture
def checkpoint(linalg_profile) -> BaseCheckpoint:
    image = linalg_profile.synthesize(21, content_scale=TEST_SCALE)
    return BaseCheckpoint(
        function="LinAlg",
        node_id=1,
        image=image,
        owner_sandbox_id=10,
        full_size_bytes=32 * MIB,
        owner_resident=False,
    )


class TestCheckpointMoves:
    def test_born_in_node_dram(self, store, checkpoint):
        store.add(checkpoint)
        assert store.tier_of(checkpoint.checkpoint_id) is StorageTier.NODE_DRAM

    def test_demote_prefers_remote_dram(self, store, checkpoint):
        store.add(checkpoint)
        move = store.demote_checkpoint(checkpoint)
        assert move is not None
        assert move.tier is StorageTier.REMOTE_DRAM
        assert move.cost_ms > 0
        assert store.remote_dram.used_bytes == checkpoint.full_size_bytes
        assert checkpoint.memory_bytes() == 0  # off the node's DRAM

    def test_demote_overflows_to_ssd(self, linalg_profile):
        store = TieredCheckpointStore(
            StorageConfig(remote_dram_mb=0.0, ssd_capacity_mb=64.0), nodes=2
        )
        image = linalg_profile.synthesize(22, content_scale=TEST_SCALE)
        checkpoint = BaseCheckpoint(
            function="LinAlg",
            node_id=1,
            image=image,
            owner_sandbox_id=10,
            full_size_bytes=32 * MIB,
            owner_resident=False,
        )
        store.add(checkpoint)
        move = store.demote_checkpoint(checkpoint)
        assert move is not None
        assert move.tier is StorageTier.LOCAL_SSD
        assert store.ssd[1].used_bytes == checkpoint.full_size_bytes
        assert store.ssd[0].used_bytes == 0  # charged to the owning node

    def test_demote_fails_when_nothing_fits(self, linalg_profile):
        store = TieredCheckpointStore(
            StorageConfig(remote_dram_mb=0.0, ssd_capacity_mb=0.0), nodes=2
        )
        image = linalg_profile.synthesize(23, content_scale=TEST_SCALE)
        checkpoint = BaseCheckpoint(
            function="LinAlg",
            node_id=1,
            image=image,
            owner_sandbox_id=10,
            full_size_bytes=32 * MIB,
            owner_resident=False,
        )
        store.add(checkpoint)
        assert store.demote_checkpoint(checkpoint) is None
        assert checkpoint.tier is StorageTier.NODE_DRAM

    def test_demote_requires_ownerless(self, store, linalg_profile):
        image = linalg_profile.synthesize(24, content_scale=TEST_SCALE)
        resident = BaseCheckpoint(
            function="LinAlg",
            node_id=0,
            image=image,
            owner_sandbox_id=10,
            full_size_bytes=32 * MIB,
        )
        store.add(resident)
        with pytest.raises(RuntimeError, match="CoW-shared"):
            store.demote_checkpoint(resident)

    def test_double_demote_rejected(self, store, checkpoint):
        store.add(checkpoint)
        store.demote_checkpoint(checkpoint)
        with pytest.raises(RuntimeError, match="already demoted"):
            store.demote_checkpoint(checkpoint)

    def test_promote_releases_account(self, store, checkpoint):
        store.add(checkpoint)
        store.demote_checkpoint(checkpoint)
        move = store.promote_checkpoint(checkpoint)
        assert move.tier is StorageTier.NODE_DRAM
        assert move.cost_ms > 0
        assert store.remote_dram.used_bytes == 0
        assert checkpoint.memory_bytes() == checkpoint.full_size_bytes

    def test_promote_from_dram_rejected(self, store, checkpoint):
        store.add(checkpoint)
        with pytest.raises(RuntimeError, match="already in node DRAM"):
            store.promote_checkpoint(checkpoint)

    def test_fetch_cost_by_tier(self, store, checkpoint):
        store.add(checkpoint)
        with pytest.raises(RuntimeError, match="fabric"):
            store.fetch_cost_ms(checkpoint, 4096)
        store.demote_checkpoint(checkpoint)
        remote_cost = store.fetch_cost_ms(checkpoint, 4096)
        assert remote_cost == store.config.remote_dram_read_ms(4096)

    def test_remove_releases_tier_account(self, store, checkpoint):
        store.add(checkpoint)
        store.demote_checkpoint(checkpoint)
        store.remove(checkpoint.checkpoint_id)
        assert store.remote_dram.used_bytes == 0

    def test_counters(self, store, checkpoint):
        store.add(checkpoint)
        store.demote_checkpoint(checkpoint)
        store.promote_checkpoint(checkpoint)
        assert store.demotions == 1
        assert store.promotions == 1


class TestDedupColdTables:
    def test_demote_and_promote_table(self, store):
        cost = store.demote_table(77, node_id=0, nbytes=1 * MIB)
        assert cost > 0
        assert store.table_location(77) == (0, 1 * MIB)
        assert store.ssd[0].used_bytes == 1 * MIB
        read_cost = store.promote_table(77)
        assert read_cost > 0
        assert store.table_location(77) is None
        assert store.ssd[0].used_bytes == 0

    def test_double_demote_rejected(self, store):
        store.demote_table(77, node_id=0, nbytes=100)
        with pytest.raises(RuntimeError, match="already demoted"):
            store.demote_table(77, node_id=0, nbytes=100)

    def test_promote_unknown_rejected(self, store):
        with pytest.raises(RuntimeError, match="not demoted"):
            store.promote_table(404)

    def test_release_table_is_idempotent(self, store):
        store.demote_table(77, node_id=1, nbytes=100)
        store.release_table(77)
        assert store.ssd[1].used_bytes == 0
        store.release_table(77)  # no-op

    def test_ssd_fits_respects_parked_tables(self, store):
        store.demote_table(77, node_id=0, nbytes=60 * MIB)
        assert not store.ssd_fits(0, 10 * MIB)
        assert store.ssd_fits(1, 10 * MIB)

    def test_tier_used_bytes(self, store, checkpoint):
        store.add(checkpoint)
        store.demote_checkpoint(checkpoint)
        store.demote_table(77, node_id=0, nbytes=5)
        occupancy = store.tier_used_bytes()
        assert occupancy[StorageTier.REMOTE_DRAM] == checkpoint.full_size_bytes
        assert occupancy[StorageTier.LOCAL_SSD] == 5
