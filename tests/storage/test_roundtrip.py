"""Property: tier moves never corrupt restored images.

Demoting a base checkpoint (to either lower tier) and promoting it back
must leave every restore byte-identical to the DRAM-only restore — tiers
change where bytes live and what touching them costs, never the bytes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.sandbox.checkpoint import BaseCheckpoint
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.storage.prefetch import WorkingSetRecorder
from repro.storage.store import TieredCheckpointStore
from repro.storage.tiers import StorageConfig, StorageTier
from tests.conftest import TEST_SCALE


def build_harness(profile, *, remote_dram_mb: float, recorder=None):
    """Agent on node 0, ownerless base checkpoint on node 1."""
    store = TieredCheckpointStore(
        StorageConfig(remote_dram_mb=remote_dram_mb, ssd_capacity_mb=1024.0),
        nodes=2,
    )
    registry = FingerprintRegistry()
    fabric = RdmaFabric()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=fabric,
        costs=CostModel(),
        content_scale=TEST_SCALE,
        tiering=True,
        recorder=recorder,
    )
    base_image = profile.synthesize(700, content_scale=TEST_SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function=profile.name,
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=profile.memory_bytes,
        owner_resident=False,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    return agent, store, checkpoint


def dedup_sandbox(agent, profile, seed):
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
    sandbox.image = profile.synthesize(seed, content_scale=TEST_SCALE, executed=True)
    return agent.dedup(sandbox)


class TestDemotePromoteRoundTrip:
    @settings(max_examples=10)
    @given(
        seed=st.integers(min_value=701, max_value=740),
        via_ssd=st.booleans(),
    )
    def test_restores_byte_identical_across_tiers(
        self, linalg_profile, seed, via_ssd
    ):
        # remote_dram_mb=0 forces the demotion to overflow to SSD.
        agent, store, checkpoint = build_harness(
            linalg_profile, remote_dram_mb=0.0 if via_ssd else 1024.0
        )
        outcome = dedup_sandbox(agent, linalg_profile, seed)

        in_dram = agent.restore(outcome.table, verify=True)
        move = store.demote_checkpoint(checkpoint)
        assert move is not None
        expected = StorageTier.LOCAL_SSD if via_ssd else StorageTier.REMOTE_DRAM
        assert checkpoint.tier is expected
        # The page cache would mask a content regression: drop it so the
        # demoted restore re-reads every base page from the checkpoint.
        agent.base_page_cache.clear()
        demoted = agent.restore(outcome.table, verify=True)
        assert demoted.image.checksum() == in_dram.image.checksum()
        assert demoted.image.checksum() == outcome.table.original_checksum

        store.promote_checkpoint(checkpoint)
        agent.base_page_cache.clear()
        promoted = agent.restore(outcome.table, verify=True)
        assert promoted.image.checksum() == outcome.table.original_checksum

    def test_demoted_restore_costs_more_than_dram(self, linalg_profile):
        agent, store, checkpoint = build_harness(linalg_profile, remote_dram_mb=0.0)
        outcome = dedup_sandbox(agent, linalg_profile, 750)
        if outcome.table.stats.patched_pages == 0:
            pytest.skip("no base reads in this table")
        in_dram = agent.restore(outcome.table).timings.base_read_ms
        store.demote_checkpoint(checkpoint)
        on_ssd = agent.restore(outcome.table).timings.base_read_ms
        assert on_ssd > in_dram


class TestPrefetchedRestore:
    def test_second_restore_prefetches_and_matches(self, linalg_profile):
        recorder = WorkingSetRecorder()
        agent, store, checkpoint = build_harness(
            linalg_profile, remote_dram_mb=1024.0, recorder=recorder
        )
        outcome = dedup_sandbox(agent, linalg_profile, 760)
        first = agent.restore(outcome.table, verify=True)
        assert not first.timings.prefetched
        assert recorder.recordings == 1

        second = agent.restore(outcome.table, verify=True)
        assert second.timings.prefetched
        assert second.timings.prefetch_miss_pages == 0
        assert second.image.checksum() == first.image.checksum()
        # Same bytes fetched either way, but the prefetch overlaps patch
        # compute, so the recorded restore is never slower.
        assert second.timings.total_ms <= first.timings.total_ms

    def test_recorder_keys_by_base_set(self, linalg_profile):
        recorder = WorkingSetRecorder()
        agent, _store, _checkpoint = build_harness(
            linalg_profile, remote_dram_mb=1024.0, recorder=recorder
        )
        a = dedup_sandbox(agent, linalg_profile, 770)
        b = dedup_sandbox(agent, linalg_profile, 771)
        agent.restore(a.table, verify=True)
        agent.restore(b.table, verify=True)
        # Same function, same base-checkpoint set: one recording serves
        # both tables' keys.
        assert recorder.recordings == 1
