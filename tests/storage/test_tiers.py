"""Tests for the tier model: StorageConfig costs and TierAccount."""

from __future__ import annotations

import pytest

from repro._util import MIB
from repro.storage.tiers import (
    StorageConfig,
    StorageTier,
    TierAccount,
    TierCapacityError,
)


class TestStorageConfig:
    def test_defaults_valid(self):
        config = StorageConfig()
        assert config.remote_dram_capacity_bytes == 2048 * MIB
        assert config.ssd_capacity_bytes == 8192 * MIB

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"remote_dram_latency_us": 0},
            {"remote_dram_gbps": -1},
            {"ssd_read_latency_us": 0},
            {"ssd_read_mb_per_s": 0},
            {"ssd_write_mb_per_s": -5},
        ],
    )
    def test_rejects_non_positive_timings(self, kwargs):
        with pytest.raises(ValueError, match="positive"):
            StorageConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs", [{"remote_dram_mb": -1}, {"ssd_capacity_mb": -1}]
    )
    def test_rejects_negative_capacities(self, kwargs):
        with pytest.raises(ValueError, match="non-negative"):
            StorageConfig(**kwargs)

    def test_zero_capacity_allowed(self):
        # A zero-capacity tier is a valid ablation (tier disabled).
        config = StorageConfig(remote_dram_mb=0.0, ssd_capacity_mb=0.0)
        assert config.remote_dram_capacity_bytes == 0

    def test_zero_byte_reads_free(self):
        config = StorageConfig()
        assert config.remote_dram_read_ms(0) == 0.0
        assert config.ssd_read_ms(0) == 0.0
        assert config.ssd_write_ms(0) == 0.0

    def test_negative_sizes_rejected(self):
        config = StorageConfig()
        for cost in (
            config.remote_dram_read_ms,
            config.ssd_read_ms,
            config.ssd_write_ms,
        ):
            with pytest.raises(ValueError):
                cost(-1)

    def test_batched_read_pays_one_latency(self):
        config = StorageConfig()
        one = config.ssd_read_ms(1 * MIB)
        two = config.ssd_read_ms(2 * MIB)
        # Doubling the bytes must not double the latency component.
        assert two < 2 * one

    def test_tier_cost_ordering(self):
        """One batched transfer orders NODE_DRAM < REMOTE_DRAM < LOCAL_SSD."""
        from repro.sim.network import RdmaFabric

        config = StorageConfig()
        nbytes = 4 * MIB
        fabric_ms = RdmaFabric().batch_read_ms({1: (1, nbytes)}, local_peer=0)
        assert fabric_ms < config.remote_dram_read_ms(nbytes)
        assert config.remote_dram_read_ms(nbytes) < config.ssd_read_ms(nbytes)

    def test_ssd_writes_slower_than_reads(self):
        config = StorageConfig()
        assert config.ssd_write_ms(4 * MIB) > config.ssd_read_ms(4 * MIB)


class TestTierAccount:
    def test_charge_release_cycle(self):
        account = TierAccount(capacity_bytes=100)
        assert account.fits(100)
        account.charge(60)
        assert account.used_bytes == 60
        assert account.free_bytes == 40
        assert not account.fits(41)
        account.release(60)
        assert account.used_bytes == 0

    def test_overflow_raises(self):
        account = TierAccount(capacity_bytes=10)
        with pytest.raises(TierCapacityError):
            account.charge(11)
        assert account.used_bytes == 0

    def test_underflow_raises(self):
        account = TierAccount(capacity_bytes=10)
        account.charge(5)
        with pytest.raises(RuntimeError, match="underflow"):
            account.release(6)

    def test_negative_amounts_rejected(self):
        account = TierAccount(capacity_bytes=10)
        with pytest.raises(ValueError):
            account.charge(-1)
        with pytest.raises(ValueError):
            account.release(-1)

    def test_charges_counter(self):
        account = TierAccount(capacity_bytes=100)
        account.charge(10)
        account.charge(10)
        account.release(20)
        assert account.charges == 2


class TestStorageTier:
    def test_three_tiers(self):
        assert {t.value for t in StorageTier} == {
            "node-dram",
            "remote-dram",
            "local-ssd",
        }
