"""Tests for the recorded-working-set restore prefetcher."""

from __future__ import annotations

from repro.storage.prefetch import WorkingSetRecorder


class TestKeying:
    def test_key_sorts_checkpoint_ids(self):
        assert WorkingSetRecorder.key_for("f", [3, 1, 2]) == ("f", (1, 2, 3))
        assert WorkingSetRecorder.key_for("f", {2, 1, 3}) == ("f", (1, 2, 3))

    def test_distinct_functions_distinct_keys(self):
        assert WorkingSetRecorder.key_for("f", [1]) != WorkingSetRecorder.key_for(
            "g", [1]
        )


class TestRecording:
    def test_lookup_before_record_misses(self):
        recorder = WorkingSetRecorder()
        assert recorder.lookup(("f", (1,))) is None

    def test_record_then_lookup(self):
        recorder = WorkingSetRecorder()
        key = WorkingSetRecorder.key_for("f", [1])
        pages = frozenset({(1, 0), (1, 4)})
        recorder.record(key, pages)
        assert recorder.lookup(key) == pages
        assert recorder.recordings == 1
        assert len(recorder) == 1

    def test_first_recording_wins(self):
        recorder = WorkingSetRecorder()
        key = WorkingSetRecorder.key_for("f", [1])
        first = frozenset({(1, 0)})
        recorder.record(key, first)
        recorder.record(key, frozenset({(1, 9)}))
        assert recorder.lookup(key) == first
        assert recorder.recordings == 1

    def test_prefetch_stats_accumulate(self):
        recorder = WorkingSetRecorder()
        recorder.note_prefetch(10, 2)
        recorder.note_prefetch(5, 0)
        assert recorder.prefetched_restores == 2
        assert recorder.hit_pages == 15
        assert recorder.miss_pages == 2
