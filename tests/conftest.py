"""Shared fixtures for the Medes reproduction test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro._util import MIB
from repro.workload.functionbench import FunctionBenchSuite

# Keep property tests fast and robust under CI load.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

#: Tiny content scale used by tests that touch real bytes.
TEST_SCALE = 1.0 / 256.0


@pytest.fixture(scope="session")
def suite() -> FunctionBenchSuite:
    return FunctionBenchSuite.default()


@pytest.fixture(scope="session")
def small_suite() -> FunctionBenchSuite:
    return FunctionBenchSuite.subset(["Vanilla", "LinAlg", "RNNModel"])


@pytest.fixture(scope="session")
def linalg_profile(suite):
    return suite.get("LinAlg")


@pytest.fixture(scope="session")
def linalg_image(linalg_profile):
    return linalg_profile.synthesize(1, content_scale=TEST_SCALE)


@pytest.fixture(scope="session")
def linalg_image_executed(linalg_profile):
    return linalg_profile.synthesize(1, content_scale=TEST_SCALE, executed=True)
