"""Tests for trace CSV import/export."""

from __future__ import annotations

import pytest

from repro.workload.azure import AzureTraceGenerator
from repro.workload.trace import Trace
from repro.workload.trace_io import dump_trace, dumps_trace, load_trace, loads_trace


@pytest.fixture
def trace() -> Trace:
    return Trace.from_arrivals([(0.0, "a"), (125.5, "b"), (318.25, "a")])


class TestRoundTrip:
    def test_string_round_trip(self, trace):
        loaded = loads_trace(dumps_trace(trace))
        assert [(r.arrival_ms, r.function) for r in loaded] == [
            (r.arrival_ms, r.function) for r in trace
        ]

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        dump_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.functions() == trace.functions()

    def test_generated_trace_round_trips(self, tmp_path):
        generated = AzureTraceGenerator(seed=3).generate(5, ("x", "y", "z"))
        path = tmp_path / "azure.csv"
        dump_trace(generated, path)
        loaded = load_trace(path)
        assert len(loaded) == len(generated)
        assert loaded.count_by_function() == generated.count_by_function()

    def test_unsorted_input_sorted_on_load(self):
        text = "arrival_ms,function\n500,late\n10,early\n"
        loaded = loads_trace(text)
        assert [r.function for r in loaded] == ["early", "late"]


class TestValidation:
    def test_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            loads_trace("time,fn\n1,a\n")

    def test_bad_arrival(self):
        with pytest.raises(ValueError, match="bad arrival"):
            loads_trace("arrival_ms,function\nnot-a-number,a\n")

    def test_negative_arrival(self):
        with pytest.raises(ValueError, match="negative"):
            loads_trace("arrival_ms,function\n-5,a\n")

    def test_empty_function(self):
        with pytest.raises(ValueError, match="empty function"):
            loads_trace("arrival_ms,function\n5,\n")

    def test_wrong_column_count(self):
        with pytest.raises(ValueError, match="2 columns"):
            loads_trace("arrival_ms,function\n5,a,extra\n")

    def test_empty_file(self):
        assert len(loads_trace("")) == 0
        assert len(loads_trace("arrival_ms,function\n")) == 0

    def test_blank_lines_skipped(self):
        loaded = loads_trace("arrival_ms,function\n1,a\n\n2,b\n")
        assert len(loaded) == 2
