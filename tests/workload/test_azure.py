"""Tests for the Azure-style trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.workload.azure import (
    AzureTraceGenerator,
    PatternKind,
    PatternSpec,
    sample_arrivals,
)


class TestPatternSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            PatternSpec(kind=PatternKind.STEADY, rate_per_min=0)
        with pytest.raises(ValueError):
            PatternSpec(kind=PatternKind.PERIODIC, rate_per_min=1, period_min=0)


class TestSamplers:
    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_arrivals_sorted_and_bounded(self, kind):
        spec = PatternSpec(kind=kind, rate_per_min=4.0, period_min=5.0)
        rng = rng_for("azure-test", kind.value)
        arrivals = sample_arrivals(spec, 30 * 60_000.0, rng)
        assert (np.diff(arrivals) >= 0).all()
        if arrivals.size:
            assert arrivals[0] >= 0
            assert arrivals[-1] < 30 * 60_000.0

    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_mean_rate_roughly_matches(self, kind):
        spec = PatternSpec(kind=kind, rate_per_min=6.0, period_min=4.0)
        rng = rng_for("azure-rate", kind.value)
        arrivals = sample_arrivals(spec, 60 * 60_000.0, rng)
        achieved = arrivals.size / 60.0
        assert 0.3 * spec.rate_per_min < achieved < 3.0 * spec.rate_per_min

    def test_bursty_is_burstier_than_steady(self):
        """Squared-CV of inter-arrivals separates the pattern classes."""
        duration = 120 * 60_000.0

        def cv2(kind):
            spec = PatternSpec(kind=kind, rate_per_min=5.0)
            arrivals = sample_arrivals(spec, duration, rng_for("cv", kind.value))
            gaps = np.diff(arrivals)
            return float(np.var(gaps) / np.mean(gaps) ** 2)

        assert cv2(PatternKind.BURSTY) > 2.0 * cv2(PatternKind.STEADY)

    def test_periodic_concentrates_on_period(self):
        spec = PatternSpec(kind=PatternKind.PERIODIC, rate_per_min=0.2, period_min=5.0)
        arrivals = sample_arrivals(spec, 60 * 60_000.0, rng_for("periodic"))
        gaps = np.diff(arrivals)
        long_gaps = gaps[gaps > 60_000.0]
        assert np.median(long_gaps) == pytest.approx(5 * 60_000.0, rel=0.15)

    def test_zero_duration(self):
        spec = PatternSpec(kind=PatternKind.STEADY, rate_per_min=5.0)
        assert sample_arrivals(spec, 0.0, rng_for("zero")).size == 0


class TestGenerator:
    def test_deterministic(self):
        functions = ("a", "b", "c")
        first = AzureTraceGenerator(seed=5).generate(10, functions)
        second = AzureTraceGenerator(seed=5).generate(10, functions)
        assert [(r.arrival_ms, r.function) for r in first] == [
            (r.arrival_ms, r.function) for r in second
        ]

    def test_seed_changes_trace(self):
        functions = ("a", "b")
        first = AzureTraceGenerator(seed=1).generate(10, functions)
        second = AzureTraceGenerator(seed=2).generate(10, functions)
        assert [(r.arrival_ms, r.function) for r in first] != [
            (r.arrival_ms, r.function) for r in second
        ]

    def test_all_functions_present(self):
        functions = tuple(f"f{i}" for i in range(8))
        trace = AzureTraceGenerator(seed=3).generate(30, functions)
        assert set(trace.functions()) == set(functions)

    def test_rate_scale_multiplies_volume(self):
        functions = ("a", "b", "c", "d")
        base = AzureTraceGenerator(seed=4, rate_scale=1.0).generate(30, functions)
        scaled = AzureTraceGenerator(seed=4, rate_scale=5.0).generate(30, functions)
        assert len(scaled) > 3 * len(base)

    def test_pattern_assignment_cycles(self):
        generator = AzureTraceGenerator(seed=6)
        kinds = [generator.pattern_for(f"f{i}", i).kind for i in range(6)]
        assert len(set(kinds)) >= 3  # a diverse mix

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            AzureTraceGenerator().generate(0, ("a",))
