"""Tests for the FunctionBench profiles."""

from __future__ import annotations

import pytest

from repro._util import MIB
from repro.workload.functionbench import (
    REPRESENTATIVE_SUBSET,
    FunctionBenchSuite,
    FunctionProfile,
)
from tests.conftest import TEST_SCALE


class TestSuiteContents:
    def test_table2_functions_present(self, suite):
        expected = {
            "Vanilla",
            "LinAlg",
            "ImagePro",
            "VideoPro",
            "MapReduce",
            "HTMLServe",
            "AuthEnc",
            "FeatureGen",
            "RNNModel",
            "ModelTrain",
        }
        assert set(suite.names()) == expected

    def test_table2_values(self, suite):
        vanilla = suite.get("Vanilla")
        assert vanilla.exec_time_ms == 150
        assert vanilla.memory_mb == 17
        model_train = suite.get("ModelTrain")
        assert model_train.exec_time_ms == 3000
        assert model_train.memory_mb == 87.5

    def test_table1_library_sharing(self, suite):
        """FeatureGen and ModelTrain share the TfIdfVectorizer module."""
        feature_gen = set(suite.get("FeatureGen").libraries)
        model_train = set(suite.get("ModelTrain").libraries)
        assert "sklearn-tfidf" in feature_gen & model_train

    def test_get_unknown_raises(self, suite):
        with pytest.raises(KeyError):
            suite.get("NoSuchFunction")

    def test_subset_preserves_order(self):
        subset = FunctionBenchSuite.subset(["ModelTrain", "Vanilla"])
        assert subset.names() == ("ModelTrain", "Vanilla")

    def test_representative_subset(self):
        assert set(REPRESENTATIVE_SUBSET) == {"LinAlg", "FeatureGen", "ModelTrain"}

    def test_len_and_iter(self, suite):
        assert len(suite) == 10
        assert [p.name for p in suite] == list(suite.names())

    def test_duplicate_names_rejected(self, suite):
        profile = suite.get("Vanilla")
        with pytest.raises(ValueError):
            FunctionBenchSuite(profiles=(profile, profile))


class TestReplication:
    def test_replicated_names(self):
        replicated = FunctionBenchSuite.replicated(["LinAlg"], 3)
        assert replicated.names() == ("LinAlg", "LinAlg~1", "LinAlg~2")

    def test_replicas_share_environment(self):
        replicated = FunctionBenchSuite.replicated(["LinAlg"], 2)
        base, replica = replicated.profiles
        assert base.libraries == replica.libraries
        assert base.memory_mb == replica.memory_mb

    def test_replicas_have_private_function_regions(self):
        replicated = FunctionBenchSuite.replicated(["LinAlg"], 2)
        base, replica = replicated.profiles
        base_heap = next(
            r.content_key for r in base.layout().regions if r.name == "heap"
        )
        replica_heap = next(
            r.content_key for r in replica.layout().regions if r.name == "heap"
        )
        assert base_heap != replica_heap

    def test_rejects_zero_copies(self):
        with pytest.raises(ValueError):
            FunctionBenchSuite.replicated(["LinAlg"], 0)


class TestProfile:
    def test_memory_bytes(self, linalg_profile):
        assert linalg_profile.memory_bytes == int(32 * MIB)

    def test_synthesize_scales(self, linalg_profile):
        image = linalg_profile.synthesize(1, content_scale=TEST_SCALE)
        assert image.nbytes < linalg_profile.memory_bytes * TEST_SCALE * 2

    def test_synthesize_rejects_bad_scale(self, linalg_profile):
        with pytest.raises(ValueError):
            linalg_profile.synthesize(1, content_scale=0.0)

    def test_layout_cached(self, linalg_profile):
        assert linalg_profile.layout() is linalg_profile.layout()

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionProfile(
                name="Bad",
                description="",
                libraries=(),
                exec_time_ms=0,
                memory_mb=10,
                cold_start_ms=100,
            )
