"""Tests for trace containers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload.trace import Request, Trace


def make_trace(arrivals) -> Trace:
    return Trace.from_arrivals(arrivals)


class TestRequest:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Request(request_id=0, function="f", arrival_ms=-1.0)


class TestTraceConstruction:
    def test_from_arrivals_sorts(self):
        trace = make_trace([(50.0, "b"), (10.0, "a")])
        assert [r.arrival_ms for r in trace] == [10.0, 50.0]
        assert [r.function for r in trace] == ["a", "b"]

    def test_ids_sequential(self):
        trace = make_trace([(5.0, "a"), (1.0, "b"), (3.0, "c")])
        assert [r.request_id for r in trace] == [0, 1, 2]

    def test_unsorted_direct_construction_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Trace(
                requests=(
                    Request(request_id=0, function="a", arrival_ms=10.0),
                    Request(request_id=1, function="a", arrival_ms=5.0),
                )
            )

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Trace(
                requests=(
                    Request(request_id=0, function="a", arrival_ms=1.0),
                    Request(request_id=0, function="a", arrival_ms=2.0),
                )
            )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.sampled_from(["a", "b", "c"]),
            ),
            max_size=50,
        )
    )
    def test_from_arrivals_always_valid(self, arrivals):
        trace = make_trace(arrivals)
        times = [r.arrival_ms for r in trace]
        assert times == sorted(times)
        assert len(trace) == len(arrivals)


class TestTraceQueries:
    @pytest.fixture
    def trace(self) -> Trace:
        return make_trace(
            [(0.0, "a"), (100.0, "b"), (200.0, "a"), (300.0, "c"), (400.0, "a")]
        )

    def test_duration(self, trace):
        assert trace.duration_ms == 400.0
        assert make_trace([]).duration_ms == 0.0

    def test_functions_first_arrival_order(self, trace):
        assert trace.functions() == ("a", "b", "c")

    def test_count_by_function(self, trace):
        assert trace.count_by_function() == {"a": 3, "b": 1, "c": 1}

    def test_window(self, trace):
        window = trace.window(100.0, 300.0)
        assert [r.function for r in window] == ["b", "a"]
        assert window.requests[0].arrival_ms == 0.0  # re-based

    def test_restrict(self, trace):
        restricted = trace.restrict({"a"})
        assert restricted.count_by_function() == {"a": 3}

    def test_merged_with(self, trace):
        other = make_trace([(50.0, "z")])
        merged = trace.merged_with(other)
        assert len(merged) == 6
        assert merged.functions()[0] == "a"

    def test_mean_rate(self, trace):
        # 5 requests over 0.4 s.
        assert trace.mean_rate_per_s() == pytest.approx(5 / 0.4)
        assert trace.mean_rate_per_s("a") == pytest.approx(3 / 0.4)
