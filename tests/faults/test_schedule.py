"""FaultSchedule / FaultsConfig validation."""

from __future__ import annotations

import pytest

from repro.faults.schedule import (
    FaultSchedule,
    FaultsConfig,
    LinkDegradation,
    LinkPartition,
    NodeCrash,
    ShardOutage,
)


class TestEventValidation:
    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            NodeCrash(at_ms=100.0, node_id=0, restart_at_ms=100.0)

    def test_heal_must_follow_outage(self):
        with pytest.raises(ValueError):
            ShardOutage(at_ms=50.0, shard=0, heal_at_ms=10.0)

    def test_degradation_factor_at_least_one(self):
        with pytest.raises(ValueError):
            LinkDegradation(at_ms=0.0, peer=1, heal_at_ms=10.0, latency_factor=0.5)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(at_ms=-1.0, node_id=0)
        with pytest.raises(ValueError):
            LinkPartition(at_ms=-1.0, peer=0, heal_at_ms=5.0)


class TestScheduleValidation:
    def test_empty_schedule(self):
        assert FaultSchedule().empty
        assert not FaultSchedule(node_crashes=(NodeCrash(1.0, 0),)).empty

    def test_overlapping_crashes_same_node_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                node_crashes=(
                    NodeCrash(at_ms=0.0, node_id=1, restart_at_ms=100.0),
                    NodeCrash(at_ms=50.0, node_id=1, restart_at_ms=200.0),
                )
            )

    def test_crash_without_restart_blocks_later_crash(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                node_crashes=(
                    NodeCrash(at_ms=0.0, node_id=1),
                    NodeCrash(at_ms=500.0, node_id=1),
                )
            )

    def test_disjoint_crashes_ok(self):
        FaultSchedule(
            node_crashes=(
                NodeCrash(at_ms=0.0, node_id=1, restart_at_ms=100.0),
                NodeCrash(at_ms=100.0, node_id=1, restart_at_ms=200.0),
                NodeCrash(at_ms=0.0, node_id=2),
            )
        )

    def test_degradation_and_partition_share_the_link_domain(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                link_degradations=(
                    LinkDegradation(at_ms=0.0, peer=1, heal_at_ms=100.0),
                ),
                link_partitions=(LinkPartition(at_ms=50.0, peer=1, heal_at_ms=80.0),),
            )

    def test_overlapping_shard_outages_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                shard_outages=(
                    ShardOutage(at_ms=0.0, shard=0, heal_at_ms=100.0),
                    ShardOutage(at_ms=10.0, shard=0, heal_at_ms=50.0),
                )
            )


class TestFaultsConfig:
    def test_defaults_inject_nothing(self):
        config = FaultsConfig()
        assert config.schedule.empty
        assert config.rpc_failure_prob == 0.0

    def test_rejects_certain_failure(self):
        with pytest.raises(ValueError):
            FaultsConfig(rpc_failure_prob=1.0)
