"""``ClusterConfig.faults`` determinism contract.

``faults=None`` (the default) must be pinned bit-identical — same
``RunMetrics``, same duration — to a run with the fault layer *enabled
but injecting nothing* (``FaultsConfig()``), across every platform kind
and eviction-order ablation.  This is what lets the fault layer ride in
the hot path unconditionally: enabling it cannot perturb a healthy run
by a single float.

Separately, a faulty run under a fixed seed must reproduce itself
bit-for-bit (the seeded-chaos half of the determinism contract).
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.core.policy import MedesPolicyConfig
from repro.faults.schedule import FaultSchedule, FaultsConfig, NodeCrash
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.node import EvictionOrder
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 256.0

MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)


def _build_kwargs(kind):
    return {"medes": MEDES} if kind is PlatformKind.MEDES else {}


def run_with_faults(kind, config, suite, trace, faults):
    """One run with process-global id counters reset for comparability."""
    sandbox_module._sandbox_ids = itertools.count(1)
    checkpoint_module._checkpoint_ids = itertools.count(1)
    platform = build_platform(
        kind, replace(config, faults=faults), suite, **_build_kwargs(kind)
    )
    return platform.run(trace)


@pytest.fixture(scope="module")
def workload():
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg", "FeatureGen"])
    trace = AzureTraceGenerator(seed=3).generate(4.0, suite.names())
    return suite, trace


class TestDisabledVsEmptyLayer:
    """faults=None == FaultsConfig() to the bit, on every platform."""

    CONFIG = ClusterConfig(nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=2)

    @pytest.mark.parametrize("kind", list(PlatformKind))
    def test_platform_kinds(self, kind, workload):
        suite, trace = workload
        disabled = run_with_faults(kind, self.CONFIG, suite, trace, None)
        empty = run_with_faults(kind, self.CONFIG, suite, trace, FaultsConfig())
        assert empty.duration_ms == disabled.duration_ms
        assert empty.metrics == disabled.metrics

    @pytest.mark.parametrize("order", list(EvictionOrder))
    def test_eviction_orders_under_pressure(self, order):
        suite = FunctionBenchSuite.subset(["FeatureGen", "RNNModel"])
        config = ClusterConfig(
            nodes=1,
            node_memory_mb=256.0,
            content_scale=SCALE,
            seed=7,
            eviction_order=order,
        )
        trace = AzureTraceGenerator(seed=5, rate_scale=8.0).generate(3.0, suite.names())
        disabled = run_with_faults(PlatformKind.MEDES, config, suite, trace, None)
        empty = run_with_faults(
            PlatformKind.MEDES, config, suite, trace, FaultsConfig()
        )
        assert disabled.metrics.evictions > 0, "workload must exercise eviction"
        assert empty.duration_ms == disabled.duration_ms
        assert empty.metrics == disabled.metrics


class TestSeededChaosReproduces:
    """The same faulty config replays bit-for-bit."""

    FAULTS = FaultsConfig(
        schedule=FaultSchedule(
            node_crashes=(NodeCrash(at_ms=45_000.0, node_id=1, restart_at_ms=90_000.0),)
        ),
        rpc_failure_prob=0.05,
        seed=13,
    )

    def test_identical_twice(self, workload):
        suite, trace = workload
        config = ClusterConfig(
            nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=2
        )
        first = run_with_faults(PlatformKind.MEDES, config, suite, trace, self.FAULTS)
        second = run_with_faults(PlatformKind.MEDES, config, suite, trace, self.FAULTS)
        assert first.duration_ms == second.duration_ms
        assert first.metrics == second.metrics
        assert first.metrics.fault_events, "the crash must have been injected"

    def test_transient_seed_changes_the_run(self, workload):
        suite, trace = workload
        config = ClusterConfig(
            nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=2
        )
        probed = FaultsConfig(rpc_failure_prob=0.3, seed=13)
        reseeded = FaultsConfig(rpc_failure_prob=0.3, seed=14)
        first = run_with_faults(PlatformKind.MEDES, config, suite, trace, probed)
        second = run_with_faults(PlatformKind.MEDES, config, suite, trace, reseeded)
        # Both complete; the retry streams differ under different seeds.
        assert first.metrics.rpc_retries > 0 or second.metrics.rpc_retries > 0
