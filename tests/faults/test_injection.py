"""End-to-end fault injection through the platform (DESIGN.md §11).

Node crashes, registry-shard outages and link faults are injected on
the simulator clock; every run must complete all requests (degradation,
never failure), reconcile refcounts, and surface the recovery in the
fault metrics (availability timeline, MTTR, fallback counters).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.faults.schedule import (
    FaultSchedule,
    FaultsConfig,
    LinkDegradation,
    LinkPartition,
    NodeCrash,
    ShardOutage,
)
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.state import SandboxState
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0
MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)


def run_faulty(faults, *, arrivals, nodes=2, node_memory_mb=512.0, seed=4, **cfg):
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
    config = ClusterConfig(
        nodes=nodes,
        node_memory_mb=node_memory_mb,
        content_scale=SCALE,
        seed=seed,
        verify_restores=True,
        faults=faults,
        **cfg,
    )
    platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
    report = platform.run(Trace.from_arrivals(arrivals))
    return platform, report


def assert_consistent(platform):
    """Refcounts and node accounting match a from-scratch recount."""
    expected: Counter[int] = Counter()
    for node in platform.nodes:
        for sandbox in node.sandboxes.values():
            if sandbox.dedup_table is not None:
                expected.update(sandbox.dedup_table.base_refs)
    for checkpoint in platform.store:
        assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)
    for node in platform.nodes:
        recount = sum(s.memory_bytes() for s in node.sandboxes.values())
        recount += sum(c.memory_bytes() for c in node.checkpoints.values())
        assert node.used_bytes() == recount


#: Dedup state forms by ~10 s (idle period 5 s); the 26 s burst leaves
#: non-base warm sandboxes idling into the 30-70 s fault window, and the
#: 60 s arrivals dispatch while the faults are active.
DEDUP_WORKLOAD = [
    (0.0, "Vanilla"),
    (1.0, "Vanilla"),
    (2.0, "LinAlg"),
    (3.0, "LinAlg"),
    (26_000.0, "Vanilla"),
    (26_010.0, "Vanilla"),
    (26_020.0, "Vanilla"),
    (60_000.0, "Vanilla"),
    (61_000.0, "LinAlg"),
    (120_000.0, "Vanilla"),
]


class TestNodeCrash:
    def test_single_crash_no_request_aborts(self):
        faults = FaultsConfig(
            schedule=FaultSchedule(node_crashes=(NodeCrash(at_ms=45_000.0, node_id=1),))
        )
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        assert len(report.metrics.requests) == len(DEDUP_WORKLOAD)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        assert platform.faults is not None
        assert 1 in platform.faults.health.down_nodes
        # Nothing lives on (or was placed onto) the dead node.
        assert not platform.nodes[1].sandboxes
        assert_consistent(platform)

    def test_crash_purges_and_reconciles(self):
        faults = FaultsConfig(
            schedule=FaultSchedule(node_crashes=(NodeCrash(at_ms=45_000.0, node_id=1),))
        )
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        metrics = report.metrics
        assert metrics.crash_purged_sandboxes > 0
        events = [e.kind for e in metrics.fault_events]
        assert events.count("node-crash") == 1
        assert metrics.availability_timeline[0].nodes_up == 1
        assert_consistent(platform)

    def test_restart_restores_capacity_and_mttr(self):
        faults = FaultsConfig(
            schedule=FaultSchedule(
                node_crashes=(
                    NodeCrash(at_ms=45_000.0, node_id=1, restart_at_ms=75_000.0),
                )
            )
        )
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        metrics = report.metrics
        kinds = [e.kind for e in metrics.fault_events]
        assert kinds == ["node-crash", "node-restored"]
        assert metrics.mttr_ms() == pytest.approx(30_000.0)
        assert platform.faults is not None
        assert not platform.faults.health.down_nodes
        assert platform.fabric.peer_available(1)
        # The restarted node is usable again: post-restart requests may
        # land there, and the final health sample shows full capacity.
        assert metrics.availability_timeline[-1].nodes_up == 2
        assert_consistent(platform)

    def test_mid_restore_crash_is_survived(self):
        """Crash while restores/requests are in flight on the dead node:
        the displaced requests reschedule rather than hang the run."""
        arrivals = [(float(i * 50), "Vanilla") for i in range(8)]
        arrivals += [(40_000.0 + i * 30, "Vanilla") for i in range(6)]
        faults = FaultsConfig(
            schedule=FaultSchedule(
                # Crash exactly while the second burst is being served.
                node_crashes=(NodeCrash(at_ms=40_060.0, node_id=0),)
            )
        )
        platform, report = run_faulty(faults, arrivals=arrivals)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        assert_consistent(platform)

    def test_both_fallback_counters_surface(self):
        """A crash wiping node 1 forces the restore fallback ladder; the
        run records either a replica re-home or a cold fallback."""
        faults = FaultsConfig(
            schedule=FaultSchedule(node_crashes=(NodeCrash(at_ms=45_000.0, node_id=1),))
        )
        _, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        metrics = report.metrics
        # The reconciliation path ran: state referencing the dead node
        # was either purged, re-homed, or never existed (scheduling is
        # free to have kept everything on node 0 — but the counters must
        # never go negative / half-counted).
        assert metrics.restore_replica_fallbacks >= 0
        assert metrics.restore_cold_fallbacks >= 0
        assert metrics.requests_rescheduled >= 0
        assert metrics.crash_reconciled_refs >= 0


class TestShardOutage:
    OUTAGE = FaultsConfig(
        schedule=FaultSchedule(
            shard_outages=(ShardOutage(at_ms=30_000.0, shard=0, heal_at_ms=70_000.0),)
        )
    )

    def test_warm_only_degradation_and_recovery(self):
        platform, report = run_faulty(self.OUTAGE, arrivals=DEDUP_WORKLOAD)
        metrics = report.metrics
        # During the outage the idle machinery defers dedup decisions.
        assert metrics.dedup_deferrals > 0
        assert metrics.shard_rebuilds == 1
        assert metrics.shard_rebuild_ms > 0.0
        kinds = [e.kind for e in metrics.fault_events]
        assert kinds.count("shard-down") == 1
        assert kinds.count("shard-restored") == 1
        # MTTR includes the charged rebuild: strictly > the raw outage.
        assert metrics.mttr_ms() > 40_000.0
        assert platform.faults is not None
        assert platform.faults.health.registry_available()
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        assert_consistent(platform)

    def test_registry_rebuilt_from_surviving_agents(self):
        platform, _ = run_faulty(self.OUTAGE, arrivals=DEDUP_WORKLOAD)
        # Every surviving registered base repopulates the shard: dedup
        # works again after heal, so the registry serves lookups for the
        # still-registered checkpoints' pages.
        registered = [c for c in platform.store if c.registered]
        assert registered, "run must have demarcated at least one base"
        assert platform.registry.digest_count > 0

    def test_dedup_resumes_after_heal(self):
        arrivals = DEDUP_WORKLOAD + [(150_000.0, "Vanilla"), (151_000.0, "LinAlg")]
        platform, report = run_faulty(self.OUTAGE, arrivals=arrivals)
        late_ops = [
            op for op in report.metrics.dedup_ops if op.started_ms > 70_000.0
        ]
        assert late_ops, "dedup must resume once the shard heals"


class TestLinkFaults:
    def test_degraded_link_slows_but_never_fails(self):
        faults = FaultsConfig(
            schedule=FaultSchedule(
                link_degradations=(
                    LinkDegradation(
                        at_ms=30_000.0, peer=1, heal_at_ms=90_000.0, latency_factor=6.0
                    ),
                )
            )
        )
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        kinds = [e.kind for e in report.metrics.fault_events]
        assert kinds == ["link-degraded", "link-restored"]
        assert platform.fabric.link_factor(1) == 1.0
        assert_consistent(platform)

    def test_partition_keeps_dedup_state_for_post_heal(self):
        """A partitioned (not crashed) base node: restores fall back but
        the dedup sandbox is NOT purged — its base state still exists."""
        faults = FaultsConfig(
            schedule=FaultSchedule(
                link_partitions=(
                    LinkPartition(at_ms=45_000.0, peer=1, heal_at_ms=100_000.0),
                )
            )
        )
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        # No sandbox was purged for base-unavailability: the partition
        # branch keeps them; crash-purge counters stay zero.
        assert report.metrics.crash_purged_sandboxes == 0
        assert_consistent(platform)


class TestTransientRpcFaults:
    def test_retries_charged_as_latency(self):
        faults = FaultsConfig(rpc_failure_prob=0.25, seed=21)
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        metrics = report.metrics
        assert metrics.rpc_retries > 0
        assert metrics.retry_backoff_ms > 0.0
        charged = sum(op.retry_ms for op in metrics.dedup_ops) + sum(
            op.retry_ms for op in metrics.restore_ops
        )
        exhausted_charge = sum(
            r.retry_penalty_ms for r in metrics.requests.values()
        )
        assert charged + exhausted_charge == pytest.approx(metrics.retry_backoff_ms)
        for record in metrics.requests.values():
            assert record.completion_ms is not None
        assert_consistent(platform)

    def test_exhaustion_falls_through_not_fails(self):
        """Near-certain transient failure: every remote fetch exhausts
        its retries, yet the run completes via warm/cold fallbacks."""
        faults = FaultsConfig(rpc_failure_prob=0.95, seed=9)
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        assert_consistent(platform)


class TestPurgedBaseRegression:
    """Regression for the dedup-candidate fallback loop: a candidate
    whose base checkpoint died is skipped and its refcounts are released
    exactly once under the crash reconciliation (a double release would
    raise refcount underflow; a leak would fail the recount)."""

    def test_dead_base_candidate_skipped_and_released_once(self):
        faults = FaultsConfig(
            schedule=FaultSchedule(node_crashes=(NodeCrash(at_ms=45_000.0, node_id=1),))
        )
        # The 60s arrivals dispatch right after the crash: any dedup
        # candidate patched against node-1 bases must be skipped (purged
        # or re-homed), never half-released.
        platform, report = run_faulty(faults, arrivals=DEDUP_WORKLOAD)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        # No sandbox still references a dead checkpoint.
        live_ids = {c.checkpoint_id for c in platform.store}
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    for cid in sandbox.dedup_table.base_refs:
                        assert cid in live_ids
        assert_consistent(platform)

    def test_reconciliation_under_memory_pressure(self):
        faults = FaultsConfig(
            schedule=FaultSchedule(node_crashes=(NodeCrash(at_ms=45_000.0, node_id=1),))
        )
        platform, report = run_faulty(
            faults, arrivals=DEDUP_WORKLOAD, node_memory_mb=160.0
        )
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        assert_consistent(platform)
