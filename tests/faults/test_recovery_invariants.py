"""Property test: any fully-healed fault schedule leaves consistent state.

Hypothesis generates seeded :class:`FaultSchedule` instances in which
every injected fault heals before the run's tail.  After the run,
registry refcounts, node used-bytes counters and the indexed control
plane's census must all match a from-scratch recount — the recovery
machinery may reshuffle state, never corrupt its accounting (reuses the
PR-2 equivalence discipline of recounting everything the indexes cache).
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import MedesPolicyConfig
from repro.faults.schedule import (
    FaultSchedule,
    FaultsConfig,
    LinkDegradation,
    LinkPartition,
    NodeCrash,
    ShardOutage,
)
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.state import SandboxState
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

FUNCTIONS = ("Vanilla", "LinAlg")
#: All faults are injected and healed inside the trace's active window,
#: so by run end the cluster is whole again.
FAULT_WINDOW_MS = (10_000.0, 80_000.0)

times = st.floats(min_value=FAULT_WINDOW_MS[0], max_value=FAULT_WINDOW_MS[1] - 1.0)


@st.composite
def healed_schedules(draw):
    crashes = []
    if draw(st.booleans()):
        at = draw(times)
        heal = draw(st.floats(min_value=at + 1.0, max_value=FAULT_WINDOW_MS[1]))
        crashes.append(
            NodeCrash(at_ms=at, node_id=draw(st.integers(0, 1)), restart_at_ms=heal)
        )
    outages = []
    if draw(st.booleans()):
        at = draw(times)
        heal = draw(st.floats(min_value=at + 1.0, max_value=FAULT_WINDOW_MS[1]))
        outages.append(ShardOutage(at_ms=at, shard=0, heal_at_ms=heal))
    degradations, partitions = [], []
    link_kind = draw(st.sampled_from(["none", "degrade", "partition"]))
    if link_kind != "none":
        at = draw(times)
        heal = draw(st.floats(min_value=at + 1.0, max_value=FAULT_WINDOW_MS[1]))
        peer = draw(st.integers(0, 1))
        if link_kind == "degrade":
            degradations.append(
                LinkDegradation(at_ms=at, peer=peer, heal_at_ms=heal, latency_factor=5.0)
            )
        else:
            partitions.append(LinkPartition(at_ms=at, peer=peer, heal_at_ms=heal))
    return FaultSchedule(
        node_crashes=tuple(crashes),
        shard_outages=tuple(outages),
        link_degradations=tuple(degradations),
        link_partitions=tuple(partitions),
    )


fault_configs = st.builds(
    FaultsConfig,
    schedule=healed_schedules(),
    rpc_failure_prob=st.sampled_from([0.0, 0.1]),
    seed=st.integers(0, 2**16),
)

ARRIVALS = [
    (0.0, "Vanilla"),
    (1.0, "Vanilla"),
    (2.0, "LinAlg"),
    (40_000.0, "Vanilla"),
    (41_000.0, "LinAlg"),
    (95_000.0, "Vanilla"),
    (96_000.0, "LinAlg"),
]


def run_with(faults):
    suite = FunctionBenchSuite.subset(list(FUNCTIONS))
    config = ClusterConfig(
        nodes=2,
        node_memory_mb=256.0,
        content_scale=1.0 / 256.0,
        seed=5,
        verify_restores=True,
        faults=faults,
    )
    platform = build_platform(
        PlatformKind.MEDES,
        config,
        suite,
        medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
    )
    report = platform.run(Trace.from_arrivals(ARRIVALS))
    return platform, report


class TestHealedRunsAreConsistent:
    @settings(max_examples=12, deadline=None)
    @given(fault_configs)
    def test_full_recount_matches(self, faults):
        platform, report = run_with(faults)

        # 1. Every request completed (no run aborts under faults).
        assert len(report.metrics.requests) == len(ARRIVALS)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None

        # 2. The cluster healed: every fault event has its heal twin.
        health = platform.faults.health
        assert not health.down_nodes
        assert not health.down_shards
        assert not health.degraded_links and not health.partitioned_links

        # 3. Registry refcounts match a from-scratch recount over every
        #    surviving dedup table.
        expected: Counter[int] = Counter()
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    expected.update(sandbox.dedup_table.base_refs)
        for checkpoint in platform.store:
            assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)
            assert checkpoint.refcount >= 0

        # 4. Node used-bytes counters match the per-resident recount.
        for node in platform.nodes:
            recount = sum(s.memory_bytes() for s in node.sandboxes.values())
            recount += sum(c.memory_bytes() for c in node.checkpoints.values())
            assert node.used_bytes() == recount

        # 5. The indexed control plane's census matches a full rescan.
        controller = platform.controller
        warm = dedup = total = 0
        live_recount: Counter[str] = Counter()
        dedup_recount: Counter[str] = Counter()
        live_states = {
            SandboxState.WARM,
            SandboxState.RUNNING,
            SandboxState.DEDUPING,
            SandboxState.DEDUP,
            SandboxState.RESTORING,
        }
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                total += 1
                if sandbox.state in (SandboxState.WARM, SandboxState.RUNNING):
                    warm += 1
                elif sandbox.state in (SandboxState.DEDUP, SandboxState.DEDUPING):
                    dedup += 1
                if sandbox.state in live_states:
                    live_recount[sandbox.function] += 1
                if sandbox.state in (SandboxState.DEDUP, SandboxState.DEDUPING):
                    dedup_recount[sandbox.function] += 1
        assert controller.sandbox_census() == (warm, dedup, total)
        live_counts, dedup_counts = controller.live_counts()
        assert {f: n for f, n in live_counts.items() if n} == dict(live_recount)
        assert {f: n for f, n in dedup_counts.items() if n} == dict(dedup_recount)
