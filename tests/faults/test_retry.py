"""Retry policy and the seeded transient-RPC failure model."""

from __future__ import annotations

import pytest

from repro.faults.retry import RetryPolicy, TransientFaults


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_ms": 0.0},
            {"backoff_base_ms": -1.0},
            {"backoff_cap_ms": 0.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_doubles_until_cap(self):
        policy = RetryPolicy(backoff_base_ms=10.0, backoff_cap_ms=35.0, jitter=0.0)
        assert policy.backoff_ms(0, 0.5) == 10.0
        assert policy.backoff_ms(1, 0.5) == 20.0
        assert policy.backoff_ms(2, 0.5) == 35.0  # capped, not 40
        assert policy.backoff_ms(5, 0.5) == 35.0

    def test_backoff_jitter_bounds(self):
        policy = RetryPolicy(backoff_base_ms=10.0, jitter=0.2)
        low = policy.backoff_ms(0, 0.0)
        high = policy.backoff_ms(0, 1.0 - 1e-12)
        assert low == pytest.approx(8.0)
        assert high == pytest.approx(12.0)

    def test_backoff_rejects_negative_index(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(-1, 0.5)


class TestTransientFaults:
    def test_zero_probability_never_fails_or_draws_rng(self):
        model = TransientFaults(0.0, RetryPolicy(), seed=1)
        for _ in range(100):
            plan = model.plan("restore-fetch")
            assert plan.succeeded and plan.attempts == 0 and plan.charged_ms == 0.0
        assert model.retried_attempts == 0
        assert model.charged_backoff_ms == 0.0
        assert model.exhausted_ops == 0

    def test_deterministic_across_instances(self):
        a = TransientFaults(0.4, RetryPolicy(), seed=7)
        b = TransientFaults(0.4, RetryPolicy(), seed=7)
        plans_a = [a.plan("op") for _ in range(50)]
        plans_b = [b.plan("op") for _ in range(50)]
        assert plans_a == plans_b
        assert a.retried_attempts == b.retried_attempts
        assert a.charged_backoff_ms == b.charged_backoff_ms

    def test_seed_and_op_change_the_stream(self):
        base = [TransientFaults(0.4, RetryPolicy(), seed=7).plan("op") for _ in range(1)]
        other_seed = [
            TransientFaults(0.4, RetryPolicy(), seed=8).plan("op") for _ in range(1)
        ]
        # Over many draws the streams must diverge somewhere.
        a = TransientFaults(0.4, RetryPolicy(), seed=7)
        b = TransientFaults(0.4, RetryPolicy(), seed=8)
        assert [a.plan("op") for _ in range(50)] != [b.plan("op") for _ in range(50)]
        del base, other_seed

    def test_exhaustion_charges_all_attempts(self):
        policy = RetryPolicy(max_attempts=3, timeout_ms=10.0, jitter=0.0)
        model = TransientFaults(0.999, policy, seed=3)
        plan = model.plan("registry-lookup")
        assert not plan.succeeded
        assert plan.attempts == 3
        # 3 timeouts + 2 backoffs (none after the final attempt).
        expected = 3 * 10.0 + policy.backoff_ms(0, 0.0) + policy.backoff_ms(1, 0.0)
        assert plan.charged_ms == pytest.approx(expected)
        assert model.exhausted_ops == 1

    def test_counters_accumulate(self):
        model = TransientFaults(0.5, RetryPolicy(), seed=11)
        plans = [model.plan("op") for _ in range(200)]
        failed_attempts = sum(p.attempts for p in plans)
        assert model.retried_attempts == failed_attempts
        assert model.charged_backoff_ms == pytest.approx(
            sum(p.charged_ms for p in plans)
        )
        assert model.exhausted_ops == sum(1 for p in plans if not p.succeeded)
        assert 0 < failed_attempts  # p=0.5 over 200 ops must fail sometimes

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            TransientFaults(1.0, RetryPolicy(), seed=0)
