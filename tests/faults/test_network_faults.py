"""Fabric fault accounting: once-per-batch failed reads, link degradation.

Pins the failed-read accounting contract of :meth:`RdmaFabric.batch_read_ms`
(the historical asymmetry between single and batched reads against a
failed peer): an aborted batch counts exactly ONE failed read regardless
of how many ops or how many down peers it contained, and the
check-and-count is atomic — a peer restored between two batches can
never yield a half-counted batch.
"""

from __future__ import annotations

import pytest

from repro.sim.network import PeerUnavailable, RdmaFabric


class TestFailedReadAccounting:
    def test_batch_counts_one_failure_regardless_of_ops(self):
        fabric = RdmaFabric()
        fabric.fail_peer(1)
        with pytest.raises(PeerUnavailable):
            fabric.batch_read_ms({1: (500, 500 * 4096)}, local_peer=0)
        assert fabric.stats.failed_reads == 1

    def test_batch_counts_one_failure_with_multiple_down_peers(self):
        fabric = RdmaFabric()
        fabric.fail_peer(1)
        fabric.fail_peer(2)
        with pytest.raises(PeerUnavailable):
            fabric.batch_read_ms(
                {1: (5, 4096), 2: (7, 4096), 3: (2, 4096)}, local_peer=0
            )
        assert fabric.stats.failed_reads == 1
        # Fail-fast: nothing was charged for the reachable peer either.
        assert fabric.stats.remote_reads == 0

    def test_restore_peer_between_batches_cannot_half_count(self):
        fabric = RdmaFabric()
        fabric.fail_peer(1)
        fabric.fail_peer(2)
        with pytest.raises(PeerUnavailable):
            fabric.batch_read_ms({1: (5, 4096), 2: (5, 4096)}, local_peer=0)
        fabric.restore_peer(1)
        with pytest.raises(PeerUnavailable):
            fabric.batch_read_ms({1: (5, 4096), 2: (5, 4096)}, local_peer=0)
        # One count per aborted batch: 2 batches -> 2, never 3 or 1.5x.
        assert fabric.stats.failed_reads == 2
        fabric.restore_peer(2)
        assert fabric.batch_read_ms({1: (5, 4096), 2: (5, 4096)}, local_peer=0) > 0
        assert fabric.stats.failed_reads == 2

    def test_zero_op_entry_for_failed_peer_does_not_abort(self):
        fabric = RdmaFabric()
        fabric.fail_peer(1)
        cost = fabric.batch_read_ms({1: (0, 0), 2: (3, 4096)}, local_peer=0)
        assert cost > 0
        assert fabric.stats.failed_reads == 0

    def test_failed_local_peer_is_ignored(self):
        fabric = RdmaFabric()
        fabric.fail_peer(0)
        assert fabric.batch_read_ms({0: (3, 4096)}, local_peer=0) >= 0.0
        assert fabric.stats.failed_reads == 0

    def test_require_peer_counts_once_per_call(self):
        fabric = RdmaFabric()
        fabric.fail_peer(4)
        for _ in range(3):
            with pytest.raises(PeerUnavailable):
                fabric.require_peer(4)
        assert fabric.stats.failed_reads == 3

    def test_single_read_and_batch_agree(self):
        """The single-op accounting matches a one-op batch (the original
        asymmetry this contract fixed)."""
        a, b = RdmaFabric(), RdmaFabric()
        a.fail_peer(1)
        b.fail_peer(1)
        with pytest.raises(PeerUnavailable):
            a.require_peer(1)
        with pytest.raises(PeerUnavailable):
            b.batch_read_ms({1: (1, 4096)}, local_peer=0)
        assert a.stats.failed_reads == b.stats.failed_reads == 1


class TestLinkDegradation:
    def test_degraded_link_multiplies_remote_cost(self):
        fabric = RdmaFabric()
        base = fabric.batch_read_ms({1: (10, 10 * 4096)}, local_peer=0)
        fabric.degrade_peer(1, 4.0)
        slow = fabric.batch_read_ms({1: (10, 10 * 4096)}, local_peer=0)
        assert slow == pytest.approx(4.0 * base)
        assert fabric.stats.degraded_reads == 10

    def test_heal_restores_full_speed(self):
        fabric = RdmaFabric()
        fabric.degrade_peer(1, 8.0)
        fabric.heal_peer(1)
        assert fabric.link_factor(1) == 1.0
        fabric.batch_read_ms({1: (5, 4096)}, local_peer=0)
        assert fabric.stats.degraded_reads == 0

    def test_local_reads_never_degraded(self):
        fabric = RdmaFabric()
        fabric.degrade_peer(0, 4.0)
        before = fabric.batch_read_ms({0: (5, 4096)}, local_peer=0)
        assert fabric.stats.degraded_reads == 0
        assert before >= 0.0

    def test_rejects_speedup_factor(self):
        with pytest.raises(ValueError):
            RdmaFabric().degrade_peer(1, 0.9)
