"""Template-sharing fault tests (DESIGN.md §14).

The template pool lives in REMOTE_DRAM: a node crash drops that node's
fork-cache replicas but never the pool copies, so surviving (and
restarted) nodes keep forking — paying the promote again, not a cold
start.  Templatize and fork failures fall down the start ladder
(template → dedup → cold) instead of failing requests, and refcounts /
replica accounting must survive any of it.
"""

from __future__ import annotations

from collections import Counter

from repro.core.policy import MedesPolicyConfig
from repro.faults.schedule import FaultSchedule, FaultsConfig, NodeCrash, ShardOutage
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.templates.catalog import TemplateConfig
from repro.templates.delta import TemplateDeltaTable
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0
MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)

#: Parks form by ~10 s (idle period 5 s); the 40 s crash lands on live
#: template state; the 60 s and 120 s arrivals fork during and after it.
WORKLOAD = [
    (0.0, "Vanilla"),
    (1.0, "Vanilla"),
    (2.0, "LinAlg"),
    (3.0, "LinAlg"),
    (26_000.0, "Vanilla"),
    (26_010.0, "Vanilla"),
    (26_020.0, "Vanilla"),
    (60_000.0, "Vanilla"),
    (61_000.0, "LinAlg"),
    (120_000.0, "Vanilla"),
    (121_000.0, "LinAlg"),
]


def run_faulty(faults, *, arrivals=WORKLOAD, nodes=2, node_memory_mb=512.0, **cfg):
    suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
    config = ClusterConfig(
        nodes=nodes,
        node_memory_mb=node_memory_mb,
        content_scale=SCALE,
        seed=4,
        verify_restores=True,
        template_sharing=True,
        faults=faults,
        **cfg,
    )
    platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
    report = platform.run(Trace.from_arrivals(arrivals))
    return platform, report


def assert_template_consistent(platform):
    """Template refcounts and replica accounting match a full recount."""
    catalog = platform.templates
    assert catalog is not None
    expected: Counter[tuple[str, int]] = Counter()
    live_tables = 0
    for node in platform.nodes:
        for sandbox in node.sandboxes.values():
            table = sandbox.dedup_table
            if isinstance(table, TemplateDeltaTable):
                live_tables += 1
                expected.update(table.segment_keys)
    for segment in catalog._segments.values():
        assert segment.refcount == expected.get(segment.key, 0)
        assert segment.refcount >= 0
    assert catalog.live_deltas == live_tables
    # Node-side replica charges mirror the catalog's residency sets.
    for node in platform.nodes:
        assert node.template_replica_bytes() == catalog.replica_bytes(node.node_id)
    # Copy-on-write sharer counts match a recount of live forked
    # sandboxes (a leaked sharer would pin replicas forever).
    sharing: Counter[tuple[int, tuple[str, int]]] = Counter()
    for node in platform.nodes:
        for sandbox in node.sandboxes.values():
            for key in sandbox.template_share_keys:
                sharing[(sandbox.node_id, key)] += 1
    for segment in catalog._segments.values():
        for node in platform.nodes:
            assert segment.sharers.get(node.node_id, 0) == sharing.get(
                (node.node_id, segment.key), 0
            )
    # The pool holds exactly the published segments — spilled deltas
    # live on node-local SSD, never in the pool.
    segment_bytes = sum(seg.full_bytes for seg in catalog._segments.values())
    assert catalog.pool.used_bytes == segment_bytes
    # Each node's SSD account matches a recount of its spilled deltas.
    controller = platform.controller
    spilled: Counter[int] = Counter()
    for node in platform.nodes:
        for sandbox in node.sandboxes.values():
            table = sandbox.dedup_table
            if isinstance(table, TemplateDeltaTable) and sandbox.table_tier is not None:
                spilled[node.node_id] += table.retained_full_bytes
    for node in platform.nodes:
        account = controller._delta_ssd.get(node.node_id)
        used = account.used_bytes if account is not None else 0
        assert used == spilled.get(node.node_id, 0)


class TestNodeCrash:
    CRASH = FaultsConfig(
        schedule=FaultSchedule(node_crashes=(NodeCrash(at_ms=40_000.0, node_id=1),))
    )

    def test_pool_survives_crash_replicas_do_not(self):
        platform, report = run_faulty(self.CRASH)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        catalog = platform.templates
        # The dead node holds no replicas (and is charged for none)...
        assert catalog.replica_bytes(1) == 0
        assert platform.nodes[1].template_replica_bytes() == 0
        # ...but the remote-DRAM pool kept every published segment.
        assert len(catalog) > 0
        assert catalog.pool.used_bytes > 0
        assert_template_consistent(platform)

    def test_forks_continue_after_crash(self):
        """Post-crash arrivals still template-fork on the survivor —
        the pool re-promotes instead of falling cold."""
        platform, report = run_faulty(self.CRASH)
        metrics = report.metrics
        assert metrics.template_forks, "workload must fork templates"
        late = [f for f in metrics.template_forks if f.started_ms > 40_000.0]
        assert late, "forks must survive the crash"
        assert all(record.completion_ms is not None
                   for record in metrics.requests.values())
        assert_template_consistent(platform)

    def test_restart_and_repromote(self):
        """A restarted node starts replica-less and re-promotes from the
        pool on its first fork (charged, not lost)."""
        faults = FaultsConfig(
            schedule=FaultSchedule(
                node_crashes=(
                    NodeCrash(at_ms=40_000.0, node_id=1, restart_at_ms=70_000.0),
                )
            )
        )
        platform, report = run_faulty(faults)
        metrics = report.metrics
        for record in metrics.requests.values():
            assert record.completion_ms is not None
        assert metrics.template_promotions > 0
        assert metrics.template_promote_bytes > 0
        assert_template_consistent(platform)

    def test_crash_under_memory_pressure(self):
        platform, report = run_faulty(self.CRASH, node_memory_mb=160.0)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
        assert_template_consistent(platform)


class TestFallbackLadder:
    def test_registry_outage_still_parks_templates(self):
        """Templates need no registry: during a shard outage the idle
        ladder keeps templatizing instead of deferring everything."""
        faults = FaultsConfig(
            schedule=FaultSchedule(
                shard_outages=(ShardOutage(at_ms=30_000.0, shard=0, heal_at_ms=70_000.0),)
            )
        )
        platform, report = run_faulty(faults)
        metrics = report.metrics
        outage_parks = [
            op for op in metrics.template_ops if 30_000.0 < op.started_ms < 70_000.0
        ]
        assert outage_parks, "template parks must continue through the outage"
        for record in metrics.requests.values():
            assert record.completion_ms is not None
        assert_template_consistent(platform)

    def test_transient_faults_fall_through_not_fail(self):
        """Near-certain transient failure on publishes and forks: the
        ladder degrades (dedup, then cold) but every request completes."""
        faults = FaultsConfig(rpc_failure_prob=0.95, seed=9)
        platform, report = run_faulty(faults)
        metrics = report.metrics
        for record in metrics.requests.values():
            assert record.completion_ms is not None
        # The fallbacks actually fired (publish and/or fork exhaustion).
        assert metrics.template_pool_rejections + metrics.template_fork_fallbacks > 0
        assert_template_consistent(platform)

    def test_tiny_pool_falls_back_to_dedup(self):
        """A pool too small for any segment set: every templatize is
        rejected, the dedup rung takes over, nothing is stranded."""
        platform, report = run_faulty(
            FaultsConfig(), templates=TemplateConfig(pool_mb=1.0)
        )
        metrics = report.metrics
        assert metrics.template_ops == []
        assert metrics.template_pool_rejections > 0
        assert metrics.dedup_ops, "the dedup rung must take over"
        for record in metrics.requests.values():
            assert record.completion_ms is not None
        assert_template_consistent(platform)
