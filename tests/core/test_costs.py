"""Tests for the calibrated cost model."""

from __future__ import annotations

import pytest

from repro.core.costs import CostModel


@pytest.fixture
def costs() -> CostModel:
    return CostModel()


class TestPerPageCosts:
    def test_checkpoint_has_fixed_floor(self, costs):
        assert costs.checkpoint_ms(0) == costs.checkpoint_fixed_ms
        assert costs.checkpoint_ms(1000) > costs.checkpoint_fixed_ms

    def test_linear_in_pages(self, costs):
        assert costs.lookup_ms(2000) == pytest.approx(2 * costs.lookup_ms(1000))
        assert costs.fingerprint_ms(500) == pytest.approx(
            500 * costs.fingerprint_us_per_page / 1e3
        )
        assert costs.patch_compute_ms(100) > 0
        assert costs.patch_apply_ms(100) < costs.patch_compute_ms(100)
        assert costs.register_ms(100) > 0


class TestPaperAnchors:
    """The constants must land on the paper's measured anchors."""

    def test_dedup_op_duration_band(self, costs):
        # Vanilla: ~4K full-scale pages; ModelTrain: ~22K (Section 7.7).
        def dedup_total(pages):
            return (
                costs.checkpoint_ms(pages)
                + costs.fingerprint_ms(pages)
                + costs.lookup_ms(pages)
                + costs.patch_compute_ms(pages // 2)
            )

        assert 1_000 < dedup_total(4_000) < 3_000
        assert 2_000 < dedup_total(22_000) < 5_000

    def test_lookup_rate_near_80us_per_page(self, costs):
        per_page_us = costs.lookup_ms(1_000) * 1e3 / 1_000
        assert 40 <= per_page_us <= 120

    def test_restore_much_faster_than_checkpoint(self, costs):
        pages = 8_000
        restore = costs.restore_fixed_ms + costs.patch_apply_ms(pages)
        assert restore < 0.3 * costs.checkpoint_ms(pages)

    def test_warm_start_in_paper_band(self, costs):
        assert 1.0 <= costs.warm_start_ms <= 20.0


class TestMeasuredFingerprint:
    def test_with_measured_fingerprint_carries_measurement(self, costs):
        from repro.core.costs import measure_fingerprint_us_per_page

        measured = costs.with_measured_fingerprint(pages=64, repeats=1)
        assert measured is not costs
        assert measured.fingerprint_us_per_page > 0
        # Only the fingerprint rate changes; every other constant stays.
        assert measured.lookup_us_per_page == costs.lookup_us_per_page
        assert measured.checkpoint_fixed_ms == costs.checkpoint_fixed_ms
        rate = measure_fingerprint_us_per_page(pages=64, repeats=1)
        assert 0 < rate < 1e4  # sane band: the kernel is well under 10 ms/page

    def test_measure_rejects_bad_pages(self):
        from repro.core.costs import measure_fingerprint_us_per_page

        with pytest.raises(ValueError):
            measure_fingerprint_us_per_page(pages=0)
