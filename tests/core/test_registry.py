"""Tests for the global fingerprint registry."""

from __future__ import annotations

import pytest

from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import PageFingerprint


def fp(*digests: int) -> PageFingerprint:
    return PageFingerprint(digests=tuple(digests), offsets=tuple(range(len(digests))))


def ref(checkpoint=1, node=0, page=0) -> PageRef:
    return PageRef(checkpoint_id=checkpoint, node_id=node, page_index=page)


class TestRegistration:
    def test_register_and_lookup(self):
        registry = FingerprintRegistry()
        registry.register_page(ref(page=0), fp(1, 2, 3))
        counts = registry.lookup(fp(2, 3, 4))
        assert counts[ref(page=0)] == 2

    def test_duplicate_ref_not_double_counted(self):
        registry = FingerprintRegistry()
        registry.register_page(ref(), fp(1, 2))
        registry.register_page(ref(), fp(1, 2))
        assert registry.lookup(fp(1))[ref()] == 1

    def test_bucket_cap(self):
        registry = FingerprintRegistry(max_refs_per_digest=2)
        for page in range(5):
            registry.register_page(ref(page=page), fp(42))
        counts = registry.lookup(fp(42))
        assert len(counts) == 2

    def test_deregister_checkpoint(self):
        registry = FingerprintRegistry()
        registry.register_page(ref(checkpoint=1, page=0), fp(1, 2))
        registry.register_page(ref(checkpoint=2, page=0), fp(2, 3))
        removed = registry.deregister_checkpoint(1)
        assert removed == 2
        counts = registry.lookup(fp(1, 2, 3))
        assert ref(checkpoint=1, page=0) not in counts
        assert counts[ref(checkpoint=2, page=0)] == 2

    def test_deregister_unknown_is_noop(self):
        assert FingerprintRegistry().deregister_checkpoint(123) == 0

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            FingerprintRegistry(max_refs_per_digest=0)


class TestChooseBasePage:
    def test_none_without_candidates(self):
        registry = FingerprintRegistry()
        assert registry.choose_base_page(fp(9), local_node_id=0) is None

    def test_max_overlap_wins(self):
        registry = FingerprintRegistry()
        registry.register_page(ref(checkpoint=1, page=0), fp(1, 2, 3))
        registry.register_page(ref(checkpoint=1, page=1), fp(1, 9, 8))
        choice = registry.choose_base_page(fp(1, 2, 3, 4, 5), local_node_id=0)
        assert choice is not None
        chosen, overlap = choice
        assert chosen.page_index == 0
        assert overlap == 3

    def test_tie_prefers_local_node(self):
        registry = FingerprintRegistry()
        registry.register_page(ref(checkpoint=1, node=5, page=0), fp(1, 2))
        registry.register_page(ref(checkpoint=2, node=7, page=0), fp(1, 2))
        chosen, _ = registry.choose_base_page(fp(1, 2), local_node_id=7)
        assert chosen.node_id == 7

    def test_tie_deterministic_without_local(self):
        registry = FingerprintRegistry()
        registry.register_page(ref(checkpoint=9, node=5, page=3), fp(1, 2))
        registry.register_page(ref(checkpoint=2, node=6, page=1), fp(1, 2))
        chosen, _ = registry.choose_base_page(fp(1, 2), local_node_id=0)
        assert chosen.checkpoint_id == 2  # lowest checkpoint id


class TestAccountingAndStats:
    def test_stats_counters(self):
        registry = FingerprintRegistry()
        registry.register_page(ref(), fp(1, 2, 3))
        registry.lookup(fp(1))
        registry.lookup(fp(99))
        assert registry.stats.pages_registered == 1
        assert registry.stats.digests_registered == 3
        assert registry.stats.page_lookups == 2
        assert registry.stats.hits == 1

    def test_memory_grows_with_content(self):
        registry = FingerprintRegistry()
        empty = registry.memory_bytes()
        for page in range(10):
            registry.register_page(ref(page=page), fp(page * 10, page * 10 + 1))
        assert registry.memory_bytes() > empty
        assert registry.digest_count == 20

    def test_shard_for_stable_partition(self):
        registry = FingerprintRegistry()
        assert registry.shard_for(12345, 4) == 12345 % 4
        with pytest.raises(ValueError):
            registry.shard_for(1, 0)
