"""Content-scale invariance: reported figures describe full-size sandboxes.

The same sandbox synthesized at different ``content_scale`` values must
report (approximately) the same full-scale timings, savings fractions
and retained footprints — the property that lets the reproduction run
on small images while reporting testbed-scale numbers.
"""

from __future__ import annotations

import pytest

from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric


def measure_at_scale(profile, scale: float):
    store = CheckpointStore()
    registry = FingerprintRegistry()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=scale,
    )
    base_image = profile.synthesize(800, content_scale=scale, executed=True)
    checkpoint = BaseCheckpoint(
        function=profile.name,
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=profile.memory_bytes,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=801, created_at=0.0)
    sandbox.image = profile.synthesize(801, content_scale=scale, executed=True)
    outcome = agent.dedup(sandbox)
    restore = agent.restore(outcome.table, verify=True)
    return outcome, restore


class TestScaleInvariance:
    @pytest.fixture(scope="class")
    def two_scales(self, linalg_profile):
        coarse = measure_at_scale(linalg_profile, 1.0 / 256.0)
        fine = measure_at_scale(linalg_profile, 1.0 / 64.0)
        return coarse, fine

    def test_lookup_time_scale_invariant(self, two_scales):
        (coarse, _), (fine, _) = two_scales
        assert coarse.timings.lookup_ms == pytest.approx(
            fine.timings.lookup_ms, rel=0.05
        )

    def test_checkpoint_time_scale_invariant(self, two_scales):
        (coarse, _), (fine, _) = two_scales
        assert coarse.timings.checkpoint_ms == pytest.approx(
            fine.timings.checkpoint_ms, rel=0.05
        )

    def test_savings_fraction_consistent(self, two_scales):
        (coarse, _), (fine, _) = two_scales
        assert coarse.table.stats.savings_fraction == pytest.approx(
            fine.table.stats.savings_fraction, abs=0.12
        )

    def test_retained_full_bytes_consistent(self, two_scales):
        (coarse, _), (fine, _) = two_scales
        assert coarse.table.retained_full_bytes == pytest.approx(
            fine.table.retained_full_bytes, rel=0.25
        )

    def test_restore_time_consistent(self, two_scales):
        (_, coarse_restore), (_, fine_restore) = two_scales
        assert coarse_restore.timings.total_ms == pytest.approx(
            fine_restore.timings.total_ms, rel=0.35
        )
