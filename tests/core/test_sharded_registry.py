"""Tests for the sharded fingerprint registry (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.core.registry import (
    FingerprintRegistry,
    PageRef,
    ShardedFingerprintRegistry,
)
from repro.memory.fingerprint import PageFingerprint


def fp(*digests: int) -> PageFingerprint:
    return PageFingerprint(digests=tuple(digests), offsets=tuple(range(len(digests))))


def ref(checkpoint=1, node=0, page=0) -> PageRef:
    return PageRef(checkpoint_id=checkpoint, node_id=node, page_index=page)


class TestApiEquivalence:
    """Sharding must not change any lookup outcome."""

    def _populated(self, registry):
        registry.register_page(ref(checkpoint=1, page=0), fp(1, 2, 3, 4, 5))
        registry.register_page(ref(checkpoint=1, page=1), fp(4, 5, 6, 7, 8))
        registry.register_page(ref(checkpoint=2, node=3, page=0), fp(2, 3, 9, 10, 11))
        return registry

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_choose_base_page_matches_single(self, n_shards):
        single = self._populated(FingerprintRegistry())
        sharded = self._populated(ShardedFingerprintRegistry(n_shards))
        for query in (fp(1, 2, 3), fp(4, 5), fp(9, 10, 11, 12), fp(99)):
            assert sharded.choose_base_page(query, 0) == single.choose_base_page(query, 0)
            assert sharded.lookup(query) == single.lookup(query)

    @pytest.mark.parametrize("n_shards", [2, 5])
    def test_deregister_matches_single(self, n_shards):
        single = self._populated(FingerprintRegistry())
        sharded = self._populated(ShardedFingerprintRegistry(n_shards))
        assert sharded.deregister_checkpoint(1) == single.deregister_checkpoint(1)
        query = fp(1, 2, 3, 4, 5)
        assert sharded.lookup(query) == single.lookup(query)

    def test_digest_count_matches(self):
        single = self._populated(FingerprintRegistry())
        sharded = self._populated(ShardedFingerprintRegistry(4))
        assert sharded.digest_count == single.digest_count

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_batch_apis_match_per_page(self, n_shards):
        queries = [fp(1, 2, 3), fp(4, 5), fp(9, 10, 11, 12), fp(99)]
        for make in (FingerprintRegistry, lambda: ShardedFingerprintRegistry(n_shards)):
            per_page = self._populated(make())
            batched = self._populated(make())
            expected = [per_page.choose_base_page(q, 0) for q in queries]
            assert batched.choose_base_pages(queries, 0) == expected
            assert batched.stats == per_page.stats

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_page_level_stats_match_single(self, n_shards):
        """Regression: the sharded registry used to sum page-level stats
        across shards, multiplying pages_registered and page_lookups by
        the number of shards a fingerprint's digests landed on."""
        single = self._populated(FingerprintRegistry())
        sharded = self._populated(ShardedFingerprintRegistry(n_shards))
        for registry in (single, sharded):
            registry.choose_base_page(fp(1, 2, 3), 0)
            registry.choose_base_page(fp(9, 10, 11, 12), 3)
            registry.choose_base_page(fp(99, 100), 0)  # miss
        assert sharded.stats.pages_registered == single.stats.pages_registered
        assert sharded.stats.page_lookups == single.stats.page_lookups
        assert sharded.stats.hits == single.stats.hits
        assert sharded.stats.hit_rate == single.stats.hit_rate


class TestShardingProperties:
    def test_digests_partitioned(self):
        sharded = ShardedFingerprintRegistry(4)
        sharded.register_page(ref(), fp(0, 1, 2, 3, 4, 5, 6, 7))
        for shard_index, shard in enumerate(sharded.shards):
            for digest in shard.domain_digests(""):
                assert digest % 4 == shard_index

    def test_load_roughly_balanced(self):
        from repro._util import stable_seed

        sharded = ShardedFingerprintRegistry(4)
        for page in range(50):
            digests = tuple(stable_seed("digest", page, i) for i in range(5))
            sharded.register_page(ref(page=page), fp(*digests))
        assert sharded.load_imbalance() < 1.5

    def test_replication_multiplies_memory(self):
        plain = ShardedFingerprintRegistry(2, replication=1)
        replicated = ShardedFingerprintRegistry(2, replication=3)
        for registry in (plain, replicated):
            registry.register_page(ref(), fp(1, 2, 3))
        assert replicated.memory_bytes() == 3 * plain.memory_bytes()

    def test_stats_aggregate(self):
        sharded = ShardedFingerprintRegistry(3)
        sharded.register_page(ref(), fp(1, 2, 3))
        sharded.lookup(fp(1, 2))
        stats = sharded.stats
        assert stats.digests_registered == 3
        assert stats.digest_lookups == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedFingerprintRegistry(0)
        with pytest.raises(ValueError):
            ShardedFingerprintRegistry(2, replication=0)

    def test_empty_imbalance_is_one(self):
        assert ShardedFingerprintRegistry(4).load_imbalance() == 1.0


class TestPlatformIntegration:
    def test_sharded_platform_run_matches_shapes(self, small_suite):
        """A sharded-controller Medes run completes and dedups."""
        from repro.platform.config import ClusterConfig
        from repro.platform.platform import PlatformKind, build_platform
        from repro.workload.trace import Trace

        config = ClusterConfig(
            nodes=2,
            node_memory_mb=512.0,
            content_scale=1.0 / 256.0,
            registry_shards=4,
            verify_restores=True,
        )
        trace = Trace.from_arrivals(
            [(0.0, "Vanilla"), (1.0, "Vanilla"), (120_000.0, "Vanilla")]
        )
        platform = build_platform(PlatformKind.MEDES, config, small_suite)
        report = platform.run(trace)
        assert all(r.completion_ms is not None for r in report.metrics.requests.values())
        assert isinstance(platform.registry, ShardedFingerprintRegistry)
