"""Determinism and constraint-satisfaction properties of the core."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.optimizer import (
    FunctionModel,
    Objective,
    mean_startup_ms,
    memory_usage,
    solve,
)
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from tests.conftest import TEST_SCALE


def build_agent(profile):
    store = CheckpointStore()
    registry = FingerprintRegistry()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=TEST_SCALE,
    )
    base_image = profile.synthesize(700, content_scale=TEST_SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function=profile.name,
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=profile.memory_bytes,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    return agent


class TestDedupDeterminism:
    def test_identical_inputs_identical_tables(self, linalg_profile):
        """Two independently-built agents dedup the same sandbox to
        byte-identical page tables — the whole pipeline is deterministic."""
        outcomes = []
        for _ in range(2):
            agent = build_agent(linalg_profile)
            sandbox = Sandbox(
                profile=linalg_profile, node_id=0, instance_seed=701, created_at=0.0
            )
            sandbox.image = linalg_profile.synthesize(
                701, content_scale=TEST_SCALE, executed=True
            )
            outcomes.append(agent.dedup(sandbox))
        first, second = outcomes
        assert first.table.original_checksum == second.table.original_checksum
        assert first.table.retained_content_bytes == second.table.retained_content_bytes
        assert first.table.stats == second.table.stats
        assert [e.kind for e in first.table.entries] == [
            e.kind for e in second.table.entries
        ]
        assert first.timings == second.timings


model_strategy = st.builds(
    FunctionModel,
    lambda_max=st.floats(min_value=0.0, max_value=0.1),
    warm_start_ms=st.floats(min_value=1.0, max_value=50.0),
    dedup_start_ms=st.floats(min_value=50.0, max_value=600.0),
    exec_ms=st.floats(min_value=50.0, max_value=3000.0),
    warm_bytes=st.integers(min_value=1 << 20, max_value=128 << 20),
    dedup_bytes=st.integers(min_value=0, max_value=32 << 20),
    restore_overhead_bytes=st.integers(min_value=0, max_value=4 << 20),
)


class TestSolverConstraintSatisfaction:
    @given(model_strategy, st.integers(min_value=1, max_value=20),
           st.floats(min_value=1.0, max_value=10.0))
    def test_feasible_latency_solutions_satisfy_all_constraints(self, m, total, alpha):
        solution = solve(m, total, Objective.LATENCY, alpha=alpha)
        if not solution.feasible:
            return
        assert solution.warm + solution.dedup == total
        # Latency bound (eq. 4 <= alpha * s_W).
        startup = mean_startup_ms(m, solution.warm, solution.dedup)
        assert startup <= alpha * m.warm_start_ms + 1e-6
        # Throughput bound (eq. 2).
        capacity = (
            solution.warm / m.reuse_warm_ms + solution.dedup / m.reuse_dedup_ms
        )
        assert capacity >= m.lambda_max - 1e-9

    @given(model_strategy, st.integers(min_value=1, max_value=20),
           st.floats(min_value=0.1, max_value=2.0))
    def test_feasible_memory_solutions_satisfy_budget(self, m, total, scale):
        budget = scale * total * m.warm_bytes
        solution = solve(m, total, Objective.MEMORY, budget_bytes=budget)
        if not solution.feasible:
            return
        assert memory_usage(m, solution.warm, solution.dedup) <= budget + 1e-6
        capacity = (
            solution.warm / m.reuse_warm_ms + solution.dedup / m.reuse_dedup_ms
        )
        assert capacity >= m.lambda_max - 1e-9
