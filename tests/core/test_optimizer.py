"""Tests for the Section-5.2 optimization problem.

The strongest check here compares the closed-form solver against brute
force over every integer split (W, D), for both objectives, on
randomized instances.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.optimizer import (
    FunctionModel,
    Objective,
    max_dedup_for_latency,
    max_dedup_for_rate,
    mean_startup_ms,
    memory_usage,
    min_dedup_for_memory,
    solve,
)


def model(**overrides) -> FunctionModel:
    base = dict(
        lambda_max=0.01,  # 10 req/s
        warm_start_ms=10.0,
        dedup_start_ms=150.0,
        exec_ms=250.0,
        warm_bytes=32 << 20,
        dedup_bytes=16 << 20,
        restore_overhead_bytes=2 << 20,
    )
    base.update(overrides)
    return FunctionModel(**base)


model_strategy = st.builds(
    model,
    lambda_max=st.floats(min_value=0.0, max_value=0.2),
    warm_start_ms=st.floats(min_value=1.0, max_value=50.0),
    dedup_start_ms=st.floats(min_value=50.0, max_value=800.0),
    exec_ms=st.floats(min_value=50.0, max_value=5000.0),
    warm_bytes=st.integers(min_value=1 << 20, max_value=256 << 20),
    dedup_bytes=st.integers(min_value=0, max_value=64 << 20),
    restore_overhead_bytes=st.integers(min_value=0, max_value=8 << 20),
)


class TestFormulas:
    def test_reuse_periods(self):
        m = model()
        assert m.reuse_warm_ms == 260.0
        assert m.reuse_dedup_ms == 400.0

    def test_memory_usage_equation_3(self):
        m = model()
        assert memory_usage(m, 2, 3) == 2 * m.warm_bytes + 3 * (
            m.dedup_bytes + m.restore_overhead_bytes
        )

    def test_mean_startup_all_warm(self):
        m = model()
        assert mean_startup_ms(m, 5, 0) == pytest.approx(m.warm_start_ms)

    def test_mean_startup_all_dedup(self):
        m = model()
        assert mean_startup_ms(m, 0, 5) == pytest.approx(m.dedup_start_ms)

    def test_mean_startup_between_extremes(self):
        m = model()
        mixed = mean_startup_ms(m, 3, 3)
        assert m.warm_start_ms < mixed < m.dedup_start_ms

    def test_mean_startup_monotone_in_dedup(self):
        m = model()
        values = [mean_startup_ms(m, 10 - d, d) for d in range(11)]
        assert values == sorted(values)


class TestRateBound:
    def test_all_warm_insufficient_returns_negative(self):
        m = model(lambda_max=1.0)  # absurd rate
        assert max_dedup_for_rate(m, 5) == -1.0

    def test_all_dedup_sufficient_returns_total(self):
        m = model(lambda_max=0.001)
        assert max_dedup_for_rate(m, 5) == 5.0

    def test_partial_bound_satisfies_constraint(self):
        m = model(lambda_max=0.018)
        total = 5
        bound = max_dedup_for_rate(m, total)
        assert 0 <= bound < total
        warm = total - bound
        capacity = warm / m.reuse_warm_ms + bound / m.reuse_dedup_ms
        assert capacity == pytest.approx(m.lambda_max)


class TestLatencyBound:
    def test_loose_alpha_allows_all(self):
        m = model(dedup_start_ms=20.0)
        assert max_dedup_for_latency(m, 10, alpha=3.0) == 10.0

    def test_tight_alpha_restricts(self):
        m = model()
        bound = max_dedup_for_latency(m, 10, alpha=1.5)
        assert 0 <= bound < 10
        # At the bound the mean startup meets the target exactly.
        warm = 10 - bound
        assert mean_startup_ms(m, warm, bound) <= 1.5 * m.warm_start_ms + 1e-6

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            max_dedup_for_latency(model(), 10, alpha=0.5)


class TestMemoryBound:
    def test_generous_budget_needs_no_dedup(self):
        m = model()
        assert min_dedup_for_memory(m, 4, budget_bytes=1 << 40) == 0.0

    def test_impossible_budget_is_inf(self):
        m = model()
        assert math.isinf(min_dedup_for_memory(m, 4, budget_bytes=1))

    def test_partial_budget(self):
        m = model()
        budget = memory_usage(m, 2, 2)
        needed = min_dedup_for_memory(m, 4, budget_bytes=budget)
        assert needed == pytest.approx(2.0)


def brute_force(m: FunctionModel, total: int, objective: Objective, alpha, budget):
    """Exhaustive reference solution over integer splits."""
    best = None
    for dedup in range(total + 1):
        warm = total - dedup
        rate = warm / m.reuse_warm_ms + dedup / m.reuse_dedup_ms
        if rate < m.lambda_max - 1e-12:
            continue
        startup = mean_startup_ms(m, warm, dedup)
        mem = memory_usage(m, warm, dedup)
        if objective is Objective.LATENCY:
            if startup > alpha * m.warm_start_ms + 1e-9:
                continue
            key = (mem, startup)
        else:
            if mem > budget + 1e-9:
                continue
            key = (startup, mem)
        if best is None or key < best[0]:
            best = (key, warm, dedup)
    return best


class TestSolverAgainstBruteForce:
    @given(model_strategy, st.integers(min_value=0, max_value=12))
    def test_latency_objective_matches(self, m, total):
        solution = solve(m, total, Objective.LATENCY, alpha=2.5)
        reference = brute_force(m, total, Objective.LATENCY, 2.5, None)
        if reference is None:
            assert not solution.feasible
            return
        assert solution.feasible
        (best_mem, _), best_warm, best_dedup = reference
        # The solver must achieve the optimal objective value (memory);
        # tie-breaking among equal-memory splits is unspecified.
        assert memory_usage(m, solution.warm, solution.dedup) == pytest.approx(best_mem)
        assert mean_startup_ms(m, solution.warm, solution.dedup) <= (
            2.5 * m.warm_start_ms + 1e-6
        )

    @given(
        model_strategy,
        st.integers(min_value=0, max_value=12),
        st.floats(min_value=0.05, max_value=1.5),
    )
    def test_memory_objective_matches(self, m, total, budget_scale):
        budget = budget_scale * memory_usage(m, total, 0)
        solution = solve(m, total, Objective.MEMORY, budget_bytes=budget)
        reference = brute_force(m, total, Objective.MEMORY, None, budget)
        if reference is None:
            assert not solution.feasible
            return
        assert solution.feasible
        (best_startup, _), best_warm, best_dedup = reference
        # Optimal objective value (startup latency) within the budget;
        # equal-latency ties may break either way.
        assert mean_startup_ms(m, solution.warm, solution.dedup) == pytest.approx(
            best_startup
        )
        assert memory_usage(m, solution.warm, solution.dedup) <= budget + 1e-6


class TestSolverEdges:
    def test_zero_sandboxes(self):
        solution = solve(model(), 0, Objective.LATENCY)
        assert solution.warm == solution.dedup == 0
        assert not solution.feasible  # open demand, nothing to serve it

    def test_zero_sandboxes_zero_demand_feasible(self):
        solution = solve(model(lambda_max=0.0), 0, Objective.LATENCY)
        assert solution.feasible

    def test_infeasible_rate_goes_aggressive(self):
        solution = solve(model(lambda_max=10.0), 5, Objective.LATENCY)
        assert not solution.feasible
        assert solution.dedup == 5  # aggressive deduplication fallback

    def test_memory_requires_budget(self):
        with pytest.raises(ValueError, match="budget"):
            solve(model(), 5, Objective.MEMORY)

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            solve(model(), -1, Objective.LATENCY)

    def test_solution_invariants(self):
        solution = solve(model(), 8, Objective.LATENCY, alpha=2.0)
        assert solution.total == 8
        assert solution.warm >= 0 and solution.dedup >= 0
        assert solution.memory_bytes == memory_usage(
            model(), solution.warm, solution.dedup
        )
