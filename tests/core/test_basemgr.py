"""Tests for base-sandbox management (D/B > T demarcation, refcounts)."""

from __future__ import annotations

import pytest

from repro.core.basemgr import BaseSandboxManager
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from tests.conftest import TEST_SCALE


@pytest.fixture
def store() -> CheckpointStore:
    return CheckpointStore()


def make_checkpoint(profile, function="LinAlg", seed=1) -> BaseCheckpoint:
    return BaseCheckpoint(
        function=function,
        node_id=0,
        image=profile.synthesize(seed, content_scale=TEST_SCALE),
        owner_sandbox_id=seed,
        full_size_bytes=profile.memory_bytes,
    )


class TestDemarcation:
    def test_first_dedup_needs_base(self, store):
        manager = BaseSandboxManager(store, threshold=40)
        assert manager.needs_new_base("LinAlg")

    def test_no_new_base_below_threshold(self, store, linalg_profile):
        manager = BaseSandboxManager(store, threshold=40)
        manager.add_base(make_checkpoint(linalg_profile))
        for _ in range(40):
            manager.note_dedup("LinAlg", +1)
        assert not manager.needs_new_base("LinAlg")  # D/B == 40, not > 40

    def test_new_base_above_threshold(self, store, linalg_profile):
        manager = BaseSandboxManager(store, threshold=40)
        manager.add_base(make_checkpoint(linalg_profile))
        for _ in range(41):
            manager.note_dedup("LinAlg", +1)
        assert manager.needs_new_base("LinAlg")

    def test_second_base_resets_ratio(self, store, linalg_profile):
        manager = BaseSandboxManager(store, threshold=40)
        manager.add_base(make_checkpoint(linalg_profile, seed=1))
        for _ in range(41):
            manager.note_dedup("LinAlg", +1)
        manager.add_base(make_checkpoint(linalg_profile, seed=2))
        assert not manager.needs_new_base("LinAlg")  # 41 / 2 < 40

    def test_functions_tracked_independently(self, store, linalg_profile):
        manager = BaseSandboxManager(store, threshold=40)
        manager.add_base(make_checkpoint(linalg_profile, function="A", seed=1))
        assert manager.needs_new_base("B")
        assert not manager.needs_new_base("A")

    def test_rejects_bad_threshold(self, store):
        with pytest.raises(ValueError):
            BaseSandboxManager(store, threshold=0)


class TestBookkeeping:
    def test_counts(self, store, linalg_profile):
        manager = BaseSandboxManager(store)
        checkpoint = make_checkpoint(linalg_profile)
        manager.add_base(checkpoint)
        manager.note_dedup("LinAlg", +1)
        assert manager.base_count("LinAlg") == 1
        assert manager.dedup_count("LinAlg") == 1
        assert manager.bases_for("LinAlg") == [checkpoint]
        assert checkpoint.registered

    def test_negative_dedup_count_raises(self, store):
        manager = BaseSandboxManager(store)
        with pytest.raises(RuntimeError, match="negative"):
            manager.note_dedup("X", -1)

    def test_add_base_registers_in_store(self, store, linalg_profile):
        manager = BaseSandboxManager(store)
        checkpoint = make_checkpoint(linalg_profile)
        manager.add_base(checkpoint)
        assert store.get(checkpoint.checkpoint_id) is checkpoint

    def test_remove_base_idempotent(self, store, linalg_profile):
        manager = BaseSandboxManager(store)
        checkpoint = make_checkpoint(linalg_profile)
        manager.add_base(checkpoint)
        manager.remove_base(checkpoint)
        manager.remove_base(checkpoint)  # no error
        assert manager.base_count("LinAlg") == 0

    def test_all_bases(self, store, linalg_profile):
        manager = BaseSandboxManager(store)
        a = make_checkpoint(linalg_profile, function="A", seed=1)
        b = make_checkpoint(linalg_profile, function="B", seed=2)
        manager.add_base(a)
        manager.add_base(b)
        assert set(manager.all_bases()) == {a, b}


class TestRetirement:
    def test_retire_unreferenced_keeps_minimum(self, store, linalg_profile):
        manager = BaseSandboxManager(store)
        first = make_checkpoint(linalg_profile, seed=1)
        second = make_checkpoint(linalg_profile, seed=2)
        manager.add_base(first)
        manager.add_base(second)
        retired = manager.retire_unreferenced("LinAlg", keep=1)
        assert retired == [first]
        assert manager.base_count("LinAlg") == 1

    def test_pinned_bases_survive_retirement(self, store, linalg_profile):
        manager = BaseSandboxManager(store)
        first = make_checkpoint(linalg_profile, seed=1)
        second = make_checkpoint(linalg_profile, seed=2)
        first.acquire(1)
        manager.add_base(first)
        manager.add_base(second)
        retired = manager.retire_unreferenced("LinAlg", keep=1)
        assert retired == [second]
        assert manager.bases_for("LinAlg") == [first]
