"""Tests for the Medes sandbox-management policy and its estimators."""

from __future__ import annotations

import pytest

from repro.core.optimizer import Objective
from repro.core.policy import (
    ClusterView,
    Decision,
    FunctionStats,
    MedesPolicy,
    MedesPolicyConfig,
)


@pytest.fixture
def stats(suite) -> dict[str, FunctionStats]:
    return {p.name: FunctionStats(profile=p) for p in suite}


def make_view(**overrides) -> ClusterView:
    base = dict(
        now=60_000.0,
        live_counts={"LinAlg": 4},
        dedup_counts={"LinAlg": 0},
        used_bytes=1 << 30,
        capacity_bytes=4 << 30,
        rate_shares={"LinAlg": 1.0},
    )
    base.update(overrides)
    return ClusterView(**base)


def make_policy(stats, **config_overrides) -> MedesPolicy:
    config = MedesPolicyConfig(**config_overrides)
    return MedesPolicy(config, warm_start_ms=10.0, stats=stats)


class TestFunctionStats:
    def test_rates_from_arrivals(self, linalg_profile):
        stats = FunctionStats(profile=linalg_profile)
        for t in range(0, 60_000, 1000):  # 1 req/s for a minute
            stats.record_arrival(float(t))
        mean = stats.mean_rate(60_000.0)
        assert mean == pytest.approx(60 / 120_000.0)
        peak = stats.peak_rate(60_000.0)
        assert peak >= mean

    def test_window_trimming(self, linalg_profile):
        stats = FunctionStats(profile=linalg_profile)
        stats.record_arrival(0.0)
        stats.record_arrival(500_000.0)
        assert len(stats.arrivals) == 1  # the old arrival fell out

    def test_ewma_moves_toward_observations(self, linalg_profile):
        stats = FunctionStats(profile=linalg_profile)
        prior = stats.dedup_start_ms
        stats.record_dedup_start(400.0)
        assert prior < stats.dedup_start_ms < 400.0

    def test_model_uses_measurements(self, linalg_profile):
        stats = FunctionStats(profile=linalg_profile)
        stats.record_retained_fraction(0.5)
        model = stats.model(0.0, warm_start_ms=10.0)
        assert model.warm_bytes == linalg_profile.memory_bytes
        assert model.dedup_bytes == int(stats.retained_fraction * model.warm_bytes)
        assert model.exec_ms == linalg_profile.exec_time_ms


class TestClusterView:
    def test_free_fraction(self):
        view = make_view(used_bytes=3 << 30, capacity_bytes=4 << 30)
        assert view.free_fraction == pytest.approx(0.25)

    def test_zero_capacity(self):
        view = make_view(capacity_bytes=0)
        assert view.free_fraction == 0.0


class TestMedesPolicyConfig:
    def test_memory_objective_requires_budget(self):
        with pytest.raises(ValueError, match="budget"):
            MedesPolicyConfig(objective=Objective.MEMORY)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            MedesPolicyConfig(alpha=0.5)

    def test_periods_validated(self):
        with pytest.raises(ValueError):
            MedesPolicyConfig(idle_period_ms=0)


class TestDecisions:
    def test_idle_function_with_spare_capacity_dedups(self, stats):
        """Many live sandboxes and almost no traffic: dedup some."""
        policy = make_policy(stats, alpha=20.0)
        stats["LinAlg"].record_arrival(59_000.0)  # trickle of traffic
        decision = policy.decide_idle("LinAlg", make_view(live_counts={"LinAlg": 6}))
        assert decision is Decision.DEDUP

    def test_enough_dedups_keeps_warm(self, stats):
        policy = make_policy(stats, alpha=20.0)
        stats["LinAlg"].record_arrival(59_000.0)
        view = make_view(live_counts={"LinAlg": 6}, dedup_counts={"LinAlg": 6})
        assert policy.decide_idle("LinAlg", view) is Decision.KEEP_WARM

    def test_tight_alpha_keeps_warm(self, stats):
        """A tight latency bound forbids dedup starts for busy functions."""
        policy = make_policy(stats, alpha=1.05)
        for t in range(0, 60_000, 200):  # 5 req/s: heavily loaded
            stats["LinAlg"].record_arrival(float(t))
        view = make_view(live_counts={"LinAlg": 3}, dedup_counts={"LinAlg": 0})
        assert policy.decide_idle("LinAlg", view) is Decision.KEEP_WARM

    def test_memory_pressure_forces_dedup(self, stats):
        policy = make_policy(stats, alpha=1.05)
        for t in range(0, 60_000, 200):
            stats["LinAlg"].record_arrival(float(t))
        pressured = make_view(
            live_counts={"LinAlg": 3},
            used_bytes=int(3.9 * (1 << 30)),
            capacity_bytes=4 << 30,
        )
        assert policy.decide_idle("LinAlg", pressured) is Decision.DEDUP

    def test_no_live_sandboxes_keeps_warm(self, stats):
        policy = make_policy(stats)
        view = make_view(live_counts={})
        assert policy.decide_idle("LinAlg", view) is Decision.KEEP_WARM

    def test_decisions_are_logged(self, stats):
        policy = make_policy(stats)
        policy.decide_idle("LinAlg", make_view())
        assert len(policy.decisions) == 1

    def test_memory_objective_budget_split(self, stats):
        budget = 2 << 30
        policy = make_policy(
            stats, objective=Objective.MEMORY, memory_budget_bytes=budget
        )
        view = make_view(rate_shares={"LinAlg": 0.25})
        assert policy._function_budget("LinAlg", view) == pytest.approx(budget * 0.25)

    def test_inactive_function_gets_minimal_budget(self, stats, linalg_profile):
        policy = make_policy(
            stats, objective=Objective.MEMORY, memory_budget_bytes=2 << 30
        )
        view = make_view(rate_shares={})
        assert policy._function_budget("LinAlg", view) == float(
            linalg_profile.memory_bytes
        )


class TestLifecycleParameters:
    def test_periods_exposed(self, stats):
        policy = make_policy(
            stats,
            idle_period_ms=1000.0,
            keep_alive_ms=2000.0,
            keep_dedup_ms=3000.0,
        )
        assert policy.idle_period_ms("LinAlg") == 1000.0
        assert policy.keep_alive_ms("LinAlg", 0.0) == 2000.0
        assert policy.keep_dedup_ms("LinAlg") == 3000.0
        assert policy.prewarm_delay_ms("LinAlg", 0.0) is None

    def test_on_arrival_feeds_stats(self, stats):
        policy = make_policy(stats)
        policy.on_arrival("LinAlg", 5_000.0)
        assert len(stats["LinAlg"].arrivals) == 1
