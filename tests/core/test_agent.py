"""Tests for the dedup agent: the dedup op and the restore op."""

from __future__ import annotations

import pytest

from repro.core.agent import DedupAgent, PageKind
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import FingerprintConfig, page_fingerprint
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from tests.conftest import TEST_SCALE


@pytest.fixture
def harness(linalg_profile):
    """A node-0 agent with a LinAlg base checkpoint on node 1."""
    store = CheckpointStore()
    registry = FingerprintRegistry()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=TEST_SCALE,
    )
    base_image = linalg_profile.synthesize(100, content_scale=TEST_SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function="LinAlg",
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=linalg_profile.memory_bytes,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    return agent, store, registry, checkpoint


def make_sandbox(profile, seed=200) -> Sandbox:
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
    sandbox.image = profile.synthesize(seed, content_scale=TEST_SCALE, executed=True)
    return sandbox


class TestDedupOp:
    def test_round_trip_byte_exact(self, harness, linalg_profile):
        agent, *_ = harness
        sandbox = make_sandbox(linalg_profile)
        original_checksum = sandbox.image.checksum()
        outcome = agent.dedup(sandbox)
        restored = agent.restore(outcome.table, verify=True)
        assert restored.image.checksum() == original_checksum

    def test_savings_positive_and_bounded(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        fraction = outcome.table.stats.savings_fraction
        assert 0.1 < fraction < 1.0
        assert outcome.table.retained_full_bytes < linalg_profile.memory_bytes

    def test_page_classification_counts(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        stats = outcome.table.stats
        assert (
            stats.zero_pages + stats.unique_pages + stats.patched_pages
            == stats.total_pages
        )
        assert stats.zero_pages > 0  # the zero region dedups away
        assert stats.unique_pages > 0  # dirty pages defeat dedup
        assert stats.patched_pages > 0

    def test_refcounts_acquired(self, harness, linalg_profile):
        agent, _store, _registry, checkpoint = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        expected = outcome.table.base_refs[checkpoint.checkpoint_id]
        assert expected > 0
        assert checkpoint.refcount == expected

    def test_same_function_attribution(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        stats = outcome.table.stats
        # Only LinAlg bases exist, so every patched page is same-function.
        assert stats.same_function_pages == stats.patched_pages
        assert stats.cross_function_pages == 0

    def test_empty_registry_all_unique_or_zero(self, linalg_profile):
        agent = DedupAgent(
            0,
            registry=FingerprintRegistry(),
            store=CheckpointStore(),
            fabric=RdmaFabric(),
            costs=CostModel(),
            content_scale=TEST_SCALE,
        )
        outcome = agent.dedup(make_sandbox(linalg_profile))
        stats = outcome.table.stats
        assert stats.patched_pages == 0
        assert stats.unique_pages + stats.zero_pages == stats.total_pages
        # Round trip still works with no bases at all.
        restored = agent.restore(outcome.table, verify=True)
        assert restored.image.checksum() == outcome.table.original_checksum

    def test_dedup_requires_image(self, harness, linalg_profile):
        agent, *_ = harness
        sandbox = Sandbox(
            profile=linalg_profile, node_id=0, instance_seed=1, created_at=0.0
        )
        with pytest.raises(RuntimeError, match="no image"):
            agent.dedup(sandbox)

    def test_timings_positive_and_ordered(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        timings = outcome.timings
        assert timings.checkpoint_ms > 0
        assert timings.lookup_ms > 0
        assert timings.total_ms >= timings.checkpoint_ms + timings.lookup_ms

    def test_full_scale_extrapolation(self, linalg_profile, harness):
        """Timing reflects full-size sandboxes regardless of content scale."""
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        full_pages = linalg_profile.memory_bytes / 4096
        expected_lookup = full_pages * agent.costs.lookup_us_per_page / 1e3
        assert outcome.timings.lookup_ms == pytest.approx(expected_lookup, rel=0.1)


class TestRestoreOp:
    def test_restore_timings_breakdown(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        restore = agent.restore(outcome.table, verify=True)
        timings = restore.timings
        assert timings.base_read_ms > 0  # base pages are remote (node 1)
        assert timings.compute_ms > 0
        assert timings.restore_ms == agent.costs.restore_fixed_ms
        assert timings.total_ms < linalg_profile.cold_start_ms

    def test_corruption_detected(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        tampered = outcome.table
        tampered.original_checksum = "0" * 40
        with pytest.raises(RuntimeError, match="corrupted"):
            agent.restore(tampered, verify=True)

    def test_restore_does_not_release_refs(self, harness, linalg_profile):
        agent, _store, _registry, checkpoint = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        before = checkpoint.refcount
        agent.restore(outcome.table, verify=False)
        assert checkpoint.refcount == before

    def test_op_counters(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        agent.restore(outcome.table)
        assert agent.dedup_ops == 1
        assert agent.restore_ops == 1


class TestCrossFunctionDedup:
    def test_pages_dedup_against_other_functions(self, suite):
        """With only a Vanilla base, LinAlg pages still find base pages
        (shared runtime + pool content) — the paper's Section 7.3.1."""
        store = CheckpointStore()
        registry = FingerprintRegistry()
        agent = DedupAgent(
            0,
            registry=registry,
            store=store,
            fabric=RdmaFabric(),
            costs=CostModel(),
            content_scale=TEST_SCALE,
        )
        vanilla = suite.get("Vanilla")
        base_image = vanilla.synthesize(300, content_scale=TEST_SCALE, executed=True)
        checkpoint = BaseCheckpoint(
            function="Vanilla",
            node_id=1,
            image=base_image,
            owner_sandbox_id=1,
            full_size_bytes=vanilla.memory_bytes,
        )
        store.add(checkpoint)
        for index in range(base_image.num_pages):
            registry.register_page(
                PageRef(checkpoint.checkpoint_id, 1, index),
                page_fingerprint(base_image.page(index)),
            )
        linalg = suite.get("LinAlg")
        outcome = agent.dedup(make_sandbox(linalg, seed=301))
        stats = outcome.table.stats
        assert stats.cross_function_pages > 0
        assert stats.same_function_pages == 0
        restored = agent.restore(outcome.table, verify=True)
        assert restored.image.checksum() == outcome.table.original_checksum


class TestPageEntry:
    def test_retained_bytes_by_kind(self, harness, linalg_profile):
        agent, *_ = harness
        outcome = agent.dedup(make_sandbox(linalg_profile))
        for entry in outcome.table.entries:
            if entry.kind is PageKind.ZERO:
                assert entry.retained_bytes() == 0
            elif entry.kind is PageKind.UNIQUE:
                assert entry.retained_bytes() == 4096
            else:
                assert 0 < entry.retained_bytes() < 4096 * 0.75
